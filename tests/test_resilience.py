"""Tests for repro.resilience: deterministic fault injection, failure
detection, and checkpoint-based recovery across both substrates."""

import json

import numpy as np
import pytest

from repro.nn import GPTConfig, LMBatches, LossScaler, SyntheticCorpus
from repro.obs import CATEGORIES, RuntimeTracer
from repro.resilience import (DELIVER, DROP, FailureModel, Fault,
                              FaultInjector, FaultPlan, ResilientTrainer,
                              RetryPolicy, fit_optimal_interval,
                              simulate_resilient_run, sweep_intervals,
                              young_daly_interval_s)
from repro.runtime import AxoNNTrainer
from repro.runtime.transport import (RECV, RankFailure, RankTransport,
                                     recv_within)

CFG = GPTConfig(vocab_size=17, seq_len=8, n_layer=4, n_head=2, hidden=12,
                dropout=0.1, init_seed=33)


def make_batches(seed=6):
    corpus = SyntheticCorpus(CFG.vocab_size, 4000, seed=seed)
    return LMBatches(corpus, batch_size=8, seq_len=CFG.seq_len)


def make_trainer(**kw):
    base = dict(g_inter=2, g_data=2, microbatch_size=2, lr=1e-3)
    base.update(kw)
    return AxoNNTrainer(CFG, **base)


# -- the fault model ----------------------------------------------------------

class TestFaultPlan:
    def test_random_plan_is_deterministic(self):
        a = FaultPlan.random(11, n_ranks=4, n_steps=8)
        b = FaultPlan.random(11, n_ranks=4, n_steps=8)
        assert a.faults == b.faults
        c = FaultPlan.random(12, n_ranks=4, n_steps=8)
        assert a.faults != c.faults

    def test_json_round_trip(self):
        plan = FaultPlan.of(
            Fault(kind="crash", rank=1, step=2, tick=3),
            Fault(kind="drop", src=0, dst=1, tag="act", count=2),
            Fault(kind="straggler", rank=2, ticks=4),
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again.faults == plan.faults
        # and the JSON is a plain document (the --plan file format)
        doc = json.loads(plan.to_json())
        assert doc["faults"][0]["kind"] == "crash"

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            Fault(kind="meteor", rank=0)
        with pytest.raises(ValueError, match="rank"):
            Fault(kind="crash")
        with pytest.raises(ValueError, match="rank"):
            Fault(kind="straggler")

    def test_crash_filters_by_step(self):
        plan = FaultPlan.of(Fault(kind="crash", rank=0, step=3),
                            Fault(kind="crash", rank=1, step=5))
        assert [f.rank for f in plan.crashes(3)] == [0]
        assert len(plan.crashes()) == 2

    def test_matches_send_wildcards(self):
        f = Fault(kind="drop", src=0)
        assert f.matches_send(0, 1, "x", 0)
        assert f.matches_send(0, 2, "y", 9)
        assert not f.matches_send(1, 0, "x", 0)
        tagged = Fault(kind="drop", src=0, dst=1, tag="act")
        assert not tagged.matches_send(0, 1, "grad", 0)


class TestRetryPolicy:
    def test_exponential_backoff(self):
        r = RetryPolicy(max_retries=4, base_backoff=1)
        assert [r.backoff(a) for a in range(4)] == [1, 2, 4, 8]

    def test_backoff_is_at_least_one_tick(self):
        assert RetryPolicy(base_backoff=0).backoff(0) == 1


class TestFaultInjector:
    def test_crash_fires_once_across_attempts(self):
        plan = FaultPlan.of(Fault(kind="crash", rank=1, step=0, tick=2))
        spent = set()
        first = FaultInjector(plan, step=0, spent=spent)
        assert [f.rank for f in first.crashes_due(2)] == [1]
        retry = FaultInjector(plan, step=0, spent=spent)
        assert retry.crashes_due(2) == []

    def test_crash_fires_at_or_after_tick(self):
        plan = FaultPlan.of(Fault(kind="crash", rank=0, step=0, tick=5))
        inj = FaultInjector(plan, step=0)
        assert inj.crashes_due(4) == []
        assert [f.rank for f in inj.crashes_due(7)] == [0]

    def test_drop_budget_is_consumed(self):
        plan = FaultPlan.of(Fault(kind="drop", src=0, dst=1, count=2))
        inj = FaultInjector(plan, step=0)
        assert inj.on_send(0, 1, "x", 0) == DROP
        assert inj.on_send(0, 1, "x", 1) == DROP
        assert inj.on_send(0, 1, "x", 2) == DELIVER

    def test_delays_accumulate(self):
        plan = FaultPlan.of(Fault(kind="straggler", rank=0, ticks=2),
                            Fault(kind="degrade", src=0, dst=1, ticks=3))
        inj = FaultInjector(plan, step=0)
        assert inj.on_send(0, 1, "x", 0) == 5
        assert inj.on_send(0, 2, "x", 0) == 2

    def test_injected_log(self):
        plan = FaultPlan.of(Fault(kind="drop", src=0, dst=1, count=1))
        inj = FaultInjector(plan, step=0)
        inj.on_send(0, 1, "act", 4)
        assert inj.injected and "drop" in inj.injected[0][1]


# -- transport fault layer ----------------------------------------------------

def _producer(transport, dst, payload):
    transport.send(0, dst, "data", 0, payload)
    return
    yield  # pragma: no cover - generator marker


class TestTransportFaults:
    def test_timed_recv_delivers_when_message_arrives(self):
        t = RankTransport(2)
        got = []

        def consumer():
            try:
                pkt = yield recv_within(5)
                got.append(pkt.data)
            except TimeoutError:  # pragma: no cover - not expected
                got.append("timeout")

        t.run({0: _producer(t, 1, 42), 1: consumer()})
        assert got == [42]

    def test_timed_recv_times_out(self):
        t = RankTransport(2, strict=False)
        got = []

        def consumer():
            try:
                yield recv_within(3)
            except TimeoutError:
                got.append("timeout")

        def silent():
            return
            yield  # pragma: no cover - generator marker

        t.run({0: silent(), 1: consumer()})
        assert got == ["timeout"]
        assert t.tick >= 3

    def test_dropped_send_is_retransmitted(self):
        plan = FaultPlan.of(Fault(kind="drop", src=0, dst=1, count=2))
        inj = FaultInjector(plan, step=0)
        t = RankTransport(2, injector=inj, retry=RetryPolicy())
        got = []

        def consumer():
            try:
                pkt = yield recv_within(30)
                got.append(pkt.data)
            except TimeoutError:  # pragma: no cover - not expected
                got.append("timeout")

        t.run({0: _producer(t, 1, "hello"), 1: consumer()})
        assert got == ["hello"]
        assert t.lost_packets == []

    def test_drop_without_retry_loses_packet(self):
        plan = FaultPlan.of(Fault(kind="drop", src=0, dst=1, count=1))
        inj = FaultInjector(plan, step=0)
        t = RankTransport(2, injector=inj, strict=False)
        got = []

        def consumer():
            try:
                yield recv_within(4)
            except TimeoutError:
                got.append("timeout")

        t.run({0: _producer(t, 1, "x"), 1: consumer()})
        assert got == ["timeout"]
        assert len(t.lost_packets) == 1

    def test_retry_budget_exhaustion_loses_packet(self):
        plan = FaultPlan.of(Fault(kind="drop", src=0, dst=1, count=99))
        inj = FaultInjector(plan, step=0)
        t = RankTransport(2, injector=inj, strict=False,
                          retry=RetryPolicy(max_retries=2))
        got = []

        def consumer():
            try:
                yield recv_within(20)
            except TimeoutError:
                got.append("timeout")

        t.run({0: _producer(t, 1, "x"), 1: consumer()})
        assert got == ["timeout"]
        assert len(t.lost_packets) == 1

    def test_delayed_delivery(self):
        plan = FaultPlan.of(Fault(kind="delay", src=0, dst=1, ticks=3))
        inj = FaultInjector(plan, step=0)
        t = RankTransport(2, injector=inj)
        got = []

        def consumer():
            try:
                pkt = yield recv_within(10)
                got.append((pkt.data, t.tick))
            except TimeoutError:  # pragma: no cover - not expected
                pass

        t.run({0: _producer(t, 1, "late"), 1: consumer()})
        assert got and got[0][0] == "late"
        assert got[0][1] >= 3  # not before the injected delay

    def test_crash_is_detected_as_rank_failure(self):
        plan = FaultPlan.of(Fault(kind="crash", rank=1, step=0, tick=1))
        inj = FaultInjector(plan, step=0)
        t = RankTransport(2, injector=inj, detect_timeout=5)

        def waits_forever():
            while True:
                yield RECV

        def victim():
            while True:
                yield RECV

        with pytest.raises(RankFailure) as exc:
            t.run({0: waits_forever(), 1: victim()})
        assert exc.value.dead == [1]
        assert exc.value.detected_at > 1  # detection lags the crash
        assert 1 in t.dead

    def test_crash_after_completion_still_fails_the_batch(self):
        """A rank that dies after its program returned still fails the
        batch at the end-of-batch barrier."""
        plan = FaultPlan.of(Fault(kind="crash", rank=0, step=0, tick=50))
        inj = FaultInjector(plan, step=0)
        t = RankTransport(2, injector=inj)
        got = []

        def consumer():
            pkt = yield RECV
            got.append(pkt.data)

        with pytest.raises(RankFailure) as exc:
            t.run({0: _producer(t, 1, 1), 1: consumer()})
        assert exc.value.dead == [0]
        assert got == [1]  # the batch itself completed before the barrier

    def test_send_to_dead_rank_is_discarded(self):
        plan = FaultPlan.of(Fault(kind="crash", rank=1, step=0, tick=0))
        inj = FaultInjector(plan, step=0)
        t = RankTransport(2, injector=inj, detect_timeout=3, strict=False)

        def talker():
            t.send(0, 1, "data", 0, "into the void")
            while True:
                yield RECV

        def victim():
            while True:
                yield RECV

        with pytest.raises(RankFailure):
            t.run({0: talker(), 1: victim()})
        assert any(p.dst == 1 for p in t.lost_packets)

    def test_fault_free_transport_unchanged(self):
        """Without an injector the transport has no fault state on exit."""
        t = RankTransport(2)
        got = []

        def consumer():
            pkt = yield RECV
            got.append(pkt.data)

        t.run({0: _producer(t, 1, 7), 1: consumer()})
        assert got == [7]
        assert t.dead == set() and t.lost_packets == []


# -- recovery: the headline guarantee ----------------------------------------

class TestRecoveryEquivalence:
    def test_crash_recovery_is_bit_identical(self):
        """The acceptance test: inject rank crashes mid-run; the recovered
        loss trajectory and final parameters must be bit-identical to an
        uninterrupted run."""
        batches = make_batches()
        ref = make_trainer()
        ref_losses = [ref.train_batch(*batches.batch(i)).loss
                      for i in range(6)]

        plan = FaultPlan.of(Fault(kind="crash", rank=1, step=2, tick=3),
                            Fault(kind="crash", rank=3, step=4, tick=2))
        resilient = ResilientTrainer(make_trainer(), plan, detect_timeout=8)
        losses = [resilient.train_batch(*batches.batch(i)).loss
                  for i in range(6)]

        assert resilient.total_recoveries == 2
        assert losses == ref_losses  # bit-identical, not approx
        a, b = ref.gather_state(), resilient.trainer.gather_state()
        for k in a:
            np.testing.assert_array_equal(a[k], b[k], err_msg=k)

    def test_recovery_with_replay(self):
        """snapshot_interval > 1 forces the rollback to silently replay
        intermediate batches; the result must still be bit-identical."""
        batches = make_batches()
        ref = make_trainer()
        ref_losses = [ref.train_batch(*batches.batch(i)).loss
                      for i in range(5)]

        plan = FaultPlan.of(Fault(kind="crash", rank=2, step=2, tick=2))
        resilient = ResilientTrainer(make_trainer(), plan,
                                     snapshot_interval=3, detect_timeout=8)
        losses = [resilient.train_batch(*batches.batch(i)).loss
                  for i in range(5)]

        assert losses == ref_losses
        [event] = resilient.recoveries
        assert event.restored_from == 0 and event.replayed == 2

    def test_mixed_precision_recovery(self):
        """Crash recovery under mixed precision restores the loss scale
        and its good-step counter bit-exactly."""
        batches = make_batches()
        scaler_kw = dict(init_scale=64, dynamic=True, growth_interval=3)
        ref = make_trainer(precision="mixed",
                           loss_scaler=LossScaler(**scaler_kw))
        ref_losses = [ref.train_batch(*batches.batch(i)).loss
                      for i in range(6)]

        plan = FaultPlan.of(Fault(kind="crash", rank=0, step=4, tick=2))
        resilient = ResilientTrainer(
            make_trainer(precision="mixed",
                         loss_scaler=LossScaler(**scaler_kw)),
            plan, detect_timeout=8)
        losses = [resilient.train_batch(*batches.batch(i)).loss
                  for i in range(6)]

        assert resilient.total_recoveries == 1
        assert losses == ref_losses
        assert resilient.trainer.scaler.scale == ref.scaler.scale
        assert resilient.trainer.scaler.good_steps == ref.scaler.good_steps

    def test_repeated_failures_give_up(self):
        """A batch that fails on every attempt exhausts the recovery
        budget with a clear error instead of looping forever."""
        batches = make_batches()
        resilient = ResilientTrainer(make_trainer(), FaultPlan.of(),
                                     max_recoveries_per_batch=2)

        def always_dies(x, y):
            raise RankFailure("injected", dead=[1], detected_at=7)

        resilient.trainer.train_batch = always_dies
        with pytest.raises(RuntimeError, match="giving up"):
            resilient.train_batch(*batches.batch(0))
        assert resilient.total_recoveries == 2

    def test_fault_spans_appear_in_tracer(self):
        """Injected faults, snapshots, and recoveries all emit ObsSpans."""
        tracer = RuntimeTracer()
        trainer = make_trainer(tracer=tracer)
        plan = FaultPlan.of(Fault(kind="crash", rank=1, step=1, tick=2))
        resilient = ResilientTrainer(trainer, plan, detect_timeout=8)
        batches = make_batches()
        for i in range(3):
            resilient.train_batch(*batches.batch(i))

        cats = {s.category for s in tracer.spans}
        assert {"fault", "recovery", "checkpoint"} <= cats
        assert all(c in CATEGORIES for c in cats)
        crash = [s for s in tracer.spans if s.name.startswith("crash-rank")]
        assert crash and crash[0].rank == 1

    def test_snapshot_interval_validation(self):
        with pytest.raises(ValueError):
            ResilientTrainer(make_trainer(), FaultPlan.of(),
                             snapshot_interval=0)


# -- the performance substrate ------------------------------------------------

class TestResilienceSim:
    BASE = dict(step_time_s=30.0, checkpoint_write_s=12.0, restart_s=60.0,
                mtbf_s=9375.0, interval_steps=10, total_steps=3000)

    def test_young_daly(self):
        assert young_daly_interval_s(10000, 50) == \
            pytest.approx((2 * 50 * 10000) ** 0.5)

    def test_run_is_deterministic(self):
        a = simulate_resilient_run(FailureModel(**self.BASE, seed=3))
        b = simulate_resilient_run(FailureModel(**self.BASE, seed=3))
        assert a == b
        c = simulate_resilient_run(FailureModel(**self.BASE, seed=4))
        assert a.total_time_s != c.total_time_s

    def test_no_failures_means_checkpoint_overhead_only(self):
        p = FailureModel(**{**self.BASE, "mtbf_s": 1e12,
                            "total_steps": 100})
        st = simulate_resilient_run(p)
        assert st.n_failures == 0
        assert st.n_checkpoints == 10
        assert st.total_time_s == pytest.approx(
            st.useful_time_s + st.checkpoint_time_s)

    def test_failures_cost_rework_and_restart(self):
        st = simulate_resilient_run(FailureModel(**self.BASE, seed=0))
        assert st.n_failures > 0
        assert st.lost_work_s > 0 and st.restart_time_s > 0
        assert st.total_time_s == pytest.approx(
            st.useful_time_s + st.checkpoint_time_s + st.lost_work_s
            + st.restart_time_s)
        assert 0 < st.efficiency < 1

    def test_spans_cover_the_lifecycle(self):
        spans = []
        simulate_resilient_run(FailureModel(**{**self.BASE,
                                               "total_steps": 300,
                                               "mtbf_s": 1500.0},
                                            seed=0), spans=spans)
        cats = {s.category for s in spans}
        assert {"compute", "checkpoint", "fault", "recovery"} <= cats

    def test_optimal_interval_matches_young_daly(self):
        """The acceptance test on the DES side: the fitted optimum of the
        MTBF x interval sweep lands within 20% of sqrt(2 C M)."""
        base = FailureModel(step_time_s=30.0, checkpoint_write_s=12.0,
                            restart_s=60.0, mtbf_s=9375.0,
                            interval_steps=10, total_steps=15000)
        yd = young_daly_interval_s(base.mtbf_s, base.checkpoint_write_s)
        steps = yd / base.step_time_s
        intervals = sorted({max(1, round(steps * f))
                            for f in (0.25, 0.5, 0.8, 1.0, 1.4, 2.0, 3.0)})
        rows = sweep_intervals(base, intervals, seeds=[0, 1, 2])
        fitted = fit_optimal_interval(rows)
        assert abs(fitted / yd - 1.0) <= 0.20

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FailureModel(step_time_s=0, checkpoint_write_s=1, restart_s=1,
                         mtbf_s=1, interval_steps=1, total_steps=1)
        with pytest.raises(ValueError):
            FailureModel(step_time_s=1, checkpoint_write_s=1, restart_s=1,
                         mtbf_s=1, interval_steps=0, total_steps=1)
        with pytest.raises(ValueError):
            fit_optimal_interval([{"interval_s": 1.0, "overhead": 0.1}])


class TestResilienceExperiment:
    def test_report_claims_hold(self):
        """The paper-scale sweep: optimal interval within 20% of Young/Daly
        at 48 and 384 GPUs, and shorter intervals at larger scale."""
        from repro.experiments import resilience_claims, resilience_rows
        rows = resilience_rows(models=("12B", "100B"), seeds=(0, 1))
        claims = resilience_claims(rows)
        assert claims["all_within_tolerance"], claims
        assert claims["interval_shrinks_with_scale"]
        for row in rows:
            assert row["gpus"] in (48, 384)
            assert 0.5 < row["optimum_ratio"] < 2.0
            assert row["best_measured_efficiency"] > 0.9

    def test_report_is_json_serializable(self):
        from repro.experiments import resilience_report
        report = resilience_report(models=("12B",), seeds=(0,),
                                   total_steps=4000)
        text = json.dumps(report, default=float)
        assert "mtbf_x_checkpoint_interval" in text
