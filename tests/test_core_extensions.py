"""Tests for the DES extensions: compute jitter, full-grid simulation,
baseline backend swap, and the extra ablation experiments."""

import pytest

from repro.baselines import ThreeDConfig, simulate_baseline_batch
from repro.core import AxoNNConfig, WEAK_SCALING_MODELS, simulate_batch
from repro.core.phases import jitter_factor
from repro.experiments import full_grid_validation, scheduling_jitter_ablation

SPEC = WEAK_SCALING_MODELS["12B"]


def cfg(**kw):
    base = dict(spec=SPEC, num_gpus=48, g_inter=6, g_data=8,
                microbatch_size=8, batch_size=384, memopt=True)
    base.update(kw)
    return AxoNNConfig(**base)


class TestJitterFactor:
    def test_zero_sigma_is_identity(self):
        assert jitter_factor(0.0, 0, 1, 2, 0) == 1.0

    def test_deterministic_per_key(self):
        a = jitter_factor(0.2, 7, 1, 2, 0)
        b = jitter_factor(0.2, 7, 1, 2, 0)
        assert a == b

    def test_different_keys_differ(self):
        a = jitter_factor(0.2, 7, 1, 2, 0)
        b = jitter_factor(0.2, 7, 1, 3, 0)
        assert a != b

    def test_positive(self):
        for mb in range(20):
            assert jitter_factor(0.5, 0, 0, mb, 1) > 0


class TestJitteredSimulation:
    def test_jitter_changes_pipeline_time(self):
        clean = simulate_batch(cfg())
        noisy = simulate_batch(cfg(compute_jitter=0.3))
        assert noisy.pipeline_s != clean.pipeline_s

    def test_jitter_deterministic_per_seed(self):
        a = simulate_batch(cfg(compute_jitter=0.3, jitter_seed=1))
        b = simulate_batch(cfg(compute_jitter=0.3, jitter_seed=1))
        c = simulate_batch(cfg(compute_jitter=0.3, jitter_seed=2))
        assert a.pipeline_s == b.pipeline_s
        assert a.pipeline_s != c.pipeline_s

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            cfg(compute_jitter=-0.1)

    def test_baseline_jitter(self):
        base = ThreeDConfig(spec=SPEC, num_gpus=48, g_intra=1, g_inter=6,
                            g_data=8, microbatch_size=8, batch_size=384,
                            framework="megatron")
        clean = simulate_baseline_batch(base)
        noisy = simulate_baseline_batch(base.with_(compute_jitter=0.3))
        assert noisy.pipeline_s != clean.pipeline_s

    def test_baseline_backend_validated(self):
        with pytest.raises(ValueError, match="backend"):
            ThreeDConfig(spec=SPEC, num_gpus=48, g_intra=1, g_inter=6,
                         g_data=8, microbatch_size=8, batch_size=384,
                         framework="megatron", backend_p2p="gloo")

    def test_baseline_mpi_backend_faster_than_nccl(self):
        base = ThreeDConfig(spec=SPEC, num_gpus=48, g_intra=1, g_inter=6,
                            g_data=8, microbatch_size=8, batch_size=384,
                            framework="megatron")
        nccl = simulate_baseline_batch(base)
        mpi = simulate_baseline_batch(base.with_(backend_p2p="mpi"))
        assert mpi.pipeline_s < nccl.pipeline_s


class TestFullGrid:
    def test_symmetric_grid_matches_one_row(self):
        """Rows on disjoint nodes: the full-grid simulation must agree with
        the single-row fast path exactly."""
        c = cfg(g_inter=6, g_data=8)
        one = simulate_batch(c)
        full = simulate_batch(c, full_grid=True)
        assert full.pipeline_s == pytest.approx(one.pipeline_s, rel=1e-9)

    def test_straddling_grid_within_tolerance(self):
        """Rows straddling node boundaries share NICs; the gap must stay
        small (the symmetry assumption is sound)."""
        c = cfg(g_inter=8, g_data=6)
        one = simulate_batch(c)
        full = simulate_batch(c, full_grid=True)
        assert full.pipeline_s == pytest.approx(one.pipeline_s, rel=0.05)
        assert full.pipeline_s >= one.pipeline_s  # contention only adds

    def test_validation_experiment(self):
        rows = full_grid_validation(batch_size=384)
        assert all(r["relative_gap"] < 0.05 for r in rows)


class TestSchedulingAblation:
    def test_rows_and_sanity(self):
        rows = scheduling_jitter_ablation(sigmas=(0.0, 0.2),
                                          batch_size=384)
        assert len(rows) == 2
        for r in rows:
            # Same backend, same jitter: the two schedulers stay within a
            # modest band of one another (the honest finding).
            assert 0.85 < r["ratio"] < 1.2
