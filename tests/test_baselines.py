"""Tests for the Megatron-LM / DeepSpeed baseline models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    ThreeDConfig,
    baseline_stage_costs,
    bubble_fraction,
    check_baseline_memory,
    gpipe_schedule,
    max_inflight,
    one_f_one_b_schedule,
    simulate_baseline_batch,
)
from repro.cluster import Machine, summit
from repro.core import AxoNNConfig, WEAK_SCALING_MODELS, simulate_batch

SPEC = WEAK_SCALING_MODELS["12B"]


def ds_cfg(**kw):
    base = dict(spec=SPEC, num_gpus=48, g_intra=3, g_inter=2, g_data=8,
                microbatch_size=2, batch_size=768, framework="deepspeed")
    base.update(kw)
    return ThreeDConfig(**base)


def mg_cfg(**kw):
    base = dict(spec=SPEC, num_gpus=48, g_intra=3, g_inter=16, g_data=1,
                microbatch_size=8, batch_size=768, framework="megatron")
    base.update(kw)
    return ThreeDConfig(**base)


class TestSchedules:
    def test_1f1b_ops_complete(self):
        for stage in range(4):
            ops = one_f_one_b_schedule(stage, 4, 8)
            fwd = [mb for kind, mb in ops if kind == "F"]
            bwd = [mb for kind, mb in ops if kind == "B"]
            assert fwd == list(range(8))
            assert bwd == list(range(8))

    def test_1f1b_backward_never_precedes_forward(self):
        ops = one_f_one_b_schedule(1, 4, 8)
        seen_f = set()
        for kind, mb in ops:
            if kind == "F":
                seen_f.add(mb)
            else:
                assert mb in seen_f

    def test_1f1b_warmup_depth(self):
        # Stage 0 of 4 warms up with 3 forwards before its first backward.
        ops = one_f_one_b_schedule(0, 4, 8)
        first_b = next(i for i, (k, _) in enumerate(ops) if k == "B")
        assert first_b == 4  # 3 warmup F + 1 steady F

    def test_last_stage_alternates(self):
        ops = one_f_one_b_schedule(3, 4, 4)
        assert ops == [("F", 0), ("B", 0), ("F", 1), ("B", 1),
                       ("F", 2), ("B", 2), ("F", 3), ("B", 3)]

    def test_1f1b_inflight_bounded_by_depth(self):
        for stage in range(6):
            ops = one_f_one_b_schedule(stage, 6, 32)
            assert max_inflight(ops) <= 6 - stage

    def test_gpipe_inflight_grows_with_microbatches(self):
        ops = gpipe_schedule(0, 4, 32)
        assert max_inflight(ops) == 32

    def test_gpipe_ops_complete(self):
        ops = gpipe_schedule(2, 4, 5)
        assert len(ops) == 10

    def test_bubble_fraction(self):
        assert bubble_fraction(4, 4) == pytest.approx(3 / 7)
        assert bubble_fraction(1, 8) == 0.0
        # More microbatches amortize the bubble.
        assert bubble_fraction(8, 256) < bubble_fraction(8, 16)

    def test_schedule_bounds(self):
        with pytest.raises(ValueError):
            one_f_one_b_schedule(4, 4, 8)
        with pytest.raises(ValueError):
            one_f_one_b_schedule(0, 4, 0)
        with pytest.raises(ValueError):
            gpipe_schedule(-1, 4, 8)
        with pytest.raises(ValueError):
            bubble_fraction(0, 4)

    @given(stage=st.integers(0, 7), stages=st.integers(1, 8),
           m=st.integers(1, 40))
    @settings(max_examples=80, deadline=None)
    def test_1f1b_property_all_microbatches_once(self, stage, stages, m):
        if stage >= stages:
            return
        ops = one_f_one_b_schedule(stage, stages, m)
        assert sorted(mb for k, mb in ops if k == "F") == list(range(m))
        assert sorted(mb for k, mb in ops if k == "B") == list(range(m))


class TestConfig:
    def test_grid_product_checked(self):
        with pytest.raises(ValueError):
            ds_cfg(g_intra=4)

    def test_framework_checked(self):
        with pytest.raises(ValueError):
            ds_cfg(framework="horovod")

    def test_schedule_checked(self):
        with pytest.raises(ValueError):
            ds_cfg(schedule="wave")

    def test_hidden_divisibility(self):
        with pytest.raises(ValueError):
            ThreeDConfig(spec=SPEC, num_gpus=48, g_intra=5,
                         g_inter=2, g_data=1, microbatch_size=1,
                         batch_size=48)  # also wrong product; use hidden
        # hidden=4512 divisible by 3 -> fine
        assert ds_cfg().g_intra == 3


class TestStageCosts:
    def test_intra_sharding_divides_compute(self):
        m = Machine(spec=summit(8))
        sharded = baseline_stage_costs(ds_cfg(), m)
        unsharded = baseline_stage_costs(
            ds_cfg(g_intra=1, g_inter=2, g_data=24, batch_size=768), m)
        assert sharded[0].fwd_compute_flops == pytest.approx(
            unsharded[0].fwd_compute_flops / 3)

    def test_intra_collectives_charged(self):
        m = Machine(spec=summit(8))
        costs = baseline_stage_costs(ds_cfg(), m)
        assert costs[0].fwd_collective_s > 0
        assert costs[0].bwd_collective_s > costs[0].fwd_collective_s

    def test_no_collectives_without_intra(self):
        m = Machine(spec=summit(8))
        costs = baseline_stage_costs(
            ds_cfg(g_intra=1, g_inter=6, g_data=8), m)
        assert costs[0].fwd_collective_s == 0.0


class TestSimulation:
    def test_phases_positive(self):
        r = simulate_baseline_batch(ds_cfg())
        assert r.pipeline_s > 0
        assert r.allreduce_s > 0
        assert r.optimizer_s > 0

    def test_deterministic(self):
        assert simulate_baseline_batch(ds_cfg()).batch_time_s == \
            simulate_baseline_batch(ds_cfg()).batch_time_s

    def test_megatron_no_data_parallel_allreduce(self):
        r = simulate_baseline_batch(mg_cfg())
        assert r.allreduce_s == 0.0  # G_data = 1 (Table II)

    def test_gpipe_slower_or_equal_1f1b_pipeline(self):
        f1b = simulate_baseline_batch(ds_cfg())
        gp = simulate_baseline_batch(ds_cfg(schedule="gpipe"))
        assert gp.pipeline_s >= f1b.pipeline_s * 0.95

    def test_axonn_beats_both_baselines_12b(self):
        """The headline result at the 12 B scale: each framework with its
        Table II configuration at the paper's weak-scaling batch size.
        (At toy batch sizes AxoNN's deeper pipeline bubble genuinely
        dominates, so the paper's batch is required for the crossover.)"""
        batch = 16384
        ax = simulate_batch(AxoNNConfig(
            spec=SPEC, num_gpus=48, g_inter=6, g_data=8, microbatch_size=8,
            batch_size=batch, memopt=True))
        ds = simulate_baseline_batch(ds_cfg(batch_size=batch))
        mg = simulate_baseline_batch(mg_cfg(batch_size=batch))
        assert ax.batch_time_s < ds.batch_time_s < mg.batch_time_s

    def test_deepspeed_memory_beats_megatron(self):
        """ZeRO-1 lets DeepSpeed fit configs Megatron cannot."""
        _, ds_fits = check_baseline_memory(ds_cfg())
        _, mg_fits = check_baseline_memory(
            mg_cfg(g_inter=2, g_data=8, microbatch_size=2))
        assert ds_fits and not mg_fits

    def test_gpipe_activation_memory_exceeds_1f1b(self):
        bd_1f1b, _ = check_baseline_memory(ds_cfg(batch_size=16384))
        bd_gpipe, _ = check_baseline_memory(
            ds_cfg(batch_size=16384, schedule="gpipe"))
        assert bd_gpipe.activations > bd_1f1b.activations

    def test_metrics(self):
        r = simulate_baseline_batch(ds_cfg())
        assert 0 < r.pct_of_peak < 100
        row = r.as_row()
        assert row["framework"] == "deepspeed"

    def test_machine_too_small(self):
        with pytest.raises(ValueError):
            simulate_baseline_batch(ds_cfg(), machine=Machine(spec=summit(1)))
