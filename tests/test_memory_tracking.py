"""Tests for emergent activation-memory tracking in the DES pipeline —
the dynamic cross-validation of the paper's Eq. (1)."""

import pytest

from repro.cluster import GridPlacement, Machine, OutOfMemoryError, summit
from repro.core import AxoNNConfig, MemoryModel, WEAK_SCALING_MODELS
from repro.core.phases import run_pipeline_phase
from repro.nn.checkpoint import optimal_checkpoint_interval

SPEC = WEAK_SCALING_MODELS["12B"]


def run_tracked(cfg, machine=None):
    machine = machine or Machine(spec=summit(max(1, cfg.num_gpus // 6)))
    placement = GridPlacement(machine.spec, cfg.g_inter, cfg.g_data,
                              policy=cfg.placement_policy)
    machine.env.process(run_pipeline_phase(machine, cfg, placement,
                                           track_memory=True))
    machine.run()
    return machine


def cfg(**kw):
    base = dict(spec=SPEC, num_gpus=48, g_inter=6, g_data=8,
                microbatch_size=1, batch_size=512, memopt=True)
    base.update(kw)
    return AxoNNConfig(**base)


class TestEmergentActivationMemory:
    def test_peak_matches_eq1_prediction(self):
        """The emergent per-GPU activation peak must land within the
        analytic Eq. (1) budget (which includes the full pipeline_limit
        in-flight term the schedule may not always reach)."""
        c = cfg()
        machine = run_tracked(c)
        mm = MemoryModel(SPEC)
        predicted = mm.activation_bytes(c.g_inter, c.microbatch_size)
        peaks = [machine.gpu(g).memory.peak for g in range(c.g_inter)]
        assert max(peaks) <= predicted * 1.05
        # The schedule genuinely keeps several microbatches in flight, so
        # the peak is a substantial fraction of the budget.
        assert max(peaks) >= 0.3 * predicted

    def test_all_activation_memory_freed_at_end(self):
        machine = run_tracked(cfg())
        for g in range(6):
            assert machine.gpu(g).memory.used == 0

    def test_peak_scales_with_microbatch_size(self):
        m1 = run_tracked(cfg(microbatch_size=1))
        m2 = run_tracked(cfg(microbatch_size=4, batch_size=512))
        p1 = max(m1.gpu(g).memory.peak for g in range(6))
        p2 = max(m2.gpu(g).memory.peak for g in range(6))
        assert p2 == pytest.approx(4 * p1, rel=0.1)

    def test_pipeline_limit_bounds_inflight_memory(self):
        """pipeline_limit=1 holds at most one microbatch's checkpoints plus
        the recompute workspace."""
        c = cfg(pipeline_limit=1)
        machine = run_tracked(c)
        layers = SPEC.layers_per_stage(6)
        ac = optimal_checkpoint_interval(SPEC.n_layer, layers)
        unit = SPEC.layer_activation_bytes(1)
        bound = (layers // ac) * unit + (1 + ac) * unit
        for g in range(6):
            assert machine.gpu(g).memory.peak <= bound + 1

    def test_oom_raised_mid_flight(self):
        """A microbatch size far beyond DRAM must OOM during execution."""
        c = cfg(microbatch_size=256, batch_size=4096)
        with pytest.raises(OutOfMemoryError):
            run_tracked(c)

    def test_untracked_run_allocates_nothing(self):
        c = cfg()
        machine = Machine(spec=summit(8))
        placement = GridPlacement(machine.spec, c.g_inter, c.g_data)
        machine.env.process(run_pipeline_phase(machine, c, placement))
        machine.run()
        assert all(machine.gpu(g).memory.peak == 0 for g in range(6))
