"""Tests for KV-cached incremental decoding: repro.nn.transformer caches
and the cached `generate` path (token-identical to full recompute)."""

import numpy as np
import pytest

from repro.nn import (GPT, GPTConfig, KVCache, LayerKVCache, generate,
                      kv_cache_bytes, no_grad, sample_token)

CFG = GPTConfig(vocab_size=23, seq_len=16, n_layer=3, n_head=2, hidden=8)


class TestLayerKVCache:
    def test_extend_returns_growing_views(self):
        cache = LayerKVCache(CFG, batch_size=1)
        hd = CFG.hidden // CFG.n_head
        k1 = np.ones((1, CFG.n_head, 3, hd), dtype=np.float32)
        ka, va = cache.extend(k1, 2 * k1)
        assert ka.shape == (1, CFG.n_head, 3, hd)
        assert cache.length == 3
        k2 = np.full((1, CFG.n_head, 1, hd), 5.0, dtype=np.float32)
        kb, vb = cache.extend(k2, k2)
        assert kb.shape[2] == 4 and cache.length == 4
        assert np.all(kb[:, :, :3] == 1.0) and np.all(kb[:, :, 3:] == 5.0)
        assert np.all(vb[:, :, :3] == 2.0)

    def test_capacity_overflow_raises(self):
        cache = LayerKVCache(CFG, batch_size=1)
        hd = CFG.hidden // CFG.n_head
        big = np.zeros((1, CFG.n_head, CFG.seq_len + 1, hd),
                       dtype=np.float32)
        with pytest.raises(ValueError):
            cache.extend(big, big)

    def test_batch_mismatch_raises(self):
        cache = LayerKVCache(CFG, batch_size=1)
        hd = CFG.hidden // CFG.n_head
        k = np.zeros((2, CFG.n_head, 1, hd), dtype=np.float32)
        with pytest.raises(ValueError):
            cache.extend(k, k)

    def test_kv_cache_bytes_accounting(self):
        cache = KVCache(CFG, batch_size=2)
        assert len(cache.blocks) == CFG.n_layer
        assert cache.nbytes == kv_cache_bytes(CFG, batch_size=2)
        # 2 (K and V) * layers * seq * hidden * 4 bytes * batch
        assert kv_cache_bytes(CFG, batch_size=2) == \
            2 * CFG.n_layer * CFG.seq_len * CFG.hidden * 4 * 2


class TestCachedForward:
    def test_incremental_forward_matches_full(self):
        model = GPT(CFG)
        model.eval()
        ids = np.array([[3, 1, 4, 1, 5, 9, 2, 6]])
        full, _ = model(ids)
        cache = KVCache(CFG, batch_size=1)
        with no_grad():
            out_prefill, _ = model(ids[:, :5], cache=cache)
            out_last, _ = model(ids[:, 5:], cache=cache)
        assert cache.length == 8
        np.testing.assert_allclose(out_last.data, full.data[:, 5:],
                                   rtol=2e-5, atol=2e-6)
        np.testing.assert_allclose(out_prefill.data, full.data[:, :5],
                                   rtol=2e-5, atol=2e-6)

    def test_cache_with_targets_rejected(self):
        model = GPT(CFG)
        ids = np.array([[1, 2, 3]])
        with pytest.raises(ValueError, match="cache"):
            model(ids, targets=ids, cache=KVCache(CFG, 1))

    def test_cache_under_grad_rejected(self):
        model = GPT(CFG)
        ids = np.array([[1, 2, 3]])
        with pytest.raises(RuntimeError, match="no_grad|inference"):
            model(ids, cache=KVCache(CFG, 1))

    def test_position_offset_out_of_range(self):
        model = GPT(CFG)
        model.eval()
        cache = KVCache(CFG, batch_size=1)
        ids = np.zeros((1, CFG.seq_len), dtype=np.int64)
        with no_grad():
            model(ids, cache=cache)
            with pytest.raises(ValueError):
                model(np.array([[1]]), cache=cache)


class TestCachedGenerate:
    """use_cache=True must emit exactly the tokens of the full-recompute
    path — same logits stream, same RNG draws."""

    @pytest.mark.parametrize("kwargs", [
        dict(greedy=True),
        dict(temperature=0.8),
        dict(temperature=1.2, top_k=5),
    ])
    def test_token_identical_to_full_recompute(self, kwargs):
        model = GPT(CFG)
        prompt = np.array([2, 7, 1, 8])
        cached = generate(model, prompt, 10, use_cache=True,
                          rng=np.random.default_rng(42), **kwargs)
        full = generate(model, prompt, 10, use_cache=False,
                        rng=np.random.default_rng(42), **kwargs)
        assert np.array_equal(cached, full)

    def test_beyond_seq_len_falls_back_to_sliding_window(self):
        model = GPT(CFG)
        prompt = np.array([1, 2, 3])
        n_new = CFG.seq_len  # forces the sequence past the context window
        cached = generate(model, prompt, n_new, greedy=True,
                          use_cache=True)
        full = generate(model, prompt, n_new, greedy=True, use_cache=False)
        assert cached.size == prompt.size + n_new
        assert np.array_equal(cached, full)

    def test_restores_training_mode(self):
        model = GPT(CFG)
        model.train()
        generate(model, np.array([1]), 2, greedy=True)
        assert model.training


class TestSampleToken:
    def test_greedy_is_argmax(self):
        logits = np.array([0.1, 3.0, -1.0])
        assert sample_token(logits, greedy=True) == 1

    def test_sampling_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            sample_token(np.array([0.0, 1.0]))

    def test_top_k_restricts_support(self):
        rng = np.random.default_rng(0)
        logits = np.array([10.0, 9.0, -50.0, -60.0])
        draws = {sample_token(logits, top_k=2, rng=rng)
                 for _ in range(50)}
        assert draws <= {0, 1}

    def test_seeded_draws_reproducible(self):
        logits = np.linspace(-1, 1, 11)
        a = [sample_token(logits, rng=np.random.default_rng(7))
             for _ in range(3)]
        b = [sample_token(logits, rng=np.random.default_rng(7))
             for _ in range(3)]
        assert a == b
