"""Tests for calibration, fabric, GPUs, placement and the assembled Machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    MB,
    GridPlacement,
    Machine,
    default_calibration,
    summit,
    validate_calibration,
)
from repro.sim import Interrupt


class TestCalibration:
    def test_default_is_valid(self):
        validate_calibration(default_calibration())

    def test_fig3_mpi_beats_nccl_intra_node_in_region_of_interest(self):
        cal = default_calibration()
        for nbytes in [1 * MB, 8 * MB, 50 * MB]:
            assert cal.mpi.p2p_time(nbytes, True) < cal.nccl.p2p_time(nbytes, True)

    def test_fig3_inter_node_nearly_identical(self):
        cal = default_calibration()
        for nbytes in [1 * MB, 16 * MB]:
            ratio = (cal.mpi.p2p_time(nbytes, False)
                     / cal.nccl.p2p_time(nbytes, False))
            assert 0.5 < ratio < 2.0

    def test_fig4_nccl_collectives_beat_mpi(self):
        cal = default_calibration()
        for nbytes in [4 * MB, 256 * MB]:
            assert (cal.nccl.allreduce_time(nbytes, 12, False)
                    < cal.mpi.allreduce_time(nbytes, 12, False))

    def test_allreduce_single_rank_free(self):
        cal = default_calibration()
        assert cal.nccl.allreduce_time(1 * MB, 1, True) == 0.0

    def test_allreduce_monotone_in_bytes(self):
        cal = default_calibration()
        times = [cal.nccl.allreduce_time(b, 8, False)
                 for b in [1 * MB, 2 * MB, 4 * MB]]
        assert times == sorted(times)

    def test_efficiency_monotone_in_work(self):
        cm = default_calibration().compute
        effs = [cm.efficiency(w) for w in [1e9, 1e10, 1e11, 1e12, 1e13]]
        assert effs == sorted(effs)
        assert all(0 < e <= cm.eff_max for e in effs)

    def test_backend_lookup(self):
        cal = default_calibration()
        assert cal.backend("mpi").name == "mpi"
        assert cal.backend("nccl").name == "nccl"
        with pytest.raises(ValueError):
            cal.backend("gloo")

    def test_validation_rejects_inverted_fig3(self):
        import dataclasses
        cal = default_calibration()
        bad_mpi = dataclasses.replace(cal.mpi, p2p_bw_intra=1e9,
                                      p2p_alpha_intra=1e-3)
        bad = dataclasses.replace(cal, mpi=bad_mpi)
        with pytest.raises(ValueError, match="Fig. 3"):
            validate_calibration(bad)


class TestFabric:
    def _machine(self, nodes=2):
        return Machine(spec=summit(nodes), trace=True)

    def test_intra_node_faster_than_inter_node(self):
        m = self._machine()
        cal = m.cal.mpi
        t_intra = m.fabric.transfer_time(0, 1, 16 * MB, cal)
        t_inter = m.fabric.transfer_time(0, 6, 16 * MB, cal)
        assert t_intra < t_inter

    def test_transfer_to_self_rejected(self):
        m = self._machine()
        with pytest.raises(ValueError):
            m.fabric.transfer_time(3, 3, 1, m.cal.mpi)

    def test_transfer_process_takes_wire_time(self):
        m = self._machine()
        model = m.cal.mpi
        expected = model.p2p_time(16 * MB, True)
        m.env.process(m.fabric.transfer(0, 1, 16 * MB, model))
        m.run()
        assert m.now == pytest.approx(expected)

    def test_transfers_sharing_a_port_serialize(self):
        m = self._machine()
        model = m.cal.mpi
        one = model.p2p_time(16 * MB, True)
        # both transfers end at GPU 2: must serialize on gpu2's port
        m.env.process(m.fabric.transfer(0, 2, 16 * MB, model))
        m.env.process(m.fabric.transfer(1, 2, 16 * MB, model))
        m.run()
        assert m.now == pytest.approx(2 * one)

    def test_disjoint_transfers_run_concurrently(self):
        m = self._machine()
        model = m.cal.mpi
        one = model.p2p_time(16 * MB, True)
        m.env.process(m.fabric.transfer(0, 1, 16 * MB, model))
        m.env.process(m.fabric.transfer(2, 3, 16 * MB, model))
        m.run()
        assert m.now == pytest.approx(one)

    def test_inter_node_transfers_serialize_on_nic(self):
        m = self._machine()
        model = m.cal.mpi
        one = model.p2p_time(8 * MB, False)
        # 0->6 and 1->7 both cross the node0/node1 NIC pair
        m.env.process(m.fabric.transfer(0, 6, 8 * MB, model))
        m.env.process(m.fabric.transfer(1, 7, 8 * MB, model))
        m.run()
        assert m.now == pytest.approx(2 * one)

    def test_allreduce_process_matches_model(self):
        m = self._machine()
        model = m.cal.nccl
        ranks = list(range(12))
        expected = model.allreduce_time(32 * MB, 12, False)
        m.env.process(m.fabric.allreduce(ranks, 32 * MB, model))
        m.run()
        assert m.now == pytest.approx(expected)

    def test_allreduce_single_rank_is_noop(self):
        m = self._machine()
        m.env.process(m.fabric.allreduce([3], 32 * MB, m.cal.nccl))
        m.run()
        assert m.now == 0.0

    def _all_resources(self, m):
        return (m.fabric.ports_out + m.fabric.ports_in
                + m.fabric.nics_out + m.fabric.nics_in)

    def test_interrupted_transfer_releases_everything(self):
        # Regression: a transfer cancelled while queueing for its *second*
        # resource must release the first grant and cancel the pending
        # request, leaving the fabric exactly as it found it.
        m = self._machine()
        model = m.cal.mpi
        m.env.process(m.fabric.transfer(2, 1, 16 * MB, model))  # holds gpu1.in

        def doomed(env):
            try:
                yield from m.fabric.transfer(0, 1, 16 * MB, model)
            except Interrupt:
                pass

        victim = m.env.process(doomed(m.env))

        def killer(env):
            yield env.timeout(1e-9)
            victim.interrupt("cancelled")

        m.env.process(killer(m.env))
        m.run()
        for res in self._all_resources(m):
            assert res.count == 0, res.name
            assert res.queue_len == 0, res.name

    def test_interrupted_allreduce_releases_everything(self):
        m = self._machine()
        # Inter-node transfer holds node0's egress NIC; the collective
        # queues behind it and is then cancelled.
        m.env.process(m.fabric.transfer(1, 7, 8 * MB, m.cal.mpi))

        def doomed(env):
            try:
                yield from m.fabric.allreduce([0, 6], 32 * MB, m.cal.nccl)
            except Interrupt:
                pass

        victim = m.env.process(doomed(m.env))

        def killer(env):
            yield env.timeout(1e-9)
            victim.interrupt("cancelled")

        m.env.process(killer(m.env))
        m.run()
        for res in self._all_resources(m):
            assert res.count == 0, res.name
            assert res.queue_len == 0, res.name

    def test_trace_records_transfers(self):
        m = self._machine()
        m.env.process(m.fabric.transfer(0, 1, 4 * MB, m.cal.mpi, label="act"))
        m.run()
        spans = m.tracer.by_category("p2p")
        assert len(spans) == 1
        assert spans[0].with_meta()["bytes"] == 4 * MB


class TestSimGPU:
    def test_compute_time_uses_efficiency_model(self):
        m = Machine(spec=summit(1))
        gpu = m.gpu(0)
        flops = 1e12
        eff = m.cal.compute.efficiency(flops)
        expected = flops / (125e12 * eff) + m.cal.kernel_launch_overhead
        m.env.process(gpu.compute(flops))
        m.run()
        assert m.now == pytest.approx(expected)

    def test_kernels_serialize_on_stream(self):
        m = Machine(spec=summit(1))
        gpu = m.gpu(0)
        m.env.process(gpu.compute(1e12))
        m.env.process(gpu.compute(1e12))
        single = 1e12 / (125e12 * m.cal.compute.efficiency(1e12)) \
            + m.cal.kernel_launch_overhead
        m.run()
        assert m.now == pytest.approx(2 * single)

    def test_aux_stream_overlaps_compute_stream(self):
        m = Machine(spec=summit(1))
        gpu = m.gpu(0)
        m.env.process(gpu.busy(1.0, stream=gpu.compute_stream))
        m.env.process(gpu.busy(1.0, stream=gpu.aux_stream))
        m.run()
        assert m.now == pytest.approx(1.0)

    def test_negative_busy_rejected(self):
        m = Machine(spec=summit(1))
        gen = m.gpu(0).busy(-1.0)
        with pytest.raises(ValueError):
            m.env.process(gen)
            m.run()

    def test_dma_time(self):
        m = Machine(spec=summit(1))
        gpu = m.gpu(0)
        nbytes = 64 * MB
        expected = gpu.dma_time(nbytes)
        m.env.process(gpu.dma(nbytes, "h2d"))
        m.run()
        assert m.now == pytest.approx(expected)

    def test_dma_direction_validated(self):
        m = Machine(spec=summit(1))
        gen = m.gpu(0).dma(1, "sideways")
        with pytest.raises(ValueError):
            m.env.process(gen)
            m.run()

    def test_node_dma_slots_limit_concurrency(self):
        m = Machine(spec=summit(1))
        # 5 slots per node: six concurrent DMAs, the sixth must queue.
        nbytes = 100 * MB
        one = m.gpu(0).dma_time(nbytes)
        for g in range(6):
            m.env.process(m.gpu(g).dma(nbytes))
        m.run()
        assert m.now == pytest.approx(2 * one, rel=0.01)

    def test_device_memory_pool_capacity(self):
        m = Machine(spec=summit(1))
        assert m.gpu(0).memory.capacity == 16 * 1024 ** 3


class TestPlacement:
    def test_pipeline_contiguous_round_trip(self):
        pl = GridPlacement(summit(2), g_inter=6, g_data=2)
        for i in range(6):
            for j in range(2):
                assert pl.coord_of(pl.gpu_of(i, j)) == (i, j)

    def test_data_contiguous_round_trip(self):
        pl = GridPlacement(summit(2), g_inter=4, g_data=3,
                           policy="data-contiguous")
        for i in range(4):
            for j in range(3):
                assert pl.coord_of(pl.gpu_of(i, j)) == (i, j)

    def test_pipeline_contiguous_keeps_stages_on_node(self):
        pl = GridPlacement(summit(2), g_inter=6, g_data=2)
        assert pl.pipeline_edge_locality(0) == {"intra": 5, "inter": 0}

    def test_data_contiguous_keeps_group_on_node(self):
        pl = GridPlacement(summit(2), g_inter=2, g_data=6,
                           policy="data-contiguous")
        assert pl.data_group_nodes(0) == 1

    def test_grid_too_big_rejected(self):
        with pytest.raises(ValueError):
            GridPlacement(summit(1), g_inter=4, g_data=2)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            GridPlacement(summit(2), 2, 2, policy="random")

    def test_groups_partition_the_grid(self):
        pl = GridPlacement(summit(8), g_inter=6, g_data=8)
        all_gpus = sorted(g for j in range(8) for g in pl.pipeline(j))
        assert all_gpus == list(range(48))
        all_gpus = sorted(g for i in range(6) for g in pl.data_group(i))
        assert all_gpus == list(range(48))

    @given(
        g_inter=st.integers(1, 12),
        g_data=st.integers(1, 8),
        policy=st.sampled_from(["pipeline-contiguous", "data-contiguous"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_placement_is_a_bijection(self, g_inter, g_data, policy):
        spec = summit(16)
        pl = GridPlacement(spec, g_inter=g_inter, g_data=g_data, policy=policy)
        seen = set()
        for i in range(g_inter):
            for j in range(g_data):
                g = pl.gpu_of(i, j)
                assert g not in seen
                seen.add(g)
                assert pl.coord_of(g) == (i, j)


class TestMachine:
    def test_machine_builds_summit(self):
        m = Machine()
        assert len(m.gpus) == 48
        assert len(m.host_memory) == 8

    def test_host_mem_of(self):
        m = Machine(spec=summit(2))
        assert m.host_mem_of(0) is m.host_memory[0]
        assert m.host_mem_of(7) is m.host_memory[1]

    def test_reset_memory(self):
        m = Machine(spec=summit(1))
        m.gpu(0).memory.allocate("x", 100)
        m.host_memory[0].allocate("y", 100)
        m.reset_memory()
        assert m.gpu(0).memory.used == 0
        assert m.host_memory[0].used == 0
