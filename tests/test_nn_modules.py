"""Tests for the module system and transformer components."""

import numpy as np
import pytest

from repro.nn import (
    GPT,
    Block,
    Dropout,
    Embedding,
    GPTConfig,
    GPTEmbedding,
    GPTHead,
    LayerNorm,
    Linear,
    Module,
    Sequential,
    Tensor,
    build_layer,
    num_layer_slots,
)

CFG = GPTConfig(vocab_size=17, seq_len=8, n_layer=2, n_head=2, hidden=12,
                dropout=0.0, init_seed=7)


class TestModuleSystem:
    def test_parameter_registration(self):
        lin = Linear(3, 4)
        names = dict(lin.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert names["weight"].shape == (4, 3)

    def test_nested_registration(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 3)
                self.b = Linear(3, 2)

        net = Net()
        names = [n for n, _ in net.named_parameters()]
        assert "a.weight" in names and "b.bias" in names
        assert len(net.parameters()) == 4

    def test_num_parameters(self):
        lin = Linear(3, 4)
        assert lin.num_parameters() == 3 * 4 + 4

    def test_linear_no_bias(self):
        lin = Linear(3, 4, bias=False)
        assert [n for n, _ in lin.named_parameters()] == ["weight"]

    def test_zero_grad(self):
        lin = Linear(2, 2)
        x = Tensor(np.ones((1, 2), dtype=np.float32))
        lin(x).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_train_eval_mode(self):
        net = Sequential(Linear(2, 2), Dropout(0.5))
        assert net.training
        net.eval()
        assert not net[1].training
        net.train()
        assert net[1].training

    def test_state_dict_round_trip(self):
        a = Linear(3, 4, rng=np.random.default_rng(1))
        b = Linear(3, 4, rng=np.random.default_rng(2))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self):
        a = Linear(3, 4)
        state = a.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            Linear(3, 4).load_state_dict(state)

    def test_state_dict_shape_checked(self):
        a = Linear(3, 4)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            Linear(3, 4).load_state_dict(state)

    def test_sequential_applies_in_order(self):
        lin1 = Linear(2, 3)
        lin2 = Linear(3, 1)
        net = Sequential(lin1, lin2)
        x = Tensor(np.ones((5, 2), dtype=np.float32))
        out = net(x)
        expected = lin2(lin1(x))
        np.testing.assert_allclose(out.data, expected.data)

    def test_layer_norm_module(self):
        ln = LayerNorm(6)
        x = Tensor(np.random.default_rng(0)
                   .standard_normal((2, 6)).astype(np.float32))
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(-1), 0.0, atol=1e-5)

    def test_embedding_module(self):
        emb = Embedding(10, 4)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_dropout_reseed_reproduces(self):
        d = Dropout(0.5, seed=3)
        x = Tensor(np.ones((100,), dtype=np.float32))
        a = d(x).data.copy()
        d.reseed(3)
        b = d(x).data.copy()
        np.testing.assert_array_equal(a, b)


class TestGPTConfig:
    def test_head_dim(self):
        assert CFG.head_dim == 6

    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            GPTConfig(vocab_size=10, seq_len=4, n_layer=1, n_head=5, hidden=12)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            GPTConfig(vocab_size=0, seq_len=4, n_layer=1, n_head=1, hidden=4)

    def test_layer_rng_deterministic(self):
        a = CFG.layer_rng(3).standard_normal(4)
        b = CFG.layer_rng(3).standard_normal(4)
        np.testing.assert_array_equal(a, b)


class TestTransformer:
    def test_forward_shapes(self):
        model = GPT(CFG)
        ids = np.random.default_rng(0).integers(0, CFG.vocab_size, (3, 8))
        logits, loss = model(ids, targets=ids)
        assert logits.shape == (3, 8, CFG.vocab_size)
        assert loss.size == 1

    def test_forward_without_targets(self):
        model = GPT(CFG)
        ids = np.zeros((1, 4), dtype=np.int64)
        logits, loss = model(ids)
        assert loss is None
        assert logits.shape == (1, 4, CFG.vocab_size)

    def test_shorter_sequence_than_max(self):
        model = GPT(CFG)
        ids = np.zeros((2, 5), dtype=np.int64)
        logits, _ = model(ids)
        assert logits.shape == (2, 5, CFG.vocab_size)

    def test_out_of_vocab_rejected(self):
        model = GPT(CFG)
        with pytest.raises(ValueError):
            model(np.full((1, 4), CFG.vocab_size, dtype=np.int64))

    def test_causality(self):
        """Changing a future token must not change earlier logits."""
        model = GPT(CFG).eval()
        rng = np.random.default_rng(0)
        ids = rng.integers(0, CFG.vocab_size, (1, 8))
        logits1, _ = model(ids)
        ids2 = ids.copy()
        ids2[0, -1] = (ids2[0, -1] + 1) % CFG.vocab_size
        logits2, _ = model(ids2)
        np.testing.assert_allclose(logits1.data[0, :-1], logits2.data[0, :-1],
                                   atol=1e-5)

    def test_gradients_reach_all_parameters(self):
        model = GPT(CFG)
        ids = np.random.default_rng(1).integers(0, CFG.vocab_size, (2, 8))
        _, loss = model(ids, targets=ids)
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_layer_sequence_matches_forward(self):
        model = GPT(CFG).eval()
        ids = np.random.default_rng(2).integers(0, CFG.vocab_size, (2, 8))
        x = ids
        for layer in model.layer_sequence():
            x = layer(x)
        logits, _ = model(ids)
        np.testing.assert_allclose(x.data, logits.data, atol=1e-6)

    def test_num_layer_slots(self):
        assert num_layer_slots(CFG) == CFG.n_layer + 2

    def test_build_layer_types(self):
        assert isinstance(build_layer(CFG, 0), GPTEmbedding)
        assert isinstance(build_layer(CFG, 1), Block)
        assert isinstance(build_layer(CFG, CFG.n_layer + 1), GPTHead)
        with pytest.raises(ValueError):
            build_layer(CFG, CFG.n_layer + 2)

    def test_build_layer_matches_full_model_weights(self):
        """The sharding-correctness keystone: independently built layers
        carry the exact weights of the serial model."""
        model = GPT(CFG)
        seq = model.layer_sequence()
        for slot in range(num_layer_slots(CFG)):
            solo = build_layer(CFG, slot)
            a = solo.state_dict()
            b = seq[slot].state_dict()
            assert set(a) == set(b)
            for k in a:
                np.testing.assert_array_equal(a[k], b[k], err_msg=f"{slot}:{k}")

    def test_param_count_formula(self):
        """Total params ~ 12 l h^2 + (V + s) h + small terms."""
        model = GPT(CFG)
        n = model.num_parameters()
        v, s, l, h = CFG.vocab_size, CFG.seq_len, CFG.n_layer, CFG.hidden
        approx = 12 * l * h * h + (2 * v + s) * h
        assert abs(n - approx) / n < 0.15

    def test_loss_is_near_uniform_at_init(self):
        """Untrained model's CE should be close to log(V)."""
        model = GPT(CFG)
        ids = np.random.default_rng(3).integers(0, CFG.vocab_size, (4, 8))
        _, loss = model(ids, targets=ids)
        assert abs(loss.item() - np.log(CFG.vocab_size)) < 0.5

    def test_deterministic_construction(self):
        a = GPT(CFG)
        b = GPT(CFG)
        for (n1, p1), (n2, p2) in zip(a.named_parameters(),
                                      b.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_dropout_config_respected(self):
        cfg = GPTConfig(vocab_size=17, seq_len=8, n_layer=1, n_head=2,
                        hidden=12, dropout=0.3)
        model = GPT(cfg)
        ids = np.zeros((1, 8), dtype=np.int64)
        out1, _ = model(ids)
        out2, _ = model(ids)
        assert not np.allclose(out1.data, out2.data)  # dropout active
        model.eval()
        out3, _ = model(ids)
        out4, _ = model(ids)
        np.testing.assert_array_equal(out3.data, out4.data)
