"""Tests for repro.sched — schedules as data (PR 9).

The IR validator must reject malformed DAGs before anything runs; the
compiler must reproduce the hardcoded flushing trainer bit-for-bit on
both backends; the new schedules (interleaved, ZB-H1) must train to the
same update and beat 1F1B's bubble; and every schedule the validator
accepts must be provable by the model checker (the hypothesis fuzz at
the bottom drives random perturbations through the full
validate -> compile -> check pipeline).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import TraceRecorder
from repro.analysis.model import check_model, scheduled_model
from repro.baselines import FlushingPipelineTrainer
from repro.baselines.schedules import bubble_fraction, max_inflight
from repro.nn import GPTConfig, LMBatches, SyntheticCorpus
from repro.sched import (
    FWD,
    SCHEDULE_NAMES,
    SEND_ACT,
    ScheduledPipelineTrainer,
    ScheduleError,
    build_schedule,
    critical_path,
    ir_bubble_fraction,
    peak_resident_activations,
    validate,
)
from repro.sched.ir import Task
from repro.sched.search import perturb, replay_winner, search_schedules

CFG = GPTConfig(vocab_size=19, seq_len=8, n_layer=4, n_head=2, hidden=12,
                dropout=0.0, init_seed=11)


def make_batches(batch_size=8, seed=0):
    corpus = SyntheticCorpus(CFG.vocab_size, 4000, seed=seed)
    return LMBatches(corpus, batch_size=batch_size, seq_len=CFG.seq_len)


def trace_tuples(recorder):
    return [(e.kind, e.rank, e.peer, e.tag, e.microbatch)
            for e in recorder.events]


class TestValidator:
    @pytest.mark.parametrize("name", SCHEDULE_NAMES)
    @pytest.mark.parametrize("n_stages,m", [(2, 2), (2, 4), (4, 4)])
    def test_shipped_builders_validate(self, name, n_stages, m):
        try:
            sched = build_schedule(name, n_stages, m)
        except ValueError:
            pytest.skip(f"{name} rejects {n_stages}x{m}")
        validate(sched)  # builders validate at build; re-assert idempotent

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_schedule("wave", 2, 2)

    def test_missing_dependency_rejected(self):
        sched = build_schedule("1f1b", 2, 2)
        deps = dict(sched.deps)
        deps[Task(FWD, 1, 0)] = frozenset()  # FWD needs its RECV_ACT
        bad = dataclasses.replace(sched, deps=deps)
        with pytest.raises(ScheduleError, match="missing required"):
            validate(bad)

    def test_cycle_rejected(self):
        sched = build_schedule("1f1b", 2, 2)
        deps = dict(sched.deps)
        # An extra (ordering-only) edge closing a loop: FWD[0,0] already
        # reaches BWD[0,0] through the dataflow, so this is a cycle.
        deps[Task(FWD, 0, 0)] = (deps.get(Task(FWD, 0, 0), frozenset())
                                 | {Task("BWD", 0, 0)})
        bad = dataclasses.replace(sched, deps=deps)
        with pytest.raises(ScheduleError, match="cycle"):
            validate(bad)

    def test_fifo_swap_rejected(self):
        # Rank 0 produces microbatch 1 before 0 while rank 1 still
        # consumes 0 then 1: acyclic, but the channel FIFO is violated.
        sched = build_schedule("1f1b", 2, 2)
        orders = [list(o) for o in sched.rank_order]
        assert orders[0][:4] == [Task(FWD, 0, 0), Task(SEND_ACT, 0, 0),
                                 Task(FWD, 0, 1), Task(SEND_ACT, 0, 1)]
        orders[0][0], orders[0][2] = orders[0][2], orders[0][0]
        orders[0][1], orders[0][3] = orders[0][3], orders[0][1]
        bad = dataclasses.replace(
            sched, rank_order=tuple(tuple(o) for o in orders))
        with pytest.raises(ScheduleError, match="FIFO mismatch"):
            validate(bad)

    def test_activation_overflow_rejected(self):
        # GPipe holds every microbatch's activation through the flush.
        sched = build_schedule("gpipe", 2, 4)
        bad = dataclasses.replace(sched, activation_limit=1)
        with pytest.raises(ScheduleError, match="in-flight"):
            validate(bad)

    def test_misplaced_task_rejected(self):
        sched = build_schedule("1f1b", 2, 2)
        orders = [list(o) for o in sched.rank_order]
        orders[0][0] = Task(FWD, 1, 0)  # stage 1 lives on rank 1
        bad = dataclasses.replace(
            sched, rank_order=tuple(tuple(o) for o in orders))
        with pytest.raises(ScheduleError):
            validate(bad)


class TestMetrics:
    @pytest.mark.parametrize("n_stages,m", [(2, 4), (3, 6), (4, 8)])
    def test_1f1b_bubble_matches_closed_form(self, n_stages, m):
        closed = (n_stages - 1) / (m + n_stages - 1)
        assert ir_bubble_fraction(n_stages, m, "1f1b") == \
            pytest.approx(closed)
        cp = critical_path(build_schedule("1f1b", n_stages, m))
        assert cp.bubble_fraction == pytest.approx(closed)

    def test_interleaved_and_zb_beat_1f1b_at_4x8(self):
        bar = ir_bubble_fraction(4, 8, "1f1b")
        assert ir_bubble_fraction(4, 8, "interleaved") < bar
        assert ir_bubble_fraction(4, 8, "zb-h1") < bar

    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            ir_bubble_fraction(0, 4)
        with pytest.raises(ValueError):
            ir_bubble_fraction(4, 0)

    def test_peak_resident_activations(self):
        # GPipe holds all m per rank; 1F1B caps rank r at S - r.
        assert peak_resident_activations(build_schedule("gpipe", 2, 4)) \
            == (4, 4)
        assert peak_resident_activations(build_schedule("1f1b", 4, 8)) \
            == (4, 3, 2, 1)


class TestBaselinesBridge:
    """Satellite: baselines.schedules delegates to the IR metrics."""

    def test_bubble_fraction_delegates_to_ir(self):
        assert bubble_fraction(4, 8) == ir_bubble_fraction(4, 8, "1f1b")
        assert bubble_fraction(2, 4, schedule="gpipe") == \
            ir_bubble_fraction(2, 4, "gpipe")
        with pytest.raises(ValueError):
            bubble_fraction(0, 4)

    def test_max_inflight_legacy_two_tuples(self):
        assert max_inflight([("F", 0), ("F", 1), ("B", 0), ("B", 1)]) == 2
        assert max_inflight([("F", 0), ("B", 0), ("F", 1), ("B", 1)]) == 1

    def test_max_inflight_per_stage_with_w_split(self):
        # B does not release the activation when a matching W exists;
        # only the deferred weight-gradient task does.
        ops = [("F", 0, 0), ("F", 0, 1), ("B", 0, 0), ("F", 0, 2),
               ("W", 0, 0), ("B", 0, 1), ("W", 0, 1), ("B", 0, 2),
               ("W", 0, 2)]
        assert max_inflight(ops) == 3

    def test_max_inflight_counts_stages_separately(self):
        # Two virtual stages on one rank: the peak is per stage, not the
        # raw F-minus-B running total across both.
        ops = [("F", 0, 0), ("F", 2, 0), ("B", 2, 0), ("B", 0, 0)]
        assert max_inflight(ops) == 1


class TestCompiledBitIdentity:
    @pytest.mark.parametrize("schedule", ["1f1b", "gpipe"])
    @pytest.mark.parametrize("g_inter,g_data,mbs", [(2, 1, 2), (4, 2, 1)])
    def test_matches_hardcoded_trainer(self, schedule, g_inter, g_data, mbs):
        """Compiled-IR 1F1B/GPipe replay the hardcoded trainer exactly:
        same losses, same weights, same communication trace."""
        batches = make_batches()
        rec_ref, rec_ir = TraceRecorder(), TraceRecorder()
        ref = FlushingPipelineTrainer(CFG, g_inter, g_data, mbs,
                                      schedule=schedule, recorder=rec_ref)
        comp = ScheduledPipelineTrainer(CFG, g_inter, g_data=g_data,
                                        microbatch_size=mbs,
                                        schedule=schedule, recorder=rec_ir)
        for i in range(3):
            x, y = batches.batch(i)
            assert comp.train_batch(x, y) == ref.train_batch(x, y)
        ref_state, ir_state = ref.gather_state(), comp.gather_state()
        assert ref_state.keys() == ir_state.keys()
        for k in ref_state:
            assert np.array_equal(ir_state[k], ref_state[k]), k
        assert len(rec_ref.events) > 0
        assert trace_tuples(rec_ir) == trace_tuples(rec_ref)

    def test_process_backend_bit_identical(self):
        batches = make_batches()
        coop = ScheduledPipelineTrainer(CFG, 2, microbatch_size=2,
                                        schedule="1f1b")
        proc = ScheduledPipelineTrainer(CFG, 2, microbatch_size=2,
                                        schedule="1f1b", backend="process")
        try:
            for i in range(2):
                x, y = batches.batch(i)
                assert proc.train_batch(x, y) == coop.train_batch(x, y)
            cs, ps = coop.gather_state(), proc.gather_state()
            for k in cs:
                assert np.array_equal(ps[k], cs[k]), k
        finally:
            proc.close()

    @pytest.mark.parametrize("name", ["axonn", "interleaved", "zb-h1"])
    def test_new_schedules_compute_the_same_update(self, name):
        """Every schedule only reorders work: losses must equal the
        flushing 1F1B baseline's exactly (finite by implication)."""
        batches = make_batches()
        ref = FlushingPipelineTrainer(CFG, 2, 1, 2, schedule="1f1b")
        cand = ScheduledPipelineTrainer(CFG, 2, microbatch_size=2,
                                        schedule=name)
        for i in range(2):
            x, y = batches.batch(i)
            loss = cand.train_batch(x, y)
            assert np.isfinite(loss)
            assert loss == ref.train_batch(x, y)

    def test_trainer_rejects_bad_configs(self):
        with pytest.raises(ValueError):
            ScheduledPipelineTrainer(CFG, 2, schedule="wave")
        with pytest.raises(ValueError):  # built for 4 stages, trainer has 2
            ScheduledPipelineTrainer(CFG, 2,
                                     schedule=build_schedule("1f1b", 4, 4))
        with pytest.raises(ValueError):  # 8 virtual stages > 4 layers
            ScheduledPipelineTrainer(CFG, 4, schedule="interleaved")
        wet = dataclasses.replace(CFG, dropout=0.1)
        with pytest.raises(ValueError):
            ScheduledPipelineTrainer(wet, 2, schedule="1f1b",
                                     backend="process")


class TestSearch:
    def test_perturb_is_always_valid(self):
        sched = build_schedule("1f1b", 2, 4)
        rng = np.random.default_rng(7)
        for k in range(5):
            cand = perturb(sched, rng, n_swaps=3, label=f"p{k}")
            assert cand.name == f"p{k}"
            validate(cand)  # must not raise

    def test_search_is_deterministic_and_ranked(self):
        a = search_schedules(2, 4, n_perturbations=2, sigma=0.1, seed=3)
        b = search_schedules(2, 4, n_perturbations=2, sigma=0.1, seed=3)
        assert [r.name for r in a] == [r.name for r in b]
        assert [r.sim.makespan for r in a] == [r.sim.makespan for r in b]
        assert all(x.key <= y.key for x, y in zip(a, a[1:]))

    def test_replay_accepts_the_winner(self):
        results = search_schedules(2, 4, n_perturbations=2, sigma=0.1,
                                   seed=0)
        report = replay_winner(results[0].schedule, n_batches=1)
        assert report["accepted"]
        assert report["losses"] == pytest.approx(
            report["reference_losses"], rel=2e-4)


class TestCheckerIntegration:
    @pytest.mark.parametrize("name", SCHEDULE_NAMES)
    @pytest.mark.parametrize("g_inter,g_data,m", [(2, 1, 2), (2, 2, 2),
                                                  (4, 1, 4)])
    def test_shipped_schedules_prove_clean(self, name, g_inter, g_data, m):
        try:
            model = scheduled_model(name, g_inter, g_data, m)
        except ValueError:
            pytest.skip(f"{name} rejects {g_inter}x{m}")
        result = check_model(model)
        assert result.ok, result

    def test_schedule_instances_accepted(self):
        sched = build_schedule("zb-h1", 2, 3)
        assert check_model(scheduled_model(sched, 2, 1, 3)).ok
        with pytest.raises(ValueError):  # grid mismatch
            scheduled_model(sched, 4, 1, 3)


class TestFuzzPerturbedSchedules:
    """Validator-accepted implies checker-proven (or an honest reject)."""

    @given(name=st.sampled_from(["1f1b", "gpipe", "zb-h1", "axonn"]),
           seed=st.integers(0, 10_000), n_swaps=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_valid_perturbation_is_deadlock_free(self, name, seed, n_swaps):
        sched = build_schedule(name, 2, 3)
        rng = np.random.default_rng(seed)
        cand = perturb(sched, rng, n_swaps=n_swaps)
        validate(cand)  # perturb() guarantees this; re-assert
        result = check_model(scheduled_model(cand, 2, 1, 3))
        assert result.ok, result

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_dropped_task_is_rejected(self, seed):
        # Every task in a 2-stage 1F1B is dataflow-required, so removing
        # any one must be caught statically, never at run time.
        sched = build_schedule("1f1b", 2, 3)
        rng = np.random.default_rng(seed)
        r = int(rng.integers(0, sched.n_stages))
        orders = [list(o) for o in sched.rank_order]
        del orders[r][int(rng.integers(0, len(orders[r])))]
        bad = dataclasses.replace(
            sched, rank_order=tuple(tuple(o) for o in orders))
        with pytest.raises(ScheduleError):
            validate(bad)
