"""Tests for repro.serve.sim (the DES serving twin) and the shared
repro.sim.poisson_process arrival utility."""

import numpy as np
import pytest

from repro.resilience import Fault, FaultPlan
from repro.serve import (ArrivalSpec, RequestSpec, ServingModel,
                         simulate_closed_loop, simulate_serving,
                         sweep_offered_load)
from repro.sim import Environment, poisson_process

#: Cheap hand-set cost model — tests must not depend on the V100 numbers.
MODEL = ServingModel(n_replicas=2, g_inter=4, stage_alpha_s=1e-3,
                     decode_s_per_item=5e-4, prefill_s_per_token=1e-4,
                     max_batch=8)
SPEC = RequestSpec(mean_prompt=8, mean_new_tokens=8, seed=0)


def run(rate, horizon=20.0, **kw):
    return simulate_serving(MODEL, ArrivalSpec(rate_per_s=rate, seed=1),
                            horizon, request_spec=SPEC, **kw)


class TestPoissonProcess:
    def _collect(self, mean, seed, horizon=50.0):
        env = Environment()
        times = []
        env.process(poisson_process(env, mean, seed, times.append),
                    name="arrivals")
        env.run(until=horizon)
        return times

    def test_seeded_and_deterministic(self):
        a = self._collect(0.5, seed=3)
        b = self._collect(0.5, seed=3)
        assert a == b and len(a) > 50
        assert a != self._collect(0.5, seed=4)

    def test_mean_rate_matches(self):
        times = self._collect(0.1, seed=0, horizon=200.0)
        assert len(times) == pytest.approx(2000, rel=0.1)

    def test_callable_mean_is_time_varying(self):
        # 10x rate in [0, 10), nearly off afterwards
        mean = lambda now: 0.01 if now < 10.0 else 100.0
        times = self._collect(mean, seed=0, horizon=60.0)
        assert sum(t < 10.0 for t in times) > 500
        assert sum(t >= 10.0 for t in times) < 5

    def test_alive_gate_stops_events(self):
        env = Environment()
        times = []
        env.process(poisson_process(env, 0.5, 0, times.append,
                                    alive=lambda: env.now < 10.0),
                    name="arrivals")
        env.run(until=100.0)
        assert times and max(times) < 11.0

    def test_nonpositive_mean_rejected(self):
        env = Environment()
        proc = env.process(poisson_process(env, 0.0, 0, lambda t: None),
                           name="bad")
        with pytest.raises(ValueError):
            env.run()


class TestServingModel:
    def test_stage_time_components(self):
        t = MODEL.stage_time_s(4, 16)
        assert t == pytest.approx(1e-3 + 4 * 5e-4 + 16 * 1e-4)

    def test_rooflines_positive_and_ordered(self):
        decode = MODEL.decode_roofline_tok_s()
        token = MODEL.token_roofline_tok_s(SPEC.mean_prompt,
                                           SPEC.mean_new_tokens)
        assert 0 < token < decode

    def test_max_active_defaults_to_full_pipeline(self):
        assert MODEL.effective_pipeline_limit == MODEL.g_inter
        assert MODEL.effective_max_active == \
            MODEL.max_batch * MODEL.g_inter

    def test_from_cluster_derivation(self):
        from repro.nn import GPTConfig
        cfg = GPTConfig(vocab_size=51200, seq_len=2048, n_layer=32,
                        n_head=32, hidden=2560)
        m = ServingModel.from_cluster(cfg)
        assert m.decode_s_per_item > 0 and m.prefill_s_per_token > 0
        # decode is memory-bound: far more expensive per token than one
        # prefill token riding a batched matmul
        assert m.decode_s_per_item > 10 * m.prefill_s_per_token

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingModel(n_replicas=0)
        with pytest.raises(ValueError):
            ServingModel(decode_s_per_item=0.0)


class TestOpenLoop:
    def test_deterministic_given_seeds(self):
        a, b = run(20.0), run(20.0)
        assert a.n_arrived == b.n_arrived
        assert a.n_completed == b.n_completed
        assert a.tokens_out == b.tokens_out
        assert a.ttft_s == b.ttft_s

    def test_throughput_saturates_near_roofline(self):
        roofline = MODEL.token_roofline_tok_s(SPEC.mean_prompt,
                                              SPEC.mean_new_tokens)
        light = run(0.3 * roofline / SPEC.mean_new_tokens)
        heavy = run(1.5 * roofline / SPEC.mean_new_tokens)
        # light load: delivered ~ offered; heavy load: saturates at the
        # bottleneck, between 70% of the roofline and the roofline itself
        assert light.throughput_tok_s < 0.5 * roofline
        assert 0.70 * roofline <= heavy.throughput_tok_s <= 1.02 * roofline

    def test_p99_ttft_diverges_past_saturation(self):
        roofline = MODEL.token_roofline_tok_s(SPEC.mean_prompt,
                                              SPEC.mean_new_tokens)
        light = run(0.3 * roofline / SPEC.mean_new_tokens)
        heavy = run(1.5 * roofline / SPEC.mean_new_tokens)
        assert heavy.ttft_percentile(99) > 5 * light.ttft_percentile(99)

    def test_backpressure_bounds_the_queue(self):
        roofline = MODEL.token_roofline_tok_s(SPEC.mean_prompt,
                                              SPEC.mean_new_tokens)
        heavy = run(2.0 * roofline / SPEC.mean_new_tokens)
        assert heavy.n_rejected > 0
        assert heavy.n_admitted == heavy.n_completed  # all admitted finish
        light = run(0.2 * roofline / SPEC.mean_new_tokens)
        assert light.n_rejected == 0

    def test_bursty_arrivals_preserve_mean_rate(self):
        horizon = 40.0
        const = simulate_serving(
            MODEL, ArrivalSpec(rate_per_s=10.0, seed=5), horizon,
            request_spec=SPEC)
        burst = simulate_serving(
            MODEL, ArrivalSpec(rate_per_s=10.0, seed=5, burst_factor=2.5,
                               burst_period_s=8.0, burst_fraction=0.25),
            horizon, request_spec=SPEC)
        expected = 10.0 * horizon
        assert const.n_arrived == pytest.approx(expected, rel=0.2)
        assert burst.n_arrived == pytest.approx(expected, rel=0.2)

    def test_spans_emitted_on_serve_stream(self):
        spans = []
        stats = run(10.0, spans=spans)
        assert stats.n_completed > 0
        names = {s.name for s in spans}
        assert "request" in names and "prefill" in names
        assert any(n.startswith("decode") for n in names)
        assert all(s.stream == "serve" for s in spans)

    def test_sweep_rows_shape(self):
        rows = sweep_offered_load(MODEL, [0.3, 1.2], horizon_s=10.0,
                                  request_spec=SPEC)
        assert [r["load_fraction"] for r in rows] == [0.3, 1.2]
        for row in rows:
            for key in ("offered_tok_s", "throughput_tok_s",
                        "roofline_tok_s", "ttft_p50_ms", "ttft_p99_ms",
                        "tpot_ms", "completed", "rejected"):
                assert key in row


class TestClosedLoop:
    def test_littles_law_holds(self):
        stats = simulate_closed_loop(MODEL, n_clients=48, horizon_s=20.0,
                                     request_spec=SPEC)
        L = stats.mean_concurrency
        XW = stats.throughput_req_s * stats.mean_sojourn_s
        assert L > 0
        assert abs(L - XW) / L < 0.05


class TestFailover:
    def test_crash_reroutes_to_surviving_replica(self):
        roofline = MODEL.token_roofline_tok_s(SPEC.mean_prompt,
                                              SPEC.mean_new_tokens)
        plan = FaultPlan.of(Fault(kind="crash", rank=0, tick=10))
        spans = []
        stats = run(0.8 * roofline / SPEC.mean_new_tokens, horizon=20.0,
                    plan=plan, spans=spans)
        assert stats.n_restarts > 0
        assert stats.n_completed == stats.n_admitted  # nothing lost
        assert any(s.name == "replica-crash" for s in spans)

    def test_crash_of_all_replicas_loses_outstanding(self):
        model = ServingModel(n_replicas=1, g_inter=2, stage_alpha_s=1e-3,
                             decode_s_per_item=5e-4,
                             prefill_s_per_token=1e-4, max_batch=4)
        plan = FaultPlan.of(Fault(kind="crash", rank=0, tick=5))
        stats = simulate_serving(model, ArrivalSpec(rate_per_s=30.0,
                                                    seed=2), 10.0,
                                 request_spec=SPEC, plan=plan)
        assert stats.n_completed < stats.n_admitted
        # arrivals after the crash are rejected, not silently dropped
        assert stats.n_rejected > 0
