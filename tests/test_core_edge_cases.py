"""Edge-case tests: uneven layer partitions in the DES, backend estimates,
and cross-checks between the functional and performance halves."""

import pytest

from repro.core import AxoNNConfig, TransformerSpec, WEAK_SCALING_MODELS, \
    simulate_batch, stage_costs
from repro.runtime.stage import partition_layers

SPEC = WEAK_SCALING_MODELS["12B"]


class TestUnevenPartitions:
    def test_des_stage_costs_uneven(self):
        """48 layers over 36 stages: 12 stages get 2 layers, 24 get 1."""
        spec = TransformerSpec("odd", n_layer=48, hidden=4512, n_head=24)
        cfg = AxoNNConfig(spec=spec, num_gpus=36, g_inter=36, g_data=1,
                          microbatch_size=1, batch_size=8)
        costs = stage_costs(cfg)
        layer_counts = [c.n_block_layers for c in costs]
        assert sum(layer_counts) == 48
        assert set(layer_counts) == {1, 2}
        assert layer_counts == sorted(layer_counts, reverse=True)

    def test_des_simulation_uneven(self):
        spec = TransformerSpec("odd", n_layer=10, hidden=4512, n_head=24)
        cfg = AxoNNConfig(spec=spec, num_gpus=4, g_inter=4, g_data=1,
                          microbatch_size=1, batch_size=8)
        r = simulate_batch(cfg)
        assert r.pipeline_s > 0

    def test_functional_and_des_partition_agree(self):
        """The runtime and the DES must split layers the same way (larger
        shards first) so their stage boundaries match."""
        des = [c.n_block_layers
               for c in stage_costs(AxoNNConfig(
                   spec=TransformerSpec("odd", n_layer=7, hidden=48,
                                        n_head=4),
                   num_gpus=3, g_inter=3, g_data=1, microbatch_size=1,
                   batch_size=4))]
        # functional splits slots (layers + embedding + head = 9)
        functional = [b - a for a, b in partition_layers(7, 3)]
        assert des == functional


class TestBackendEstimates:
    def test_nccl_estimate_above_mpi(self):
        from repro.core import estimate_batch_time
        base = AxoNNConfig(spec=SPEC, num_gpus=48, g_inter=6, g_data=8,
                           microbatch_size=8, batch_size=768, memopt=True)
        assert estimate_batch_time(base.with_(backend_p2p="nccl")) > \
            estimate_batch_time(base)

    def test_mpi_collective_backend_hurts(self):
        """Swapping the data-parallel collective to MPI (the paper's
        rejected option per Fig. 4) slows the dp phase."""
        base = AxoNNConfig(spec=SPEC, num_gpus=48, g_inter=6, g_data=8,
                           microbatch_size=8, batch_size=768, memopt=True)
        nccl = simulate_batch(base)
        mpi = simulate_batch(base.with_(backend_coll="mpi"))
        assert mpi.allreduce_s > nccl.allreduce_s


class TestResultInvariants:
    def test_batch_time_additive(self):
        r = simulate_batch(AxoNNConfig(
            spec=SPEC, num_gpus=48, g_inter=6, g_data=8,
            microbatch_size=8, batch_size=384, memopt=True))
        assert r.batch_time_s == pytest.approx(
            r.pipeline_s + r.dp_opt_combined_s)
        assert r.dp_opt_combined_s <= r.allreduce_s + r.optimizer_s + 1e-9

    def test_more_batch_more_pipeline_time(self):
        small = simulate_batch(AxoNNConfig(
            spec=SPEC, num_gpus=48, g_inter=6, g_data=8,
            microbatch_size=8, batch_size=384, memopt=True))
        big = simulate_batch(AxoNNConfig(
            spec=SPEC, num_gpus=48, g_inter=6, g_data=8,
            microbatch_size=8, batch_size=768, memopt=True))
        assert big.pipeline_s > small.pipeline_s
        # dp phase is batch-size independent
        assert big.dp_opt_combined_s == pytest.approx(
            small.dp_opt_combined_s, rel=1e-6)

    def test_bigger_model_lower_efficiency_same_grid(self):
        """Holding the 48-GPU grid fixed, the 24B model does not fit/run
        better than 12B — compute per stage doubles."""
        r12 = simulate_batch(AxoNNConfig(
            spec=WEAK_SCALING_MODELS["12B"], num_gpus=48, g_inter=6,
            g_data=8, microbatch_size=8, batch_size=384, memopt=True))
        r24 = simulate_batch(AxoNNConfig(
            spec=WEAK_SCALING_MODELS["24B"], num_gpus=48, g_inter=6,
            g_data=8, microbatch_size=8, batch_size=384, memopt=True))
        assert r24.pipeline_s > 1.5 * r12.pipeline_s
