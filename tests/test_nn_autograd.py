"""Gradient checks for the autograd engine: every op is verified against
central-difference numerical gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import F, Tensor, no_grad

RNG = np.random.default_rng(42)


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of scalar-valued fn at x (float64)."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = fn(x)
        x[idx] = orig - eps
        lo = fn(x)
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def check_grad(build, x: np.ndarray, rtol=1e-3, atol=1e-4):
    """Compare autograd gradient of `build(Tensor)->scalar Tensor` with the
    numerical gradient."""
    t = Tensor(x.astype(np.float32), requires_grad=True)
    out = build(t)
    out.backward()
    # Difference in float64 so the numerical reference is trustworthy.
    num = numerical_grad(lambda arr: float(build(Tensor(arr)).data), x)
    np.testing.assert_allclose(t.grad, num, rtol=rtol, atol=atol)


class TestElementwiseGrads:
    def test_add(self):
        check_grad(lambda t: (t + 3.0).sum(), RNG.standard_normal((3, 4)))

    def test_mul(self):
        other = RNG.standard_normal((3, 4)).astype(np.float32)
        check_grad(lambda t: (t * Tensor(other)).sum(),
                   RNG.standard_normal((3, 4)))

    def test_sub_and_neg(self):
        check_grad(lambda t: (5.0 - t).sum(), RNG.standard_normal((2, 3)))

    def test_div(self):
        denom = RNG.standard_normal((3,)).astype(np.float32) + 3.0
        check_grad(lambda t: (t / Tensor(denom)).sum(),
                   RNG.standard_normal((3,)))

    def test_div_wrt_denominator(self):
        numer = RNG.standard_normal((3,)).astype(np.float32)
        check_grad(lambda t: (Tensor(numer) / t).sum(),
                   RNG.standard_normal((3,)) + 3.0)

    def test_pow(self):
        check_grad(lambda t: (t ** 3).sum(),
                   RNG.standard_normal((4,)) + 2.0)

    def test_exp_log_sqrt(self):
        x = np.abs(RNG.standard_normal((4,))) + 0.5
        check_grad(lambda t: t.exp().sum(), x)
        check_grad(lambda t: t.log().sum(), x)
        check_grad(lambda t: t.sqrt().sum(), x)

    def test_tanh_relu(self):
        x = RNG.standard_normal((5,))
        check_grad(lambda t: t.tanh().sum(), x)
        check_grad(lambda t: t.relu().sum(), x + 0.1)  # avoid the kink

    def test_gelu(self):
        check_grad(lambda t: F.gelu(t).sum(), RNG.standard_normal((4, 3)))


class TestBroadcastingGrads:
    def test_add_broadcast_rows(self):
        bias = RNG.standard_normal((4,)).astype(np.float32)
        check_grad(lambda t: (t + Tensor(bias)).sum(),
                   RNG.standard_normal((3, 4)))

    def test_add_broadcast_wrt_small_operand(self):
        big = RNG.standard_normal((3, 4)).astype(np.float32)
        check_grad(lambda t: (Tensor(big) + t).sum(),
                   RNG.standard_normal((4,)))

    def test_mul_broadcast_keepdim(self):
        big = RNG.standard_normal((2, 3, 4)).astype(np.float32)
        check_grad(lambda t: (Tensor(big) * t).sum(),
                   RNG.standard_normal((3, 1)))

    def test_scalar_broadcast(self):
        big = RNG.standard_normal((5,)).astype(np.float32)
        check_grad(lambda t: (Tensor(big) * t).sum(),
                   RNG.standard_normal((1,)))


class TestMatmulGrads:
    def test_matmul_2d(self):
        b = RNG.standard_normal((4, 5)).astype(np.float32)
        check_grad(lambda t: (t @ Tensor(b)).sum(),
                   RNG.standard_normal((3, 4)))

    def test_matmul_wrt_rhs(self):
        a = RNG.standard_normal((3, 4)).astype(np.float32)
        check_grad(lambda t: (Tensor(a) @ t).sum(),
                   RNG.standard_normal((4, 5)))

    def test_matmul_batched(self):
        b = RNG.standard_normal((2, 4, 5)).astype(np.float32)
        check_grad(lambda t: (t @ Tensor(b)).sum(),
                   RNG.standard_normal((2, 3, 4)))

    def test_matmul_broadcast_rhs(self):
        """Batched lhs against unbatched rhs (the Linear-layer case)."""
        b = RNG.standard_normal((4, 5)).astype(np.float32)
        check_grad(lambda t: (t @ Tensor(b)).sum(),
                   RNG.standard_normal((2, 3, 4)))

    def test_matmul_broadcast_rhs_grad(self):
        a = RNG.standard_normal((2, 3, 4)).astype(np.float32)
        check_grad(lambda t: (Tensor(a) @ t).sum(),
                   RNG.standard_normal((4, 5)))


class TestShapeGrads:
    def test_reshape(self):
        check_grad(lambda t: (t.reshape(6, 2) ** 2).sum(),
                   RNG.standard_normal((3, 4)))

    def test_transpose(self):
        w = RNG.standard_normal((3, 4)).astype(np.float32)
        check_grad(lambda t: (t.transpose(1, 0) * Tensor(w)).sum(),
                   RNG.standard_normal((4, 3)))

    def test_transpose_default_reverses(self):
        t = Tensor(RNG.standard_normal((2, 3, 4)).astype(np.float32))
        assert t.transpose().shape == (4, 3, 2)

    def test_swapaxes(self):
        w = RNG.standard_normal((2, 4, 3)).astype(np.float32)
        check_grad(lambda t: (t.swapaxes(1, 2) * Tensor(w)).sum(),
                   RNG.standard_normal((2, 3, 4)))

    def test_getitem_slice(self):
        check_grad(lambda t: (t[1:3] ** 2).sum(),
                   RNG.standard_normal((5, 2)))

    def test_getitem_int_index(self):
        check_grad(lambda t: (t[0] ** 2).sum(),
                   RNG.standard_normal((3, 4)))

    def test_concat(self):
        other = RNG.standard_normal((2, 3)).astype(np.float32)
        check_grad(lambda t: (F.concat([t, Tensor(other)], axis=0) ** 2).sum(),
                   RNG.standard_normal((2, 3)))


class TestReductionGrads:
    def test_sum_all(self):
        check_grad(lambda t: (t ** 2).sum(), RNG.standard_normal((3, 4)))

    def test_sum_axis(self):
        w = RNG.standard_normal((3,)).astype(np.float32)
        check_grad(lambda t: (t.sum(axis=1) * Tensor(w)).sum(),
                   RNG.standard_normal((3, 4)))

    def test_sum_keepdims(self):
        check_grad(lambda t: (t.sum(axis=0, keepdims=True) ** 2).sum(),
                   RNG.standard_normal((3, 4)))

    def test_mean(self):
        check_grad(lambda t: (t.mean(axis=1) ** 2).sum(),
                   RNG.standard_normal((2, 5)))


class TestFusedOpGrads:
    def test_softmax(self):
        w = RNG.standard_normal((3, 5)).astype(np.float32)
        check_grad(lambda t: (F.softmax(t, axis=-1) * Tensor(w)).sum(),
                   RNG.standard_normal((3, 5)))

    def test_log_softmax(self):
        w = RNG.standard_normal((3, 5)).astype(np.float32)
        check_grad(lambda t: (F.log_softmax(t, axis=-1) * Tensor(w)).sum(),
                   RNG.standard_normal((3, 5)))

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.standard_normal((4, 7)).astype(np.float32) * 30)
        s = F.softmax(x, axis=-1)
        np.testing.assert_allclose(s.data.sum(axis=-1), 1.0, rtol=1e-5)

    def test_softmax_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))
        s = F.softmax(x)
        assert np.isfinite(s.data).all()

    def test_layer_norm_wrt_input(self):
        w = Tensor(RNG.standard_normal(6).astype(np.float32))
        b = Tensor(RNG.standard_normal(6).astype(np.float32))
        check_grad(lambda t: (F.layer_norm(t, w, b) ** 2).sum(),
                   RNG.standard_normal((4, 6)), rtol=5e-3, atol=5e-4)

    def test_layer_norm_wrt_weight_and_bias(self):
        x = RNG.standard_normal((4, 6)).astype(np.float32)
        bias = Tensor(np.zeros(6, dtype=np.float32))
        check_grad(
            lambda t: (F.layer_norm(Tensor(x), t, bias) ** 2).sum(),
            RNG.standard_normal((6,)),
        )
        weight = Tensor(np.ones(6, dtype=np.float32))
        check_grad(
            lambda t: (F.layer_norm(Tensor(x), weight, t) ** 2).sum(),
            RNG.standard_normal((6,)),
        )

    def test_layer_norm_output_standardized(self):
        x = Tensor(RNG.standard_normal((8, 16)).astype(np.float32) * 5 + 3)
        w = Tensor(np.ones(16, dtype=np.float32))
        b = Tensor(np.zeros(16, dtype=np.float32))
        out = F.layer_norm(x, w, b)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_cross_entropy_grad(self):
        targets = RNG.integers(0, 5, size=(4,))
        check_grad(lambda t: F.cross_entropy(t, targets),
                   RNG.standard_normal((4, 5)))

    def test_cross_entropy_matches_manual(self):
        logits = Tensor(RNG.standard_normal((3, 4)).astype(np.float32))
        targets = np.array([0, 3, 1])
        loss = F.cross_entropy(logits, targets)
        lp = F.log_softmax(logits).data
        expected = -np.mean([lp[i, t] for i, t in enumerate(targets)])
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(RNG.standard_normal((4, 5)).astype(np.float32),
                        requires_grad=True)
        targets = np.array([1, -1, 2, -1])
        loss = F.cross_entropy(logits, targets, ignore_index=-1)
        loss.backward()
        # Ignored rows contribute no gradient.
        assert np.abs(logits.grad[1]).max() == 0
        assert np.abs(logits.grad[3]).max() == 0
        assert np.abs(logits.grad[0]).max() > 0

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3), dtype=np.float32)),
                            np.zeros((3,), dtype=np.int64))

    def test_embedding_grad_scatter_adds(self):
        w = Tensor(RNG.standard_normal((5, 3)).astype(np.float32),
                   requires_grad=True)
        ids = np.array([1, 1, 4])
        out = F.embedding(w, ids)
        out.backward(np.ones_like(out.data))
        assert np.allclose(w.grad[1], 2.0)  # row 1 hit twice
        assert np.allclose(w.grad[4], 1.0)
        assert np.allclose(w.grad[0], 0.0)

    def test_embedding_rejects_float_indices(self):
        w = Tensor(np.zeros((5, 3), dtype=np.float32))
        with pytest.raises(TypeError):
            F.embedding(w, np.array([0.5]))

    def test_where_mask_blocks_gradient(self):
        x = Tensor(RNG.standard_normal((3, 3)).astype(np.float32),
                   requires_grad=True)
        mask = np.eye(3, dtype=bool)
        out = F.where_mask(x, mask, -1e9)
        out.sum().backward()
        assert np.allclose(np.diag(x.grad), 0.0)
        assert np.allclose(x.grad[0, 1], 1.0)

    def test_dropout_train_and_eval(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((100, 100), dtype=np.float32), requires_grad=True)
        out = F.dropout(x, 0.5, rng, training=True)
        kept = out.data != 0
        assert 0.3 < kept.mean() < 0.7
        np.testing.assert_allclose(out.data[kept], 2.0)  # inverted scaling
        out_eval = F.dropout(x, 0.5, rng, training=False)
        assert out_eval is x

    def test_dropout_grad_uses_same_mask(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((50,), dtype=np.float32), requires_grad=True)
        out = F.dropout(x, 0.5, rng)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.zeros(3)), 1.0, np.random.default_rng(0))


class TestAutogradMechanics:
    def test_gradient_accumulates_across_backwards(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        (x * 3.0).sum().backward()
        (x * 3.0).sum().backward()
        assert x.grad[0] == pytest.approx(6.0)

    def test_diamond_graph_single_visit(self):
        """y = x*x used twice downstream: gradient must not double count."""
        x = Tensor(np.array([3.0], dtype=np.float32), requires_grad=True)
        y = x * x
        z = (y + y).sum()  # dz/dx = 4x = 12
        z.backward()
        assert x.grad[0] == pytest.approx(12.0)

    def test_backward_nonscalar_needs_gradient(self):
        x = Tensor(np.zeros((2, 2), dtype=np.float32), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_gradient_shape_checked(self):
        x = Tensor(np.zeros((2, 2), dtype=np.float32), requires_grad=True)
        y = x * 2
        with pytest.raises(ValueError):
            y.backward(np.zeros((3, 3), dtype=np.float32))

    def test_backward_with_explicit_gradient(self):
        """The pipeline boundary case: backward from a non-scalar."""
        x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        y = x * 2.0
        upstream = np.full((2, 3), 0.5, dtype=np.float32)
        y.backward(upstream)
        np.testing.assert_allclose(x.grad, 1.0)

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(np.zeros(1, dtype=np.float32))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_no_grad_builds_no_graph(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._parents == ()

    def test_no_grad_nests(self):
        from repro.nn import is_grad_enabled
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad
        z = (y * 3).sum()
        assert not z.requires_grad

    def test_interior_grad_released(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        y = x * 2
        z = (y * 3).sum()
        z.backward()
        assert y.grad is None  # interior buffers are freed
        assert x.grad is not None

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(1, dtype=np.float32), requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 1.0
        y.sum().backward()
        assert x.grad[0] == 1.0


@given(
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_chain_rule_linear_composition(shape, seed):
    """Property: gradient of sum(a*x + b) is a everywhere."""
    rng = np.random.default_rng(seed)
    a = float(rng.standard_normal())
    x = Tensor(rng.standard_normal(shape).astype(np.float32),
               requires_grad=True)
    (x * a + 1.0).sum().backward()
    np.testing.assert_allclose(x.grad, a, rtol=1e-5)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_softmax_then_ce_equals_fused(seed):
    """Property: fused cross-entropy == -mean(log_softmax[targets])."""
    rng = np.random.default_rng(seed)
    logits = rng.standard_normal((3, 6)).astype(np.float32)
    targets = rng.integers(0, 6, size=3)
    fused = F.cross_entropy(Tensor(logits), targets).item()
    lp = F.log_softmax(Tensor(logits)).data
    manual = -np.mean([lp[i, t] for i, t in enumerate(targets)])
    assert fused == pytest.approx(manual, rel=1e-5)
