"""4D runtime tests: the tensor-parallel axis on the rank transport.

The gather-whole-weights protocol makes ``g_intra > 1`` compute exactly
the same floating-point operations in the same order as the dense
``g_intra = 1`` stage, so every comparison here is exact equality, not
approx.  The TP collectives must also be booked exactly once per group
member in the shared ``tp.*`` counter namespace, and checkpoints must
round-trip under a TP grid (and be rejected across grid shapes).
"""

import numpy as np
import pytest

from repro.nn import GPTConfig, LossScaler
from repro.perf import counters, counting
from repro.runtime import (
    AxoNNTrainer,
    load_trainer_state,
    trainer_state_dict,
)

# Three heads: a 2-way TP split shards them unevenly ([2, 1]), which is
# exactly the case the _split_sizes fix covers on the runtime path.
CFG = GPTConfig(vocab_size=19, seq_len=6, n_layer=2, n_head=3, hidden=12,
                dropout=0.1, init_seed=21)


def make_batches(n, batch=4, seed=3):
    rng = np.random.default_rng(seed)
    return [(rng.integers(0, CFG.vocab_size, (batch, CFG.seq_len)),
             rng.integers(0, CFG.vocab_size, (batch, CFG.seq_len)))
            for _ in range(n)]


def run(g_inter, g_data, g_intra, steps=3, backend="cooperative", **kw):
    trainer = AxoNNTrainer(CFG, g_inter=g_inter, g_data=g_data,
                           microbatch_size=2, g_intra=g_intra, lr=1e-3,
                           backend=backend, **kw)
    try:
        losses = [trainer.train_batch(x, y).loss
                  for x, y in make_batches(steps)]
        return losses, trainer.gather_state()
    finally:
        trainer.close()


class TestBitIdentityToDense:
    def test_tp2_uneven_heads_fp32(self):
        dense_losses, dense_state = run(2, 1, 1)
        tp_losses, tp_state = run(2, 1, 2)
        assert tp_losses == dense_losses
        assert set(tp_state) == set(dense_state)
        for key in dense_state:
            np.testing.assert_array_equal(tp_state[key], dense_state[key],
                                          err_msg=key)

    def test_tp3_with_data_parallelism(self):
        dense_losses, dense_state = run(1, 2, 1)
        tp_losses, tp_state = run(1, 2, 3)
        assert tp_losses == dense_losses
        for key in dense_state:
            np.testing.assert_array_equal(tp_state[key], dense_state[key],
                                          err_msg=key)

    def test_tp2_mixed_precision(self):
        kw = dict(precision="mixed",
                  loss_scaler=LossScaler(init_scale=64, dynamic=False))
        dense_losses, dense_state = run(2, 1, 1, **kw)
        kw["loss_scaler"] = LossScaler(init_scale=64, dynamic=False)
        tp_losses, tp_state = run(2, 1, 2, **kw)
        assert tp_losses == dense_losses
        for key in dense_state:
            np.testing.assert_array_equal(tp_state[key], dense_state[key],
                                          err_msg=key)


class TestCollectiveAccounting:
    def test_tp_counters_booked_once_per_member(self):
        """One allgather and one reduce-scatter record per group member
        per microbatch — no double-booking between the trace sink, the
        perf counters and the obs stream."""
        g_inter, g_data, g_intra = 2, 1, 2
        trainer = AxoNNTrainer(CFG, g_inter=g_inter, g_data=g_data,
                               microbatch_size=2, g_intra=g_intra, lr=1e-3)
        (x, y), = make_batches(1)
        with counting():
            trainer.train_batch(x, y)
            snap = counters.snapshot()
        m = x.shape[0] // g_data // 2  # microbatches per shard
        expected = g_inter * g_data * g_intra * m
        assert snap["tp.allgather"] == expected
        assert snap["tp.reduce_scatter"] == expected
        assert snap["tp.allgather_bytes"] > 0
        assert snap["tp.reduce_scatter_bytes"] > 0

    def test_dense_run_books_no_tp_collectives(self):
        trainer = AxoNNTrainer(CFG, g_inter=2, g_data=1, microbatch_size=2,
                               lr=1e-3)
        (x, y), = make_batches(1)
        with counting():
            trainer.train_batch(x, y)
            snap = counters.snapshot()
        assert not any(k.startswith("tp.") for k in snap)


class TestCheckpointing:
    def test_round_trip_under_tp_grid(self):
        batches = make_batches(4)
        original = AxoNNTrainer(CFG, g_inter=2, g_data=1, microbatch_size=2,
                                g_intra=2, lr=1e-3)
        for x, y in batches[:2]:
            original.train_batch(x, y)
        snapshot = trainer_state_dict(original)

        resumed = AxoNNTrainer(CFG, g_inter=2, g_data=1, microbatch_size=2,
                               g_intra=2, lr=1e-3)
        load_trainer_state(resumed, snapshot)
        assert resumed.batches_trained == 2

        for x, y in batches[2:]:
            original.train_batch(x, y)
            resumed.train_batch(x, y)
        a = original.gather_state()
        b = resumed.gather_state()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key], err_msg=key)

    def test_g_intra_mismatch_rejected(self):
        tp = AxoNNTrainer(CFG, g_inter=2, g_data=1, microbatch_size=2,
                          g_intra=2, lr=1e-3)
        snapshot = trainer_state_dict(tp)
        dense = AxoNNTrainer(CFG, g_inter=2, g_data=1, microbatch_size=2,
                             lr=1e-3)
        with pytest.raises(ValueError, match="grid mismatch"):
            load_trainer_state(dense, snapshot)


def test_process_backend_tp_matches_cooperative_dense():
    """Real OS-process ranks under a TP grid reproduce the cooperative
    dense losses and weights bit-for-bit (2 stages x 2-way TP = 4
    workers)."""
    dense_losses, dense_state = run(2, 1, 1, steps=2)
    proc_losses, proc_state = run(2, 1, 2, steps=2, backend="process")
    assert proc_losses == dense_losses
    assert set(proc_state) == set(dense_state)
    for key in dense_state:
        np.testing.assert_array_equal(proc_state[key], dense_state[key],
                                      err_msg=key)
