"""Tests for the functional ZeRO-1 sharded optimizer."""

import numpy as np
import pytest

from repro.baselines.zero1 import Zero1AdamW
from repro.nn import AdamW, Tensor


def make_replicas(world, sizes, seed=0):
    """`world` replicas with identical initial parameters."""
    rng = np.random.default_rng(seed)
    canonical = [rng.standard_normal(s).astype(np.float32) for s in sizes]
    return {
        r: [Tensor(c.copy(), requires_grad=True) for c in canonical]
        for r in range(world)
    }


def set_grads(replicas, grads):
    for params in replicas.values():
        for p, g in zip(params, grads):
            p.grad = g.copy()


class TestZero1:
    def test_matches_monolithic_adamw(self):
        """The sharded update must equal plain AdamW exactly."""
        rng = np.random.default_rng(1)
        sizes = [(3, 4), (7,), (2, 5)]
        replicas = make_replicas(4, sizes, seed=2)
        reference = [Tensor(p.data.copy(), requires_grad=True)
                     for p in replicas[0]]
        zero = Zero1AdamW(replicas, lr=0.01)
        mono = AdamW(reference, lr=0.01)
        for _ in range(5):
            grads = [rng.standard_normal(s).astype(np.float32)
                     for s in sizes]
            set_grads(replicas, grads)
            for p, g in zip(reference, grads):
                p.grad = g.copy()
            zero.step()
            mono.step()
        for a, b in zip(replicas[0], reference):
            np.testing.assert_allclose(a.data, b.data, rtol=1e-6,
                                       atol=1e-7)

    def test_all_replicas_identical_after_step(self):
        rng = np.random.default_rng(3)
        replicas = make_replicas(3, [(10,)], seed=4)
        set_grads(replicas, [rng.standard_normal(10).astype(np.float32)])
        Zero1AdamW(replicas, lr=0.1).step()
        for r in (1, 2):
            np.testing.assert_array_equal(replicas[r][0].data,
                                          replicas[0][0].data)

    def test_state_sharded_evenly(self):
        replicas = make_replicas(4, [(16,)])
        zero = Zero1AdamW(replicas)
        # 16 params over 4 replicas: 4 each, 12 bytes/param.
        assert zero.state_bytes_per_replica() == 4 * 12
        total_owned = sum(b - a for a, b in zero.bounds.values())
        assert total_owned == 16

    def test_uneven_split_covers_everything(self):
        replicas = make_replicas(3, [(10,)])
        zero = Zero1AdamW(replicas)
        spans = sorted(zero.bounds.values())
        assert spans[0][0] == 0 and spans[-1][1] == 10
        for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
            assert b1 == a2

    def test_state_memory_scales_inversely_with_world(self):
        one = Zero1AdamW(make_replicas(1, [(64,)]))
        four = Zero1AdamW(make_replicas(4, [(64,)]))
        assert one.state_bytes_per_replica() == \
            4 * four.state_bytes_per_replica()

    def test_allgather_traffic_accounted(self):
        replicas = make_replicas(4, [(16,)])
        zero = Zero1AdamW(replicas)
        set_grads(replicas, [np.ones(16, dtype=np.float32)])
        zero.step()
        assert zero.allgather_bytes == 4 * 16 * 3

    def test_single_replica_degenerates_to_adamw(self):
        replicas = make_replicas(1, [(8,)], seed=5)
        reference = [Tensor(replicas[0][0].data.copy(), requires_grad=True)]
        zero = Zero1AdamW(replicas, lr=0.05)
        mono = AdamW(reference, lr=0.05)
        g = np.ones(8, dtype=np.float32)
        set_grads(replicas, [g])
        reference[0].grad = g.copy()
        zero.step()
        mono.step()
        np.testing.assert_allclose(replicas[0][0].data, reference[0].data,
                                   rtol=1e-7)

    def test_more_replicas_than_params(self):
        replicas = make_replicas(5, [(3,)], seed=6)
        zero = Zero1AdamW(replicas, lr=0.1)
        set_grads(replicas, [np.ones(3, dtype=np.float32)])
        zero.step()  # two replicas own empty slices; must not crash
        for r in range(1, 5):
            np.testing.assert_array_equal(replicas[r][0].data,
                                          replicas[0][0].data)

    def test_validation(self):
        with pytest.raises(ValueError):
            Zero1AdamW({})
        bad = {0: [Tensor(np.zeros(3), requires_grad=True)],
               1: [Tensor(np.zeros(4), requires_grad=True)]}
        with pytest.raises(ValueError):
            Zero1AdamW(bad)
        replicas = make_replicas(2, [(4,)])
        zero = Zero1AdamW(replicas)
        with pytest.raises(ValueError):
            zero.step(np.zeros(3, dtype=np.float32))
