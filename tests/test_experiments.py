"""Integration tests: every paper figure/table experiment must produce its
rows and satisfy the paper's qualitative claims (scaled-down parameters
where the full experiment is benchmark-sized)."""

import numpy as np
import pytest

import repro.experiments as ex


def assert_all_claims(claims: dict):
    failing = [k for k, v in claims.items() if not v]
    assert not failing, f"claims violated: {failing}"


class TestFig3:
    SIZES = [2 ** e for e in range(10, 27, 4)]

    def test_rows_structure(self):
        rows = ex.fig3_rows(sizes=self.SIZES)
        assert len(rows) == 4 * len(self.SIZES)
        assert {r["backend"] for r in rows} == {"mpi", "nccl"}
        assert {r["scope"] for r in rows} == {"intra-node", "inter-node"}

    def test_claims(self):
        assert_all_claims(ex.fig3_claims(ex.fig3_rows(sizes=self.SIZES)))


class TestFig4:
    SIZES = [2 ** e for e in range(16, 29, 4)]

    def test_rows_structure(self):
        rows = ex.fig4_rows(sizes=self.SIZES)
        assert {r["ranks"] for r in rows} == {6, 12}

    def test_claims(self):
        assert_all_claims(ex.fig4_claims(ex.fig4_rows(sizes=self.SIZES)))


class TestFig5:
    def test_rows_and_claims(self):
        rows = ex.fig5_rows(batch_size=512)
        assert [r["g_inter"] for r in rows] == [6, 12, 24, 48]
        assert all(r["g_inter"] * r["g_data"] == 48 for r in rows)
        assert_all_claims(ex.fig5_claims(rows))


class TestFig6:
    def test_rows_and_claims(self):
        rows = ex.fig6_rows()
        assert {r["variant"] for r in rows} == \
            {"without-memopt", "with-memopt"}
        assert_all_claims(ex.fig6_claims(rows))

    def test_memory_summary_matches_paper(self):
        s = ex.memory_savings_summary()
        assert 4.0 < s["state_saving_ratio"] < 5.0
        assert 440 < s["cluster_total_without_gb"] < 580
        assert 100 < s["cluster_total_with_gb"] < 170


class TestFig7:
    def test_profile_and_claims(self):
        profile = ex.fig7_profile(batch_size=96)
        assert_all_claims(ex.fig7_claims(profile))

    def test_ascii_timeline_renders_both_streams(self):
        profile = ex.fig7_profile(batch_size=96)
        assert "aux" in profile["ascii"] or "a" in profile["ascii"]
        assert profile["n_optimizer_buckets"] > \
            profile["n_allreduce_chunks"] > 1


class TestFig8:
    def test_rows_and_claims(self):
        rows = ex.fig8_rows()
        assert rows[0]["label"] == "no-overlap"
        assert_all_claims(ex.fig8_claims(rows))


class TestFig9:
    def test_12b_claims(self):
        rows = ex.weak_scaling_rows(models=("12B",))
        assert len(rows) == 3
        assert_all_claims(ex.fig9_claims(rows))

    def test_rows_have_metrics(self):
        rows = ex.weak_scaling_rows(models=("12B",))
        for r in rows:
            assert r["training_days"] > 0
            assert 0 < r["pct_peak"] < 100


class TestFig10:
    def test_curves_and_claims(self):
        curves = ex.fig10_curves(n_batches=8)
        assert len(curves["serial"]) == len(curves["axonn"]) == 8
        assert_all_claims(ex.fig10_claims(curves))

    def test_curves_actually_identical_within_tolerance(self):
        curves = ex.fig10_curves(n_batches=6)
        np.testing.assert_allclose(curves["axonn"], curves["serial"],
                                   rtol=5e-4)


class TestFig11:
    def test_claims_small(self):
        rows = ex.strong_scaling_rows(gpu_counts=(48, 96))
        assert_all_claims(ex.fig11_claims(rows))

    def test_batch_scales_with_gpus(self):
        rows = ex.strong_scaling_rows(gpu_counts=(48, 96),
                                      frameworks=("axonn",))
        assert rows[0]["batch_size"] == 4096
        assert rows[1]["batch_size"] == 8192


class TestTables:
    def test_table1(self):
        rows = ex.table1_rows()
        assert len(rows) == 4
        assert_all_claims(ex.table1_claims(rows))

    def test_table2_12b(self):
        rows = ex.table2_rows(models=("12B",))
        assert len(rows) == 3
        assert_all_claims(ex.table2_claims(rows))

    def test_table2_carries_paper_reference(self):
        rows = ex.table2_rows(models=("12B",))
        ax = next(r for r in rows if r["framework"] == "axonn")
        assert ax["paper_g_inter"] == 6
        assert ax["paper_g_data"] == 8

    def test_paper_table2_complete(self):
        assert len(ex.PAPER_TABLE2) == 12
        models = {r.model for r in ex.PAPER_TABLE2}
        assert models == {"12B", "24B", "50B", "100B"}


class TestAblations:
    def test_backend_ablation_mpi_wins(self):
        rows = ex.backend_ablation(batch_size=384)
        by = {r["p2p_backend"]: r for r in rows}
        assert by["mpi"]["pipeline_s"] < by["nccl"]["pipeline_s"]

    def test_placement_ablation_tradeoff(self):
        rows = ex.placement_ablation(batch_size=384)
        by = {r["placement"]: r for r in rows}
        # pipeline-contiguous keeps p2p on NVLink -> faster pipeline phase
        assert by["pipeline-contiguous"]["pipeline_s"] <= \
            by["data-contiguous"]["pipeline_s"] * 1.05

    def test_pipeline_limit_monotone_improvement(self):
        rows = ex.pipeline_limit_ablation(limits=(1, 2, 6), batch_size=384)
        times = [r["pipeline_s"] for r in rows]
        assert times[0] > times[1] > times[2] * 0.99

    def test_schedule_ablation(self):
        rows = ex.schedule_ablation(batch_size=384)
        by = {r["schedule"]: r for r in rows}
        assert by["gpipe"]["activation_bytes"] >= \
            by["1f1b"]["activation_bytes"]

    def test_bucket_size_ablation(self):
        rows = ex.bucket_size_ablation(batch_size=384)
        assert [r["bucket_size"] for r in rows] == \
            [1_000_000, 4_000_000, 16_000_000, 64_000_000]
        # Device memory of the optimizer scales with bsize.
        device = [r["optimizer_device_bytes"] for r in rows]
        assert device == sorted(device)


class TestPipelineDiagram:
    def test_occupancy_structure(self):
        occ = ex.pipeline_occupancy(g_inter=4, microbatches=8)
        assert len(occ["stages"]) == 4
        assert occ["total_s"] > 0
        for st in occ["stages"]:
            assert 0.0 <= st["idle_fraction"] < 1.0

    def test_bubble_shrinks_with_more_microbatches(self):
        """Fig. 1's bubble: more microbatches amortize the warm-up/drain."""
        few = ex.pipeline_occupancy(g_inter=4, microbatches=4)
        many = ex.pipeline_occupancy(g_inter=4, microbatches=24)
        idle_few = max(s["idle_fraction"] for s in few["stages"])
        idle_many = max(s["idle_fraction"] for s in many["stages"])
        assert idle_many < idle_few

    def test_render_contains_all_stages(self):
        occ = ex.pipeline_occupancy(g_inter=3, microbatches=6)
        text = ex.render_occupancy(occ)
        for i in range(3):
            assert f"GPU{i}" in text
        assert "f" in text and "b" in text

    def test_first_stage_forward_heavy_warmup(self):
        """The warm-up is all forwards on stage 0 (Algorithm 2 lines 3-9)."""
        occ = ex.pipeline_occupancy(g_inter=4, microbatches=8)
        first = occ["stages"][0]["spans"]
        first.sort(key=lambda s: s.start)
        warmup = [s.name for s in first[:4]]
        assert all(n.startswith("fwd") for n in warmup)


class TestServingExperiment:
    def test_full_report_claims_hold(self):
        """The serving study at paper settings: saturation near the V100
        roofline, tail-latency divergence, Little's law, failover."""
        report = ex.serving_report()
        assert all(report["claims"].values()), report["claims"]
        assert len(report["rows"]) == 6
        assert report["failover"]["lost"] == 0

    def test_report_is_json_serializable(self):
        import json
        report = ex.serving_report(fast=True)
        text = json.dumps(report, default=float)
        assert "littles_law_rel_err" in text

    def test_rows_deterministic_across_calls(self):
        a = ex.serving_rows(fast=True, loads=[0.4, 1.1])
        b = ex.serving_rows(fast=True, loads=[0.4, 1.1])
        assert a == b

    def test_model_is_v100_derived(self):
        model = ex.serving_model()
        # decode is HBM-bound on a 16 GB V100: per-token step time is
        # dominated by streaming the stage weights, far above the launch
        # overhead, and the KV budget fits the card
        assert model.decode_s_per_item > model.stage_alpha_s
        from repro.nn import kv_cache_bytes
        from repro.experiments.serving import SERVED_MODEL_CFG
        per_req = kv_cache_bytes(SERVED_MODEL_CFG) / model.g_inter
        assert per_req * model.effective_max_active < 16e9


class Test4DSweep:
    def test_sweep_enumerates_tensor_parallel_decompositions(self):
        rows = ex.sweep_4d(cluster_sizes=(16,))
        assert rows
        # Every row is a complete decomposition of the cluster size.
        for row in rows:
            assert row["g_inter"] * row["g_data"] * row["g_intra"] == 16
        # The tensor axis is actually explored, not just g_intra=1.
        assert any(row["g_intra"] > 1 for row in rows)

    def test_best_prefers_feasible_decompositions(self):
        rows = ex.sweep_4d(cluster_sizes=(16, 32))
        best = ex.best_4d_decompositions(rows)
        assert [row["gpus"] for row in best] == [16, 32]
        for row in best:
            feasible = [r for r in rows if r["gpus"] == row["gpus"]
                        and r["feasible"]]
            if feasible:
                assert row["feasible"]
                assert row["batch_time_s"] == min(r["batch_time_s"]
                                                  for r in feasible)

    def test_cli_entry_point_prints_table(self, capsys):
        from repro.experiments.scaling import main
        assert main(["--4d", "--sizes", "8"]) == 0
        out = capsys.readouterr().out
        assert "g_intra" in out
