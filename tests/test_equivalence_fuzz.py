"""Cross-cutting equivalence fuzz: random grid shapes, schedules and data
streams must all compute the same training trajectory.

This is the capstone property of the reproduction: whatever the parallel
decomposition — pipeline depth, data-parallel width, microbatch size,
message-driven or static flushing schedule — one optimizer step over one
batch is *the same function*.  Hypothesis explores the configuration space;
a violation anywhere would indicate a scheduling, sharding or reduction bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (TraceRecorder, check_match_order,
                            check_unmatched_sends)
from repro.baselines import FlushingPipelineTrainer
from repro.nn import GPTConfig
from repro.runtime import AxoNNTrainer, SerialTrainer

CFG = GPTConfig(vocab_size=13, seq_len=6, n_layer=3, n_head=2, hidden=8,
                dropout=0.0, init_seed=77)

# Dropout on, so the cross-backend check also covers the RNG-state
# round-trip through the worker processes.
CFG_DROP = GPTConfig(vocab_size=13, seq_len=6, n_layer=3, n_head=2,
                     hidden=8, dropout=0.1, init_seed=77)

# valid (g_inter, g_data, microbatch, batch) combinations for a 5-slot model
GRIDS = [
    (1, 1, 4, 4), (1, 2, 2, 4), (1, 4, 1, 4),
    (2, 1, 2, 4), (2, 2, 1, 4), (2, 3, 2, 6),
    (3, 1, 1, 4), (3, 2, 1, 4), (4, 1, 2, 4), (5, 1, 1, 4),
]


@given(
    grid=st.sampled_from(GRIDS),
    seed=st.integers(0, 10_000),
    flushing=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_any_decomposition_matches_serial(grid, seed, flushing):
    g_inter, g_data, mbs, batch = grid
    rng = np.random.default_rng(seed)
    x = rng.integers(0, CFG.vocab_size, (batch, CFG.seq_len))
    y = rng.integers(0, CFG.vocab_size, (batch, CFG.seq_len))
    serial = SerialTrainer(CFG, lr=1e-3)
    if flushing and g_inter > 1:
        parallel = FlushingPipelineTrainer(
            CFG, g_inter=g_inter, g_data=g_data, microbatch_size=mbs,
            lr=1e-3)
        parallel_loss = parallel.train_batch(x, y)
    else:
        trainer = AxoNNTrainer(CFG, g_inter=g_inter, g_data=g_data,
                               microbatch_size=mbs, lr=1e-3)
        parallel_loss = trainer.train_batch(x, y).loss
    serial_loss = serial.train_batch(x, y)
    assert parallel_loss == pytest.approx(serial_loss, rel=3e-4, abs=3e-5)


@given(seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_two_decompositions_agree_over_multiple_batches(seed):
    """Two different decompositions stay in lockstep across several steps
    (errors would compound if any single step diverged)."""
    rng = np.random.default_rng(seed)
    a = AxoNNTrainer(CFG, g_inter=3, g_data=2, microbatch_size=1, lr=1e-3)
    b = AxoNNTrainer(CFG, g_inter=1, g_data=3, microbatch_size=2, lr=1e-3)
    for _ in range(3):
        x = rng.integers(0, CFG.vocab_size, (6, CFG.seq_len))
        y = rng.integers(0, CFG.vocab_size, (6, CFG.seq_len))
        la = a.train_batch(x, y).loss
        lb = b.train_batch(x, y).loss
        assert la == pytest.approx(lb, rel=3e-4, abs=3e-5)


# valid (g_inter, g_data, microbatch, batch) shapes for the cross-backend
# fuzz; kept small — every example spawns g_inter * g_data real processes.
PROCESS_GRIDS = [
    (1, 2, 2, 4), (2, 1, 2, 4), (2, 2, 1, 4), (3, 1, 1, 4),
]


@given(grid=st.sampled_from(PROCESS_GRIDS), seed=st.integers(0, 1000))
@settings(max_examples=6, deadline=None)
def test_process_backend_bit_identical_to_cooperative(grid, seed):
    """The process backend is not allowed numerical latitude: losses,
    post-step weights and the recorded message trace must all match the
    cooperative backend exactly — same microbatch draw order, same
    dropout masks (RNG states ship both ways), same reduction order."""
    g_inter, g_data, mbs, batch = grid
    rng = np.random.default_rng(seed)
    batches = [(rng.integers(0, CFG_DROP.vocab_size, (batch, CFG_DROP.seq_len)),
                rng.integers(0, CFG_DROP.vocab_size, (batch, CFG_DROP.seq_len)))
               for _ in range(2)]

    def run(backend):
        recorder = TraceRecorder()
        trainer = AxoNNTrainer(CFG_DROP, g_inter=g_inter, g_data=g_data,
                               microbatch_size=mbs, lr=1e-3,
                               recorder=recorder, backend=backend)
        try:
            losses = [trainer.train_batch(x, y).loss for x, y in batches]
            return losses, trainer.gather_state(), recorder
        finally:
            trainer.close()

    coop_losses, coop_state, coop_rec = run("cooperative")
    proc_losses, proc_state, proc_rec = run("process")

    assert proc_losses == coop_losses  # exact, not approx
    assert set(proc_state) == set(coop_state)
    for key in coop_state:
        assert np.array_equal(proc_state[key], coop_state[key]), key
    # Both recorded message traces must be verifier-clean on the p2p
    # checks (per-channel FIFO, every send consumed).  Collective order
    # across data-parallel *groups* legitimately differs, so that check
    # is not asserted here.
    for rec in (coop_rec, proc_rec):
        assert check_unmatched_sends(rec) == []
        assert check_match_order(rec) == []


# valid (g_inter, g_data, g_intra, microbatch, batch) 4D shapes; n_head=2
# caps g_intra at 2 for the fuzz configs.
TP_GRIDS = [
    (1, 1, 2, 2, 4), (2, 1, 2, 2, 4), (1, 2, 2, 2, 4), (3, 1, 2, 1, 4),
]


@given(
    grid=st.sampled_from(TP_GRIDS),
    seed=st.integers(0, 1000),
    precision=st.sampled_from(["fp32", "mixed"]),
)
@settings(max_examples=12, deadline=None)
def test_tensor_parallel_axis_matches_dense(grid, seed, precision):
    """``g_intra > 1`` is bit-identical to the dense ``g_intra = 1`` run:
    dropout stays on (the TP lead owns the stage's RNG state, so sharding
    the parameters must not move any draw) and mixed precision is fuzzed
    too (gathered weights round-trip through the same dtypes)."""
    g_inter, g_data, g_intra, mbs, batch = grid
    rng = np.random.default_rng(seed)
    batches = [(rng.integers(0, CFG_DROP.vocab_size,
                             (batch, CFG_DROP.seq_len)),
                rng.integers(0, CFG_DROP.vocab_size,
                             (batch, CFG_DROP.seq_len)))
               for _ in range(2)]

    def run(g_intra_):
        trainer = AxoNNTrainer(CFG_DROP, g_inter=g_inter, g_data=g_data,
                               microbatch_size=mbs, g_intra=g_intra_,
                               lr=1e-3, precision=precision)
        try:
            losses = [trainer.train_batch(x, y).loss for x, y in batches]
            return losses, trainer.gather_state()
        finally:
            trainer.close()

    dense_losses, dense_state = run(1)
    tp_losses, tp_state = run(g_intra)
    assert tp_losses == dense_losses  # exact, not approx
    assert set(tp_state) == set(dense_state)
    for key in dense_state:
        assert np.array_equal(tp_state[key], dense_state[key]), key


# kept tiny: every example spawns g_inter * g_data * g_intra processes.
TP_PROCESS_GRIDS = [(2, 1, 2, 2, 4), (1, 2, 2, 2, 4)]


@given(
    grid=st.sampled_from(TP_PROCESS_GRIDS),
    seed=st.integers(0, 1000),
    precision=st.sampled_from(["fp32", "mixed"]),
)
@settings(max_examples=4, deadline=None)
def test_process_backend_4d_bit_identical_to_cooperative(grid, seed,
                                                         precision):
    """The cross-substrate contract extends to the TP axis: real worker
    processes running sharded stages (dropout on, either precision) must
    reproduce the cooperative backend's losses and weights exactly."""
    g_inter, g_data, g_intra, mbs, batch = grid
    rng = np.random.default_rng(seed)
    batches = [(rng.integers(0, CFG_DROP.vocab_size,
                             (batch, CFG_DROP.seq_len)),
                rng.integers(0, CFG_DROP.vocab_size,
                             (batch, CFG_DROP.seq_len)))
               for _ in range(2)]

    def run(backend):
        trainer = AxoNNTrainer(CFG_DROP, g_inter=g_inter, g_data=g_data,
                               microbatch_size=mbs, g_intra=g_intra,
                               lr=1e-3, precision=precision,
                               backend=backend)
        try:
            losses = [trainer.train_batch(x, y).loss for x, y in batches]
            return losses, trainer.gather_state()
        finally:
            trainer.close()

    coop_losses, coop_state = run("cooperative")
    proc_losses, proc_state = run("process")
    assert proc_losses == coop_losses  # exact, not approx
    assert set(proc_state) == set(coop_state)
    for key in coop_state:
        assert np.array_equal(proc_state[key], coop_state[key]), key
