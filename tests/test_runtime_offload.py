"""Tests for the bucketed CPU-offload optimizer (functional Section V-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import GPT, GPTConfig, LMBatches, LossScaler, \
    MixedPrecisionAdamW, SyntheticCorpus, Tensor
from repro.runtime import BucketedOffloadAdamW


def make_params(sizes, seed=0):
    rng = np.random.default_rng(seed)
    return [Tensor(rng.standard_normal(s).astype(np.float32),
                   requires_grad=True) for s in sizes]


class TestBucketedOffload:
    def test_matches_monolithic_mixed_precision(self):
        """Bucketed offloaded Adam must be numerically identical to the
        monolithic fp16 optimizer (Adam is elementwise)."""
        rng = np.random.default_rng(1)
        sizes = [(3, 4), (7,), (2, 2, 2)]
        p_mono = make_params(sizes, seed=2)
        p_bucket = make_params(sizes, seed=2)
        scaler_a = LossScaler(init_scale=64, dynamic=False)
        scaler_b = LossScaler(init_scale=64, dynamic=False)
        mono = MixedPrecisionAdamW(p_mono, lr=0.01, scaler=scaler_a)
        bucket = BucketedOffloadAdamW(p_bucket, bucket_size=5, lr=0.01,
                                      scaler=scaler_b)
        for _ in range(5):
            grads16 = [(rng.standard_normal(p.data.shape) * 64)
                       .astype(np.float16) for p in p_mono]
            mono.step(grads16)
            flat = np.concatenate([g.reshape(-1) for g in grads16])
            bucket.step(flat)
        # All five steps applied, none skipped: the fp16-native overflow
        # check must agree with the monolithic optimizer's verdict.
        assert bucket.steps == 5
        assert bucket.skipped_steps == 0
        for a, b in zip(p_mono, p_bucket):
            np.testing.assert_allclose(a.data, b.data, rtol=1e-5, atol=1e-7)

    def test_bucket_size_invariance(self):
        """Any bucket size gives the same result."""
        rng = np.random.default_rng(3)
        sizes = [(10,), (6,)]
        g = rng.standard_normal(16).astype(np.float16)
        results = []
        for bsize in (1, 4, 16, 100):
            params = make_params(sizes, seed=4)
            opt = BucketedOffloadAdamW(params, bucket_size=bsize, lr=0.05)
            opt.step(g.copy())
            results.append(np.concatenate([p.data.reshape(-1)
                                           for p in params]))
        for r in results[1:]:
            np.testing.assert_allclose(r, results[0], rtol=1e-6)

    def test_device_optimizer_bytes_is_16_bsize(self):
        params = make_params([(1000,)])
        opt = BucketedOffloadAdamW(params, bucket_size=64)
        assert opt.device_optimizer_bytes() == 16 * 64

    def test_device_bytes_capped_by_numel(self):
        params = make_params([(10,)])
        opt = BucketedOffloadAdamW(params, bucket_size=1000)
        assert opt.device_optimizer_bytes() == 16 * 10

    def test_traffic_accounting(self):
        """h2d and d2h each move 12 bytes/param (master + two states) per
        step, independent of bucket size."""
        params = make_params([(32,)])
        opt = BucketedOffloadAdamW(params, bucket_size=10)
        opt.step(np.zeros(32, dtype=np.float16))
        assert opt.h2d_bytes == 12 * 32
        assert opt.d2h_bytes == 12 * 32

    def test_num_buckets(self):
        params = make_params([(32,)])
        assert BucketedOffloadAdamW(params, bucket_size=10).num_buckets == 4
        assert BucketedOffloadAdamW(params, bucket_size=32).num_buckets == 1

    def test_overflow_skips_and_backs_off(self):
        params = make_params([(4,)])
        opt = BucketedOffloadAdamW(params, bucket_size=2,
                                   scaler=LossScaler(init_scale=8,
                                                     dynamic=True))
        before = [p.data.copy() for p in params]
        g = np.array([1, np.inf, 1, 1], dtype=np.float16)
        assert not opt.step(g)
        assert opt.scaler.scale == 4
        for p, b in zip(params, before):
            np.testing.assert_array_equal(p.data, b)

    def test_half_params_track_master(self):
        params = make_params([(8,)])
        opt = BucketedOffloadAdamW(params, bucket_size=3, lr=0.1)
        opt.step(np.ones(8, dtype=np.float16))
        np.testing.assert_allclose(
            opt.device_half,
            np.concatenate([p.data.reshape(-1) for p in params])
            .astype(np.float16))

    def test_gathers_grads_from_params(self):
        params = make_params([(4,)])
        params[0].grad = np.full(4, 2.0, dtype=np.float32)
        opt = BucketedOffloadAdamW(params, bucket_size=4, lr=0.1)
        before = params[0].data.copy()
        assert opt.step()  # no explicit gradient array
        assert not np.allclose(params[0].data, before)

    def test_shape_validation(self):
        params = make_params([(4,)])
        opt = BucketedOffloadAdamW(params, bucket_size=2)
        with pytest.raises(ValueError):
            opt.step(np.zeros(3, dtype=np.float16))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BucketedOffloadAdamW([], bucket_size=4)
        with pytest.raises(ValueError):
            BucketedOffloadAdamW(make_params([(4,)]), bucket_size=0)

    def test_end_to_end_training_with_offload(self):
        """A GPT trained with the offloaded optimizer converges like one
        trained with plain AdamW."""
        cfg = GPTConfig(vocab_size=11, seq_len=6, n_layer=1, n_head=2,
                        hidden=8, init_seed=9)
        model = GPT(cfg)
        opt = BucketedOffloadAdamW(model.parameters(), bucket_size=50,
                                   lr=1e-2, weight_decay=0.0)
        corpus = SyntheticCorpus(11, 1500, seed=2)
        batches = LMBatches(corpus, batch_size=8, seq_len=6)
        losses = []
        for i in range(25):
            x, y = batches.batch(i)
            model.zero_grad()
            _, loss = model(x, targets=y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    @given(bsize=st.integers(1, 64), n=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_bucket_walk_covers_all_params_once(self, bsize, n):
        """Property: total traffic == 12 bytes * numel regardless of the
        bucket size (every parameter visited exactly once)."""
        params = make_params([(n,)], seed=7)
        opt = BucketedOffloadAdamW(params, bucket_size=bsize)
        opt.step(np.zeros(n, dtype=np.float16))
        assert opt.h2d_bytes == 12 * n
        assert opt.d2h_bytes == 12 * n
