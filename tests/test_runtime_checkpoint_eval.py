"""Tests for trainer checkpointing and pipeline-parallel evaluation."""

import numpy as np
import pytest

from repro.nn import GPT, GPTConfig, LMBatches, LossScaler, SyntheticCorpus
from repro.runtime import (
    AxoNNTrainer,
    SerialTrainer,
    evaluate_parallel,
    evaluate_serial,
    load_trainer,
    load_trainer_state,
    perplexity,
    save_trainer,
    trainer_state_dict,
)

CFG = GPTConfig(vocab_size=17, seq_len=8, n_layer=4, n_head=2, hidden=12,
                dropout=0.0, init_seed=33)


def make_batches(batch_size=8, seed=6):
    corpus = SyntheticCorpus(CFG.vocab_size, 4000, seed=seed)
    return LMBatches(corpus, batch_size=batch_size, seq_len=CFG.seq_len)


def make_trainer(**kw):
    base = dict(g_inter=2, g_data=2, microbatch_size=2, lr=1e-3)
    base.update(kw)
    return AxoNNTrainer(CFG, **base)


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("mode", ["fp32", "mixed", "offload"])
    def test_resume_is_bit_identical(self, mode):
        """Save at batch 3, restore into a fresh trainer, train 3 more on
        both — the weights must match exactly."""
        kwargs = {}
        if mode in ("mixed", "offload"):
            kwargs.update(precision="mixed",
                          loss_scaler=LossScaler(init_scale=64,
                                                 dynamic=False))
        if mode == "offload":
            kwargs.update(offload=True, bucket_size=128)
        batches = make_batches()
        original = make_trainer(**kwargs)
        for i in range(3):
            original.train_batch(*batches.batch(i))
        snapshot = trainer_state_dict(original)

        if mode in ("mixed", "offload"):
            kwargs["loss_scaler"] = LossScaler(init_scale=64, dynamic=False)
        resumed = make_trainer(**kwargs)
        load_trainer_state(resumed, snapshot)
        assert resumed.batches_trained == 3

        for i in range(3, 6):
            original.train_batch(*batches.batch(i))
            resumed.train_batch(*batches.batch(i))
        a = original.gather_state()
        b = resumed.gather_state()
        for k in a:
            np.testing.assert_array_equal(a[k], b[k], err_msg=k)

    def test_npz_file_round_trip(self, tmp_path):
        batches = make_batches()
        trainer = make_trainer()
        for i in range(2):
            trainer.train_batch(*batches.batch(i))
        path = str(tmp_path / "ckpt.npz")
        save_trainer(trainer, path)

        fresh = make_trainer()
        load_trainer(fresh, path)
        a = trainer.gather_state()
        b = fresh.gather_state()
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])
        assert fresh.batches_trained == 2

    def test_grid_mismatch_rejected(self):
        trainer = make_trainer()
        state = trainer_state_dict(trainer)
        other = make_trainer(g_inter=1, g_data=4)
        with pytest.raises(ValueError, match="grid"):
            load_trainer_state(other, state)

    def test_precision_mismatch_rejected(self):
        trainer = make_trainer()
        state = trainer_state_dict(trainer)
        other = make_trainer(precision="mixed")
        with pytest.raises(ValueError, match="precision"):
            load_trainer_state(other, state)

    def test_mixed_with_gradient_checkpointing_and_dropout(self):
        """Round-trip under the full feature stack: mixed precision,
        activation (gradient) checkpointing, and active dropout.  Resume
        mid-run and continue; weights and losses must match exactly —
        which requires the checkpoint to carry every dropout RNG
        bit-generator state and the loss scaler's good-step counter."""
        cfg = GPTConfig(vocab_size=17, seq_len=8, n_layer=4, n_head=2,
                        hidden=12, dropout=0.1, init_seed=33)

        def mk():
            return AxoNNTrainer(
                cfg, g_inter=2, g_data=2, microbatch_size=2, lr=1e-3,
                precision="mixed", checkpoint_activations=True,
                loss_scaler=LossScaler(init_scale=64, dynamic=True,
                                       growth_interval=2))

        corpus = SyntheticCorpus(cfg.vocab_size, 4000, seed=6)
        batches = LMBatches(corpus, batch_size=8, seq_len=cfg.seq_len)
        original = mk()
        for i in range(3):
            original.train_batch(*batches.batch(i))
        snapshot = trainer_state_dict(original)

        resumed = mk()
        load_trainer_state(resumed, snapshot)
        assert resumed.scaler.scale == original.scaler.scale
        assert resumed.scaler.good_steps == original.scaler.good_steps

        for i in range(3, 6):
            a = original.train_batch(*batches.batch(i)).loss
            b = resumed.train_batch(*batches.batch(i)).loss
            assert a == b  # bit-identical, batch by batch
        sa, sb = original.gather_state(), resumed.gather_state()
        for k in sa:
            np.testing.assert_array_equal(sa[k], sb[k], err_msg=k)

    def test_pre_step_snapshot_restores_empty_moments(self):
        """A checkpoint taken before the first optimizer step must roll a
        trained optimizer all the way back to pristine (lazily empty)
        moment state — the rollback-and-replay path of the resilience
        layer depends on this."""
        batches = make_batches()
        trainer = make_trainer()
        virgin = trainer_state_dict(trainer)
        ref = make_trainer()

        for i in range(2):
            trainer.train_batch(*batches.batch(i))
        load_trainer_state(trainer, virgin)
        for i in range(2):
            a = trainer.train_batch(*batches.batch(i)).loss
            b = ref.train_batch(*batches.batch(i)).loss
            assert a == b
        sa, sb = trainer.gather_state(), ref.gather_state()
        for k in sa:
            np.testing.assert_array_equal(sa[k], sb[k], err_msg=k)

    def test_loss_scale_restored(self):
        trainer = make_trainer(precision="mixed",
                               loss_scaler=LossScaler(init_scale=4096,
                                                      dynamic=False))
        state = trainer_state_dict(trainer)
        other = make_trainer(precision="mixed",
                             loss_scaler=LossScaler(init_scale=2,
                                                    dynamic=False))
        load_trainer_state(other, state)
        assert other.scaler.scale == 4096


class TestEvaluation:
    def test_perplexity(self):
        assert perplexity(0.0) == 1.0
        assert perplexity(np.log(17)) == pytest.approx(17.0)
        with pytest.raises(ValueError):
            perplexity(float("nan"))

    def test_serial_eval_of_untrained_model(self):
        model = GPT(CFG)
        result = evaluate_serial(model, make_batches(), n_batches=3)
        assert result["loss"] == pytest.approx(np.log(CFG.vocab_size),
                                               abs=0.5)
        assert result["perplexity"] == pytest.approx(
            np.exp(result["loss"]))

    def test_parallel_eval_matches_serial(self):
        """A sharded model evaluated through the pipeline must report the
        same held-out loss as the equivalent serial model."""
        batches = make_batches()
        serial = SerialTrainer(CFG, lr=1e-3)
        parallel = make_trainer()
        for i in range(4):
            x, y = batches.batch(i)
            serial.train_batch(x, y)
            parallel.train_batch(x, y)
        s = evaluate_serial(serial.model, batches, n_batches=3)
        p = evaluate_parallel(parallel, batches, n_batches=3)
        assert p["loss"] == pytest.approx(s["loss"], rel=1e-4)

    def test_eval_does_not_disturb_training_state(self):
        batches = make_batches()
        trainer = make_trainer()
        trainer.train_batch(*batches.batch(0))
        before = trainer.gather_state()
        evaluate_parallel(trainer, batches, n_batches=2)
        after = trainer.gather_state()
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])

    def test_eval_improves_with_training(self):
        batches = make_batches()
        trainer = make_trainer(lr=5e-3)
        before = evaluate_parallel(trainer, batches, n_batches=3)
        for i in range(20):
            trainer.train_batch(*batches.batch(i))
        after = evaluate_parallel(trainer, batches, n_batches=3)
        assert after["loss"] < before["loss"]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            evaluate_serial(GPT(CFG), make_batches(), n_batches=0)
        with pytest.raises(ValueError):
            evaluate_parallel(make_trainer(), make_batches(), n_batches=0)
