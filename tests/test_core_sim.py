"""Tests for the discrete-event AxoNN batch simulation (core phases)."""

import pytest

from repro.cluster import Machine, OutOfMemoryError, summit
from repro.core import (
    AxoNNConfig,
    WEAK_SCALING_MODELS,
    estimate_batch_time,
    simulate_batch,
    stage_costs,
)

SPEC = WEAK_SCALING_MODELS["12B"]


def small_cfg(**kw):
    """A fast-to-simulate 12B configuration (small batch)."""
    base = dict(spec=SPEC, num_gpus=48, g_inter=6, g_data=8,
                microbatch_size=8, batch_size=768, memopt=True)
    base.update(kw)
    return AxoNNConfig(**base)


class TestStageCosts:
    def test_costs_cover_all_stages(self):
        costs = stage_costs(small_cfg())
        assert len(costs) == 6
        assert sum(c.n_block_layers for c in costs) == SPEC.n_layer

    def test_backward_is_twice_forward_for_blocks(self):
        cfg = small_cfg()
        c = stage_costs(cfg)[1]  # middle stage: no head
        assert c.bwd_flops == pytest.approx(2 * c.fwd_flops)
        assert c.recompute_flops == pytest.approx(c.fwd_flops)

    def test_last_stage_has_head_flops(self):
        costs = stage_costs(small_cfg())
        assert costs[-1].fwd_flops > costs[1].fwd_flops

    def test_params_sum_close_to_total(self):
        costs = stage_costs(small_cfg())
        assert sum(c.params for c in costs) == pytest.approx(
            SPEC.total_params, rel=0.01)

    def test_activation_bytes_match_spec(self):
        cfg = small_cfg()
        costs = stage_costs(cfg)
        assert costs[0].activation_bytes == \
            SPEC.activation_message_bytes(cfg.microbatch_size)


class TestSimulateBatch:
    def test_phases_are_positive_and_sum(self):
        r = simulate_batch(small_cfg())
        assert r.pipeline_s > 0
        assert r.allreduce_s > 0
        assert r.optimizer_s > 0
        assert r.batch_time_s == pytest.approx(
            r.pipeline_s + r.dp_opt_combined_s)

    def test_deterministic(self):
        a = simulate_batch(small_cfg())
        b = simulate_batch(small_cfg())
        assert a.batch_time_s == b.batch_time_s

    def test_single_stage_pipeline(self):
        r = simulate_batch(small_cfg(g_inter=1, g_data=48, batch_size=960,
                                     microbatch_size=10, memopt=True))
        assert r.pipeline_s > 0

    def test_theorem53_pipeline_time_grows_with_g_inter(self):
        """Fig. 5 / Theorem 5.3: the inter-layer phase slows as G_inter
        grows (fixed total GPUs and batch)."""
        times = []
        for gi in (6, 12, 24):
            cfg = small_cfg(g_inter=gi, g_data=48 // gi, batch_size=768,
                            microbatch_size=1, include_optimizer=False,
                            memopt=False)
            times.append(simulate_batch(cfg).pipeline_s)
        assert times[0] < times[1] < times[2]

    def test_memopt_tradeoff_matches_fig6(self):
        """Fig. 6: moving from (G_inter=24, no memopt) to (G_inter=6,
        memopt) shrinks the pipeline phase, grows the all-reduce phase, and
        wins overall."""
        # The paper's Fig. 6 setting: batch 2048, microbatch 1.  (The
        # dp-phase cost is batch-independent, so the pipeline saving only
        # outweighs it at realistic batch sizes.)
        without = simulate_batch(small_cfg(g_inter=24, g_data=2,
                                           microbatch_size=1,
                                           batch_size=2048, memopt=False))
        with_ = simulate_batch(small_cfg(g_inter=6, g_data=8,
                                         microbatch_size=1,
                                         batch_size=2048, memopt=True))
        assert with_.pipeline_s < without.pipeline_s
        assert with_.allreduce_s > without.allreduce_s
        assert with_.batch_time_s < without.batch_time_s

    def test_overlap_beats_no_overlap_at_k4(self):
        base = small_cfg(coarsening_k=4, bucket_size=16_000_000)
        overlapped = simulate_batch(base)
        sequential = simulate_batch(base.with_(overlap=False))
        assert overlapped.dp_opt_combined_s < sequential.dp_opt_combined_s

    def test_k1_worse_than_no_overlap(self):
        """Fig. 8: at k=1 the per-call overhead makes overlap counter-
        productive."""
        base = small_cfg(bucket_size=16_000_000)
        k1 = simulate_batch(base.with_(coarsening_k=1))
        seq = simulate_batch(base.with_(overlap=False))
        assert k1.dp_opt_combined_s > seq.dp_opt_combined_s

    def test_large_k_degrades_again(self):
        """Fig. 8: beyond the optimum the algorithm gravitates toward
        sequential behaviour."""
        base = small_cfg(bucket_size=16_000_000)
        results = {k: simulate_batch(base.with_(coarsening_k=k))
                   .dp_opt_combined_s for k in (1, 4, 8, 16, 32, 128)}
        best = min(results, key=results.get)
        assert 2 <= best <= 32
        assert results[128] > results[best]

    def test_mpi_backend_beats_nccl_for_pipeline(self):
        """Section IV-A ablation: swapping AxoNN's p2p backend to blocking
        NCCL slows the pipeline phase."""
        mpi = simulate_batch(small_cfg(backend_p2p="mpi"))
        nccl = simulate_batch(small_cfg(backend_p2p="nccl"))
        assert mpi.pipeline_s < nccl.pipeline_s

    def test_memory_enforcement(self):
        cfg = small_cfg(g_inter=6, g_data=8, memopt=False)
        with pytest.raises(OutOfMemoryError):
            simulate_batch(cfg, enforce_memory=True)
        r = simulate_batch(cfg)  # without enforcement: reported, not raised
        assert not r.feasible

    def test_machine_too_small_rejected(self):
        cfg = small_cfg()
        with pytest.raises(ValueError):
            simulate_batch(cfg, machine=Machine(spec=summit(1)))

    def test_metrics_derived(self):
        r = simulate_batch(small_cfg())
        assert 0 < r.pct_of_peak < 100
        assert r.training_days > 0
        row = r.as_row()
        assert row["model"] == "12B"
        assert row["feasible"] is True

    def test_trace_records_streams(self):
        m = Machine(spec=summit(8), trace=True)
        simulate_batch(small_cfg(batch_size=96, microbatch_size=4,
                                 coarsening_k=2), machine=m)
        cats = {s.category for s in m.tracer.spans}
        assert "compute" in cats
        assert "allreduce" in cats
        assert "optimizer" in cats

    def test_overlap_shows_in_trace(self):
        """Fig. 7: the all-reduce chunks and optimizer buckets interleave
        on separate streams."""
        from repro.sim import overlap_time
        m = Machine(spec=summit(8), trace=True)
        simulate_batch(small_cfg(batch_size=768, bucket_size=4_000_000,
                                 coarsening_k=4), machine=m)
        ar = m.tracer.by_category("allreduce")
        opt = m.tracer.by_category("optimizer")
        assert overlap_time(ar, opt) > 0

    def test_pipeline_limit_one_slows_pipeline(self):
        """With pipeline_limit=1 only one microbatch is ever in flight —
        the degenerate fully-serial pipeline."""
        fast = simulate_batch(small_cfg(batch_size=192, microbatch_size=8))
        slow = simulate_batch(small_cfg(batch_size=192, microbatch_size=8,
                                        pipeline_limit=1))
        assert slow.pipeline_s > 1.5 * fast.pipeline_s


class TestAnalyticEstimate:
    def test_tracks_des_within_tolerance(self):
        for cfg in [small_cfg(),
                    small_cfg(g_inter=12, g_data=4, batch_size=512,
                              microbatch_size=4),
                    small_cfg(memopt=False, g_inter=24, g_data=2,
                              microbatch_size=2, batch_size=512)]:
            des = simulate_batch(cfg).batch_time_s
            est = estimate_batch_time(cfg)
            assert est == pytest.approx(des, rel=0.35)

    def test_estimate_is_fast_path_consistent_ordering(self):
        """The analytic estimate must rank configurations like the DES."""
        a = small_cfg(g_inter=6, g_data=8, microbatch_size=1,
                      batch_size=512, include_optimizer=False, memopt=False)
        b = a.with_(g_inter=24, g_data=2)
        assert (estimate_batch_time(a) < estimate_batch_time(b)) == \
            (simulate_batch(a).batch_time_s < simulate_batch(b).batch_time_s)
