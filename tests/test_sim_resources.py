"""Tests for Resource / PriorityResource / Store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, PriorityResource, Resource, Store


def test_resource_serializes_unit_capacity():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, tag, hold):
        req = res.request()
        yield req
        log.append((tag, "start", env.now))
        yield env.timeout(hold)
        log.append((tag, "end", env.now))
        res.release(req)

    env.process(user(env, "a", 2))
    env.process(user(env, "b", 3))
    env.run()
    assert log == [
        ("a", "start", 0), ("a", "end", 2),
        ("b", "start", 2), ("b", "end", 5),
    ]


def test_resource_capacity_two_allows_concurrency():
    env = Environment()
    res = Resource(env, capacity=2)
    starts = []

    def user(env, tag):
        req = res.request()
        yield req
        starts.append((tag, env.now))
        yield env.timeout(1)
        res.release(req)

    for tag in range(3):
        env.process(user(env, tag))
    env.run()
    assert starts == [(0, 0), (1, 0), (2, 1)]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, tag):
        req = res.request()
        yield req
        order.append(tag)
        yield env.timeout(1)
        res.release(req)

    for tag in range(6):
        env.process(user(env, tag))
    env.run()
    assert order == list(range(6))


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_release_foreign_request_raises():
    env = Environment()
    a = Resource(env, capacity=1)
    b = Resource(env, capacity=1)
    req = a.request()
    from repro.sim import SimulationError

    with pytest.raises(SimulationError):
        b.release(req)


def test_cancel_ungranted_request():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(5)
        res.release(req)

    def impatient(env):
        req = res.request()
        yield env.timeout(1)
        res.release(req)  # cancel before grant
        order.append("gave up")

    def patient(env):
        yield env.timeout(0.5)
        req = res.request()
        yield req
        order.append(("patient", env.now))
        res.release(req)

    env.process(holder(env))
    env.process(impatient(env))
    env.process(patient(env))
    env.run()
    # The cancelled request must not block `patient` once holder releases.
    assert ("patient", 5) in order


def test_utilization_accounting():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env):
        req = res.request()
        yield req
        yield env.timeout(4)
        res.release(req)
        yield env.timeout(6)  # idle tail

    env.process(user(env))
    env.run()
    assert res.utilization() == pytest.approx(0.4)


def test_windowed_utilization_accounting():
    # Regression: utilization(since=...) used to subtract only the elapsed
    # time, not the busy time outside the window, so a window placed after
    # a busy stretch could report utilization > 1.0.
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env):
        req = res.request()
        yield req
        yield env.timeout(4)  # busy [0, 4]
        res.release(req)
        yield env.timeout(6)  # idle [4, 10]

    env.process(user(env))
    env.run()
    # Window [5, 10] is entirely idle.
    assert res.utilization(since=5) == pytest.approx(0.0)
    # Window [2, 10]: busy [2, 4] of an 8-second window.
    assert res.utilization(since=2) == pytest.approx(0.25)
    # No window ever exceeds full utilization.
    for since in [0, 1, 2, 3, 3.9]:
        assert res.utilization(since=since) <= 1.0 + 1e-12


def test_windowed_utilization_during_active_hold():
    env = Environment()
    res = Resource(env, capacity=2)
    checks = []

    def holder(env, hold):
        req = res.request()
        yield req
        yield env.timeout(hold)
        res.release(req)

    def observer(env):
        yield env.timeout(6)
        # [4, 6]: one of two slots busy on [4, 5] -> 1 / (2 * 2) = 0.25
        checks.append(res.utilization(since=4))

    env.process(holder(env, 5))
    env.process(holder(env, 3))
    env.process(observer(env))
    env.run()
    assert checks == [pytest.approx(0.25)]


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(1)
        res.release(req)

    def user(env, tag, prio):
        yield env.timeout(0.1)  # enqueue while holder active
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        res.release(req)

    env.process(holder(env))
    env.process(user(env, "low", 10))
    env.process(user(env, "high", 0))
    env.process(user(env, "mid", 5))
    env.run()
    assert order == ["high", "mid", "low"]


def test_store_fifo_items():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield env.timeout(1)
            store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [(0, 1), (1, 2), (2, 3)]


def test_store_get_before_put_blocks():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        got.append((yield store.get()))

    def producer(env):
        yield env.timeout(5)
        store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == ["late"]
    assert env.now == 5


def test_store_bounded_capacity_blocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")  # blocks until a consumed
        log.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(3)
        item = yield store.get()
        log.append((f"got-{item}", env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("put-a", 0) in log
    assert ("got-a", 3) in log
    assert ("put-b", 3) in log


def test_store_items_view_and_len():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == [1, 2]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_multiple_getters_served_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(env):
        yield env.timeout(1)
        store.put("x")
        store.put("y")

    env.process(consumer(env, "first"))
    env.process(consumer(env, "second"))
    env.process(producer(env))
    env.run()
    assert got == [("first", "x"), ("second", "y")]


@given(items=st.lists(st.integers(), min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_store_preserves_order_and_conserves_items(items):
    """Property: whatever is put into a Store comes out exactly once, in
    FIFO order, regardless of producer/consumer interleaving."""
    env = Environment()
    store = Store(env)
    out = []

    def producer(env):
        for i, item in enumerate(items):
            if i % 3 == 0:
                yield env.timeout(0.5)
            store.put(item)
        if False:
            yield  # make this a generator even for the no-timeout path

    def consumer(env):
        for _ in items:
            out.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == items


@given(
    holds=st.lists(st.floats(min_value=0.01, max_value=10,
                             allow_nan=False), min_size=1, max_size=20),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_resource_never_exceeds_capacity(holds, capacity):
    """Property: instantaneous holder count never exceeds capacity."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    max_seen = 0

    def user(env, hold):
        nonlocal max_seen
        req = res.request()
        yield req
        max_seen = max(max_seen, res.count)
        yield env.timeout(hold)
        res.release(req)

    for h in holds:
        env.process(user(env, h))
    env.run()
    assert max_seen <= capacity
    assert res.count == 0
