"""Tests for the communication-protocol verifier: trace recording from both
substrates, the static checks, and the deadlock wait-for-graph diagnosis."""

import numpy as np
import pytest

from repro.analysis import (
    ProtocolError,
    TraceRecorder,
    assert_clean,
    check_collective_order,
    check_match_order,
    check_unmatched_sends,
    verify_trace,
)
from repro.cluster import Machine, summit
from repro.comm import Message, Messenger
from repro.nn import GPTConfig, LMBatches, SyntheticCorpus
from repro.runtime import RECV, AxoNNTrainer, RankTransport


class TestChecks:
    def test_clean_trace_has_no_violations(self):
        tr = TraceRecorder()
        tr.record_send(0, 1, "forward", 0)
        tr.record_recv(1, 0, "forward", 0)
        assert verify_trace(tr) == []
        assert_clean(tr)  # must not raise

    def test_unmatched_send_detected(self):
        tr = TraceRecorder()
        tr.record_send(0, 1, "forward", 0)
        tr.record_send(0, 1, "forward", 1)
        tr.record_recv(1, 0, "forward", 0)
        violations = check_unmatched_sends(tr)
        assert len(violations) == 1
        assert violations[0].code == "UNMATCHED_SEND"
        assert "microbatch=1" in violations[0].message

    def test_match_order_mismatch_detected(self):
        tr = TraceRecorder()
        tr.record_send(0, 1, "forward", 0)
        tr.record_send(0, 1, "forward", 1)
        # Receiver consumed them in the wrong order.
        tr.record_recv(1, 0, "forward", 1)
        tr.record_recv(1, 0, "forward", 0)
        violations = check_match_order(tr)
        assert {v.code for v in violations} == {"MATCH_ORDER"}
        assert "position 0" in violations[0].message

    def test_phantom_recv_detected(self):
        tr = TraceRecorder()
        tr.record_recv(1, 0, "forward", 0)
        violations = check_match_order(tr)
        assert violations[0].code == "PHANTOM_RECV"

    def test_collective_order_divergence(self):
        tr = TraceRecorder()
        tr.record_collective(0, "allreduce", key=0)
        tr.record_collective(1, "allreduce", key=0)
        tr.record_collective(0, "allreduce", key=1)
        tr.record_collective(1, "allreduce", key=2)  # diverges at #1
        violations = check_collective_order(tr, groups=[[0, 1]])
        assert len(violations) == 1
        assert violations[0].code == "COLLECTIVE_ORDER"
        assert "#1" in violations[0].message

    def test_collective_order_clean_across_group(self):
        tr = TraceRecorder()
        for key in range(3):
            for rank in (0, 1, 2):
                tr.record_collective(rank, "allreduce", key=key)
        assert check_collective_order(tr, groups=[[0, 1, 2]]) == []

    def test_assert_clean_raises_with_listing(self):
        tr = TraceRecorder()
        tr.record_send(0, 1, "forward", 7)
        with pytest.raises(ProtocolError, match="UNMATCHED_SEND"):
            assert_clean(tr)

    def test_clear_resets(self):
        tr = TraceRecorder()
        tr.record_send(0, 1, "x", 0)
        assert len(tr) == 1
        tr.clear()
        assert len(tr) == 0 and verify_trace(tr) == []


class TestRankTransportRecording:
    def test_ping_pong_trace_is_clean(self):
        rec = TraceRecorder()
        tr = RankTransport(2, recorder=rec)

        def a():
            tr.send(0, 1, "ping", 0)
            yield RECV

        def b():
            yield RECV
            tr.send(1, 0, "pong", 0)

        tr.run({0: a(), 1: b()})
        assert len(rec.sends()) == 2
        assert len(rec.recvs()) == 2
        assert_clean(rec)

    def test_orphan_visible_in_trace(self):
        rec = TraceRecorder()
        tr = RankTransport(2, recorder=rec, strict=False)

        def sender():
            tr.send(0, 1, "lost", 4)
            return
            yield  # pragma: no cover

        def idle():
            return
            yield  # pragma: no cover

        tr.run({0: sender(), 1: idle()})
        violations = check_unmatched_sends(rec)
        assert len(violations) == 1
        assert "tag='lost'" in violations[0].message


class TestTrainerRecording:
    def _trainer(self, recorder, precision="fp32"):
        cfg = GPTConfig(vocab_size=32, seq_len=8, n_layer=2, n_head=2,
                        hidden=16)
        return cfg, AxoNNTrainer(cfg, g_inter=2, g_data=2,
                                 microbatch_size=2, precision=precision,
                                 recorder=recorder)

    def _batch(self, cfg, batch_size=8):
        corpus = SyntheticCorpus(cfg.vocab_size, 2_000, seed=0)
        return LMBatches(corpus, batch_size=batch_size,
                         seq_len=cfg.seq_len).batch(0)

    def test_full_batch_trace_verifies_clean(self):
        rec = TraceRecorder()
        cfg, trainer = self._trainer(rec)
        x, y = self._batch(cfg)
        trainer.train_batch(x, y)
        assert len(rec.sends()) > 0 and len(rec.recvs()) > 0
        columns = [trainer.grid.data_parallel_ranks(i)
                   for i in range(trainer.grid.g_inter)]
        assert_clean(rec, groups=columns)

    def test_collectives_recorded_per_column(self):
        rec = TraceRecorder()
        cfg, trainer = self._trainer(rec)
        x, y = self._batch(cfg)
        trainer.train_batch(x, y)
        colls = rec.collectives()
        assert colls, "fp32 data-parallel phase must record collectives"
        assert {e.tag for e in colls} == {"allreduce_fp32"}
        # Every rank of every column participated.
        ranks_seen = {e.rank for e in colls}
        assert ranks_seen == set(range(trainer.grid.world_size))

    def test_mixed_precision_records_chunked_collectives(self):
        rec = TraceRecorder()
        cfg, trainer = self._trainer(rec, precision="mixed")
        x, y = self._batch(cfg)
        trainer.train_batch(x, y)
        colls = rec.collectives()
        assert {e.tag for e in colls} == {"allreduce_fp16"}
        columns = [trainer.grid.data_parallel_ranks(i)
                   for i in range(trainer.grid.g_inter)]
        assert check_collective_order(rec, groups=columns) == []

    def test_training_unchanged_by_recording(self):
        """The recorder is observational: losses are bit-identical."""
        cfg, plain = self._trainer(None)
        _, recorded = self._trainer(TraceRecorder())
        x, y = self._batch(cfg)
        assert plain.train_batch(x, y).loss == \
            recorded.train_batch(x, y).loss


class TestProcessBackendRecording:
    """The protocol verifier over real-parallelism traces: worker
    processes replay their comm events into the parent's TraceRecorder,
    and the result must satisfy the same static checks as the
    cooperative backend's — indeed the identical per-rank sequences."""

    def _cfg(self):
        return GPTConfig(vocab_size=17, seq_len=6, n_layer=2, n_head=2,
                         hidden=8, dropout=0.0, init_seed=5)

    def _batch(self):
        rng = np.random.default_rng(4)
        return (rng.integers(0, 17, (4, 6)), rng.integers(0, 17, (4, 6)))

    def _record(self, backend):
        rec = TraceRecorder()
        trainer = AxoNNTrainer(self._cfg(), g_inter=2, g_data=1,
                               microbatch_size=2, backend=backend,
                               recorder=rec)
        x, y = self._batch()
        try:
            trainer.train_batch(x, y)
        finally:
            trainer.close()
        return rec

    def test_process_backend_trace_verifies_clean(self):
        rec = self._record("process")
        assert len(rec.sends()) > 0 and len(rec.recvs()) > 0
        assert verify_trace(rec) == []
        assert_clean(rec)

    def test_process_trace_matches_cooperative_trace(self):
        proc, coop = self._record("process"), self._record("cooperative")
        for rank in (0, 1):
            assert [(e.kind, e.peer, e.tag, e.microbatch)
                    for e in proc.events_of(rank)] == \
                   [(e.kind, e.peer, e.tag, e.microbatch)
                    for e in coop.events_of(rank)]


class TestMessengerRecording:
    def _setup(self, recorder=None):
        m = Machine(spec=summit(2))
        return m, Messenger(m, m.cal.mpi, recorder=recorder)

    def test_counters_count_on_delivery(self):
        """isend() alone must not bump the counters; delivery does."""
        m, msn = self._setup()
        msn.isend(Message(0, 1, 100, meta={"mb": 0}))
        msn.isend(Message(0, 1, 200, meta={"mb": 1}))
        assert msn.messages_sent == 0
        assert msn.bytes_sent == 0
        m.run()
        assert msn.messages_sent == 2
        assert msn.bytes_sent == 300

    def test_blocking_backend_counts_on_delivery_too(self):
        m = Machine(spec=summit(2))
        msn = Messenger(m, m.cal.nccl)
        msn.isend(Message(0, 1, 64, meta={"mb": 0}))
        assert msn.messages_sent == 0
        m.run()
        assert msn.messages_sent == 1

    def test_trace_records_send_and_recv(self):
        rec = TraceRecorder()
        m, msn = self._setup(recorder=rec)
        got = []

        def receiver(env):
            got.append((yield msn.irecv(1)))

        m.env.process(receiver(m.env), name="receiver")
        msn.isend(Message(0, 1, 512, tag="forward", meta={"mb": 3}))
        m.run()
        assert len(got) == 1
        assert [e.kind for e in rec.events] == ["send", "recv"]
        assert rec.events[0].microbatch == 3
        assert rec.events[1].peer == 0
        assert_clean(rec)

    def test_check_drained_flags_orphans(self):
        m, msn = self._setup()
        msn.isend(Message(0, 1, 64, tag="lost", meta={"mb": 9}))
        m.run()  # delivered into gpu 1's inbox, never received
        with pytest.raises(ProtocolError, match="tag='lost'"):
            msn.check_drained()

    def test_check_drained_passes_when_consumed(self):
        m, msn = self._setup()

        def receiver(env):
            yield msn.irecv(1)

        m.env.process(receiver(m.env), name="receiver")
        msn.isend(Message(0, 1, 64, meta={"mb": 0}))
        m.run()
        msn.check_drained()  # must not raise


class TestPipelinePhaseStrict:
    def test_pipeline_phase_trace_is_clean(self):
        from repro.core import AxoNNConfig, WEAK_SCALING_MODELS
        from repro.core.phases import run_pipeline_phase

        rec = TraceRecorder()
        cfg = AxoNNConfig(spec=WEAK_SCALING_MODELS["12B"], num_gpus=48,
                          g_inter=6, g_data=8, microbatch_size=8,
                          batch_size=512, include_optimizer=False,
                          memopt=False)
        machine = Machine(spec=summit(8))
        machine.env.process(
            run_pipeline_phase(machine, cfg, recorder=rec),
            name="phase-under-test")
        machine.run()  # strict=True: also exercises check_drained()
        assert len(rec.sends()) == len(rec.recvs()) > 0
        assert_clean(rec)
