"""Tests for the functional 1F1B / GPipe flushing trainer — the baselines'
pipeline algorithm with real numerics."""

import numpy as np
import pytest

from repro.baselines import FlushingPipelineTrainer
from repro.nn import GPTConfig, LMBatches, SyntheticCorpus
from repro.runtime import AxoNNTrainer, SerialTrainer

CFG = GPTConfig(vocab_size=19, seq_len=8, n_layer=4, n_head=2, hidden=12,
                dropout=0.0, init_seed=11)


def make_batches(batch_size=8, seed=0):
    corpus = SyntheticCorpus(CFG.vocab_size, 4000, seed=seed)
    return LMBatches(corpus, batch_size=batch_size, seq_len=CFG.seq_len)


class TestFlushingTrainer:
    def test_invalid_schedule(self):
        with pytest.raises(ValueError):
            FlushingPipelineTrainer(CFG, 2, 1, 2, schedule="wave")
        with pytest.raises(ValueError):
            FlushingPipelineTrainer(CFG, 2, 1, 0)

    @pytest.mark.parametrize("schedule", ["1f1b", "gpipe"])
    @pytest.mark.parametrize("g_inter,g_data,mbs", [
        (2, 1, 2), (3, 1, 1), (2, 2, 2), (4, 2, 1),
    ])
    def test_matches_serial(self, schedule, g_inter, g_data, mbs):
        """Flushing preserves exact optimizer semantics: same losses as
        the serial reference at every grid shape."""
        batches = make_batches()
        serial = SerialTrainer(CFG, lr=1e-3)
        flush = FlushingPipelineTrainer(CFG, g_inter=g_inter, g_data=g_data,
                                        microbatch_size=mbs, lr=1e-3,
                                        schedule=schedule)
        for i in range(3):
            x, y = batches.batch(i)
            s = serial.train_batch(x, y)
            f = flush.train_batch(x, y)
            assert f == pytest.approx(s, rel=2e-4)

    def test_matches_message_driven_axonn(self):
        """The three schedulers (serial, message-driven, static flush)
        compute the identical update — the paper's comparison is purely
        about time."""
        batches = make_batches()
        axonn = AxoNNTrainer(CFG, g_inter=2, g_data=2, microbatch_size=2,
                             lr=1e-3)
        flush = FlushingPipelineTrainer(CFG, g_inter=2, g_data=2,
                                        microbatch_size=2, lr=1e-3)
        for i in range(3):
            x, y = batches.batch(i)
            a = axonn.train_batch(x, y).loss
            f = flush.train_batch(x, y)
            assert f == pytest.approx(a, rel=1e-5)
        a_state = axonn.gather_state()
        f_state = flush.gather_state()
        for k in a_state:
            np.testing.assert_allclose(f_state[k], a_state[k], rtol=1e-5,
                                       atol=1e-7, err_msg=k)

    def test_gpipe_equals_1f1b_numerically(self):
        batches = make_batches()
        a = FlushingPipelineTrainer(CFG, 3, 1, 1, schedule="1f1b")
        b = FlushingPipelineTrainer(CFG, 3, 1, 1, schedule="gpipe")
        for i in range(2):
            x, y = batches.batch(i)
            la = a.train_batch(x, y)
            lb = b.train_batch(x, y)
            assert la == pytest.approx(lb, rel=1e-6)

    def test_batch_divisibility_checked(self):
        t = FlushingPipelineTrainer(CFG, 2, 2, 2)
        x = np.zeros((6, CFG.seq_len), dtype=np.int64)
        with pytest.raises(ValueError):
            t.train_batch(x, x)

    def test_checkpointed_flush_matches(self):
        batches = make_batches()
        plain = FlushingPipelineTrainer(CFG, 2, 1, 2)
        ckpt = FlushingPipelineTrainer(CFG, 2, 1, 2,
                                       checkpoint_activations=True)
        x, y = batches.batch(0)
        assert ckpt.train_batch(x, y) == pytest.approx(
            plain.train_batch(x, y), rel=1e-5)

    def test_training_converges(self):
        batches = make_batches()
        t = FlushingPipelineTrainer(CFG, 2, 2, 2, lr=5e-3)
        losses = [t.train_batch(*batches.batch(i)) for i in range(15)]
        assert np.mean(losses[-3:]) < np.mean(losses[:3])
