"""Gradient checks for the fused kernels in ``repro.nn.functional``.

Every fused op is verified three ways:

* against its ``*_unfused`` primitive composition (same forward values,
  same gradients — an independent derivation of the same math);
* against central finite differences in float64;
* for graph economy: one fused call records exactly one autograd node
  where the composition records several.

Plus the operational corners: fp16 inputs survive forward + backward with
the dtype preserved, and degenerate shapes (batch 1, seq 1) work.
"""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.perf import counters, counting

H = 8  # trailing (feature) dimension shared by all cases
SHAPES = [(2, 3, H), (1, 3, H), (2, 1, H), (1, 1, H)]


def _rng():
    return np.random.default_rng(1234)


def _params(dtype=np.float32):
    rng = _rng()
    w = Tensor(rng.standard_normal((H, H)).astype(dtype) * 0.5,
               requires_grad=True)
    b = Tensor(rng.standard_normal(H).astype(dtype) * 0.1,
               requires_grad=True)
    ln_w = Tensor((1.0 + 0.1 * rng.standard_normal(H)).astype(dtype),
                  requires_grad=True)
    ln_b = Tensor((0.1 * rng.standard_normal(H)).astype(dtype),
                  requires_grad=True)
    return w, b, ln_w, ln_b


def _causal(t):
    return np.triu(np.ones((t, t), dtype=bool), k=1)


def _cases(shape, dtype=np.float32):
    """{op: (fused_builder, unfused_builder, n_param_tensors)}.

    Each builder maps (x: Tensor, params: tuple) -> Tensor.  Params are
    rebuilt per variant by the caller so gradients do not mix.
    """
    t = shape[-2] if len(shape) >= 2 else 1
    targets = _rng().integers(0, H, size=shape[:-1])
    mask = _causal(shape[-1])  # masked_softmax uses a square trailing block
    scale = 0.37

    return {
        "softmax": (lambda x, p: F.softmax(x),
                    lambda x, p: F.softmax_unfused(x), 0),
        "log_softmax": (lambda x, p: F.log_softmax(x),
                        lambda x, p: F.log_softmax_unfused(x), 0),
        "gelu": (lambda x, p: F.gelu(x),
                 lambda x, p: F.gelu_unfused(x), 0),
        "layer_norm": (lambda x, p: F.layer_norm(x, p[2], p[3]),
                       lambda x, p: F.layer_norm_unfused(x, p[2], p[3]), 2),
        "cross_entropy": (lambda x, p: F.cross_entropy(x, targets),
                          lambda x, p: F.cross_entropy_unfused(x, targets),
                          0),
        "linear": (lambda x, p: F.linear(x, p[0], p[1]),
                   lambda x, p: F.linear_unfused(x, p[0], p[1]), 2),
        "linear_nobias": (lambda x, p: F.linear(x, p[0]),
                          lambda x, p: F.linear_unfused(x, p[0]), 1),
        "masked_softmax": (
            lambda x, p: F.masked_softmax(x, mask, scale=scale),
            lambda x, p: F.softmax(F.where_mask(x * scale, mask, -1e9)), 0),
        "mean": (lambda x, p: x.mean(axis=-1),
                 lambda x, p: x.sum(axis=-1) * (1.0 / x.shape[-1]), 0),
    }


OP_NAMES = sorted(_cases((2, 3, H)))


def _grad_params(op, params):
    """The parameter tensors whose gradients the op under test touches."""
    w, b, ln_w, ln_b = params
    return {"layer_norm": [ln_w, ln_b], "linear": [w, b],
            "linear_nobias": [w]}.get(op, [])


def _scalarize(out):
    """Deterministic projection to a scalar loss."""
    if out.data.size == 1:
        return out if out.data.ndim == 0 else out.sum()
    proj = np.linspace(0.5, 1.5, out.data.size,
                       dtype=np.float64).reshape(out.shape)
    return (out * Tensor(proj.astype(out.data.dtype))).sum()


def _run(builder, x_data, dtype=np.float32):
    x = Tensor(np.asarray(x_data, dtype=dtype), requires_grad=True)
    params = _params(dtype)
    out = builder(x, params)
    _scalarize(out).backward()
    return out, x, params


@pytest.mark.parametrize("shape", SHAPES, ids=str)
@pytest.mark.parametrize("op", OP_NAMES)
def test_fused_matches_unfused(op, shape):
    fused_b, unfused_b, _ = _cases(shape)[op]
    if op == "masked_softmax":
        shape = shape[:-2] + (shape[-1], shape[-1])  # square trailing block
    x_data = _rng().standard_normal(shape)

    out_f, x_f, p_f = _run(fused_b, x_data)
    out_u, x_u, p_u = _run(unfused_b, x_data)

    np.testing.assert_allclose(out_f.data, out_u.data, rtol=1e-5, atol=1e-6)
    np.testing.assert_allclose(x_f.grad, x_u.grad, rtol=1e-4, atol=1e-6)
    for pf, pu in zip(_grad_params(op, p_f), _grad_params(op, p_u)):
        np.testing.assert_allclose(pf.grad, pu.grad, rtol=1e-4, atol=1e-6)


@pytest.mark.parametrize("op", OP_NAMES)
def test_fused_matches_finite_differences(op):
    shape = (2, 3, H)
    fused_b, _, _ = _cases(shape)[op]
    if op == "masked_softmax":
        shape = shape[:-2] + (shape[-1], shape[-1])
    x_data = _rng().standard_normal(shape)  # float64

    _, x, params = _run(fused_b, x_data, dtype=np.float64)

    def loss_at(arr):
        xt = Tensor(arr.copy(), requires_grad=True)
        return float(_scalarize(fused_b(xt, _params(np.float64))).data)

    eps = 1e-6
    num = np.zeros_like(x_data)
    it = np.nditer(x_data, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        bumped = x_data.copy()
        bumped[idx] += eps
        up = loss_at(bumped)
        bumped[idx] -= 2 * eps
        down = loss_at(bumped)
        num[idx] = (up - down) / (2 * eps)
    np.testing.assert_allclose(x.grad, num, rtol=1e-5, atol=1e-7)


@pytest.mark.parametrize("op", OP_NAMES)
def test_fused_fp16_inputs(op):
    shape = (2, 3, H)
    fused_b, _, _ = _cases(shape)[op]
    if op == "masked_softmax":
        shape = shape[:-2] + (shape[-1], shape[-1])
    x_data = (0.25 * _rng().standard_normal(shape))

    out, x, _ = _run(fused_b, x_data, dtype=np.float16)
    assert out.data.dtype == np.float16
    assert x.grad.dtype == np.float16
    assert np.isfinite(out.data).all()
    assert np.isfinite(x.grad).all()


@pytest.mark.parametrize("op", OP_NAMES)
def test_fused_records_single_node(op):
    shape = (2, 3, H)
    fused_b, unfused_b, n_params = _cases(shape)[op]
    if op == "masked_softmax":
        shape = shape[:-2] + (shape[-1], shape[-1])
    x_data = _rng().standard_normal(shape)
    x = Tensor(np.asarray(x_data, dtype=np.float32), requires_grad=True)
    params = _params()

    with counting():
        fused_b(x, params)
        fused_nodes = counters.get("graph_nodes")
    with counting():
        unfused_b(x, params)
        unfused_nodes = counters.get("graph_nodes")

    assert fused_nodes == 1
    assert unfused_nodes > 1


def test_masked_softmax_masked_positions_are_inert():
    t = 6
    mask = _causal(t)
    x = Tensor(_rng().standard_normal((2, t, t)).astype(np.float32),
               requires_grad=True)
    out = F.masked_softmax(x, mask, scale=0.5)
    assert np.all(out.data[:, mask] == 0.0)
    np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-6)
    _scalarize(out).backward()
    assert np.all(x.grad[:, mask] == 0.0)


def test_mean_is_single_node_and_matches_composite():
    x_data = _rng().standard_normal((3, 4, 5)).astype(np.float32)
    for kwargs in ({}, {"axis": -1}, {"axis": 1, "keepdims": True},
                   {"axis": (0, 2)}):
        xa = Tensor(x_data.copy(), requires_grad=True)
        xb = Tensor(x_data.copy(), requires_grad=True)
        ma = xa.mean(**kwargs)
        count = x_data.size // ma.data.size
        mb = xb.sum(**kwargs) * (1.0 / count)
        np.testing.assert_array_equal(ma.data, mb.data)
        _scalarize(ma).backward()
        _scalarize(mb).backward()
        np.testing.assert_allclose(xa.grad, xb.grad, rtol=1e-6, atol=1e-7)
    with counting():
        Tensor(x_data, requires_grad=True).mean()
        assert counters.get("graph_nodes") == 1
