"""Tests for the real-parallelism execution backend: shared-memory rings,
the :class:`ProcessTransport` contract, worker failure semantics, the
per-rank JSONL span pipeline, and the cooperative transport's send-time
bookkeeping fixed alongside it.

Rank programs handed to :class:`ProgramSpec` must be module-level (they
pickle by reference across the process boundary), so every program used
here lives at the top of this module.
"""

import json
import os
import signal

import numpy as np
import pytest

from repro.nn import GPTConfig
from repro.obs import (RuntimeTracer, merge_rank_jsonl, read_spans_jsonl,
                       write_chrome_trace_multiprocess)
from repro.resilience import Fault, FaultPlan, ResilientTrainer, RetryPolicy
from repro.runtime import (RECV, AxoNNTrainer, ProcessTransport, ProgramSpec,
                           RankFailure, RankTransport, ShmRing,
                           ring_allreduce)
from repro.runtime.parallel import _payload_ok
from repro.runtime.shm import RingFull
from repro.runtime.transport import ProtocolError


# -- module-level rank programs (ship to workers as ProgramSpecs) -------------

def pingpong(rank, send, payload):
    """Rank 0 sends ``payload`` to rank 1 and echoes back what returns."""
    if rank == 0:
        send(1, "ping", 0, payload)
        pkt = yield RECV
        return pkt.data
    pkt = yield RECV
    send(0, "pong", 0, pkt.data * 2)
    return None


def compute_only(rank, send, value):
    """No communication at all: a plain function, not a generator."""
    return value + rank


def orphan_sender(rank, send):
    """Rank 0 sends two messages; rank 1 consumes only one."""
    if rank == 0:
        send(1, "data", 0, np.arange(3))
        send(1, "data", 1, np.arange(3))
        return None
        yield  # pragma: no cover - generator marker
    pkt = yield RECV
    return pkt.microbatch


def closure_sender(rank, send):
    """Tries to push a lambda through the ring (worker-side REP008)."""
    if rank == 0:
        send(1, "bad", 0, lambda: 1)  # lint-ok: REP008 deliberate violation
        return None
        yield  # pragma: no cover - generator marker
    pkt = yield RECV
    return pkt.data


def suicide(rank, send):
    """Rank 1 SIGKILLs itself mid-protocol; rank 0 blocks on the reply."""
    if rank == 0:
        send(1, "ping", 0, 1.0)
        pkt = yield RECV
        return pkt.data
    pkt = yield RECV
    os.kill(os.getpid(), signal.SIGKILL)  # never returns


# -- ShmRing ------------------------------------------------------------------

class TestShmRing:
    def test_roundtrip_and_counters(self):
        ring = ShmRing.create(4096)
        try:
            assert ring.pop() is None
            assert ring.frames() == 0
            ring.push(("tag", 0, 0.0, np.arange(4)))
            ring.push(("tag", 1, 0.0, None))
            assert ring.frames() == 2
            assert ring.unread() > 0
            tag, mb, _ts, data = ring.pop()
            assert (tag, mb) == ("tag", 0)
            np.testing.assert_array_equal(data, np.arange(4))
            assert ring.frames() == 1
            assert ring.pop()[1] == 1
            assert ring.frames() == 0
            assert ring.pop() is None
        finally:
            ring.close()
            ring.unlink()

    def test_wraparound_preserves_every_frame(self):
        ring = ShmRing.create(1024)
        payload = np.arange(13, dtype=np.float64)
        try:
            # Many pushes of a frame ~1/5 the capacity force the write
            # position to wrap the payload region repeatedly.
            for i in range(50):
                ring.push((i, payload * i))
                got_i, got = ring.pop()
                assert got_i == i
                np.testing.assert_array_equal(got, payload * i)
        finally:
            ring.close()
            ring.unlink()

    def test_attach_sees_creator_frames(self):
        ring = ShmRing.create(2048)
        try:
            ring.push("hello")
            other = ShmRing.attach(ring.name, 2048)
            try:
                assert other.frames() == 1
                assert other.pop() == "hello"
                assert ring.frames() == 0
            finally:
                other.close()
        finally:
            ring.close()
            ring.unlink()

    def test_oversized_frame_rejected(self):
        ring = ShmRing.create(1024)
        try:
            with pytest.raises(RingFull):
                ring.push(np.zeros(4096, dtype=np.float64))
        finally:
            ring.close()
            ring.unlink()

    def test_drain(self):
        ring = ShmRing.create(2048)
        try:
            for i in range(5):
                ring.push(i)
            assert ring.drain() == [0, 1, 2, 3, 4]
            assert ring.frames() == 0
        finally:
            ring.close()
            ring.unlink()

    def test_minimum_capacity_enforced(self):
        with pytest.raises(ValueError):
            ShmRing.create(8)


# -- ProcessTransport ---------------------------------------------------------

class TestProcessTransport:
    def test_generic_programs_roundtrip(self):
        transport = ProcessTransport(2)
        try:
            data = np.arange(5, dtype=np.float32)
            results = transport.run({0: ProgramSpec(pingpong, data),
                                     1: ProgramSpec(pingpong, None)})
            np.testing.assert_array_equal(results[0], data * 2)
            assert results[1] is None
            assert transport.finished == {0, 1}
            assert transport.messages_sent == 2
        finally:
            transport.close()

    def test_plain_function_programs(self):
        transport = ProcessTransport(3)
        try:
            results = transport.run(
                {r: ProgramSpec(compute_only, 10) for r in range(3)})
            assert results == {0: 10, 1: 11, 2: 12}
        finally:
            transport.close()

    def test_pool_reusable_across_runs(self):
        transport = ProcessTransport(2)
        try:
            for i in range(3):
                results = transport.run(
                    {r: ProgramSpec(compute_only, i) for r in range(2)})
                assert results == {0: i, 1: i + 1}
        finally:
            transport.close()

    def test_strict_orphans_raise(self):
        transport = ProcessTransport(2)
        try:
            with pytest.raises(ProtocolError, match="orphan"):
                transport.run({0: ProgramSpec(orphan_sender),
                               1: ProgramSpec(orphan_sender)})
            assert len(transport.lost_packets) == 1
        finally:
            transport.close()

    def test_non_programspec_rejected(self):
        transport = ProcessTransport(2)
        try:
            with pytest.raises(ProtocolError, match="ProgramSpec"):
                transport.run({0: pingpong(0, lambda *a: None, None),
                               1: ProgramSpec(pingpong, None)})
        finally:
            transport.close()

    def test_parent_send_rejects_closures(self):
        transport = ProcessTransport(2)
        try:
            with pytest.raises(ProtocolError, match="REP008"):
                transport.send(0, 1, "bad", 0, lambda: 1)  # lint-ok: REP008
        finally:
            transport.close()

    def test_worker_send_rejects_closures(self):
        transport = ProcessTransport(2)
        try:
            with pytest.raises(RuntimeError, match="REP008"):
                transport.run({0: ProgramSpec(closure_sender),
                               1: ProgramSpec(compute_only, 0)})
        finally:
            transport.close()

    def test_sigkilled_worker_becomes_rank_failure(self):
        transport = ProcessTransport(2)
        try:
            with pytest.raises(RankFailure) as exc:
                transport.run({0: ProgramSpec(suicide),
                               1: ProgramSpec(suicide)})
            assert exc.value.dead == [1]
            assert transport.dead == {1}
        finally:
            transport.close()

    def test_payload_predicate(self):
        assert _payload_ok(np.arange(3))
        assert _payload_ok(3.5)
        assert _payload_ok(None)
        assert _payload_ok({"losses": [1.0]})
        assert not _payload_ok(lambda: 1)
        assert not _payload_ok((x for x in range(3)))


def test_ring_allreduce_process_backend_matches_cooperative():
    arrays = {r: np.random.default_rng(r).normal(size=23).astype(np.float32)
              for r in range(3)}
    coop = ring_allreduce({r: v.copy() for r, v in arrays.items()})
    proc = ring_allreduce({r: v.copy() for r, v in arrays.items()},
                          backend="process")
    for r in arrays:
        np.testing.assert_array_equal(proc[r], coop[r])


# -- per-rank JSONL spans and the merged multiprocess Chrome trace ------------

def test_worker_spans_merge_into_chrome_trace(tmp_path):
    tracer = RuntimeTracer()
    trace_dir = str(tmp_path / "ranks")
    os.makedirs(trace_dir)
    transport = ProcessTransport(2, tracer=tracer, trace_dir=trace_dir)
    try:
        transport.run({0: ProgramSpec(pingpong, np.arange(3)),
                       1: ProgramSpec(pingpong, None)})
    finally:
        transport.close()

    spans, pids = merge_rank_jsonl(trace_dir)
    assert spans, "workers wrote no spans"
    assert pids and all(pid != os.getpid() for pid in pids.values())
    # Spans come back aligned to the parent's clock origin and sorted.
    assert all(a.start <= b.start for a, b in zip(spans, spans[1:]))

    out = tmp_path / "trace.json"
    write_chrome_trace_multiprocess(str(out), trace_dir,
                                    extra_spans=tracer.spans)
    doc = json.loads(out.read_text())
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    real_pids = {e.get("pid") for e in events if e.get("ph") == "X"}
    assert any(pid in set(pids.values()) for pid in real_pids)


def test_span_jsonl_roundtrip(tmp_path):
    tracer = RuntimeTracer()
    tracer.record(0, "net", "forward", 0.0, 1.5, category="p2p",
                  microbatch=3)
    path = str(tmp_path / "rank0.jsonl")
    from repro.obs import append_spans_jsonl
    append_spans_jsonl(path, tracer.spans, pid=1234)
    spans, pids = read_spans_jsonl(path)
    assert pids == {0: 1234}
    assert spans[0].name == "forward"
    assert spans[0].microbatch == 3


# -- real SIGKILL mid-step, detected and recovered bit-identically ------------

def test_sigkill_recovery_is_bit_identical():
    cfg = GPTConfig(vocab_size=17, seq_len=6, n_layer=2, n_head=2, hidden=8,
                    dropout=0.1, init_seed=5)
    rng = np.random.default_rng(4)
    batches = [(rng.integers(0, 17, (4, 6)), rng.integers(0, 17, (4, 6)))
               for _ in range(3)]

    reference = AxoNNTrainer(cfg, g_inter=2, g_data=1, microbatch_size=2)
    ref_losses = [reference.train_batch(x, y).loss for x, y in batches]

    plan = FaultPlan.of(Fault(kind="crash", rank=1, step=1, tick=1))
    trainer = AxoNNTrainer(cfg, g_inter=2, g_data=1, microbatch_size=2,
                           backend="process")
    resilient = ResilientTrainer(trainer, plan)
    try:
        losses = [resilient.train_batch(x, y).loss for x, y in batches]
    finally:
        trainer.close()

    assert resilient.total_recoveries == 1
    assert resilient.recoveries[0].dead == (1,)
    assert losses == ref_losses  # exact equality, not approx


def test_sigkill_tp_follower_respawns_whole_group():
    """A dead tensor-parallel *follower* cannot be rebuilt alone (its
    shards live with the group lead): recovery must expand the failure
    to the full TP group, respawn it, and still converge bit-identically.
    Rank 1 at g_inter=2 x g_intra=2 is stage 0's follower (t=1)."""
    cfg = GPTConfig(vocab_size=17, seq_len=6, n_layer=2, n_head=2, hidden=8,
                    dropout=0.0, init_seed=5)
    rng = np.random.default_rng(4)
    batches = [(rng.integers(0, 17, (4, 6)), rng.integers(0, 17, (4, 6)))
               for _ in range(3)]

    reference = AxoNNTrainer(cfg, g_inter=2, g_data=1, g_intra=2,
                             microbatch_size=2)
    ref_losses = [reference.train_batch(x, y).loss for x, y in batches]

    plan = FaultPlan.of(Fault(kind="crash", rank=1, step=1, tick=1))
    trainer = AxoNNTrainer(cfg, g_inter=2, g_data=1, g_intra=2,
                           microbatch_size=2, backend="process")
    resilient = ResilientTrainer(trainer, plan)
    try:
        losses = [resilient.train_batch(x, y).loss for x, y in batches]
    finally:
        trainer.close()

    assert resilient.total_recoveries == 1
    event = resilient.recoveries[0]
    assert event.tp_groups == ((0, 1),)   # stage 0's intra group
    assert 0 in event.dead and 1 in event.dead  # lead dragged in
    assert losses == ref_losses  # exact equality, not approx


def test_channel_faults_rejected_on_process_backend():
    cfg = GPTConfig(vocab_size=17, seq_len=6, n_layer=2, n_head=2, hidden=8,
                    dropout=0.0, init_seed=5)
    plan = FaultPlan.of(Fault(kind="drop", src=0, dst=1, count=1))
    trainer = AxoNNTrainer(cfg, g_inter=2, g_data=1, microbatch_size=2,
                           backend="process")
    resilient = ResilientTrainer(trainer, plan)
    rng = np.random.default_rng(4)
    x, y = rng.integers(0, 17, (4, 6)), rng.integers(0, 17, (4, 6))
    try:
        with pytest.raises(NotImplementedError, match="crash"):
            resilient.train_batch(x, y)
    finally:
        trainer.close()


# -- cooperative transport: send-time bookkeeping cannot leak -----------------

class TestSendTimesBookkeeping:
    @staticmethod
    def _producer(transport):
        for mb in range(4):
            transport.send(0, 1, "data", mb, float(mb))
        return None
        yield  # pragma: no cover - generator marker

    @staticmethod
    def _consumer(n):
        got = []
        for _ in range(n):
            pkt = yield RECV
            got.append(pkt.data)
        return got

    def test_delivered_sends_are_purged(self):
        tracer = RuntimeTracer()
        transport = RankTransport(2, tracer=tracer)
        transport.run({0: self._producer(transport),
                       1: self._consumer(4)})
        assert transport._send_times == {}

    def test_lost_sends_are_purged_not_leaked(self):
        from repro.resilience.faults import FaultInjector
        tracer = RuntimeTracer()
        plan = FaultPlan.of(Fault(kind="drop", src=0, dst=1, tag="data",
                                  count=4))
        injector = FaultInjector(plan, step=None)
        transport = RankTransport(
            2, tracer=tracer, injector=injector,
            retry=RetryPolicy(max_retries=0), strict=False)
        transport.run({0: self._producer(transport),
                       1: self._consumer_with_timeout()})
        assert len(transport.lost_packets) == 4
        # The fix under test: losses must purge their _send_times entries
        # (they used to rot there forever, keyed by (src, dst, tag, mb)).
        assert transport._send_times == {}

    @staticmethod
    def _consumer_with_timeout():
        from repro.runtime.transport import recv_within
        got = []
        for _ in range(4):
            try:
                pkt = yield recv_within(50)
                got.append(pkt.data)
            except TimeoutError:
                break
        return got
