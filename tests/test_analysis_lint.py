"""Unit tests for the repo-specific AST lint rules (REP001-REP012)."""

import textwrap

from repro.analysis import lint_source
from repro.analysis.lint import RULES


def _codes(source):
    return [i.code for i in lint_source(textwrap.dedent(source))]


class TestREP001:
    def test_upstream_gradient_flagged(self):
        src = """
        def op(x):
            def backward(g, a=x):
                a._accumulate_owned(g)
            return backward
        """
        assert _codes(src) == ["REP001"]

    def test_view_of_upstream_flagged(self):
        for expr in ("g[0]", "g.T", "g.reshape(2, 2)",
                     "np.broadcast_to(g, (2, 2))", "_unbroadcast(g, shape)"):
            src = f"""
            def op(x):
                def backward(g, a=x):
                    a._accumulate_owned({expr})
                return backward
            """
            assert _codes(src) == ["REP001"], expr

    def test_parent_data_view_flagged(self):
        src = """
        def op(x):
            def backward(g, a=x):
                a._accumulate_owned(a.data[:1])
            return backward
        """
        assert _codes(src) == ["REP001"]

    def test_fresh_allocation_allowed(self):
        src = """
        def op(x):
            def backward(g, a=x):
                a._accumulate_owned(g * 2.0)
                a._accumulate_owned(-g)
                a._accumulate_owned(np.ascontiguousarray(
                    np.broadcast_to(g, a.data.shape)))
            return backward
        """
        assert _codes(src) == []

    def test_accumulate_unowned_always_allowed(self):
        src = """
        def op(x):
            def backward(g, a=x):
                a._accumulate(g)
            return backward
        """
        assert _codes(src) == []

    def test_only_backward_like_functions_checked(self):
        src = """
        def helper(q, target):
            target._accumulate_owned(q)
        """
        assert _codes(src) == []


class TestREP002:
    def test_non_recv_yield_flagged(self):
        src = """
        def program(tr):
            pkt = yield RECV
            yield "something-else"
        """
        assert _codes(src) == ["REP002"]

    def test_pure_recv_program_clean(self):
        src = """
        def program(tr):
            for _ in range(4):
                pkt = yield RECV
        """
        assert _codes(src) == []

    def test_bare_yield_marker_allowed(self):
        src = """
        def program(tr):
            if done:
                return
                yield
            pkt = yield RECV
        """
        assert _codes(src) == []

    def test_yield_from_flagged(self):
        src = """
        def program(tr):
            pkt = yield RECV
            yield from other()
        """
        assert _codes(src) == ["REP002"]

    def test_non_rank_generators_untouched(self):
        src = """
        def sim_proc(env):
            yield env.timeout(1.0)
            yield store.get()
        """
        assert _codes(src) == []

    def test_timed_recv_is_a_valid_marker(self):
        # recv_within(...) joined RECV as a legal rank-program yield when
        # the fault layer landed; REP002 must not flag it (REP006 governs
        # its error handling instead).
        src = """
        def program(tr):
            pkt = yield RECV
            try:
                pkt = yield recv_within(5)
            except TimeoutError:
                pass
        """
        assert _codes(src) == []


class TestREP003:
    def test_unseeded_default_rng_flagged(self):
        assert _codes("rng = np.random.default_rng()\n") == ["REP003"]

    def test_seeded_default_rng_allowed(self):
        assert _codes("rng = np.random.default_rng(7)\n") == []
        assert _codes("rng = np.random.default_rng(seed)\n") == []

    def test_legacy_api_flagged(self):
        assert _codes("x = np.random.randn(3)\n") == ["REP003"]
        assert _codes("np.random.seed(0)\n") == ["REP003"]

    def test_generator_methods_allowed(self):
        assert _codes("x = rng.standard_normal(3)\n") == []


class TestREP004:
    def test_unnamed_process_flagged(self):
        assert _codes("env.process(worker())\n") == ["REP004"]
        assert _codes("machine.env.process(worker())\n") == ["REP004"]

    def test_named_process_allowed(self):
        assert _codes("env.process(worker(), name='w')\n") == []

    def test_other_process_methods_untouched(self):
        assert _codes("pool.process(item)\n") == []


class TestREP005:
    def test_unprotected_grant_yield_flagged(self):
        src = """
        def proc(env, res):
            req = res.request()
            yield req
            yield env.timeout(1.0)
            res.release(req)
        """
        assert _codes(src) == ["REP005"]

    def test_direct_request_yield_flagged(self):
        # The grant object is discarded: nothing can ever release it.
        src = """
        def proc(env, res):
            yield res.request()
            yield env.timeout(1.0)
        """
        assert _codes(src) == ["REP005"]

    def test_try_finally_with_release_clean(self):
        src = """
        def proc(env, res):
            req = res.request()
            try:
                yield req
                yield env.timeout(1.0)
            finally:
                res.release(req)
        """
        assert _codes(src) == []

    def test_finally_without_release_still_flagged(self):
        src = """
        def proc(env, res):
            req = res.request()
            try:
                yield req
            finally:
                log.append("done")
        """
        assert _codes(src) == ["REP005"]

    def test_loop_acquire_pattern_clean(self):
        # The Fabric idiom: acquire several resources inside one guarded
        # block, release them all (including a still-pending request) in
        # the finally.
        src = """
        def transfer(env, resources):
            grants = []
            try:
                for res in resources:
                    req = res.request()
                    grants.append((res, req))
                    yield req
                yield env.timeout(1.0)
            finally:
                for res, req in reversed(grants):
                    res.release(req)
        """
        assert _codes(src) == []

    def test_non_request_yields_untouched(self):
        src = """
        def proc(env, store):
            item = yield store.get()
            yield env.timeout(1.0)
        """
        assert _codes(src) == []


class TestREP006:
    def test_unprotected_timed_recv_flagged(self):
        src = """
        def program(tr):
            pkt = yield RECV
            pkt = yield recv_within(10)
        """
        assert _codes(src) == ["REP006"]

    def test_timeout_handler_clean(self):
        src = """
        def program(tr):
            try:
                pkt = yield recv_within(10)
            except TimeoutError:
                return
        """
        assert _codes(src) == []

    def test_rank_failure_handler_clean(self):
        src = """
        def program(tr):
            try:
                pkt = yield recv_within(10)
            except RankFailure:
                return
        """
        assert _codes(src) == []

    def test_bare_except_clean(self):
        src = """
        def program(tr):
            try:
                pkt = yield recv_within(10)
            except:
                return
        """
        assert _codes(src) == []

    def test_tuple_handler_clean(self):
        src = """
        def program(tr):
            try:
                pkt = yield recv_within(10)
            except (ValueError, TimeoutError):
                return
        """
        assert _codes(src) == []

    def test_wrong_handler_still_flagged(self):
        src = """
        def program(tr):
            try:
                pkt = yield recv_within(10)
            except ValueError:
                return
        """
        assert _codes(src) == ["REP006"]

    def test_yield_in_handler_not_protected_by_its_own_try(self):
        src = """
        def program(tr):
            try:
                pkt = yield RECV
            except TimeoutError:
                pkt = yield recv_within(3)
        """
        assert _codes(src) == ["REP006"]

    def test_timed_recv_in_loop_body_flagged(self):
        src = """
        def program(tr):
            for _ in range(4):
                pkt = yield recv_within(5)
        """
        assert _codes(src) == ["REP006"]

    def test_plain_recv_needs_no_handler(self):
        src = """
        def program(tr):
            pkt = yield RECV
        """
        assert _codes(src) == []

    def test_non_rank_generators_untouched(self):
        src = """
        def sim_proc(env):
            yield env.timeout(1.0)
        """
        assert _codes(src) == []


class TestREP007:
    SERVE = "src/repro/serve/engine.py"

    def _codes_at(self, source, path):
        return [i.code for i in lint_source(textwrap.dedent(source), path)]

    def test_derived_seed_in_serve_flagged(self):
        for arg in ("time.time()", "os.getpid()", "hash(rid)"):
            src = f"rng = np.random.default_rng({arg})\n"
            assert self._codes_at(src, self.SERVE) == ["REP007"], arg

    def test_explicit_seed_allowed(self):
        for arg in ("0", "req.seed", "seed", "self.seed * 3 + rid",
                    "spec.seed + 1"):
            src = f"rng = np.random.default_rng({arg})\n"
            assert self._codes_at(src, self.SERVE) == [], arg

    def test_no_arg_case_belongs_to_rep003(self):
        src = "rng = np.random.default_rng()\n"
        assert self._codes_at(src, self.SERVE) == ["REP003"]

    def test_non_serve_paths_exempt(self):
        src = "rng = np.random.default_rng(time.time())\n"
        assert self._codes_at(src, "src/repro/nn/generation.py") == []

    def test_suppression_comment(self):
        src = ("rng = np.random.default_rng(time.time())"
               "  # lint-ok: REP007 demo\n")
        assert self._codes_at(src, self.SERVE) == []


class TestREP008:
    def test_lambda_payload_flagged(self):
        src = """
        def program(send):
            send(1, "forward", 0, lambda x: x + 1)
        """
        assert _codes(src) == ["REP008"]

    def test_generator_expression_payload_flagged(self):
        src = """
        def program(send):
            send(1, "forward", 0, (x for x in range(3)))
        """
        assert _codes(src) == ["REP008"]

    def test_method_send_with_lambda_flagged(self):
        src = """
        def step(transport):
            transport.send(0, 1, "forward", 0, lambda: None)
        """
        assert _codes(src) == ["REP008"]

    def test_local_function_payload_flagged(self):
        src = """
        def program(send):
            def hook(x):
                return x
            send(1, "forward", 0, hook)
        """
        assert _codes(src) == ["REP008"]

    def test_assigned_lambda_payload_flagged(self):
        src = """
        def program(send):
            hook = lambda x: x
            send(1, "forward", 0, hook)
        """
        assert _codes(src) == ["REP008"]

    def test_ndarray_and_scalar_payloads_clean(self):
        src = """
        def program(send, out):
            send(1, "forward", 0, out)
            send(1, "forward", 1, 3.5)
            send(1, "forward", 2, {"loss": 0.1})
        """
        assert _codes(src) == []

    def test_module_level_callable_by_name_clean(self):
        # Module-level functions pickle by reference (ProgramSpec relies
        # on this); only *locally defined* ones are flagged.
        src = """
        def dispatch(conn, fn, args):
            conn.send(("call", fn, args))
        """
        assert _codes(src) == []

    def test_generator_send_protocol_clean(self):
        src = """
        def drive(gen, pkt):
            return gen.send(pkt)
        """
        assert _codes(src) == []

    def test_suppression_comment(self):
        src = ('def f(send):\n'
               '    send(1, "t", 0, lambda: 1)  # lint-ok: REP008 demo\n')
        assert lint_source(src) == []


class TestREP010:
    def test_sink_record_without_group_flagged(self):
        src = """
        def emit(trace, rank, mb):
            trace.record_collective(rank, "tp_allgather", key=("fwd", mb))
        """
        assert _codes(src) == ["REP010"]

    def test_sink_record_with_group_key_clean(self):
        src = """
        def emit(trace, rank, mb, group_key):
            trace.record_collective(rank, "tp_allgather",
                                    key=(group_key, "fwd", mb))
        """
        assert _codes(src) == []

    def test_raw_record_call_without_group_flagged(self):
        src = """
        def emit(self, mb, nbytes):
            self.record(self.rank, "tp_reduce_scatter", ("bwd", mb), nbytes)
        """
        assert _codes(src) == ["REP010"]

    def test_wrapper_forwarding_group_key_clean(self):
        # The TPComm shape: the wrapper owns the group key, call sites
        # pass only (op, direction, microbatch, nbytes).
        src = """
        class Comm:
            def record_collective(self, op, direction, microbatch, nbytes):
                self.record(self.rank, op,
                            (self.group_key, direction, microbatch), nbytes)

        def emit(comm, mb, n):
            comm.record_collective("tp_allgather", "fwd", mb, n)
        """
        assert _codes(src) == []

    def test_wrapper_dropping_group_key_flagged(self):
        src = """
        class Comm:
            def record_collective(self, op, direction, microbatch, nbytes):
                self.record(self.rank, op, (direction, microbatch), nbytes)
        """
        assert _codes(src) == ["REP010"]

    def test_mispaired_direction_flagged(self):
        # A reduce-scatter labeled "fwd" would make the follower's record
        # order diverge from the lead's.
        src = """
        def emit(comm, mb, n):
            comm.record_collective("tp_reduce_scatter", "fwd", mb, n)
        """
        assert _codes(src) == ["REP010"]

    def test_canonical_pairings_clean(self):
        src = """
        def emit(comm, mb, n):
            comm.record_collective("tp_allgather", "fwd", mb, n)
            comm.record_collective("tp_reduce_scatter", "bwd", mb, n)
        """
        assert _codes(src) == []

    def test_variable_op_untouched(self):
        # Sinks that relay a variable op (engine/parallel replay paths)
        # cannot be judged statically and are left alone.
        src = """
        def relay(recorder, rank, op, key):
            recorder.record_collective(rank, op, key=key)
        """
        assert _codes(src) == []

    def test_raw_sink_definition_exempt(self):
        # TraceRecorder.record_collective has no `direction` parameter:
        # it is the sink itself, not the TP wrapper.
        src = """
        class TraceRecorder:
            def record_collective(self, rank, op, key=None):
                self._record(kind="collective", rank=rank, tag=op, key=key)
        """
        assert _codes(src) == []

    def test_non_tp_collectives_untouched(self):
        src = """
        def emit(recorder, rank, slot):
            recorder.record_collective(rank, "allreduce_fp32", key=(0, slot))
        """
        assert _codes(src) == []


class TestREP011:
    SCHED = "src/repro/sched/builders.py"

    @staticmethod
    def _codes_at(source, path):
        return [i.code for i in lint_source(textwrap.dedent(source), path)]

    def test_recv_loop_in_sched_flagged(self):
        src = """
        def build(transport, m):
            for _ in range(m):
                pkt = yield RECV
        """
        assert self._codes_at(src, self.SCHED) == ["REP011"]

    def test_plane_yield_in_sched_flagged(self):
        src = """
        def build(net, m):
            pkt = yield "F"
            net.send(0, 1, "F", 0, pkt.data)
        """
        assert self._codes_at(src, self.SCHED) == ["REP011"]

    def test_compile_module_exempt(self):
        src = """
        def lower(net, m):
            pkt = yield "F"
            net.send(0, 1, "F", 0, pkt.data)
        """
        assert self._codes_at(src, "src/repro/sched/compile.py") == []

    def test_outside_sched_untouched(self):
        src = """
        def program(transport, m):
            for _ in range(m):
                pkt = yield RECV
        """
        assert self._codes_at(src, "src/repro/runtime/rankprog.py") == []

    def test_pure_ir_builder_clean(self):
        src = """
        def build(n_stages, m):
            return [("F", mb) for mb in range(m)]
        """
        assert self._codes_at(src, self.SCHED) == []

    def test_suppression_honored(self):
        src = ('def build(net):\n'
               '    pkt = yield "F"  # lint-ok: REP011 demo\n')
        assert self._codes_at(src, self.SCHED) == []


class TestREP012:
    """Fleet policy code must be replayable: no wall clocks, no unseeded
    randomness anywhere under a ``fleet`` path component."""

    FLEET = "src/repro/fleet/policy.py"

    @staticmethod
    def _codes_at(source, path):
        return [i.code for i in lint_source(textwrap.dedent(source), path)]

    def test_wall_clock_flagged(self):
        src = "import time\nt = time.time()\n"
        assert self._codes_at(src, self.FLEET) == ["REP012"]

    def test_monotonic_and_perf_counter_flagged(self):
        for call in ("time.monotonic()", "time.perf_counter()",
                     "time.time_ns()"):
            src = f"import time\nt = {call}\n"
            assert self._codes_at(src, self.FLEET) == ["REP012"], call

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nt = datetime.now()\n"
        assert self._codes_at(src, self.FLEET) == ["REP012"]

    def test_stdlib_random_flagged(self):
        src = "import random\nx = random.random()\n"
        assert self._codes_at(src, "src/repro/fleet/sim.py") == ["REP012"]

    def test_unseeded_default_rng_flagged(self):
        src = ("import numpy as np\n"
               "r = np.random.default_rng(worker_id)\n")
        assert self._codes_at(src, self.FLEET) == ["REP012"]

    def test_seed_derived_rng_allowed(self):
        for arg in ("seed + 1", "req.seed", "self.seed"):
            src = f"import numpy as np\nr = np.random.default_rng({arg})\n"
            assert self._codes_at(src, self.FLEET) == [], arg

    def test_outside_fleet_untouched(self):
        src = "import time\nt = time.time()\n"
        assert self._codes_at(src, "src/repro/serve/sim.py") == []

    def test_any_fleet_path_component_counts(self):
        src = "import time\nt = time.perf_counter()\n"
        assert self._codes_at(src, "tests/fleet/helper.py") == ["REP012"]

    def test_suppression_honored(self):
        src = "import time\nt = time.time()  # lint-ok: REP012 demo\n"
        assert self._codes_at(src, self.FLEET) == []


class TestMachinery:
    def test_suppression_comment(self):
        src = "rng = np.random.default_rng()  # lint-ok: REP003 reason\n"
        assert lint_source(src) == []

    def test_bare_suppression_covers_all_rules(self):
        src = "env.process(np.random.default_rng())  # lint-ok\n"
        assert lint_source(src) == []

    def test_suppression_of_other_rule_does_not_mask(self):
        src = "rng = np.random.default_rng()  # lint-ok: REP004\n"
        assert [i.code for i in lint_source(src)] == ["REP003"]

    def test_issue_format(self):
        issue = lint_source("np.random.seed(1)\n", path="x.py")[0]
        assert str(issue).startswith("x.py:1:")
        assert "REP003" in str(issue)

    def test_syntax_error_reported_not_raised(self):
        issues = lint_source("def broken(:\n", path="bad.py")
        assert issues[0].code == "PARSE"

    def test_rule_catalogue_complete(self):
        assert set(RULES) == {"REP001", "REP002", "REP003", "REP004",
                              "REP005", "REP006", "REP007", "REP008",
                              "REP009", "REP010", "REP011", "REP012"}
