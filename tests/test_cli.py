"""Tests for the command-line interface."""

import csv
import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "fig9", "table2", "all"):
            assert name in out

    def test_all_experiments_registered(self):
        expected = {"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                    "fig9", "fig10", "fig11", "table1", "table2",
                    "ablations"}
        assert set(EXPERIMENTS) == expected

    def test_table1_runs_and_passes(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "[PASS]" in out
        assert "[FAIL]" not in out

    def test_fig3_fast(self, capsys):
        assert main(["fig3", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "intra-node" in out

    def test_fig10_fast(self, capsys):
        assert main(["fig10", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "curves_coincide" in out

    def test_fig9_model_filter(self, capsys):
        assert main(["fig9", "--models", "12B"]) == 0
        out = capsys.readouterr().out
        assert "12B" in out
        assert "24B" not in out

    def test_csv_export(self, tmp_path, capsys):
        path = tmp_path / "rows.csv"
        assert main(["table1", "--csv", str(path)]) == 0
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4
        assert rows[0]["gpus"] == "48"

    def test_trace_runtime_substrate(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["trace", "--fast", "--substrate", "runtime",
                     "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "runtime" in out
        doc = json.loads(path.read_text())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete
        for e in complete:
            for key in ("name", "ts", "dur", "pid", "tid"):
                assert key in e, key

    def test_trace_both_substrates(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["trace", "--fast", "--out", str(path)]) == 0
        for suffix in ("sim", "runtime"):
            doc = json.loads((tmp_path / f"trace-{suffix}.json").read_text())
            assert any(e["ph"] == "X" for e in doc["traceEvents"]), suffix

    def test_list_includes_serve(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serve" in out
        assert "fleet" in out
        assert "REP012" in out
        assert "sched" in out
        assert "scaling4d" in out
        assert "train" in out
        assert "verify" in out

    def test_verify_fast(self, capsys):
        assert main(["verify", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "verify: PASS" in out
        assert "[FAIL]" not in out
        # The seeded mutant's counterexample is printed in full.
        assert "wait-for graph" in out
        assert "rank 0 waits on rank 1" in out

    def test_serve_functional_fast(self, capsys):
        assert main(["serve", "--fast", "--substrate", "runtime"]) == 0
        out = capsys.readouterr().out
        assert "functional equivalence" in out
        assert "[PASS]" in out
        assert "[FAIL]" not in out

    def test_serve_sim_fast_with_csv_and_report(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        report_path = tmp_path / "serve.json"
        assert main(["serve", "--fast", "--substrate", "sim",
                     "--csv", str(csv_path),
                     "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "[FAIL]" not in out
        with open(csv_path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 6
        assert float(rows[0]["load_fraction"]) == 0.25
        doc = json.loads(report_path.read_text())
        assert all(doc["sim"]["claims"].values())

    def test_fleet_functional_fast(self, capsys):
        assert main(["fleet", "--fast", "--substrate", "runtime"]) == 0
        out = capsys.readouterr().out
        assert "functional equivalence" in out
        assert "[PASS]" in out
        assert "[FAIL]" not in out

    def test_fleet_sim_fast_with_report(self, tmp_path, capsys):
        report_path = tmp_path / "fleet.json"
        assert main(["fleet", "--fast", "--substrate", "sim",
                     "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "[FAIL]" not in out
        doc = json.loads(report_path.read_text())
        assert all(doc["sim"]["claims"].values())
        policies = [r["policy"] for r in doc["sim"]["autoscaling"]]
        assert policies == ["static-peak", "reactive", "predictive"]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_module_entry_point(self):
        import subprocess
        import sys
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "table1"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0
        assert "Table I" in proc.stdout
