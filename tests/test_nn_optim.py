"""Tests for optimizers, mixed precision, checkpointing and the dataset."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    AdamW,
    CheckpointedStack,
    GPT,
    GPTConfig,
    LMBatches,
    Linear,
    LossScaler,
    MixedPrecisionAdamW,
    SGD,
    SyntheticCorpus,
    Tensor,
    activation_memory_factor,
    adam_step,
    checkpoint,
    factors,
    grads_have_overflow,
    optimal_checkpoint_interval,
)
from repro.nn.modules import Module


def quadratic_param(value=5.0):
    return Tensor(np.array([value], dtype=np.float32), requires_grad=True)


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_momentum_accelerates(self):
        def run(momentum):
            p = quadratic_param()
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
            return abs(p.data[0])

        assert run(0.9) < run(0.0)

    def test_invalid_args(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad yet: no-op
        assert p.data[0] == 5.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_first_step_size_is_lr(self):
        """Adam's bias correction makes the first step ~= lr * sign(grad)."""
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.1)
        (p * 1.0).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1, rel=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], betas=(1.0, 0.999))

    def test_adamw_decay_is_decoupled(self):
        """With zero gradient, AdamW still shrinks weights; Adam with L2
        weight decay routes decay through the moments instead."""
        p = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        p.grad = np.zeros(1, dtype=np.float32)
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        opt.step()
        assert p.data[0] == pytest.approx(2.0 * (1 - 0.1 * 0.5))

    def test_adam_l2_decay_differs_from_decoupled(self):
        a = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        b = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        a.grad = np.ones(1, dtype=np.float32)
        b.grad = np.ones(1, dtype=np.float32)
        Adam([a], lr=0.1, weight_decay=0.5).step()
        AdamW([b], lr=0.1, weight_decay=0.5).step()
        assert a.data[0] != pytest.approx(b.data[0])

    def test_adam_step_function_matches_class(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(8).astype(np.float32)
        grad = rng.standard_normal(8).astype(np.float32)
        p = Tensor(data.copy(), requires_grad=True)
        p.grad = grad.copy()
        opt = AdamW([p], lr=0.01, weight_decay=0.01)
        opt.step()
        # Manual path via the raw function.
        manual = data.copy()
        m = np.zeros(8, dtype=np.float32)
        v = np.zeros(8, dtype=np.float32)
        adam_step(manual, grad.copy(), m, v, 1, 0.01, 0.9, 0.999, 1e-8,
                  0.01, decoupled=True)
        np.testing.assert_allclose(p.data, manual, rtol=1e-6)

    def test_training_reduces_loss_tiny_gpt(self):
        cfg = GPTConfig(vocab_size=13, seq_len=6, n_layer=1, n_head=2,
                        hidden=8, init_seed=0)
        model = GPT(cfg)
        opt = AdamW(model.parameters(), lr=1e-2)
        corpus = SyntheticCorpus(13, 2000, seed=0)
        batches = LMBatches(corpus, batch_size=8, seq_len=6)
        losses = []
        for i in range(30):
            x, y = batches.batch(i)
            opt.zero_grad()
            _, loss = model(x, targets=y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-5:]) < np.mean(losses[:5]) - 0.1


class TestLossScaler:
    def test_static_scale(self):
        s = LossScaler(init_scale=1024, dynamic=False)
        s.update(found_overflow=True)
        assert s.scale == 1024

    def test_backoff_on_overflow(self):
        s = LossScaler(init_scale=1024, dynamic=True)
        s.update(found_overflow=True)
        assert s.scale == 512

    def test_growth_after_interval(self):
        s = LossScaler(init_scale=8, growth_interval=3)
        for _ in range(3):
            s.update(found_overflow=False)
        assert s.scale == 16

    def test_min_scale_floor(self):
        s = LossScaler(init_scale=2, min_scale=1.0)
        for _ in range(5):
            s.update(found_overflow=True)
        assert s.scale == 1.0

    def test_scale_loss(self):
        s = LossScaler(init_scale=4, dynamic=False)
        loss = Tensor(np.array(2.0, dtype=np.float32), requires_grad=True)
        scaled = s.scale_loss(loss)
        assert scaled.item() == 8.0

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            LossScaler(init_scale=0)


class TestMixedPrecision:
    def test_overflow_detection(self):
        good = [np.ones(3, dtype=np.float16)]
        bad = [np.array([1, np.inf, 2], dtype=np.float16)]
        assert not grads_have_overflow(good)
        assert grads_have_overflow(bad)

    def test_step_descales_gradients(self):
        p = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        scaler = LossScaler(init_scale=2.0, dynamic=False)
        opt = MixedPrecisionAdamW([p], lr=0.1, weight_decay=0.0,
                                  scaler=scaler)
        # fp16 gradient as produced from a loss scaled by 2.
        applied = opt.step([np.array([2.0], dtype=np.float16)])
        assert applied
        # Descaled gradient = 1.0 -> first Adam step ~= -lr.
        assert p.data[0] == pytest.approx(0.9, rel=1e-3)

    def test_overflow_skips_step_and_backs_off(self):
        p = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        opt = MixedPrecisionAdamW([p], lr=0.1)
        scale_before = opt.scaler.scale
        applied = opt.step([np.array([np.inf], dtype=np.float16)])
        assert not applied
        assert p.data[0] == 1.0
        assert opt.scaler.scale == scale_before / 2
        assert opt.skipped_steps == 1

    def test_half_params_follow_master(self):
        p = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        opt = MixedPrecisionAdamW([p], lr=0.5, weight_decay=0.0,
                                  scaler=LossScaler(init_scale=128,
                                                    dynamic=False))
        opt.step([np.array([128.0], dtype=np.float16)])
        np.testing.assert_allclose(opt.half_params[0],
                                   p.data.astype(np.float16))

    def test_mixed_precision_training_converges(self):
        cfg = GPTConfig(vocab_size=11, seq_len=6, n_layer=1, n_head=2,
                        hidden=8, init_seed=1)
        model = GPT(cfg)
        opt = MixedPrecisionAdamW(model.parameters(), lr=1e-2,
                                  scaler=LossScaler(init_scale=128,
                                                    dynamic=True))
        corpus = SyntheticCorpus(11, 1500, seed=1)
        batches = LMBatches(corpus, batch_size=8, seq_len=6)
        losses = []
        for i in range(25):
            x, y = batches.batch(i)
            model.zero_grad()
            _, loss = model(x, targets=y)
            (loss * opt.scaler.scale).backward()
            half_grads = [p.grad.astype(np.float16)
                          for p in model.parameters()]
            opt.step(half_grads)
            losses.append(loss.item())
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_gradient_list_length_checked(self):
        p = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        opt = MixedPrecisionAdamW([p])
        with pytest.raises(ValueError):
            opt.step([])


class _Affine(Module):
    """Deterministic toy layer for checkpoint tests."""

    def __init__(self, scale):
        super().__init__()
        from repro.nn.modules import Parameter
        self.w = Parameter(np.array([scale], dtype=np.float32))

    def forward(self, x):
        return x * self.w


class TestCheckpointing:
    def test_checkpoint_matches_plain_forward(self):
        lin = Linear(4, 4, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1)
                   .standard_normal((2, 4)).astype(np.float32),
                   requires_grad=True)
        plain = lin(x)
        ckpt = checkpoint(lin, x)
        np.testing.assert_allclose(plain.data, ckpt.data, atol=1e-6)

    def test_checkpoint_gradients_match(self):
        lin = Linear(4, 4, rng=np.random.default_rng(0))
        x1 = Tensor(np.ones((2, 4), dtype=np.float32), requires_grad=True)
        x2 = Tensor(np.ones((2, 4), dtype=np.float32), requires_grad=True)
        lin(x1).sum().backward()
        w_grad_plain = lin.weight.grad.copy()
        lin.zero_grad()
        checkpoint(lin, x2).sum().backward()
        np.testing.assert_allclose(x1.grad, x2.grad, atol=1e-6)
        np.testing.assert_allclose(w_grad_plain, lin.weight.grad, atol=1e-6)

    def test_checkpointed_stack_equivalence(self):
        layers = [_Affine(1.5), _Affine(0.5), _Affine(2.0), _Affine(0.25)]
        stack_ckpt = CheckpointedStack(layers, interval=2)
        x1 = Tensor(np.full((3,), 2.0, dtype=np.float32), requires_grad=True)
        out = stack_ckpt(x1)
        out.sum().backward()
        # Plain reference.
        stack_plain = CheckpointedStack(layers, interval=0)
        x2 = Tensor(np.full((3,), 2.0, dtype=np.float32), requires_grad=True)
        for layer in layers:
            layer.zero_grad()
        out2 = stack_plain(x2)
        out2.sum().backward()
        np.testing.assert_allclose(out.data, out2.data)
        np.testing.assert_allclose(x1.grad, x2.grad)

    def test_checkpoint_param_grads_accumulate(self):
        layer = _Affine(2.0)
        stack = CheckpointedStack([layer], interval=1)
        x = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        stack(x).sum().backward()
        assert layer.w.grad is not None
        assert layer.w.grad[0] == pytest.approx(2.0)  # sum of inputs

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            CheckpointedStack([], interval=-1)

    def test_factors(self):
        assert factors(12) == [1, 2, 3, 4, 6, 12]
        assert factors(1) == [1]
        with pytest.raises(ValueError):
            factors(0)

    def test_optimal_interval_sqrt_rule(self):
        # N=48 layers total, 8 per GPU: sqrt(48)=6.93 -> factor of 8
        # closest is 8 (|8-6.93| < |4-6.93|).
        assert optimal_checkpoint_interval(48, 8) == 8
        # N=48, 12 per GPU: factors 1,2,3,4,6,12; closest to 6.93 is 6.
        assert optimal_checkpoint_interval(48, 12) == 6

    def test_activation_memory_minimized_near_sqrt(self):
        n, g_inter = 48, 1
        costs = {ac: activation_memory_factor(n, g_inter, ac)
                 for ac in factors(48)}
        best = min(costs, key=costs.get)
        assert abs(best - np.sqrt(n)) <= 2

    @given(n_per_gpu=st.integers(1, 64), total_mult=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_optimal_interval_is_a_factor(self, n_per_gpu, total_mult):
        total = n_per_gpu * total_mult
        ac = optimal_checkpoint_interval(total, n_per_gpu)
        assert n_per_gpu % ac == 0


class TestSyntheticData:
    def test_corpus_deterministic(self):
        a = SyntheticCorpus(50, 1000, seed=3)
        b = SyntheticCorpus(50, 1000, seed=3)
        np.testing.assert_array_equal(a.tokens, b.tokens)

    def test_corpus_seed_changes_stream(self):
        a = SyntheticCorpus(50, 1000, seed=3)
        b = SyntheticCorpus(50, 1000, seed=4)
        assert not np.array_equal(a.tokens, b.tokens)

    def test_tokens_in_vocab(self):
        c = SyntheticCorpus(20, 500, seed=0)
        assert c.tokens.min() >= 0
        assert c.tokens.max() < 20

    def test_zipf_head_is_heavy(self):
        c = SyntheticCorpus(100, 50_000, seed=0, markov_weight=0.0)
        counts = np.bincount(c.tokens, minlength=100)
        assert counts[:10].sum() > counts[50:].sum()

    def test_markov_structure_is_learnable(self):
        """Bigram conditional entropy must be well below unigram entropy."""
        c = SyntheticCorpus(50, 100_000, seed=0, markov_weight=0.9)
        tokens = c.tokens
        uni = np.bincount(tokens, minlength=50).astype(float)
        uni /= uni.sum()
        h_uni = -(uni[uni > 0] * np.log(uni[uni > 0])).sum()
        joint = np.zeros((50, 50))
        np.add.at(joint, (tokens[:-1], tokens[1:]), 1)
        joint /= joint.sum()
        cond = joint / joint.sum(axis=1, keepdims=True).clip(1e-12)
        h_cond = -(joint * np.log(cond.clip(1e-12))).sum()
        assert h_cond < 0.8 * h_uni

    def test_invalid_corpus_args(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(1, 100)
        with pytest.raises(ValueError):
            SyntheticCorpus(10, 1)
        with pytest.raises(ValueError):
            SyntheticCorpus(10, 100, markov_weight=1.5)

    def test_batches_shapes(self):
        c = SyntheticCorpus(30, 1000, seed=0)
        b = LMBatches(c, batch_size=4, seq_len=16)
        x, y = b.batch(0)
        assert x.shape == (4, 16)
        assert y.shape == (4, 16)

    def test_targets_are_shifted_inputs(self):
        c = SyntheticCorpus(30, 1000, seed=0)
        b = LMBatches(c, batch_size=2, seq_len=8)
        x, y = b.batch(5)
        np.testing.assert_array_equal(x[:, 1:], y[:, :-1])

    def test_batches_deterministic_by_index(self):
        c = SyntheticCorpus(30, 1000, seed=0)
        b1 = LMBatches(c, batch_size=4, seq_len=8)
        b2 = LMBatches(c, batch_size=4, seq_len=8)
        for i in (0, 3, 10):
            x1, y1 = b1.batch(i)
            x2, y2 = b2.batch(i)
            np.testing.assert_array_equal(x1, x2)
            np.testing.assert_array_equal(y1, y2)

    def test_different_batches_differ(self):
        c = SyntheticCorpus(30, 1000, seed=0)
        b = LMBatches(c, batch_size=4, seq_len=8)
        x0, _ = b.batch(0)
        x1, _ = b.batch(1)
        assert not np.array_equal(x0, x1)

    def test_invalid_batch_args(self):
        c = SyntheticCorpus(30, 100, seed=0)
        with pytest.raises(ValueError):
            LMBatches(c, batch_size=0, seq_len=8)
        with pytest.raises(ValueError):
            LMBatches(c, batch_size=1, seq_len=100)
        with pytest.raises(ValueError):
            LMBatches(c, batch_size=1, seq_len=8).batch(-1)

    def test_iteration(self):
        c = SyntheticCorpus(30, 1000, seed=0)
        b = LMBatches(c, batch_size=2, seq_len=8)
        it = iter(b)
        x0, _ = next(it)
        x1, _ = next(it)
        np.testing.assert_array_equal(x0, b.batch(0)[0])
        np.testing.assert_array_equal(x1, b.batch(1)[0])
