"""Tests for repro.fleet: the elastic serving layer on both substrates.

Functional side: the disaggregated KV-handoff server and the elastic
FleetServer must be token-for-token identical to serial ``generate``
no matter how the fleet membership changes mid-run, and scale-down must
share one decommission path with crashes.  DES side: Little's law under
time-varying arrivals, autoscaler determinism, hysteresis no-flap, the
split rejection ledger, and the crash/retire mirror.
"""

import numpy as np
import pytest

from repro.fleet import (AdmissionController, AutoscalerPolicy,
                         DisaggPipelineServer, FleetModel, FleetObservation,
                         FleetServer, ReactivePolicy, SLOClass,
                         StaticPolicy, service_rate_per_replica,
                         simulate_fleet)
from repro.nn import GPT, GPTConfig, generate
from repro.resilience import Fault, FaultPlan
from repro.serve import (ArrivalSpec, PipelineServer, Request, RequestSpec,
                         ServingModel, make_requests)
from repro.sim import Environment, poisson_process

CFG = GPTConfig(vocab_size=61, seq_len=48, n_layer=4, n_head=2, hidden=16)

#: Cheap hand-set cost model — tests must not depend on the V100 numbers.
MODEL = ServingModel(n_replicas=3, g_inter=2, stage_alpha_s=1e-3,
                     decode_s_per_item=5e-4, prefill_s_per_token=1e-4,
                     max_batch=8)
SPEC = RequestSpec(mean_prompt=6, mean_new_tokens=6, seed=0)


def serial_reference(cfg, requests):
    """What each request would produce through plain `generate`."""
    model = GPT(cfg)
    return {
        req.rid: generate(model, req.prompt, req.max_new_tokens,
                          temperature=req.temperature, top_k=req.top_k,
                          rng=np.random.default_rng(req.seed),
                          greedy=req.greedy)
        for req in requests
    }


def one_class(**kw):
    defaults = dict(name="interactive", priority=0, ttft_slo_s=1.0,
                    max_wait_s=float("inf"))
    defaults.update(kw)
    return AdmissionController(classes=(SLOClass(**defaults),))


def run_fleet(model=None, policy=None, rate=20.0, horizon=30.0, *,
              arrivals=None, seed=1, **kw):
    model = model or FleetModel(serving=MODEL, cold_start_s=0.5,
                                control_interval_s=0.5, drain_timeout_s=2.0)
    policy = policy or StaticPolicy(MODEL.n_replicas)
    arrivals = arrivals or ArrivalSpec(rate_per_s=rate, seed=seed)
    kw.setdefault("admission", one_class())
    return simulate_fleet(model, policy, arrivals, horizon,
                          request_spec=SPEC, seq_len=48, **kw)


# ---------------------------------------------------------------------------
# functional substrate: disaggregated prefill/decode
# ---------------------------------------------------------------------------
class TestDisaggTokenEquivalence:
    @pytest.mark.parametrize("g_prefill,g_decode",
                             [(1, 1), (1, 3), (2, 1), (2, 2), (3, 2)])
    def test_matches_serial_generate(self, g_prefill, g_decode):
        requests = make_requests(
            CFG, 8, RequestSpec(mean_prompt=5, mean_new_tokens=5, seed=3))
        expected = serial_reference(CFG, requests)
        server = DisaggPipelineServer(CFG, g_prefill=g_prefill,
                                      g_decode=g_decode, max_batch=4)
        got = server.serve(requests)
        assert set(got) == set(expected)
        for rid in got:
            assert np.array_equal(got[rid], expected[rid]), rid
        # the handoff really moved the KV out of the prefill pool
        assert all(s.inflight_requests == 0 for s in server.prefill_stages)
        assert all(s.inflight_requests == 0 for s in server.decode_stages)

    def test_matches_unified_server(self):
        """Disaggregation is a placement decision, not a sampling one."""
        requests = make_requests(
            CFG, 6, RequestSpec(mean_prompt=4, mean_new_tokens=6, seed=9))
        unified = PipelineServer(CFG, g_inter=2, max_batch=4) \
            .serve(requests)
        disagg = DisaggPipelineServer(CFG, g_prefill=2, g_decode=2,
                                      max_batch=4).serve(requests)
        for rid in unified:
            assert np.array_equal(unified[rid], disagg[rid]), rid

    def test_zero_token_request_returns_prompt(self):
        req = Request(rid=7, prompt=np.array([3, 1]), max_new_tokens=0)
        out = DisaggPipelineServer(CFG, g_prefill=1, g_decode=2).serve([req])
        assert np.array_equal(out[7], [3, 1])

    def test_validation(self):
        with pytest.raises(ValueError, match="g_prefill"):
            DisaggPipelineServer(CFG, g_prefill=0, g_decode=1)
        with pytest.raises(ValueError, match="duplicate"):
            reqs = [Request(rid=1, prompt=np.array([2]), max_new_tokens=1)
                    for _ in range(2)]
            DisaggPipelineServer(CFG).serve(reqs)


# ---------------------------------------------------------------------------
# functional substrate: the elastic fleet
# ---------------------------------------------------------------------------
def flash_trace(n=30, horizon=12.0, seed=0):
    reqs = make_requests(CFG, n, RequestSpec(mean_prompt=6,
                                             mean_new_tokens=6, seed=seed))
    times = ArrivalSpec(rate_per_s=1.0, seed=5, kind="flash",
                        flash_at_s=2.0, flash_factor=15.0) \
        .sample_times(horizon_s=horizon)
    return list(zip(times, reqs))[:n]


class TestFleetServerElastic:
    def test_scale_up_and_down_with_zero_loss(self):
        """The pinned 1 -> 2 -> 1 smoke: a flash crowd at t=2s forces the
        reactive policy up, the decay brings it back down, and every
        request still matches serial generate."""
        trace = flash_trace()
        expected = serial_reference(CFG, [r for _, r in trace])
        fleet = FleetServer(
            CFG, ReactivePolicy(min_replicas=1, max_replicas=2,
                                cooldown_s=2.0),
            g_inter=2, max_batch=4, serve_per_round=2)
        report = fleet.run(trace)
        kinds = [e.kind for e in report.events]
        assert "up" in kinds and "down" in kinds
        assert report.max_replicas_seen == 2
        assert report.n_admitted == len(trace)
        assert report.n_lost == 0
        assert set(report.results) == set(expected)
        for rid in report.results:
            assert np.array_equal(report.results[rid], expected[rid]), rid

    def test_static_policy_never_scales(self):
        report = FleetServer(CFG, StaticPolicy(1), g_inter=2, max_batch=4,
                             serve_per_round=4).run(flash_trace(n=10))
        assert [e.kind for e in report.events] == []
        assert report.max_replicas_seen == 1
        assert report.n_lost == 0

    def test_replica_rounds_track_paid_capacity(self):
        """An elastic run pays for fewer replica-rounds than a static
        2-replica fleet over the same trace."""
        trace = flash_trace()
        elastic = FleetServer(
            CFG, ReactivePolicy(min_replicas=1, max_replicas=2,
                                cooldown_s=2.0),
            g_inter=2, max_batch=4, serve_per_round=2).run(trace)
        static = FleetServer(CFG, StaticPolicy(2), g_inter=2, max_batch=4,
                             serve_per_round=2).run(trace)
        assert elastic.replica_rounds < static.replica_rounds
        assert set(elastic.results) == set(static.results)

    def test_deterministic_replay(self):
        a = FleetServer(CFG, ReactivePolicy(min_replicas=1, max_replicas=2,
                                            cooldown_s=2.0),
                        g_inter=2, max_batch=4, serve_per_round=2) \
            .run(flash_trace())
        b = FleetServer(CFG, ReactivePolicy(min_replicas=1, max_replicas=2,
                                            cooldown_s=2.0),
                        g_inter=2, max_batch=4, serve_per_round=2) \
            .run(flash_trace())
        assert [e.as_dict() for e in a.events] == \
            [e.as_dict() for e in b.events]
        assert a.replica_rounds == b.replica_rounds
        for rid in a.results:
            assert np.array_equal(a.results[rid], b.results[rid])


class TestFunctionalSharedFailurePath:
    """Crash and forced retire funnel into one decommission path, so the
    two runs are indistinguishable in everything but the label."""

    def _run(self, kind):
        trace = flash_trace(n=16)
        plan = FaultPlan.of(Fault(kind=kind, rank=0, tick=3))
        fleet = FleetServer(CFG, StaticPolicy(2), g_inter=2, max_batch=4,
                            serve_per_round=2, fault_plan=plan)
        return fleet.run(trace)

    def test_crash_and_retire_serve_identical_tokens(self):
        crash = self._run("crash")
        retire = self._run("retire")
        assert set(crash.results) == set(retire.results)
        for rid in crash.results:
            assert np.array_equal(crash.results[rid], retire.results[rid])
        assert crash.n_lost == 0 and retire.n_lost == 0
        assert crash.n_readmitted == retire.n_readmitted

    def test_outstanding_work_readmitted_under_rank_failure(self):
        report = self._run("crash")
        assert report.n_readmitted > 0
        assert report.failures and report.failures[0].dead == [0]

    def test_whole_fleet_crash_recovers(self):
        """Even a policy that wants zero replicas cannot strand admitted
        work: the restore path spawns one back."""
        class ZeroPolicy(AutoscalerPolicy):
            name = "zero"

            def decide(self, obs):
                return 0

        report = FleetServer(CFG, ZeroPolicy(), g_inter=2, max_batch=4,
                             serve_per_round=2).run(flash_trace(n=8))
        assert report.n_lost == 0
        assert any(e.reason == "restore" for e in report.events)


# ---------------------------------------------------------------------------
# DES substrate
# ---------------------------------------------------------------------------
class TestFleetModelValidation:
    def test_prefill_window_defaults_to_4x_pipeline_depth(self):
        model = FleetModel(serving=MODEL)
        assert model.pipeline_limit_for("prefill") == \
            4 * MODEL.effective_pipeline_limit
        assert model.pipeline_limit_for("decode") == \
            MODEL.effective_pipeline_limit

    def test_prefill_window_override(self):
        model = FleetModel(serving=MODEL, prefill_pipeline_limit=2)
        assert model.pipeline_limit_for("prefill") == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="prefill_pipeline_limit"):
            FleetModel(serving=MODEL, prefill_pipeline_limit=0)
        with pytest.raises(ValueError, match="each pool"):
            FleetModel(serving=MODEL, disaggregated=True,
                       n_decode_replicas=0)
        with pytest.raises(ValueError, match="drain_timeout_s"):
            FleetModel(serving=MODEL, drain_timeout_s=-1.0)


class TestLittlesLaw:
    def test_holds_under_diurnal_arrivals(self):
        """L = lambda_eff * W within 5% on a time-varying trace (all
        arrivals eventually served, so the effective rate is exact)."""
        arrivals = ArrivalSpec(rate_per_s=25.0, seed=2, kind="diurnal",
                               diurnal_period_s=40.0,
                               diurnal_amplitude=0.6)
        stats = run_fleet(arrivals=arrivals, horizon=120.0)
        assert stats.n_rejected == 0
        assert stats.n_rejected_admission == 0
        assert stats.n_completed == stats.n_admitted > 1000
        lam_eff = stats.n_completed / stats.horizon_s
        assert stats.mean_concurrency == pytest.approx(
            lam_eff * stats.mean_sojourn_s, rel=0.05)


class TestAutoscalerDeterminism:
    def _reactive(self):
        return ReactivePolicy(min_replicas=1, max_replicas=3,
                              cooldown_s=2.0)

    def _diurnal(self, seed):
        return ArrivalSpec(rate_per_s=18.0, seed=seed, kind="diurnal",
                           diurnal_period_s=30.0, diurnal_amplitude=0.8)

    def test_same_seed_same_run(self):
        a = run_fleet(policy=self._reactive(), arrivals=self._diurnal(4),
                      horizon=60.0)
        b = run_fleet(policy=self._reactive(), arrivals=self._diurnal(4),
                      horizon=60.0)
        assert [e.as_dict() for e in a.scale_events] == \
            [e.as_dict() for e in b.scale_events]
        assert a.ttft_s == b.ttft_s
        assert a.replica_seconds == b.replica_seconds
        assert len(a.scale_events) > 0  # the policy actually acted

    def test_different_seed_different_trace(self):
        a = run_fleet(policy=self._reactive(), arrivals=self._diurnal(4),
                      horizon=60.0)
        b = run_fleet(policy=self._reactive(), arrivals=self._diurnal(5),
                      horizon=60.0)
        assert a.ttft_s != b.ttft_s


class TestHysteresisNoFlap:
    """ReactivePolicy's documented invariant: up_threshold >
    down_threshold means a scale-up can never immediately qualify for
    scale-down, cooldown or not."""

    def _obs(self, now, prov, rate, queue=0):
        return FleetObservation(now_s=now, queue_depth=queue,
                                n_live=prov, n_provisioning=0,
                                n_draining=0, utilization=0.9,
                                arrival_rate=rate,
                                service_rate_per_replica=1.0)

    def test_no_down_right_after_up(self):
        pol = ReactivePolicy(min_replicas=1, max_replicas=8,
                             target_utilization=1.0, cooldown_s=0.0)
        rate = 2.2  # rho = 1.1 at prov=2: over the up threshold
        assert pol.decide(self._obs(0.0, 2, rate)) == 3
        # same offered load, grown fleet, cooldown expired: must hold
        for t in (1.0, 50.0, 1000.0):
            assert pol.decide(self._obs(t, 3, rate)) == 3

    def test_cooldown_spaces_consecutive_events(self):
        pol = ReactivePolicy(min_replicas=1, max_replicas=8,
                             target_utilization=1.0, cooldown_s=10.0)
        assert pol.decide(self._obs(0.0, 1, 5.0)) == 2
        assert pol.decide(self._obs(1.0, 2, 5.0)) == 2   # cooling
        assert pol.decide(self._obs(11.0, 2, 5.0)) == 3  # expired

    def test_decision_sequence_never_flaps(self):
        """Closed loop at constant load: once the fleet stops moving it
        stays put — no up immediately followed by down or vice versa."""
        pol = ReactivePolicy(min_replicas=1, max_replicas=8,
                             target_utilization=1.0, cooldown_s=0.0)
        prov, sizes = 1, []
        for step in range(100):
            prov = pol.decide(self._obs(float(step), prov, 3.3))
            sizes.append(prov)
        deltas = [b - a for a, b in zip(sizes, sizes[1:]) if b != a]
        assert all(d > 0 for d in deltas)  # monotone approach, no flap
        assert sizes[-1] == sizes[-10]     # and it settled

    def test_hysteresis_band_required(self):
        with pytest.raises(ValueError, match="hysteresis"):
            ReactivePolicy(up_threshold=0.5, down_threshold=0.7)


class TestTraceReplay:
    """ArrivalSpec.sample_times must replay exactly the instants the DES
    poisson_process fires — the bridge that lets a functional run consume
    the trace a DES run was scored on."""

    @pytest.mark.parametrize("spec", [
        ArrivalSpec(rate_per_s=5.0, seed=3),
        ArrivalSpec(rate_per_s=5.0, seed=3, kind="diurnal",
                    diurnal_period_s=20.0, diurnal_amplitude=0.7),
        ArrivalSpec(rate_per_s=5.0, seed=3, kind="flash", flash_at_s=4.0,
                    flash_factor=10.0, flash_decay_s=3.0),
    ])
    def test_matches_des_draws(self, spec):
        env = Environment()
        des_times = []
        env.process(poisson_process(env, spec.mean_interarrival(),
                                    seed=spec.seed,
                                    on_event=lambda now: des_times.append(now),
                                    alive=lambda: env.now < 30.0),
                    name="arrivals")
        env.run(until=30.0)
        replay = spec.sample_times(horizon_s=30.0)
        assert len(replay) > 20
        assert replay == pytest.approx(des_times)


class TestFleetLedger:
    def test_static_fleet_pays_n_times_horizon(self):
        stats = run_fleet(horizon=20.0)
        assert stats.replica_seconds == pytest.approx(
            MODEL.n_replicas * 20.0, rel=0.01)
        assert stats.peak_replicas == MODEL.n_replicas
        assert stats.n_cold_starts == 0  # the initial fleet starts warm

    def test_disagg_run_counts_handoffs(self):
        model = FleetModel(serving=MODEL, disaggregated=True,
                           n_prefill_replicas=1, n_decode_replicas=2,
                           kv_transfer_s_per_token=1e-5)
        stats = run_fleet(model=model, policy=StaticPolicy(2), rate=10.0,
                          horizon=20.0)
        assert stats.n_rejected == 0
        assert stats.n_handoffs == stats.n_completed > 0

    def test_slo_shedding_is_counted_separately(self):
        """A tight per-class wait budget sheds load the queue-capacity
        backpressure path would have accepted."""
        admission = one_class(max_wait_s=0.02)
        stats = run_fleet(policy=StaticPolicy(1), rate=120.0, horizon=10.0,
                          admission=admission)
        assert stats.n_rejected_admission > 0
        assert stats.n_rejected_down == 0
        assert stats.n_admitted + stats.n_rejected_admission \
            + stats.n_rejected_backpressure == stats.n_arrived

    def test_scale_events_recorded_with_kinds(self):
        mu = service_rate_per_replica(MODEL, SPEC)
        arrivals = ArrivalSpec(rate_per_s=1.5 * mu, seed=4, kind="diurnal",
                               diurnal_period_s=30.0,
                               diurnal_amplitude=0.8)
        stats = run_fleet(policy=ReactivePolicy(min_replicas=1,
                                                max_replicas=5,
                                                cooldown_s=2.0),
                          arrivals=arrivals, horizon=60.0)
        kinds = {e.kind for e in stats.scale_events}
        assert "up" in kinds and "down" in kinds
        assert stats.n_cold_starts > 0
        assert stats.n_retired > 0


class TestDesSharedFailurePath:
    """With drain_timeout_s=0 a retire decommissions immediately — the
    exact mirror of a crash, so the two runs must agree on everything
    except which counter ticked."""

    #: heavy enough that every replica holds in-flight work at the fault
    RATE = 1.5 * service_rate_per_replica(MODEL, SPEC)

    def _run(self, kind):
        model = FleetModel(serving=MODEL, cold_start_s=0.5,
                           control_interval_s=0.5, drain_timeout_s=0.0)
        plan = FaultPlan.of(Fault(kind=kind, rank=1, tick=5))
        return run_fleet(model=model, rate=self.RATE, horizon=20.0,
                         plan=plan)

    def test_crash_and_retire_runs_identical(self):
        crash = self._run("crash")
        retire = self._run("retire")
        assert crash.n_crashes == 1 and crash.n_retired == 0
        assert retire.n_retired == 1 and retire.n_crashes == 0
        assert crash.n_completed == retire.n_completed
        assert crash.n_restarts == retire.n_restarts
        assert crash.ttft_s == retire.ttft_s
        assert crash.sojourn_s == retire.sojourn_s

    def test_nothing_lost_and_orphans_restart(self):
        stats = self._run("crash")
        assert stats.n_restarts > 0
        assert stats.n_completed == stats.n_admitted

    def test_graceful_drain_avoids_restarts(self):
        """With a generous drain budget the retiring replica finishes its
        own work — same completions, no re-admissions."""
        model = FleetModel(serving=MODEL, cold_start_s=0.5,
                           control_interval_s=0.5, drain_timeout_s=30.0)
        plan = FaultPlan.of(Fault(kind="retire", rank=1, tick=5))
        stats = run_fleet(model=model, rate=self.RATE, horizon=20.0,
                          plan=plan)
        assert stats.n_retired == 1
        assert stats.n_restarts == 0
        assert stats.n_completed == stats.n_admitted
