"""Tests for the shared-memory race detector: happens-before over the
instrumented ShmRing's push/pop events, clean on correct SPSC traffic
(synthetic and a real process-backend run), and positive on the seeded
torn-write mutant that drops a release edge."""

import numpy as np
import pytest

from repro.analysis.races import (
    RaceError,
    assert_race_free,
    check_races,
    drop_release,
    load_ring_events,
    ring_events_from_spans,
    synthetic_ring_events,
)
from repro.nn import GPTConfig
from repro.obs import RuntimeTracer
from repro.runtime import AxoNNTrainer


class TestSynthetic:
    def test_well_synchronized_traffic_is_clean(self):
        events = synthetic_ring_events()
        assert len(events) == 16  # 8 pushes + 8 pops
        assert check_races(events) == []
        assert_race_free(events)  # must not raise

    def test_traffic_exercises_wraparound(self):
        # 8 x 96-byte frames in a 256-byte ring: positions wrap several
        # times, so the aliasing test runs modulo capacity, not on raw
        # absolute positions.
        events = synthetic_ring_events()
        assert max(e.pos + e.size for e in events) > events[0].capacity

    def test_dropped_final_release_races(self):
        mutated = drop_release(synthetic_ring_events())
        races = check_races(mutated)
        assert len(races) >= 1
        race = races[0]
        assert race.ring == "0->1"
        assert {race.first.op, race.second.op} == {"push", "pop"}
        assert race.first.rank != race.second.rank
        assert "no happens-before order" in str(race)

    def test_early_dropped_release_is_masked(self):
        """An earlier push's missing release is folded in transitively by
        the writer's next release (program order), so only the final
        frame exposes the bug — exactly why drop_release defaults to the
        last push."""
        mutated = drop_release(synthetic_ring_events(), index=0)
        assert check_races(mutated) == []

    def test_assert_race_free_lists_the_races(self):
        with pytest.raises(RaceError, match="race on ring '0->1'"):
            assert_race_free(drop_release(synthetic_ring_events()))

    def test_drop_release_requires_a_push(self):
        with pytest.raises(ValueError):
            drop_release([])


class TestSpanExtraction:
    def test_ring_events_roundtrip_through_spans(self):
        tracer = RuntimeTracer()
        now = tracer.now()
        tracer.record(0, "sync", "ring-push", now, now, category="other",
                      ring="0->1", pos=0, size=104, capacity=1 << 20,
                      seen=0)
        tracer.record(0, "sync", "ring-pop", now, now, category="other",
                      ring="1->0", pos=0, size=104, capacity=1 << 20,
                      seen=104)
        tracer.record(0, "net", "forward", now, now, category="p2p")
        events = ring_events_from_spans(tracer.spans)
        assert [e.op for e in events] == ["push", "pop"]
        assert events[0].ring == "0->1" and events[0].size == 104
        assert events[1].seen == 104
        assert all(e.released for e in events)


class TestRealProcessBackend:
    """The acceptance pair: a real backend="process" run is race-free,
    and the same event log with one release edge dropped is not."""

    def _run(self, tmp_path):
        trace_dir = str(tmp_path / "ranks")
        cfg = GPTConfig(vocab_size=17, seq_len=6, n_layer=2, n_head=2,
                        hidden=8, dropout=0.0, init_seed=5)
        trainer = AxoNNTrainer(cfg, g_inter=2, g_data=1, microbatch_size=2,
                               backend="process", tracer=RuntimeTracer(),
                               backend_options={"trace_dir": trace_dir})
        rng = np.random.default_rng(4)
        x, y = rng.integers(0, 17, (4, 6)), rng.integers(0, 17, (4, 6))
        try:
            loss = trainer.train_batch(x, y).loss
        finally:
            trainer.close()
        assert np.isfinite(loss)
        return load_ring_events(trace_dir)

    def test_real_run_is_clean_and_mutant_is_not(self, tmp_path):
        events = self._run(tmp_path)
        assert events, "instrumented rings recorded no events"
        assert {e.op for e in events} == {"push", "pop"}
        # Both worker->worker rings observed from both endpoints.
        assert {e.ring for e in events} == {"0->1", "1->0"}

        assert check_races(events) == []

        races = check_races(drop_release(events))
        assert len(races) >= 1
        assert races[0].first.rank != races[0].second.rank
