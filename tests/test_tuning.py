"""Tests for the hyperparameter tuning (Table II search)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WEAK_SCALING_MODELS, check_memory
from repro.baselines import check_baseline_memory
from repro.tuning import (
    axonn_candidates,
    baseline_candidates,
    divisors,
    estimate_baseline_time,
    tune_axonn,
    tune_baseline,
)

SPEC = WEAK_SCALING_MODELS["12B"]


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(48) == [1, 2, 3, 4, 6, 8, 12, 16, 24, 48]

    def test_invalid(self):
        with pytest.raises(ValueError):
            divisors(0)

    @given(n=st.integers(1, 500))
    @settings(max_examples=60, deadline=None)
    def test_divisors_divide(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds[0] == 1 and ds[-1] == n


class TestCandidates:
    def test_axonn_candidates_valid(self):
        cands = axonn_candidates(SPEC, 48, 16384)
        assert cands
        for c in cands:
            assert c.g_inter * c.g_data == 48
            assert c.g_inter <= SPEC.n_layer

    def test_axonn_candidates_exclude_oversized_pipelines(self):
        cands = axonn_candidates(SPEC, 96, 16384)
        assert all(c.g_inter <= 48 for c in cands)

    def test_baseline_candidates_valid(self):
        cands = baseline_candidates(SPEC, 48, 16384, "megatron")
        assert cands
        for c in cands:
            assert c.g_intra * c.g_inter * c.g_data == 48
            assert SPEC.hidden % c.g_intra == 0

    def test_baseline_candidates_span_g_intra(self):
        cands = baseline_candidates(SPEC, 48, 16384, "deepspeed")
        assert {c.g_intra for c in cands} >= {1, 2, 3, 6}


class TestTuning:
    def test_axonn_tuned_config_matches_paper_shape_12b(self):
        """The tuner must land on the paper's Table II AxoNN row for the
        12 B model: G_inter=6, G_data=8, mbs=8."""
        result = tune_axonn(SPEC, 48, 16384, refine_top=0)
        cfg = result.config
        assert cfg.g_inter == 6
        assert cfg.g_data == 8
        assert cfg.microbatch_size == 8

    def test_tuned_config_is_feasible(self):
        result = tune_axonn(SPEC, 48, 16384, refine_top=0)
        _, fits = check_memory(result.config)
        assert fits

    def test_tuned_baseline_is_feasible(self):
        for fw in ("deepspeed", "megatron"):
            result = tune_baseline(SPEC, 48, 16384, fw, refine_top=0)
            _, fits = check_baseline_memory(result.config)
            assert fits, fw

    def test_axonn_prefers_more_data_parallelism_than_megatron(self):
        """Table II: AxoNN uses 4-8x Megatron-LM's data parallelism."""
        ax = tune_axonn(SPEC, 48, 16384, refine_top=0)
        mg = tune_baseline(SPEC, 48, 16384, "megatron", refine_top=0)
        assert ax.config.g_data >= 2 * mg.config.g_data

    def test_tuned_ordering_axonn_first(self):
        ax = tune_axonn(SPEC, 48, 16384, refine_top=0)
        ds = tune_baseline(SPEC, 48, 16384, "deepspeed", refine_top=0)
        mg = tune_baseline(SPEC, 48, 16384, "megatron", refine_top=0)
        assert ax.batch_time_s <= ds.batch_time_s
        assert ax.batch_time_s <= mg.batch_time_s

    def test_refinement_uses_des(self):
        fast = tune_axonn(SPEC, 48, 4096, refine_top=0)
        refined = tune_axonn(SPEC, 48, 4096, refine_top=2)
        # Refined score comes from the DES; both must pick sane configs.
        assert refined.config.g_inter in {c.g_inter for c in
                                          axonn_candidates(SPEC, 48, 4096)}
        assert refined.batch_time_s > 0
        assert fast.n_candidates == refined.n_candidates

    def test_counts_reported(self):
        result = tune_axonn(SPEC, 48, 16384, refine_top=0)
        assert result.n_feasible <= result.n_candidates
        assert result.n_feasible > 0

    def test_as_row(self):
        row = tune_axonn(SPEC, 48, 16384, refine_top=0).as_row()
        assert row["framework"] == "axonn"
        # g_intra is a first-class grid axis; the 3D tuner sweeps only
        # the dense decomposition, so the row reports the identity axis.
        assert row["g_intra"] == 1

    def test_infeasible_model_raises(self):
        """A 100 B model cannot fit on 6 GPUs no matter the configuration."""
        spec = WEAK_SCALING_MODELS["100B"]
        with pytest.raises(ValueError, match="feasible|valid"):
            tune_axonn(spec, 6, 16384 // 8 * 6 // 6 * 8, refine_top=0)


class TestBaselineEstimate:
    def test_positive_and_deterministic(self):
        from repro.baselines import ThreeDConfig
        cfg = ThreeDConfig(spec=SPEC, num_gpus=48, g_intra=3, g_inter=2,
                           g_data=8, microbatch_size=2, batch_size=16384,
                           framework="deepspeed")
        a = estimate_baseline_time(cfg)
        b = estimate_baseline_time(cfg)
        assert a == b > 0

    def test_estimate_tracks_simulation(self):
        from repro.baselines import ThreeDConfig, simulate_baseline_batch
        cfg = ThreeDConfig(spec=SPEC, num_gpus=48, g_intra=3, g_inter=2,
                           g_data=8, microbatch_size=2, batch_size=2048,
                           framework="deepspeed")
        est = estimate_baseline_time(cfg)
        des = simulate_baseline_batch(cfg).batch_time_s
        assert est == pytest.approx(des, rel=0.35)

    def test_intra_layer_tax_visible(self):
        from repro.baselines import ThreeDConfig
        with_tp = ThreeDConfig(spec=SPEC, num_gpus=48, g_intra=3, g_inter=2,
                               g_data=8, microbatch_size=2, batch_size=2048,
                               framework="megatron")
        without_tp = ThreeDConfig(spec=SPEC, num_gpus=48, g_intra=1,
                                  g_inter=2, g_data=24, microbatch_size=2,
                                  batch_size=2112, framework="megatron")
        # Same pipeline depth; TP pays collectives + lower kernel eff, but
        # computes 3x less per GPU — compare per-GPU efficiency instead:
        # the tax shows as less-than-3x speedup of the slot time.
        from repro.tuning.search import estimate_baseline_time as est
        t_tp = est(with_tp)
        t_no = est(without_tp)
        assert t_tp > t_no / 3
