"""Tests for model statistics, memory model, metrics and configuration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AxoNNConfig,
    GPT2_SMALL,
    MemoryModel,
    TransformerSpec,
    WEAK_SCALING_MODELS,
    achieved_flops,
    estimated_training_days,
    paper_table1_specs,
    percent_of_peak,
)

GB = 1024 ** 3
SPEC_12B = WEAK_SCALING_MODELS["12B"]


class TestTransformerSpec:
    def test_table1_param_counts(self):
        """Param-count formula must land on the paper's Table I numbers."""
        expected = {"12B": 12, "24B": 24, "50B": 50, "100B": 100}
        for name, target in expected.items():
            spec = WEAK_SCALING_MODELS[name]
            assert abs(spec.billions - target) / target < 0.05, name

    def test_table1_rows(self):
        rows = paper_table1_specs()
        assert [r["gpus"] for r in rows] == [48, 96, 192, 384]
        assert [r["layers"] for r in rows] == [48, 48, 96, 96]
        assert [r["hidden"] for r in rows] == [4512, 6336, 6528, 9360]
        assert [r["heads"] for r in rows] == [24, 36, 48, 60]

    def test_gpt2_small_is_about_110m(self):
        # ~110 M in the paper (tied embeddings); ours unties the LM head,
        # adding one V x h matrix.
        assert 0.09 < GPT2_SMALL.billions < 0.20

    def test_flops_per_batch_eq3_structure(self):
        """Eq. (3): flops = 96 b s l h^2 (1 + s/6h + V/16lh)."""
        spec = SPEC_12B
        b = 16
        manual = 96 * b * spec.seq_len * spec.n_layer * spec.hidden ** 2 * (
            1 + spec.seq_len / (6 * spec.hidden)
            + spec.vocab_size / (16 * spec.n_layer * spec.hidden))
        assert spec.flops_per_batch(b) == pytest.approx(manual)

    def test_flops_linear_in_batch(self):
        assert SPEC_12B.flops_per_batch(32) == pytest.approx(
            2 * SPEC_12B.flops_per_batch(16))

    def test_message_size_in_region_of_interest(self):
        """The paper says p2p messages are 1-50 MB; check for the tuned
        weak-scaling microbatch sizes."""
        for name, mbs in [("12B", 8), ("24B", 4), ("50B", 4), ("100B", 2)]:
            nbytes = WEAK_SCALING_MODELS[name].activation_message_bytes(mbs)
            assert 1 * 1024 ** 2 <= nbytes <= 50 * 1024 ** 2, name

    def test_eq3_includes_recompute_consistency(self):
        """Per-layer executed flops (fwd + bwd + recompute = 4x fwd) must
        equal the per-layer term of Eq. (3)."""
        spec = SPEC_12B
        b = 8
        per_layer_eq3 = 96 * b * spec.seq_len * spec.hidden ** 2 * (
            1 + spec.seq_len / (6 * spec.hidden))
        assert 4 * spec.layer_forward_flops(b) == pytest.approx(
            per_layer_eq3, rel=1e-6)

    def test_params_per_stage_decreases_with_g_inter(self):
        spec = SPEC_12B
        values = [spec.params_per_stage(g) for g in (1, 6, 12, 24, 48)]
        assert values == sorted(values, reverse=True)

    def test_params_per_stage_bounds(self):
        with pytest.raises(ValueError):
            SPEC_12B.params_per_stage(0)
        with pytest.raises(ValueError):
            SPEC_12B.params_per_stage(49)

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            TransformerSpec("bad", n_layer=2, hidden=10, n_head=3)
        with pytest.raises(ValueError):
            TransformerSpec("bad", n_layer=0, hidden=12, n_head=3)


class TestMemoryModel:
    def test_20phi_baseline(self):
        mm = MemoryModel(SPEC_12B)
        assert mm.state_bytes_baseline(1000) == 20_000

    def test_memopt_4phi_16bsize(self):
        mm = MemoryModel(SPEC_12B)
        assert mm.state_bytes_memopt(10_000, 100) == 4 * 10_000 + 16 * 100

    def test_memopt_bucket_capped_by_phi(self):
        mm = MemoryModel(SPEC_12B)
        assert mm.state_bytes_memopt(100, 10_000) == 4 * 100 + 16 * 100

    def test_memopt_saves_about_5x_on_state(self):
        """Section V-B: 20 phi -> 4 phi + 16 bsize ~= 5x for bsize << phi."""
        mm = MemoryModel(SPEC_12B)
        phi = SPEC_12B.params_per_stage(6)
        ratio = mm.state_bytes_baseline(phi) / mm.state_bytes_memopt(
            phi, 16_000_000)
        assert 4.5 < ratio < 5.0

    def test_zero1_sharding(self):
        mm = MemoryModel(SPEC_12B)
        assert mm.state_bytes_zero1(1000, 4) == 4000 + 4000
        assert mm.state_bytes_zero1(1000, 1) == 20_000

    def test_paper_memory_anchor_g_inter_6_needs_40gb_without_memopt(self):
        """Section V-B: at G_inter=6 on the 12 B model, parameter+optimizer
        state alone is ~40 GB/GPU — 2.5x the V100's 16 GB."""
        mm = MemoryModel(SPEC_12B)
        phi = SPEC_12B.params_per_stage(6)
        state_gb = mm.state_bytes_baseline(phi) / GB
        assert 35 < state_gb < 45

    def test_paper_total_memory_anchor_520_to_130gb(self):
        """Section V-B: total memory falls ~4x (520 -> 130 GB) with the
        optimization (G_inter=24, G_data=2, mbs 1, bsize 16M)."""
        mm = MemoryModel(SPEC_12B)
        without = mm.cluster_total_bytes(24, 2, 1, memopt=False)
        with_ = mm.cluster_total_bytes(24, 2, 1, memopt=True,
                                       bucket_size=16_000_000)
        assert 450 * GB < without < 580 * GB
        assert 100 * GB < with_ < 170 * GB
        assert 3.0 < without / with_ < 5.0

    def test_memopt_makes_g_inter_6_feasible(self):
        """The memory optimization is exactly what lets AxoNN run the 12 B
        model at G_inter=6 (Table II) on 16 GB GPUs."""
        mm = MemoryModel(SPEC_12B)
        without = mm.axonn_bytes(6, 8, memopt=False)
        with_ = mm.axonn_bytes(6, 8, memopt=True, bucket_size=4_000_000)
        assert not mm.fits(without, 16 * GB)
        assert mm.fits(with_, 16 * GB)

    def test_activation_memory_uses_sqrt_rule_by_default(self):
        mm = MemoryModel(SPEC_12B)
        auto = mm.activation_bytes(6, 1)
        explicit = mm.activation_bytes(6, 1, ac=8)  # sqrt(48)≈6.9 -> 8 | 8
        assert auto == explicit

    def test_activation_memory_scales_with_microbatch(self):
        mm = MemoryModel(SPEC_12B)
        assert mm.activation_bytes(6, 8) == pytest.approx(
            8 * mm.activation_bytes(6, 1), rel=1e-6)

    def test_deepspeed_feasibility_matches_table2(self):
        """DeepSpeed's Table II 12 B config (G_intra 3, G_inter 2, G_data 8,
        mbs 2) must fit in 16 GB thanks to ZeRO-1."""
        mm = MemoryModel(SPEC_12B)
        bd = mm.deepspeed_bytes(g_inter=2, g_intra=3, g_data=8, microbatch=2)
        assert mm.fits(bd, 16 * GB)

    def test_megatron_needs_larger_g_inter(self):
        """Megatron (no ZeRO) cannot fit the 12 B model at DeepSpeed's
        G_inter=2 with G_intra=3 — it needs deeper pipelines (Table II:
        G_inter=16)."""
        mm = MemoryModel(SPEC_12B)
        small = mm.megatron_bytes(g_inter=2, g_intra=3, microbatch=2)
        table2 = mm.megatron_bytes(g_inter=16, g_intra=3, microbatch=8)
        assert not mm.fits(small, 16 * GB)
        assert mm.fits(table2, 16 * GB)

    def test_breakdown_total(self):
        from repro.core import MemoryBreakdown
        bd = MemoryBreakdown(10, 20, 30)
        assert bd.total == 60
        assert bd.as_dict()["total"] == 60

    def test_invalid_args(self):
        mm = MemoryModel(SPEC_12B)
        with pytest.raises(ValueError):
            mm.state_bytes_memopt(100, 0)
        with pytest.raises(ValueError):
            mm.state_bytes_zero1(100, 0)
        with pytest.raises(ValueError):
            mm.megatron_bytes(2, 0, 1)

    @given(phi=st.integers(1_000, 10_000_000_000),
           bsize=st.integers(1, 100_000_000))
    @settings(max_examples=60, deadline=None)
    def test_memopt_never_exceeds_baseline(self, phi, bsize):
        """Property: the optimization never uses more state memory than the
        baseline (since 16*min(bsize, phi) <= 16 phi)."""
        mm = MemoryModel(SPEC_12B)
        assert mm.state_bytes_memopt(phi, bsize) \
            <= mm.state_bytes_baseline(phi)


class TestMetrics:
    def test_eq2_structure(self):
        """Eq. (2): 3e11 * t / (b*s), converted to days."""
        days = estimated_training_days(1.0, batch_size=16384, seq_len=512)
        expected = 3e11 * 1.0 / (16384 * 512) / 86400
        assert days == pytest.approx(expected)

    def test_training_days_linear_in_batch_time(self):
        a = estimated_training_days(100, 16384, 512)
        b = estimated_training_days(200, 16384, 512)
        assert b == pytest.approx(2 * a)

    def test_percent_of_peak_bounds(self):
        spec = SPEC_12B
        # Perfect execution at peak: time = flops / aggregate peak.
        t = spec.flops_per_batch(16384) / (48 * 125e12)
        assert percent_of_peak(spec, 16384, t, 48) == pytest.approx(100.0)

    def test_achieved_flops(self):
        spec = SPEC_12B
        f = spec.flops_per_batch(8)
        assert achieved_flops(spec, 8, 2.0) == pytest.approx(f / 2)

    def test_invalid_metrics_args(self):
        with pytest.raises(ValueError):
            estimated_training_days(0, 1, 1)
        with pytest.raises(ValueError):
            achieved_flops(SPEC_12B, 8, 0)
        with pytest.raises(ValueError):
            percent_of_peak(SPEC_12B, 8, 1.0, 0)


class TestAxoNNConfig:
    def _cfg(self, **kw):
        base = dict(spec=SPEC_12B, num_gpus=48, g_inter=6, g_data=8,
                    microbatch_size=8, batch_size=16384)
        base.update(kw)
        return AxoNNConfig(**base)

    def test_valid(self):
        cfg = self._cfg()
        assert cfg.microbatches_per_shard == 256
        assert cfg.total_microbatches == 2048
        assert cfg.effective_pipeline_limit == 6

    def test_grid_must_match_gpus(self):
        with pytest.raises(ValueError):
            self._cfg(g_inter=5)

    def test_batch_divisibility(self):
        with pytest.raises(ValueError):
            self._cfg(batch_size=16383)

    def test_microbatch_divisibility(self):
        with pytest.raises(ValueError):
            self._cfg(microbatch_size=3)

    def test_too_many_stages(self):
        with pytest.raises(ValueError):
            self._cfg(g_inter=48, g_data=1, num_gpus=48,
                      spec=TransformerSpec("tiny", n_layer=4, hidden=64,
                                           n_head=4))

    def test_pipeline_limit_capped_by_microbatches(self):
        cfg = self._cfg(batch_size=48 * 8 // 8 * 8)  # tiny batch
        cfg2 = AxoNNConfig(spec=SPEC_12B, num_gpus=48, g_inter=24, g_data=2,
                           microbatch_size=8, batch_size=64)
        assert cfg2.effective_pipeline_limit <= cfg2.microbatches_per_shard

    def test_with_override(self):
        cfg = self._cfg().with_(memopt=True)
        assert cfg.memopt
        assert cfg.g_inter == 6
