"""Tests for the unified observability layer (repro.obs): span schema,
runtime tracer, Chrome-trace/CSV exporters, report math, and the
cross-substrate smoke check that both substrates emit the same event names
for the same scenario."""

import json

import numpy as np
import pytest

from repro.cluster import Machine, summit
from repro.core import AxoNNConfig, WEAK_SCALING_MODELS, simulate_batch
from repro.nn import GPTConfig
from repro.obs import (
    CATEGORIES,
    STREAMS,
    ObsSpan,
    RuntimeTracer,
    busy_time,
    chrome_trace,
    csv_rows,
    from_sim_span,
    from_sim_tracer,
    idle_breakdown,
    message_volume,
    overlap_stats,
    overlap_time,
    summarize,
    utilization_report,
    validate_span,
    write_chrome_trace,
)
from repro.runtime import AxoNNTrainer
from repro.sim import Span


def span(rank=0, stream="compute", name="k", start=0.0, end=1.0,
         category="compute", **kw):
    return ObsSpan(rank, stream, name, start, end, category, **kw)


class TestSchema:
    def test_track_and_duration(self):
        s = span(rank=3, stream="aux", start=1.0, end=2.5)
        assert s.track == "gpu3.aux"
        assert s.duration == pytest.approx(1.5)

    def test_validate_accepts_all_categories(self):
        for cat in CATEGORIES:
            validate_span(span(category=cat))

    def test_validate_rejects_bad_spans(self):
        with pytest.raises(ValueError):
            validate_span(span(rank=-1))
        with pytest.raises(ValueError):
            validate_span(span(start=2.0, end=1.0))
        with pytest.raises(ValueError):
            validate_span(span(category="mystery"))
        with pytest.raises(ValueError):
            validate_span(span(nbytes=-4))

    def test_from_sim_span_parses_gpu_track(self):
        s = from_sim_span(Span("gpu7.aux", "allreduce-chunk0", 1.0, 2.0,
                               category="allreduce",
                               meta=(("bytes", 4096), ("mb", 3),
                                     ("ranks", 8))))
        assert (s.rank, s.stream) == (7, "aux")
        assert s.category == "allreduce"
        assert s.microbatch == 3
        assert s.nbytes == 4096
        assert s.with_meta() == {"ranks": 8}

    def test_from_sim_span_unknown_track_and_category(self):
        s = from_sim_span(Span("fabric", "x", 0.0, 1.0, category="exotic"))
        assert (s.rank, s.stream) == (0, "fabric")
        assert s.category == "other"


class TestRuntimeTracer:
    def _clock(self):
        ticks = iter(np.arange(0.0, 100.0, 1.0))
        return lambda: float(next(ticks))

    def test_record_and_span_context(self):
        tr = RuntimeTracer(clock=self._clock())  # origin consumes tick 0
        with tr.span(0, "compute", "fwd0", category="compute",
                     microbatch=0):
            pass  # start=1, end=2 relative to origin 0
        tr.record(1, "net", "forward", 0.5, 2.5, category="p2p",
                  nbytes=64, src=1, dst=2)
        assert [s.name for s in tr.spans] == ["fwd0", "forward"]
        assert tr.spans[0].duration == pytest.approx(1.0)
        assert tr.spans[1].with_meta() == {"src": 1, "dst": 2}
        assert tr.tracks() == ["gpu0.compute", "gpu1.net"]
        assert [s.name for s in tr.by_category("p2p")] == ["forward"]

    def test_disabled_tracer_is_inert(self):
        tr = RuntimeTracer(enabled=False)
        tr.record(0, "compute", "x", 0.0, 1.0)
        with tr.span(0, "compute", "y"):
            pass
        assert tr.spans == []

    def test_end_before_start_rejected(self):
        tr = RuntimeTracer()
        with pytest.raises(ValueError):
            tr.record(0, "compute", "x", 2.0, 1.0)


class TestChromeTraceExport:
    def _spans(self):
        return [
            span(rank=0, stream="compute", name="fwd0", start=0.0, end=1.5,
                 category="compute", microbatch=0),
            span(rank=0, stream="aux", name="allreduce", start=0.5, end=2.0,
                 category="allreduce", nbytes=4096),
            span(rank=1, stream="compute", name="fwd0", start=0.0, end=1.0,
                 category="compute", microbatch=0,
                 meta=(("stage", 1),)),
        ]

    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        assert write_chrome_trace(str(path), self._spans()) == 3
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_complete_events_have_required_fields(self):
        doc = chrome_trace(self._spans())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 3
        for e in complete:
            for key in ("name", "ts", "dur", "pid", "tid", "args"):
                assert key in e, key

    def test_timestamps_are_microseconds(self):
        doc = chrome_trace(self._spans())
        e = next(ev for ev in doc["traceEvents"]
                 if ev["ph"] == "X" and ev["name"] == "allreduce")
        assert e["ts"] == pytest.approx(0.5e6)
        assert e["dur"] == pytest.approx(1.5e6)

    def test_one_pid_per_rank_with_metadata(self):
        doc = chrome_trace(self._spans())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in complete} == {0, 1}
        proc_meta = [e for e in doc["traceEvents"]
                     if e["ph"] == "M" and e["name"] == "process_name"]
        assert {e["pid"] for e in proc_meta} == {0, 1}
        assert {e["args"]["name"] for e in proc_meta} == \
            {"rank 0", "rank 1"}
        thread_meta = [e for e in doc["traceEvents"]
                       if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {(e["pid"], e["args"]["name"]) for e in thread_meta} == \
            {(0, "compute"), (0, "aux"), (1, "compute")}

    def test_canonical_streams_get_stable_tids(self):
        doc = chrome_trace(self._spans())
        by_name = {(e["pid"], e["name"]): e for e in doc["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name[(0, "fwd0")]["tid"] == STREAMS.index("compute")
        assert by_name[(0, "allreduce")]["tid"] == STREAMS.index("aux")

    def test_args_carry_payload_and_meta(self):
        doc = chrome_trace(self._spans())
        e = next(ev for ev in doc["traceEvents"]
                 if ev["ph"] == "X" and ev["pid"] == 1)
        assert e["args"]["category"] == "compute"
        assert e["args"]["microbatch"] == 0
        assert e["args"]["stage"] == 1

    def test_csv_rows_flatten_meta(self):
        rows = csv_rows(self._spans())
        assert rows[0]["name"] == "fwd0"
        assert rows[2]["stage"] == 1
        assert rows[1]["nbytes"] == 4096


class TestReports:
    def test_busy_and_overlap_time(self):
        a = [span(name="a1", start=0, end=2), span(name="a2", start=1, end=3)]
        b = [span(name="b", start=2.5, end=4, category="p2p")]
        assert busy_time(a) == pytest.approx(3.0)
        assert overlap_time(a, b) == pytest.approx(0.5)

    def test_overlap_stats_fraction(self):
        spans = [
            span(name="ar", start=0, end=4, category="allreduce",
                 stream="aux"),
            span(name="opt1", start=1, end=2, category="optimizer"),
            span(name="opt2", start=5, end=6, category="optimizer"),
        ]
        stats = overlap_stats(spans, "allreduce", "optimizer")
        assert stats["a_busy_s"] == pytest.approx(4.0)
        assert stats["b_busy_s"] == pytest.approx(2.0)
        assert stats["overlap_s"] == pytest.approx(1.0)
        assert stats["overlap_fraction"] == pytest.approx(0.5)
        assert (stats["n_a"], stats["n_b"]) == (1, 2)

    def test_overlap_stats_empty_b(self):
        stats = overlap_stats([span()], "compute", "optimizer")
        assert stats["overlap_fraction"] == 0.0

    def test_utilization_report_windows_and_clips(self):
        spans = [span(rank=0, start=0, end=2),
                 span(rank=1, start=1, end=4, stream="aux",
                      category="allreduce", name="ar")]
        rows = utilization_report(spans)  # window [0, 4]
        by_track = {(r["rank"], r["stream"]): r for r in rows}
        assert by_track[(0, "compute")]["utilization"] == pytest.approx(0.5)
        assert by_track[(1, "aux")]["utilization"] == pytest.approx(0.75)
        clipped = utilization_report(spans, t0=3, t1=4)
        by_track = {(r["rank"], r["stream"]): r for r in clipped}
        assert by_track[(0, "compute")]["busy_s"] == pytest.approx(0.0)
        assert by_track[(1, "aux")]["busy_s"] == pytest.approx(1.0)

    def test_idle_breakdown_sums_to_window(self):
        spans = [span(start=0, end=1),
                 span(name="opt", start=3, end=4, category="optimizer")]
        (row,) = idle_breakdown(spans)  # one track, window [0, 4]
        assert row["compute_s"] == pytest.approx(1.0)
        assert row["optimizer_s"] == pytest.approx(1.0)
        assert row["idle_s"] == pytest.approx(2.0)

    def test_message_volume_matrix(self):
        spans = [
            span(rank=0, stream="net", name="forward", category="p2p",
                 nbytes=100, meta=(("dst", 1), ("src", 0))),
            span(rank=0, stream="net", name="forward", category="p2p",
                 nbytes=50, meta=(("dst", 1), ("src", 0))),
            span(rank=1, stream="net", name="backward", category="p2p",
                 nbytes=70, meta=(("dst", 0), ("src", 1))),
            span(name="not-p2p", category="compute"),
        ]
        matrix = message_volume(spans)
        assert matrix["forward"][(0, 1)] == {"count": 2, "bytes": 150}
        assert matrix["backward"][(1, 0)] == {"count": 1, "bytes": 70}

    def test_summarize_mentions_tracks_and_volume(self):
        text = summarize([
            span(),
            span(rank=0, stream="net", name="forward", category="p2p",
                 nbytes=10, meta=(("dst", 1), ("src", 0))),
        ], title="unit")
        assert "unit" in text
        assert "gpu0.compute" in text
        assert "p2p volume" in text

    def test_summarize_empty(self):
        assert "empty" in summarize([])


class TestCrossSubstrate:
    """Both substrates, same 2x2 hybrid scenario, same event names."""

    def test_same_event_names_for_one_hybrid_step(self):
        cfg = AxoNNConfig(
            spec=WEAK_SCALING_MODELS["12B"], num_gpus=4, g_inter=2,
            g_data=2, microbatch_size=2, batch_size=8, memopt=False)
        machine = Machine(spec=summit(1), trace=True)
        simulate_batch(cfg, machine=machine)
        sim_names = {s.name for s in from_sim_tracer(machine.tracer)}

        gcfg = GPTConfig(vocab_size=19, seq_len=8, n_layer=4, n_head=2,
                         hidden=12, dropout=0.0, init_seed=3)
        tracer = RuntimeTracer()
        trainer = AxoNNTrainer(gcfg, g_inter=2, g_data=2,
                               microbatch_size=2, tracer=tracer)
        rng = np.random.default_rng(3)
        x = rng.integers(0, gcfg.vocab_size, size=(8, gcfg.seq_len))
        y = rng.integers(0, gcfg.vocab_size, size=(8, gcfg.seq_len))
        trainer.train_batch(x, y)
        runtime_names = {s.name for s in tracer.spans}

        assert runtime_names == sim_names
        # The names both sides agree on are the algorithm's phases.
        assert {"fwd0", "fwd1", "bwd0", "bwd1", "forward", "backward",
                "allreduce", "optimizer"} <= sim_names

    def test_runtime_trace_categories_and_payload(self):
        gcfg = GPTConfig(vocab_size=19, seq_len=8, n_layer=4, n_head=2,
                         hidden=12, dropout=0.0, init_seed=3)
        tracer = RuntimeTracer()
        trainer = AxoNNTrainer(gcfg, g_inter=2, g_data=2,
                               microbatch_size=2, tracer=tracer)
        rng = np.random.default_rng(4)
        x = rng.integers(0, gcfg.vocab_size, size=(8, gcfg.seq_len))
        y = rng.integers(0, gcfg.vocab_size, size=(8, gcfg.seq_len))
        trainer.train_batch(x, y)
        for s in tracer.spans:
            validate_span(s)
        p2p = [s for s in tracer.spans if s.category == "p2p"]
        # 2 microbatches x (1 fwd + 1 bwd hop) x 2 data-parallel rows
        assert len(p2p) == 8
        for s in p2p:
            assert s.stream == "net"
            assert s.nbytes and s.nbytes > 0
            meta = s.with_meta()
            assert {"src", "dst"} <= set(meta)
        opt = [s for s in tracer.spans if s.category == "optimizer"]
        assert {s.rank for s in opt} == {0, 1, 2, 3}
