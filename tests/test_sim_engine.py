"""Unit and property tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(2.5)
        seen.append(env.now)
        yield env.timeout(1.5)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [2.5, 4.0]


def test_zero_delay_timeout_runs_at_now():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(0.0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [0.0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_return_value_becomes_event_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return "done"

    p = env.process(proc(env))
    env.run()
    assert p.value == "done"
    assert p.ok


def test_process_waits_on_another_process():
    env = Environment()
    order = []

    def child(env):
        yield env.timeout(5)
        order.append("child")
        return 7

    def parent(env):
        result = yield env.process(child(env))
        order.append("parent")
        assert result == 7

    env.process(parent(env))
    env.run()
    assert order == ["child", "parent"]
    assert env.now == 5


def test_event_succeed_delivers_value():
    env = Environment()
    ev = env.event()
    got = []

    def waiter(env):
        got.append((yield ev))

    def firer(env):
        yield env.timeout(3)
        ev.succeed("payload")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert got == ["payload"]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_failed_event_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def firer(env):
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_surfaces_from_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise RuntimeError("unobserved crash")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="unobserved crash"):
        env.run()


def test_handled_process_failure_does_not_escape():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1)
        raise RuntimeError("child crash")

    def parent(env):
        try:
            yield env.process(child(env))
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["child crash"]


def test_yield_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield 42  # type: ignore[misc]

    env.process(proc(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(2, "wake up")]


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_run_until_stops_clock_exactly():
    env = Environment()

    def proc(env):
        yield env.timeout(10)

    env.process(proc(env))
    env.run(until=4.0)
    assert env.now == 4.0
    env.run()  # finish the rest
    assert env.now == 10.0


def test_run_until_past_raises():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_anyof_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        got = yield AnyOf(env, [t1, t2])
        results.append((env.now, list(got.values())))

    env.process(proc(env))
    env.run()
    assert results == [(1, ["fast"])]


def test_allof_waits_for_all():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        got = yield AllOf(env, [t1, t2])
        results.append((env.now, sorted(got.values())))

    env.process(proc(env))
    env.run()
    assert results == [(5, ["a", "b"])]


def test_allof_empty_fires_immediately():
    env = Environment()
    results = []

    def proc(env):
        yield AllOf(env, [])
        results.append(env.now)

    env.process(proc(env))
    env.run()
    assert results == [0.0]


def test_same_time_events_fire_in_creation_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == list(range(5))


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    # Timeout schedules immediately.
    assert env.peek() == 7
    env.run()
    assert env.peek() == float("inf")


def test_step_on_empty_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_already_processed_event_resumes_immediately():
    env = Environment()
    log = []

    def proc(env, ev):
        yield env.timeout(5)
        got = yield ev  # fired (and processed) at t=1
        log.append((env.now, got))

    ev = env.event()
    ev.succeed("early")
    env.process(proc(env, ev))
    env.run()
    assert log == [(5, "early")]


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_clock_is_monotone_and_all_processes_complete(delays):
    """Property: with arbitrary delays, time never regresses and every
    process finishes exactly once."""
    env = Environment()
    times = []
    finished = []

    def proc(env, d, i):
        yield env.timeout(d)
        times.append(env.now)
        finished.append(i)

    for i, d in enumerate(delays):
        env.process(proc(env, d, i))
    env.run()
    assert sorted(finished) == list(range(len(delays)))
    assert times == sorted(times)
    assert env.now == max(delays)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_simulation_is_deterministic(seed):
    """Property: two runs of an identical random workload produce the
    identical completion trace."""
    import random

    def build_and_run():
        rng = random.Random(seed)
        env = Environment()
        trace = []

        def worker(env, i):
            for _ in range(rng.randint(1, 4)):
                yield env.timeout(rng.random())
            trace.append((i, env.now))

        for i in range(10):
            env.process(worker(env, i))
        env.run()
        return trace

    assert build_and_run() == build_and_run()
