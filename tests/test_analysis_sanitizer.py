"""Tests for the autograd sanitizer: the three seeded bug classes (aliased
``_accumulate_owned``, in-place mutation of a saved activation, NaN-producing
op), graph hygiene, and the zero-overhead-when-disabled contract."""

import numpy as np
import pytest

from repro.analysis import (
    AnomalyError,
    GraphError,
    MutationError,
    OwnershipError,
    detect_anomaly,
    sanitize,
    sanitizer,
)
from repro.nn import Tensor
from repro.nn.functional import softmax


def _tensor(shape=(3, 4), requires_grad=True, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape).astype(np.float32),
                  requires_grad=requires_grad)


class TestSeededBugs:
    """Deliberately misimplemented backward closures, each named after the
    op it impersonates, must be flagged with that op name."""

    def test_aliased_accumulate_owned_flagged(self):
        """Seeded bug 1: passing the upstream gradient ``g`` straight to
        ``_accumulate_owned`` (the REP001 violation, at runtime)."""
        a = _tensor()

        def buggy_scale(x):
            out_data = x.data * 2.0

            def backward(g, a=x):
                a._accumulate_owned(g)  # WRONG: g is not owned

            return Tensor._make(out_data, (x,), backward)

        with sanitize():
            out = buggy_scale(a)
            with pytest.raises(OwnershipError) as excinfo:
                out.sum().backward()
        msg = str(excinfo.value)
        assert "buggy_scale" in msg
        assert "REP001" in msg

    def test_aliased_parent_data_flagged(self):
        """Variant: handing over a view of the parent's own buffer."""
        a = _tensor()

        def buggy_identity(x):
            def backward(g, a=x):
                a._accumulate_owned(a.data[:])  # WRONG: aliases a.data

            return Tensor._make(x.data.copy(), (x,), backward)

        with sanitize():
            out = buggy_identity(a)
            with pytest.raises(OwnershipError) as excinfo:
                out.sum().backward()
        assert "buggy_identity" in str(excinfo.value)
        assert "parent tensor's own data" in str(excinfo.value)

    def test_mutated_saved_activation_flagged(self):
        """Seeded bug 2: mutating a tensor saved for backward in place
        between forward and backward."""
        a = _tensor()

        def buggy_relu(x):
            out_data = np.maximum(x.data, 0)

            def backward(g, a=x):
                a._accumulate_owned(g * (a.data > 0))

            return Tensor._make(out_data, (x,), backward)

        with sanitize():
            out = buggy_relu(a)
            a.data *= 3.0  # in-place mutation after the save
            a.bump_version()
            with pytest.raises(MutationError) as excinfo:
                out.sum().backward()
        assert "buggy_relu" in str(excinfo.value)

    def test_unannotated_mutation_caught_by_fingerprint(self):
        """The content fingerprint catches mutations even without
        bump_version()."""
        a = _tensor()
        with sanitize():
            out = a.relu()
            a.data += 100.0  # no bump_version()
            with pytest.raises(MutationError, match="relu"):
                out.sum().backward()

    def test_nan_producing_op_flagged_in_forward(self):
        """Seeded bug 3: an op producing NaN, pinpointed at creation."""
        a = Tensor(np.array([-1.0, 2.0], dtype=np.float32),
                   requires_grad=True)
        with detect_anomaly(), np.errstate(invalid="ignore"):
            with pytest.raises(AnomalyError, match="'log'"):
                a.log()  # log(-1) = nan in the forward output

    def test_nonfinite_gradient_flagged_entering_backward(self):
        a = Tensor(np.array([0.5, 2.0], dtype=np.float32),
                   requires_grad=True)
        with detect_anomaly():
            out = a.relu()
            with pytest.raises(AnomalyError, match="relu"):
                out.backward(np.array([np.inf, 1.0], dtype=np.float32))


class TestGraphHygiene:
    def test_double_backward_raises(self):
        a = _tensor()
        with sanitize():
            out = (a * a).sum()
            out.backward()
            a.zero_grad()
            with pytest.raises(GraphError, match="double backward"):
                out.backward()

    def test_graph_leak_detected(self):
        a = _tensor()
        with sanitize():
            with sanitizer.watch_graphs() as watch:
                kept = a * 2.0  # interior node, never backwarded
            assert watch.created() >= 1
            leaked = watch.leaked()
            assert kept in leaked

    def test_no_leak_after_backward(self):
        a = _tensor()
        with sanitize():
            with sanitizer.watch_graphs() as watch:
                out = (a * 2.0).sum()
                out.backward()
                del out
            assert watch.leaked() == []


class TestCleanCodePasses:
    def test_shipped_ops_pass_under_sanitizer(self):
        """The shipped fused/primitive closures honour the ownership
        contract: a realistic composite graph backwards cleanly."""
        a = _tensor((4, 8), seed=1)
        b = _tensor((8, 8), seed=2)
        with sanitize(anomaly=True):
            out = softmax((a @ b).tanh() + 1.0, axis=-1)
            (out.mean() * 3.0).backward()
        assert a.grad is not None and np.isfinite(a.grad).all()
        assert b.grad is not None and np.isfinite(b.grad).all()

    def test_full_model_training_step_under_sanitizer(self):
        from repro.nn import GPTConfig, LMBatches, SyntheticCorpus
        from repro.runtime import SerialTrainer

        cfg = GPTConfig(vocab_size=32, seq_len=8, n_layer=2, n_head=2,
                        hidden=16)
        trainer = SerialTrainer(cfg)
        corpus = SyntheticCorpus(cfg.vocab_size, 1_000, seed=0)
        x, y = LMBatches(corpus, batch_size=4, seq_len=cfg.seq_len).batch(0)
        with sanitize():
            loss = trainer.train_batch(x, y)
        assert np.isfinite(loss if isinstance(loss, float) else loss.loss)

    def test_version_counter_semantics(self):
        t = _tensor()
        assert t.version == 0
        t.bump_version()
        t.bump_version()
        assert t.version == 2


class TestZeroOverheadContract:
    def test_disabled_by_default(self):
        assert sanitizer.enabled is False
        assert sanitizer.anomaly is False

    def test_context_restores_state(self):
        with sanitize(anomaly=True):
            assert sanitizer.enabled and sanitizer.anomaly
        assert not sanitizer.enabled and not sanitizer.anomaly

    def test_no_snapshots_recorded_when_disabled(self):
        a = _tensor()
        out = (a * a).sum()
        out.backward()
        assert len(sanitizer._records) == 0
        assert len(sanitizer._consumed) == 0

    def test_buggy_closure_unflagged_when_disabled(self):
        """Sanity check on the opt-in property: with the sanitizer off, the
        seeded bug passes silently (which is exactly why the sanitizer and
        lint rule exist)."""
        a = _tensor()

        def buggy(x):
            def backward(g, a=x):
                a._accumulate_owned(g)

            return Tensor._make(x.data * 2.0, (x,), backward)

        buggy(a).sum().backward()  # no error
        assert a.grad is not None
