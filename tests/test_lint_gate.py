"""Opt-in repo-wide static-analysis gate (``pytest -m lint``).

Mirrors the ``-m bench`` pattern: excluded from the default run (see
``addopts`` in pyproject.toml), run explicitly in CI.  It asserts the
shipped tree is clean under ``python -m repro.analysis lint`` and that the
sanitizer passes over a real training step.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

pytestmark = pytest.mark.lint

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
PACKAGE = SRC / "repro"


def test_shipped_tree_lints_clean():
    from repro.analysis import lint_paths

    issues = lint_paths([str(PACKAGE)])
    assert issues == [], "\n".join(str(i) for i in issues)


def test_lint_cli_exits_zero_on_clean_tree():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", str(PACKAGE)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 issues" in proc.stdout


def test_lint_cli_exits_nonzero_on_violation(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nnp.random.seed(0)\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", str(bad)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "REP003" in proc.stdout


def test_lint_cli_json_mode(tmp_path):
    import json

    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nnp.random.seed(0)\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", "--json", str(bad)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["clean"] is False and doc["issue_count"] == 1
    assert doc["issues"][0]["code"] == "REP003"
    assert doc["issues"][0]["line"] == 2


def test_lint_cli_sarif_mode(tmp_path):
    import json

    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nnp.random.seed(0)\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", "--sarif",
         str(bad)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "REP003" in rule_ids and "REP009" in rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "REP003"
    assert result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 2


def test_lint_cli_sarif_clean_tree_exits_zero(tmp_path):
    import json

    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", "--sarif",
         str(good)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(proc.stdout)["runs"][0]["results"] == []


_REP009_BAD = """\
import time
from repro.runtime.transport import RECV


def program(rank, net):
    net.send(rank, 1, "forward", 0, None)
    time.sleep(0.1)
    pkt = yield RECV
"""

_REP009_GOOD = """\
import time
from repro.runtime.transport import RECV


def program(rank, net):
    time.sleep(0.1)
    net.send(rank, 1, "forward", 0, None)
    pkt = yield RECV
    time.sleep(0.1)
"""


def test_rep009_flags_blocking_call_in_flight():
    from repro.analysis import lint_source

    issues = lint_source(_REP009_BAD, "prog.py")
    assert [i.code for i in issues] == ["REP009"]
    assert issues[0].line == 7
    assert "time.sleep" in issues[0].message


def test_rep009_allows_blocking_outside_the_window():
    from repro.analysis import lint_source

    assert lint_source(_REP009_GOOD, "prog.py") == []


def test_rep009_ignores_non_rank_programs():
    from repro.analysis import lint_source

    # send + sleep but no `yield RECV`: not a rank program, not REP009's
    # business (the cooperative sweep never drives this function).
    src = ("import time\n"
           "def helper(net):\n"
           "    net.send(0, 1, 'x', 0)\n"
           "    time.sleep(0.1)\n")
    assert lint_source(src, "helper.py") == []


def test_rep009_suppression():
    from repro.analysis import lint_source

    suppressed = _REP009_BAD.replace(
        "time.sleep(0.1)",
        "time.sleep(0.1)  # lint-ok: REP009 measured stall for a test")
    assert lint_source(suppressed, "prog.py") == []


def test_repro_lint_json_passthrough():
    """``python -m repro lint --json`` forwards to the analysis CLI."""
    import json

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--json"],
        capture_output=True, text=True, cwd=str(REPO),
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["clean"] is True


def test_missing_bench_baseline_is_not_a_failure(tmp_path):
    """``check_regression.py`` without a recorded baseline reports the
    fact and exits 0 (a fresh checkout must not fail CI)."""
    proc = subprocess.run(
        [sys.executable, str(REPO / "benchmarks" / "check_regression.py"),
         "--bench-root", str(tmp_path),
         "--serving-baseline", str(tmp_path / "missing5.json"),
         "--scaling-baseline", str(tmp_path / "missing6.json")],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no trainer baseline found" in proc.stdout
    assert "no serving baseline found" in proc.stdout
    assert "no scaling baseline found" in proc.stdout


def test_sanitizer_smoke_full_training_step():
    """The shipped autograd closures all honour the ownership and
    mutation contracts over a real parallel training batch."""
    from repro.analysis import sanitize
    from repro.nn import GPTConfig, LMBatches, SyntheticCorpus
    from repro.runtime import AxoNNTrainer

    cfg = GPTConfig(vocab_size=32, seq_len=8, n_layer=2, n_head=2,
                    hidden=16)
    trainer = AxoNNTrainer(cfg, g_inter=2, g_data=1, microbatch_size=2)
    corpus = SyntheticCorpus(cfg.vocab_size, 1_000, seed=0)
    x, y = LMBatches(corpus, batch_size=4, seq_len=cfg.seq_len).batch(0)
    with sanitize(anomaly=True):
        report = trainer.train_batch(x, y)
    assert np.isfinite(report.loss)
