"""Opt-in repo-wide static-analysis gate (``pytest -m lint``).

Mirrors the ``-m bench`` pattern: excluded from the default run (see
``addopts`` in pyproject.toml), run explicitly in CI.  It asserts the
shipped tree is clean under ``python -m repro.analysis lint`` and that the
sanitizer passes over a real training step.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

pytestmark = pytest.mark.lint

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
PACKAGE = SRC / "repro"


def test_shipped_tree_lints_clean():
    from repro.analysis import lint_paths

    issues = lint_paths([str(PACKAGE)])
    assert issues == [], "\n".join(str(i) for i in issues)


def test_lint_cli_exits_zero_on_clean_tree():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", str(PACKAGE)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 issues" in proc.stdout


def test_lint_cli_exits_nonzero_on_violation(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nnp.random.seed(0)\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", str(bad)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "REP003" in proc.stdout


def test_lint_cli_json_mode(tmp_path):
    import json

    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nnp.random.seed(0)\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", "--json", str(bad)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["clean"] is False and doc["issue_count"] == 1
    assert doc["issues"][0]["code"] == "REP003"
    assert doc["issues"][0]["line"] == 2


def test_repro_lint_json_passthrough():
    """``python -m repro lint --json`` forwards to the analysis CLI."""
    import json

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--json"],
        capture_output=True, text=True, cwd=str(REPO),
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["clean"] is True


def test_missing_bench_baseline_is_not_a_failure(tmp_path):
    """``check_regression.py`` without a recorded baseline reports the
    fact and exits 0 (a fresh checkout must not fail CI)."""
    proc = subprocess.run(
        [sys.executable, str(REPO / "benchmarks" / "check_regression.py"),
         "--bench-root", str(tmp_path),
         "--serving-baseline", str(tmp_path / "missing5.json"),
         "--scaling-baseline", str(tmp_path / "missing6.json")],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no trainer baseline found" in proc.stdout
    assert "no serving baseline found" in proc.stdout
    assert "no scaling baseline found" in proc.stdout


def test_sanitizer_smoke_full_training_step():
    """The shipped autograd closures all honour the ownership and
    mutation contracts over a real parallel training batch."""
    from repro.analysis import sanitize
    from repro.nn import GPTConfig, LMBatches, SyntheticCorpus
    from repro.runtime import AxoNNTrainer

    cfg = GPTConfig(vocab_size=32, seq_len=8, n_layer=2, n_head=2,
                    hidden=16)
    trainer = AxoNNTrainer(cfg, g_inter=2, g_data=1, microbatch_size=2)
    corpus = SyntheticCorpus(cfg.vocab_size, 1_000, seed=0)
    x, y = LMBatches(corpus, batch_size=4, seq_len=cfg.seq_len).batch(0)
    with sanitize(anomaly=True):
        report = trainer.train_batch(x, y)
    assert np.isfinite(report.loss)
