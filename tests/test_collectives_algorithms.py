"""Tests for the explicit ring all-reduce implementations: the numerical
ring on the rank transport and the timing ring on the simulated fabric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import MB, Machine, summit
from repro.comm.algorithms import ring_allreduce_des, ring_step_count
from repro.runtime.collectives import ring_allreduce


class TestNumericalRing:
    def test_sum_two_ranks(self):
        arrays = {0: np.array([1.0, 2.0, 3.0], dtype=np.float32),
                  1: np.array([10.0, 20.0, 30.0], dtype=np.float32)}
        out = ring_allreduce(arrays)
        for r in (0, 1):
            np.testing.assert_allclose(out[r], [11.0, 22.0, 33.0])

    def test_sum_many_ranks_odd_sizes(self):
        rng = np.random.default_rng(0)
        arrays = {r: rng.standard_normal(17).astype(np.float32)
                  for r in range(5)}
        total = sum(arrays.values())
        out = ring_allreduce({k: v.copy() for k, v in arrays.items()})
        for r in out:
            np.testing.assert_allclose(out[r], total, rtol=1e-5)

    def test_arbitrary_rank_keys(self):
        arrays = {42: np.ones(4, dtype=np.float32),
                  7: np.full(4, 2.0, dtype=np.float32),
                  99: np.full(4, 3.0, dtype=np.float32)}
        out = ring_allreduce(arrays)
        assert set(out) == {7, 42, 99}
        np.testing.assert_allclose(out[42], 6.0)

    def test_single_rank(self):
        out = ring_allreduce({3: np.arange(4, dtype=np.float32)})
        np.testing.assert_array_equal(out[3], np.arange(4, dtype=np.float32))

    def test_multidimensional(self):
        arrays = {0: np.ones((2, 3), dtype=np.float32),
                  1: np.full((2, 3), 4.0, dtype=np.float32)}
        out = ring_allreduce(arrays)
        assert out[0].shape == (2, 3)
        np.testing.assert_allclose(out[1], 5.0)

    def test_array_smaller_than_ring(self):
        """Fewer elements than ranks: some chunks are empty."""
        arrays = {r: np.array([float(r + 1)], dtype=np.float32)
                  for r in range(4)}
        out = ring_allreduce(arrays)
        for r in out:
            np.testing.assert_allclose(out[r], [10.0])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce({0: np.ones(3), 1: np.ones(4)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce({})

    @given(
        p=st.integers(2, 6),
        n=st.integers(1, 40),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_ring_equals_sum_property(self, p, n, seed):
        rng = np.random.default_rng(seed)
        arrays = {r: rng.standard_normal(n).astype(np.float64)
                  for r in range(p)}
        total = sum(arrays.values())
        out = ring_allreduce({k: v.copy() for k, v in arrays.items()})
        for r in out:
            np.testing.assert_allclose(out[r], total, rtol=1e-9)


class TestDESRing:
    def test_step_count(self):
        assert ring_step_count(1) == 0
        assert ring_step_count(6) == 10
        with pytest.raises(ValueError):
            ring_step_count(0)

    def _run(self, machine, gpu_ids, nbytes, model):
        result = {}

        def proc():
            result["t"] = yield from ring_allreduce_des(
                machine, gpu_ids, nbytes, model)

        machine.env.process(proc())
        machine.run()
        return result["t"]

    def test_single_rank_free(self):
        m = Machine(spec=summit(1))
        assert self._run(m, [0], 4 * MB, m.cal.mpi) == 0.0

    def test_matches_per_step_analytic_intra_node(self):
        """With a full-duplex fabric the emergent ring time must equal
        2 (p-1) rounds of (alpha + chunk / bw)."""
        m = Machine(spec=summit(1))
        nbytes = 64 * MB
        p = 6
        t = self._run(m, list(range(p)), nbytes, m.cal.mpi)
        chunk = nbytes // p
        expected = ring_step_count(p) * (
            m.cal.mpi.p2p_alpha_intra + chunk / m.cal.mpi.p2p_bw_intra)
        assert t == pytest.approx(expected, rel=1e-6)

    def test_scales_with_bytes(self):
        m1 = Machine(spec=summit(1))
        t1 = self._run(m1, list(range(4)), 16 * MB, m1.cal.mpi)
        m2 = Machine(spec=summit(1))
        t2 = self._run(m2, list(range(4)), 64 * MB, m2.cal.mpi)
        assert 3.0 < t2 / t1 < 4.5  # ~4x modulo latency terms

    def test_bandwidth_term_converges_to_closed_form(self):
        """For large messages the emergent ring approaches the canonical
        2 (p-1)/p * bytes / bw bandwidth bound of the cost model (with the
        p2p bandwidth in place of the tuned collective bandwidth)."""
        m = Machine(spec=summit(1))
        nbytes = 512 * MB
        p = 6
        t = self._run(m, list(range(p)), nbytes, m.cal.mpi)
        bound = 2 * (p - 1) / p * nbytes / m.cal.mpi.p2p_bw_intra
        assert t == pytest.approx(bound, rel=0.02)

    def test_inter_node_ring_crosses_nics(self):
        m = Machine(spec=summit(2))
        t_intra = self._run(m, list(range(6)), 16 * MB, m.cal.mpi)
        m2 = Machine(spec=summit(2))
        t_cross = self._run(m2, list(range(12)), 16 * MB, m2.cal.mpi)
        assert t_cross > t_intra

    def test_duplicate_gpus_rejected(self):
        m = Machine(spec=summit(1))
        gen = ring_allreduce_des(m, [0, 0, 1], 1 * MB, m.cal.mpi)
        with pytest.raises(ValueError):
            m.env.process(gen)
            m.run()

    def test_nccl_internal_collectives_beat_emergent_p2p_ring(self):
        """A ring built on NCCL's *exposed* p2p path cannot reach the
        bandwidth of NCCL's internal collectives — which is exactly why the
        paper (and AxoNN) still uses NCCL for the all-reduce while using
        MPI for point-to-point."""
        m = Machine(spec=summit(1))
        nbytes = 64 * MB
        emergent = self._run(m, list(range(6)), nbytes, m.cal.nccl)
        internal = m.cal.nccl.allreduce_time(nbytes, 6, intra_node=True)
        assert internal < emergent


class TestFullDuplexFabric:
    def test_send_and_receive_overlap_at_a_gpu(self):
        """0 -> 1 and 1 -> 2 share GPU 1 (ingress and egress respectively)
        and must proceed concurrently on a full-duplex port."""
        m = Machine(spec=summit(1))
        model = m.cal.mpi
        one = model.p2p_time(16 * MB, True)
        m.env.process(m.fabric.transfer(0, 1, 16 * MB, model))
        m.env.process(m.fabric.transfer(1, 2, 16 * MB, model))
        m.run()
        assert m.now == pytest.approx(one, rel=0.01)

    def test_two_receives_still_serialize(self):
        m = Machine(spec=summit(1))
        model = m.cal.mpi
        one = model.p2p_time(16 * MB, True)
        m.env.process(m.fabric.transfer(0, 2, 16 * MB, model))
        m.env.process(m.fabric.transfer(1, 2, 16 * MB, model))
        m.run()
        assert m.now == pytest.approx(2 * one, rel=0.01)

    def test_nic_in_and_out_overlap(self):
        """node0 -> node1 and node1 -> node0 run concurrently on duplex
        NICs."""
        m = Machine(spec=summit(2))
        model = m.cal.mpi
        one = model.p2p_time(16 * MB, False)
        m.env.process(m.fabric.transfer(0, 6, 16 * MB, model))
        m.env.process(m.fabric.transfer(7, 1, 16 * MB, model))
        m.run()
        assert m.now == pytest.approx(one, rel=0.01)
