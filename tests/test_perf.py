"""Tests for the :mod:`repro.perf` instrumentation package."""

import numpy as np
import pytest

from repro.nn import GPT, GPTConfig, Tensor, no_grad
from repro.perf import OpCounters, Timer, TimingStats, counters, counting, \
    time_fn


class TestCounters:
    def test_disabled_by_default(self):
        c = OpCounters()
        c.bump("x")
        assert c.get("x") == 0

    def test_bump_and_snapshot(self):
        c = OpCounters()
        c.enabled = True
        c.bump("x")
        c.bump("x", 2)
        c.bump("y")
        assert c.snapshot() == {"x": 3, "y": 1}
        c.reset()
        assert c.snapshot() == {}

    def test_counting_context_restores_state(self):
        assert not counters.enabled
        with counting() as c:
            assert c is counters
            assert counters.enabled
        assert not counters.enabled

    def test_counting_resets_by_default(self):
        with counting():
            counters.bump("stale")
        with counting():
            assert counters.get("stale") == 0
        with counting():
            counters.bump("kept")
            with counting(reset=False):
                assert counters.get("kept") == 1

    def test_autograd_reports_graph_nodes(self):
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with counting():
            ((a * 2.0) + 1.0).sum().backward()
            assert counters.get("graph_nodes") == 3  # mul, add, sum
        with counting():
            with no_grad():
                (a * 2.0) + 1.0
            assert counters.get("graph_nodes") == 0

    def test_model_step_counts_fused_ops(self):
        cfg = GPTConfig(vocab_size=11, seq_len=6, n_layer=2, n_head=2,
                        hidden=8, dropout=0.0, init_seed=5)
        model = GPT(cfg)
        ids = np.zeros((2, 6), dtype=np.int64)
        with counting():
            _, loss = model(ids, targets=ids)
            loss.backward()
            snap = counters.snapshot()
        assert snap["gelu"] == cfg.n_layer
        assert snap["masked_softmax"] == cfg.n_layer
        assert snap["layer_norm"] == 2 * cfg.n_layer + 1
        assert snap["cross_entropy"] == 1
        assert snap["linear"] == 4 * cfg.n_layer + 1
        assert snap["graph_nodes"] > 0


class TestTimers:
    def test_timing_stats(self):
        s = TimingStats([3.0, 1.0, 2.0])
        assert s.min == 1.0 and s.max == 3.0 and s.mean == 2.0
        assert s.as_dict() == {"min_s": 1.0, "mean_s": 2.0, "max_s": 3.0,
                               "repeats": 3}

    def test_time_fn_runs_warmup_and_repeats(self):
        calls = []
        stats = time_fn(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert len(stats.samples) == 3
        assert all(t >= 0.0 for t in stats.samples)

    def test_time_fn_validates_repeats(self):
        with pytest.raises(ValueError):
            time_fn(lambda: None, repeats=0)

    def test_timer_accumulates_spans(self):
        t = Timer()
        with t.span("a"):
            pass
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        assert t.counts() == {"a": 2, "b": 1}
        assert set(t.totals()) == {"a", "b"}
        assert all(v >= 0.0 for v in t.totals().values())
        t.reset()
        assert t.totals() == {} and t.counts() == {}
