"""End-to-end tests of the message-driven training engine: sharding,
pipeline mechanics, and the serial-vs-parallel equivalence that reproduces
the paper's Fig. 10 validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import GPT, GPTConfig, LMBatches, SyntheticCorpus
from repro.runtime import (
    AxoNNTrainer,
    PipelineStage,
    SerialTrainer,
    partition_layers,
    state_dict_as_slots,
)

CFG = GPTConfig(vocab_size=19, seq_len=8, n_layer=4, n_head=2, hidden=12,
                dropout=0.0, init_seed=11)


def make_batch(batch_size=8, seed=0, cfg=CFG):
    corpus = SyntheticCorpus(cfg.vocab_size, 4000, seed=seed)
    return LMBatches(corpus, batch_size=batch_size, seq_len=cfg.seq_len)


class TestPartition:
    def test_even_split(self):
        assert partition_layers(6, 3) == [(0, 2), (2, 4), (4, 6)]

    def test_uneven_split_larger_first(self):
        assert partition_layers(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_single_stage(self):
        assert partition_layers(5, 1) == [(0, 5)]

    def test_too_many_stages(self):
        with pytest.raises(ValueError):
            partition_layers(3, 4)
        with pytest.raises(ValueError):
            partition_layers(3, 0)

    @given(n=st.integers(1, 40), g=st.integers(1, 12))
    @settings(max_examples=80, deadline=None)
    def test_partition_covers_exactly(self, n, g):
        if n < g:
            return
        ranges = partition_layers(n, g)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c
            assert b > a
        sizes = [b - a for a, b in ranges]
        assert max(sizes) - min(sizes) <= 1


class TestPipelineStage:
    def test_stage_shards_cover_model(self):
        total = sum(
            PipelineStage(CFG, i, 3).num_parameters() for i in range(3)
        )
        assert total == GPT(CFG).num_parameters()

    def test_forward_backward_single_stage(self):
        stage = PipelineStage(CFG, 0, 1)
        x, y = make_batch(4).batch(0)
        stage.forward(0, x, targets=y, loss_divisor=1.0)
        out_grad = stage.backward(0)
        assert out_grad is None  # first stage has no upstream
        assert all(p.grad is not None for p in stage.parameters())

    def test_duplicate_microbatch_rejected(self):
        stage = PipelineStage(CFG, 0, 2)
        x, _ = make_batch(2).batch(0)
        stage.forward(0, x)
        with pytest.raises(RuntimeError, match="already in flight"):
            stage.forward(0, x)

    def test_backward_unknown_microbatch(self):
        stage = PipelineStage(CFG, 0, 2)
        with pytest.raises(RuntimeError, match="unknown microbatch"):
            stage.backward(3, np.zeros(1))

    def test_last_stage_requires_targets(self):
        stage = PipelineStage(CFG, 1, 2)
        act = np.zeros((2, CFG.seq_len, CFG.hidden), dtype=np.float32)
        with pytest.raises(ValueError, match="targets"):
            stage.forward(0, act)

    def test_middle_stage_backward_requires_grad(self):
        stage = PipelineStage(CFG, 0, 2)
        x, _ = make_batch(2).batch(0)
        stage.forward(0, x)
        with pytest.raises(ValueError, match="gradient"):
            stage.backward(0, None)

    def test_boundary_grad_shape(self):
        first = PipelineStage(CFG, 0, 2)
        last = PipelineStage(CFG, 1, 2)
        x, y = make_batch(2).batch(0)
        act = first.forward(0, x)
        last.forward(0, act, targets=y, loss_divisor=1.0)
        gin = last.backward(0)
        assert gin.shape == act.shape

    def test_checkpointed_stage_matches_plain(self):
        x, y = make_batch(4).batch(0)
        plain = PipelineStage(CFG, 0, 1, checkpoint_activations=False)
        ckpt = PipelineStage(CFG, 0, 1, checkpoint_activations=True)
        plain.forward(0, x, targets=y, loss_divisor=1.0)
        ckpt.forward(0, x, targets=y, loss_divisor=1.0)
        assert plain.microbatch_losses[0] == pytest.approx(
            ckpt.microbatch_losses[0], rel=1e-5)
        plain.backward(0)
        ckpt.backward(0)
        for p1, p2 in zip(plain.parameters(), ckpt.parameters()):
            np.testing.assert_allclose(p1.grad, p2.grad, rtol=1e-4,
                                       atol=1e-6)


class TestTrainerMechanics:
    def test_batch_divisibility_checked(self):
        tr = AxoNNTrainer(CFG, g_inter=2, g_data=2, microbatch_size=2)
        x = np.zeros((6, CFG.seq_len), dtype=np.int64)
        with pytest.raises(ValueError, match="not divisible"):
            tr.train_batch(x, x)

    def test_microbatch_divisibility_checked(self):
        tr = AxoNNTrainer(CFG, g_inter=2, g_data=2, microbatch_size=3)
        x = np.zeros((8, CFG.seq_len), dtype=np.int64)
        with pytest.raises(ValueError, match="microbatch"):
            tr.train_batch(x, x)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AxoNNTrainer(CFG, 2, 2, microbatch_size=0)
        with pytest.raises(ValueError):
            AxoNNTrainer(CFG, 2, 2, microbatch_size=1, pipeline_limit=0)

    def test_message_count_matches_algorithm(self):
        """Each of the m microbatches crosses each of the G_inter - 1 stage
        boundaries twice (activation down, gradient up), per pipeline."""
        g_inter, g_data, mbs = 3, 2, 2
        tr = AxoNNTrainer(CFG, g_inter, g_data, microbatch_size=mbs)
        x, y = make_batch(8).batch(0)
        report = tr.train_batch(x, y)
        m_per_group = 8 // g_data // mbs
        expected = g_data * m_per_group * (g_inter - 1) * 2
        assert report.messages == expected

    def test_report_microbatch_count(self):
        tr = AxoNNTrainer(CFG, 2, 2, microbatch_size=2)
        x, y = make_batch(8).batch(0)
        assert tr.train_batch(x, y).microbatches == 4

    def test_data_parallel_replicas_stay_identical(self):
        tr = AxoNNTrainer(CFG, g_inter=2, g_data=2, microbatch_size=2)
        batches = make_batch(8)
        for i in range(3):
            x, y = batches.batch(i)
            tr.train_batch(x, y)
        s0 = tr.gather_state(j=0)
        s1 = tr.gather_state(j=1)
        for k in s0:
            np.testing.assert_array_equal(s0[k], s1[k])

    def test_training_reduces_loss(self):
        tr = AxoNNTrainer(CFG, g_inter=2, g_data=2, microbatch_size=2,
                          lr=5e-3)
        batches = make_batch(8)
        losses = [tr.train_batch(*batches.batch(i)).loss for i in range(20)]
        assert np.mean(losses[-4:]) < np.mean(losses[:4])

    def test_pipeline_limit_respected(self):
        """With pipeline_limit=1, at most one microbatch may ever be in
        flight per stage."""
        max_seen = {"v": 0}
        orig_forward = PipelineStage.forward

        def spy(self, *args, **kwargs):
            out = orig_forward(self, *args, **kwargs)
            max_seen["v"] = max(max_seen["v"], self.inflight_microbatches)
            return out

        PipelineStage.forward = spy
        try:
            tr = AxoNNTrainer(CFG, g_inter=3, g_data=1, microbatch_size=1,
                              pipeline_limit=1)
            x, y = make_batch(6).batch(0)
            tr.train_batch(x, y)
        finally:
            PipelineStage.forward = orig_forward
        assert max_seen["v"] == 1

    def test_inflight_bounded_by_pipeline_limit(self):
        max_seen = {"v": 0}
        orig_forward = PipelineStage.forward

        def spy(self, *args, **kwargs):
            out = orig_forward(self, *args, **kwargs)
            max_seen["v"] = max(max_seen["v"], self.inflight_microbatches)
            return out

        PipelineStage.forward = spy
        try:
            tr = AxoNNTrainer(CFG, g_inter=3, g_data=1, microbatch_size=1)
            x, y = make_batch(12).batch(0)
            tr.train_batch(x, y)
        finally:
            PipelineStage.forward = orig_forward
        assert max_seen["v"] <= tr.pipeline_limit


class TestSerialEquivalence:
    """The Fig. 10 reproduction: AxoNN's parallel training must match the
    serial PyTorch-style reference numerically."""

    def _run_pair(self, g_inter, g_data, microbatch_size, n_batches=4,
                  batch_size=8, cfg=CFG):
        serial = SerialTrainer(cfg, lr=1e-3)
        parallel = AxoNNTrainer(cfg, g_inter=g_inter, g_data=g_data,
                                microbatch_size=microbatch_size, lr=1e-3)
        batches = make_batch(batch_size, cfg=cfg)
        serial_losses, parallel_losses = [], []
        for i in range(n_batches):
            x, y = batches.batch(i)
            serial_losses.append(serial.train_batch(x, y))
            parallel_losses.append(parallel.train_batch(x, y).loss)
        return serial, parallel, serial_losses, parallel_losses

    @pytest.mark.parametrize("g_inter,g_data,mbs", [
        (1, 1, 8),   # degenerate: single rank
        (2, 1, 2),   # pure pipeline
        (1, 2, 2),   # pure data parallel
        (2, 2, 2),   # hybrid (the paper's Fig. 2 shape)
        (3, 1, 1),   # deeper pipeline, smallest microbatch
        (2, 4, 1),   # wide data parallelism
    ])
    def test_loss_curves_coincide(self, g_inter, g_data, mbs):
        _, _, serial_losses, parallel_losses = self._run_pair(
            g_inter, g_data, mbs)
        np.testing.assert_allclose(parallel_losses, serial_losses,
                                   rtol=2e-4, atol=2e-5)

    def test_final_weights_coincide(self):
        serial, parallel, _, _ = self._run_pair(2, 2, 2, n_batches=3)
        expected = state_dict_as_slots(serial.model)
        actual = parallel.gather_state(j=0)
        assert set(expected) == set(actual)
        for k in expected:
            np.testing.assert_allclose(actual[k], expected[k],
                                       rtol=1e-3, atol=1e-5,
                                       err_msg=k)

    def test_checkpointed_parallel_matches_serial(self):
        cfg = CFG
        serial = SerialTrainer(cfg, lr=1e-3)
        parallel = AxoNNTrainer(cfg, g_inter=2, g_data=1, microbatch_size=2,
                                lr=1e-3, checkpoint_activations=True)
        batches = make_batch(8)
        for i in range(3):
            x, y = batches.batch(i)
            sl = serial.train_batch(x, y)
            pl = parallel.train_batch(x, y).loss
            assert pl == pytest.approx(sl, rel=2e-4)

    def test_equivalence_with_uneven_layer_split(self):
        """n_slots=6 over g_inter=4: shard sizes 2,2,1,1."""
        _, _, serial_losses, parallel_losses = self._run_pair(
            4, 1, 2, n_batches=3)
        np.testing.assert_allclose(parallel_losses, serial_losses,
                                   rtol=2e-4, atol=2e-5)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=8, deadline=None)
    def test_equivalence_property_random_data(self, seed):
        """Property: for random data streams, one hybrid-parallel batch step
        matches the serial step."""
        cfg = GPTConfig(vocab_size=13, seq_len=6, n_layer=2, n_head=2,
                        hidden=8, init_seed=5)
        rng = np.random.default_rng(seed)
        x = rng.integers(0, cfg.vocab_size, (4, cfg.seq_len))
        y = rng.integers(0, cfg.vocab_size, (4, cfg.seq_len))
        serial = SerialTrainer(cfg, lr=1e-3)
        parallel = AxoNNTrainer(cfg, g_inter=2, g_data=2, microbatch_size=1,
                                lr=1e-3)
        sl = serial.train_batch(x, y)
        pl = parallel.train_batch(x, y).loss
        assert pl == pytest.approx(sl, rel=2e-4)
