"""Tests for cluster hardware specs and memory pools."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    GB,
    ClusterSpec,
    GPUSpec,
    MemoryPool,
    NodeSpec,
    OutOfMemoryError,
    summit,
)


class TestSpecs:
    def test_summit_matches_paper_numbers(self):
        spec = summit(num_nodes=8)
        assert spec.num_gpus == 48
        assert spec.node.gpus_per_node == 6
        assert spec.node.gpu.peak_half_flops == 125e12
        assert spec.node.gpu.dram_bytes == 16 * GB
        assert spec.node.intra_node_bandwidth == 50e9
        assert spec.node.inter_node_bandwidth == 12.5e9

    def test_weak_scaling_gpu_counts(self):
        # Table I: 8/16/32/64 nodes -> 48/96/192/384 GPUs.
        for nodes, gpus in [(8, 48), (16, 96), (32, 192), (64, 384)]:
            assert summit(nodes).num_gpus == gpus

    def test_node_of_and_local_index(self):
        spec = summit(2)
        assert spec.node_of(0) == 0
        assert spec.node_of(5) == 0
        assert spec.node_of(6) == 1
        assert spec.local_index(7) == 1

    def test_same_node(self):
        spec = summit(2)
        assert spec.same_node(0, 5)
        assert not spec.same_node(5, 6)

    def test_gpu_id_bounds_checked(self):
        spec = summit(1)
        with pytest.raises(ValueError):
            spec.node_of(6)
        with pytest.raises(ValueError):
            spec.node_of(-1)

    def test_with_nodes_preserves_hardware(self):
        spec = summit(8).with_nodes(64)
        assert spec.num_nodes == 64
        assert spec.node.gpu.dram_bytes == 16 * GB

    def test_aggregate_peak(self):
        assert summit(8).peak_half_flops == 48 * 125e12

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(peak_half_flops=0, dram_bytes=1, h2d_bandwidth=1)
        with pytest.raises(ValueError):
            summit(0)
        good = summit(1).node
        with pytest.raises(ValueError):
            NodeSpec(gpu=good.gpu, gpus_per_node=0,
                     intra_node_bandwidth=1, inter_node_bandwidth=1,
                     host_dram_bytes=1, host_mem_bandwidth=1)


class TestMemoryPool:
    def test_allocate_and_free(self):
        pool = MemoryPool(100)
        pool.allocate("a", 40)
        pool.allocate("b", 30)
        assert pool.used == 70
        assert pool.free == 30
        assert pool.free_label("a") == 40
        assert pool.used == 30

    def test_oom_raises_with_details(self):
        pool = MemoryPool(100, name="gpu0")
        pool.allocate("params", 90)
        with pytest.raises(OutOfMemoryError) as e:
            pool.allocate("activations", 20)
        assert e.value.requested == 20
        assert e.value.in_use == 90
        assert e.value.capacity == 100
        assert "gpu0" in str(e.value)

    def test_oom_is_a_memoryerror(self):
        pool = MemoryPool(10)
        with pytest.raises(MemoryError):
            pool.allocate("x", 11)

    def test_peak_tracks_high_water_mark(self):
        pool = MemoryPool(100)
        pool.allocate("a", 60)
        pool.free_label("a")
        pool.allocate("b", 30)
        assert pool.peak == 60
        assert pool.used == 30

    def test_grow_label(self):
        pool = MemoryPool(100)
        pool.allocate("acts", 10)
        pool.allocate("acts", 15)
        assert pool.held("acts") == 25

    def test_partial_release(self):
        pool = MemoryPool(100)
        pool.allocate("acts", 50)
        pool.release("acts", 20)
        assert pool.held("acts") == 30
        with pytest.raises(ValueError):
            pool.release("acts", 31)

    def test_release_exact_removes_label(self):
        pool = MemoryPool(100)
        pool.allocate("x", 10)
        pool.release("x", 10)
        assert "x" not in pool.allocations()

    def test_negative_allocation_rejected(self):
        pool = MemoryPool(100)
        with pytest.raises(ValueError):
            pool.allocate("x", -1)

    def test_would_fit(self):
        pool = MemoryPool(100)
        pool.allocate("a", 80)
        assert pool.would_fit(20)
        assert not pool.would_fit(21)

    def test_reset_keeps_peak(self):
        pool = MemoryPool(100)
        pool.allocate("a", 70)
        pool.reset()
        assert pool.used == 0
        assert pool.peak == 70

    @given(sizes=st.lists(st.integers(min_value=0, max_value=50),
                          min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_accounting_invariant(self, sizes):
        """Property: used == sum of live allocations, never exceeds capacity,
        and peak >= used always."""
        pool = MemoryPool(1000)
        live = {}
        for i, size in enumerate(sizes):
            label = f"alloc{i}"
            try:
                pool.allocate(label, size)
                live[label] = size
            except OutOfMemoryError:
                pass
            if i % 3 == 2 and live:
                victim = next(iter(live))
                pool.free_label(victim)
                del live[victim]
            assert pool.used == sum(live.values())
            assert pool.used <= pool.capacity
            assert pool.peak >= pool.used
