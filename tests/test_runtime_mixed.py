"""Tests for mixed-precision and CPU-offload training in the parallel
runtime (the paper's production configuration, Sections II-A/IV-B/V-B)."""

import numpy as np
import pytest

from repro.nn import GPT, GPTConfig, LMBatches, LossScaler, \
    MixedPrecisionAdamW, SyntheticCorpus
from repro.runtime import AxoNNTrainer

CFG = GPTConfig(vocab_size=19, seq_len=8, n_layer=4, n_head=2, hidden=12,
                dropout=0.0, init_seed=21)


def make_batches(batch_size=8, seed=4, cfg=CFG):
    corpus = SyntheticCorpus(cfg.vocab_size, 4000, seed=seed)
    return LMBatches(corpus, batch_size=batch_size, seq_len=cfg.seq_len)


def serial_mixed_reference(cfg, batches, n_batches, lr=1e-3,
                           init_scale=128.0):
    """Serial mixed-precision loop mirroring the parallel semantics:
    scaled loss, fp16 gradients, fp32 master update."""
    model = GPT(cfg)
    scaler = LossScaler(init_scale=init_scale, dynamic=False)
    opt = MixedPrecisionAdamW(model.parameters(), lr=lr, scaler=scaler)
    losses = []
    for i in range(n_batches):
        x, y = batches.batch(i)
        model.zero_grad()
        _, loss = model(x, targets=y)
        (loss * scaler.scale).backward()
        opt.step([p.grad.astype(np.float16) for p in model.parameters()])
        losses.append(loss.item())
    return losses, model


class TestConstruction:
    def test_precision_validated(self):
        with pytest.raises(ValueError, match="precision"):
            AxoNNTrainer(CFG, 2, 1, microbatch_size=2, precision="fp8")

    def test_offload_requires_mixed(self):
        with pytest.raises(ValueError, match="offload"):
            AxoNNTrainer(CFG, 2, 1, microbatch_size=2, precision="fp32",
                         offload=True)

    def test_invalid_coarsening(self):
        with pytest.raises(ValueError):
            AxoNNTrainer(CFG, 2, 1, microbatch_size=2, coarsening_k=0)


class TestMixedPrecisionParallel:
    def test_matches_serial_mixed_reference(self):
        """Parallel mixed-precision losses track the serial mixed loop."""
        batches = make_batches()
        serial_losses, _ = serial_mixed_reference(CFG, batches, 4)
        trainer = AxoNNTrainer(
            CFG, g_inter=2, g_data=2, microbatch_size=2, lr=1e-3,
            precision="mixed",
            loss_scaler=LossScaler(init_scale=128.0, dynamic=False))
        parallel_losses = [trainer.train_batch(*batches.batch(i)).loss
                           for i in range(4)]
        # fp16 gradient quantization makes this approximate, not bitwise.
        np.testing.assert_allclose(parallel_losses, serial_losses,
                                   rtol=5e-3, atol=5e-3)

    def test_report_carries_scale_and_chunks(self):
        trainer = AxoNNTrainer(
            CFG, g_inter=2, g_data=2, microbatch_size=2, precision="mixed",
            bucket_size=64, coarsening_k=2,
            loss_scaler=LossScaler(init_scale=64.0, dynamic=False))
        batches = make_batches()
        report = trainer.train_batch(*batches.batch(0))
        assert report.applied
        assert report.loss_scale == 64.0
        assert report.allreduce_chunks > 1  # tiny chunks on this model

    def test_chunking_does_not_change_numerics(self):
        """The coarsening factor only changes issue granularity; the summed
        gradient (and hence the weights) are identical."""
        batches = make_batches()

        def run(k, bucket):
            tr = AxoNNTrainer(
                CFG, g_inter=2, g_data=2, microbatch_size=2,
                precision="mixed", bucket_size=bucket, coarsening_k=k,
                loss_scaler=LossScaler(init_scale=64.0, dynamic=False))
            for i in range(3):
                tr.train_batch(*batches.batch(i))
            return tr.gather_state()

        a = run(k=1, bucket=32)
        b = run(k=8, bucket=256)
        for key in a:
            np.testing.assert_allclose(a[key], b[key], rtol=1e-6, atol=1e-7,
                                       err_msg=key)

    def test_training_converges(self):
        trainer = AxoNNTrainer(CFG, g_inter=2, g_data=2, microbatch_size=2,
                               lr=5e-3, precision="mixed")
        batches = make_batches()
        losses = [trainer.train_batch(*batches.batch(i)).loss
                  for i in range(20)]
        assert np.mean(losses[-4:]) < np.mean(losses[:4])

    def test_dynamic_scale_grows_on_good_streak(self):
        trainer = AxoNNTrainer(
            CFG, g_inter=2, g_data=1, microbatch_size=2, precision="mixed",
            loss_scaler=LossScaler(init_scale=8.0, dynamic=True,
                                   growth_interval=3))
        batches = make_batches()
        for i in range(3):
            trainer.train_batch(*batches.batch(i))
        assert trainer.scaler.scale == 16.0

    def test_overflow_skips_all_ranks_in_lockstep(self):
        """An absurd loss scale overflows fp16; every replica must skip the
        step and the weights must stay identical across the grid."""
        trainer = AxoNNTrainer(
            CFG, g_inter=2, g_data=2, microbatch_size=2, precision="mixed",
            loss_scaler=LossScaler(init_scale=2.0 ** 24, dynamic=True))
        batches = make_batches()
        before = trainer.gather_state()
        report = trainer.train_batch(*batches.batch(0))
        assert not report.applied
        assert trainer.skipped_batches == 1
        assert trainer.scaler.scale == 2.0 ** 23  # backed off
        after = trainer.gather_state()
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])
        # Replicas still in sync.
        s0, s1 = trainer.gather_state(0), trainer.gather_state(1)
        for k in s0:
            np.testing.assert_array_equal(s0[k], s1[k])

    def test_recovers_after_overflow(self):
        trainer = AxoNNTrainer(
            CFG, g_inter=2, g_data=1, microbatch_size=2, precision="mixed",
            loss_scaler=LossScaler(init_scale=2.0 ** 24, dynamic=True))
        batches = make_batches()
        applied = []
        for i in range(14):
            applied.append(trainer.train_batch(*batches.batch(i)).applied)
        assert not applied[0]
        assert applied[-1]  # scale backed off far enough to train


class TestOffloadParallel:
    def test_offload_matches_plain_mixed(self):
        """The bucketed CPU-offload optimizer must produce the same weights
        as the monolithic mixed-precision optimizer (Adam is elementwise)."""
        batches = make_batches()

        def run(offload):
            tr = AxoNNTrainer(
                CFG, g_inter=2, g_data=2, microbatch_size=2,
                precision="mixed", offload=offload, bucket_size=128,
                loss_scaler=LossScaler(init_scale=64.0, dynamic=False))
            for i in range(3):
                tr.train_batch(*batches.batch(i))
            return tr.gather_state()

        plain = run(False)
        offloaded = run(True)
        for key in plain:
            np.testing.assert_allclose(offloaded[key], plain[key],
                                       rtol=1e-5, atol=1e-6, err_msg=key)

    def test_offload_traffic_accounted(self):
        trainer = AxoNNTrainer(
            CFG, g_inter=2, g_data=1, microbatch_size=2, precision="mixed",
            offload=True, bucket_size=100,
            loss_scaler=LossScaler(init_scale=64.0, dynamic=False))
        batches = make_batches()
        trainer.train_batch(*batches.batch(0))
        opt = trainer.optimizers[0]
        assert opt.h2d_bytes == 12 * opt.numel
        assert opt.d2h_bytes == 12 * opt.numel

    def test_offload_converges(self):
        trainer = AxoNNTrainer(
            CFG, g_inter=2, g_data=2, microbatch_size=2, lr=5e-3,
            precision="mixed", offload=True, bucket_size=256)
        batches = make_batches()
        losses = [trainer.train_batch(*batches.batch(i)).loss
                  for i in range(20)]
        assert np.mean(losses[-4:]) < np.mean(losses[:4])

    def test_offload_device_bytes_bounded(self):
        trainer = AxoNNTrainer(
            CFG, g_inter=2, g_data=1, microbatch_size=2, precision="mixed",
            offload=True, bucket_size=64)
        for opt in trainer.optimizers.values():
            assert opt.device_optimizer_bytes() == 16 * 64


def reference_fp16_allreduce(stacked, chunk):
    """Sequential reference for the vectorized chunked fp16 all-reduce:
    same chunk boundaries, replicas accumulated one at a time in rank
    order, everything in half precision."""
    replicas, numel = stacked.shape
    total = np.empty(numel, dtype=np.float16)
    n_chunks = 0
    with np.errstate(invalid="ignore", over="ignore"):
        for start in range(0, numel, chunk):
            end = min(start + chunk, numel)
            acc = stacked[0, start:end].copy()
            for r in range(1, replicas):
                acc += stacked[r, start:end]
            total[start:end] = acc
            n_chunks += 1
    return total, n_chunks


class TestVectorizedAllreduce:
    """The buffer-reuse + vectorized fp16 reduction must be a pure
    refactoring: bit-identical to the sequential replica-order loop it
    replaced, including when gradients overflow to inf."""

    def _trainer(self, init_scale=64.0, g_data=2, bucket_size=64):
        return AxoNNTrainer(
            CFG, g_inter=2, g_data=g_data, microbatch_size=2,
            precision="mixed", bucket_size=bucket_size, coarsening_k=2,
            loss_scaler=LossScaler(init_scale=init_scale, dynamic=False))

    def test_bit_identical_to_sequential_loop(self):
        trainer = self._trainer()
        batches = make_batches()
        trainer.train_batch(*batches.batch(0))  # leaves grads populated
        chunk = max(1, trainer.coarsening_k * trainer.bucket_size)
        for i in range(trainer.grid.g_inter):
            stacked = trainer._fill_column_half_grads(i).stacked.copy()
            total, n_chunks = trainer._allreduce_fp16_chunked(i)
            ref, ref_chunks = reference_fp16_allreduce(stacked, chunk)
            assert n_chunks == ref_chunks
            assert n_chunks > 1  # the small bucket really chunks
            assert total.dtype == np.float16
            np.testing.assert_array_equal(total, ref)

    def test_bit_identical_under_overflow(self):
        """Overflowed fp16 gradients (inf) reduce identically in both
        implementations, and the step is skipped."""
        trainer = self._trainer(init_scale=2.0 ** 24)
        batches = make_batches()
        report = trainer.train_batch(*batches.batch(0))
        assert not report.applied  # overflow path still trips
        chunk = max(1, trainer.coarsening_k * trainer.bucket_size)
        saw_nonfinite = False
        for i in range(trainer.grid.g_inter):
            stacked = trainer._fill_column_half_grads(i).stacked.copy()
            total, _ = trainer._allreduce_fp16_chunked(i)
            ref, _ = reference_fp16_allreduce(stacked, chunk)
            np.testing.assert_array_equal(total, ref)
            saw_nonfinite |= not np.isfinite(total).all()
        assert saw_nonfinite

    def test_buffers_are_reused_across_batches(self):
        """The DP phase must not allocate per batch: the stacked/total
        buffers for a column are created once and reused."""
        trainer = self._trainer()
        batches = make_batches()
        trainer.train_batch(*batches.batch(0))
        bufs = {i: trainer._dp_buffers[i] for i in range(2)}
        totals = {i: trainer._allreduce_fp16_chunked(i)[0] for i in range(2)}
        trainer.train_batch(*batches.batch(1))
        for i in range(2):
            assert trainer._dp_buffers[i] is bufs[i]
            assert trainer._allreduce_fp16_chunked(i)[0] is totals[i]
