"""Tests for LR schedules, gradient clipping, and text generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    GPT,
    AdamW,
    ConstantLR,
    GPTConfig,
    LinearWarmupLR,
    StepDecayLR,
    Tensor,
    WarmupCosineLR,
    clip_grad_norm_,
    combine_partial_norms,
    generate,
    global_grad_norm,
    partial_sq_norm,
    sequence_log_prob,
)

CFG = GPTConfig(vocab_size=17, seq_len=8, n_layer=2, n_head=2, hidden=12,
                init_seed=5)


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(0.01)
        assert s.lr_at(0) == s.lr_at(1000) == 0.01

    def test_linear_warmup(self):
        s = LinearWarmupLR(peak_lr=1.0, warmup_steps=4)
        assert s.lr_at(0) == pytest.approx(0.25)
        assert s.lr_at(3) == pytest.approx(1.0)
        assert s.lr_at(100) == 1.0

    def test_warmup_cosine_shape(self):
        s = WarmupCosineLR(peak_lr=1.0, warmup_steps=10, total_steps=110,
                           min_lr=0.1)
        assert s.lr_at(0) < s.lr_at(9)
        assert s.lr_at(9) == pytest.approx(1.0)
        mid = s.lr_at(60)
        assert 0.1 < mid < 1.0
        assert s.lr_at(109) == pytest.approx(0.1, abs=1e-3)
        assert s.lr_at(10_000) == pytest.approx(0.1)

    def test_warmup_cosine_monotone_decay(self):
        s = WarmupCosineLR(peak_lr=1.0, warmup_steps=5, total_steps=50)
        decay = [s.lr_at(t) for t in range(5, 50)]
        assert decay == sorted(decay, reverse=True)

    def test_step_decay(self):
        s = StepDecayLR(base_lr=1.0, step_size=10, gamma=0.5)
        assert s.lr_at(0) == 1.0
        assert s.lr_at(10) == 0.5
        assert s.lr_at(25) == 0.25

    def test_apply_sets_optimizer_lr(self):
        p = Tensor(np.ones(1, dtype=np.float32), requires_grad=True)
        opt = AdamW([p], lr=1.0)
        s = WarmupCosineLR(peak_lr=0.5, warmup_steps=2, total_steps=10)
        used = s.apply(opt, step=1)
        assert opt.lr == used == 0.5

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ConstantLR(0)
        with pytest.raises(ValueError):
            LinearWarmupLR(1.0, 0)
        with pytest.raises(ValueError):
            WarmupCosineLR(1.0, 10, 10)
        with pytest.raises(ValueError):
            WarmupCosineLR(1.0, 0, 10, min_lr=2.0)
        with pytest.raises(ValueError):
            StepDecayLR(1.0, 1, gamma=0.0)
        with pytest.raises(ValueError):
            ConstantLR(1.0).lr_at(-1)

    @given(step=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_cosine_bounded(self, step):
        s = WarmupCosineLR(peak_lr=2.0, warmup_steps=100, total_steps=1000,
                           min_lr=0.2)
        lr = s.lr_at(step)
        assert 0.0 < lr <= 2.0 + 1e-12


class TestClipping:
    def _params(self, grads):
        out = []
        for g in grads:
            p = Tensor(np.zeros_like(np.asarray(g, dtype=np.float32)),
                       requires_grad=True)
            p.grad = np.asarray(g, dtype=np.float32)
            out.append(p)
        return out

    def test_global_norm(self):
        params = self._params([[3.0], [4.0]])
        assert global_grad_norm(params) == pytest.approx(5.0)

    def test_clip_scales_down(self):
        params = self._params([[3.0], [4.0]])
        norm = clip_grad_norm_(params, max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert global_grad_norm(params) == pytest.approx(1.0, rel=1e-4)

    def test_clip_no_op_below_threshold(self):
        params = self._params([[0.3], [0.4]])
        clip_grad_norm_(params, max_norm=1.0)
        assert params[0].grad[0] == pytest.approx(0.3)

    def test_none_grads_skipped(self):
        p = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        assert global_grad_norm([p]) == 0.0
        clip_grad_norm_([p], 1.0)  # must not crash

    def test_partial_norm_combination(self):
        """The distributed path: per-stage partials combine to the global
        norm."""
        a = self._params([[3.0]])
        b = self._params([[4.0]])
        combined = combine_partial_norms(
            [partial_sq_norm(a), partial_sq_norm(b)])
        assert combined == pytest.approx(5.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            clip_grad_norm_([], 0.0)
        with pytest.raises(ValueError):
            combine_partial_norms([-1.0])

    @given(values=st.lists(st.floats(-100, 100, allow_nan=False),
                           min_size=1, max_size=10),
           max_norm=st.floats(0.1, 10))
    @settings(max_examples=60, deadline=None)
    def test_post_clip_norm_bounded(self, values, max_norm):
        params = self._params([[v] for v in values])
        clip_grad_norm_(params, max_norm)
        assert global_grad_norm(params) <= max_norm + 1e-3


class TestGeneration:
    def test_greedy_deterministic(self):
        model = GPT(CFG)
        prompt = np.array([1, 2, 3])
        a = generate(model, prompt, 5, greedy=True)
        b = generate(model, prompt, 5, greedy=True)
        np.testing.assert_array_equal(a, b)
        assert a.size == 8

    def test_sampling_seeded(self):
        model = GPT(CFG)
        prompt = np.array([1, 2])
        a = generate(model, prompt, 6, rng=np.random.default_rng(3))
        b = generate(model, prompt, 6, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_prompt_preserved(self):
        model = GPT(CFG)
        prompt = np.array([4, 5, 6])
        out = generate(model, prompt, 3, greedy=True)
        np.testing.assert_array_equal(out[:3], prompt)

    def test_tokens_in_vocab(self):
        model = GPT(CFG)
        out = generate(model, np.array([0]), 20,
                       rng=np.random.default_rng(0), temperature=2.0)
        assert out.min() >= 0 and out.max() < CFG.vocab_size

    def test_top_k_restricts_support(self):
        model = GPT(CFG)
        out = generate(model, np.array([0]), 30, top_k=1,
                       rng=np.random.default_rng(0))
        greedy = generate(model, np.array([0]), 30, greedy=True)
        np.testing.assert_array_equal(out, greedy)  # top-1 == greedy

    def test_context_cropped_beyond_seq_len(self):
        model = GPT(CFG)
        out = generate(model, np.array([1]), CFG.seq_len + 4, greedy=True)
        assert out.size == 1 + CFG.seq_len + 4

    def test_model_mode_restored(self):
        model = GPT(CFG)
        model.train()
        generate(model, np.array([1]), 2, greedy=True)
        assert model.training

    def test_invalid_args(self):
        model = GPT(CFG)
        with pytest.raises(ValueError):
            generate(model, np.array([]), 3)
        with pytest.raises(ValueError):
            generate(model, np.array([99]), 3)
        with pytest.raises(ValueError):
            generate(model, np.array([1]), -1)
        with pytest.raises(ValueError):
            generate(model, np.array([1]), 1, temperature=0)
        with pytest.raises(ValueError):
            generate(model, np.array([1]), 1, top_k=0)

    def test_sequence_log_prob(self):
        model = GPT(CFG)
        tokens = np.array([1, 2, 3, 4])
        lp = sequence_log_prob(model, tokens)
        # mean log-prob of an untrained model ~ -log(V)
        assert -np.log(CFG.vocab_size) - 1.0 < lp < 0.0

    def test_sequence_log_prob_validation(self):
        model = GPT(CFG)
        with pytest.raises(ValueError):
            sequence_log_prob(model, np.array([1]))
        with pytest.raises(ValueError):
            sequence_log_prob(model, np.arange(CFG.seq_len + 5) % 10)

    def test_trained_model_prefers_corpus_structure(self):
        """After training on the Markov corpus, the model must assign higher
        likelihood to real corpus windows than to shuffled ones."""
        from repro.nn import AdamW, LMBatches, SyntheticCorpus
        cfg = GPTConfig(vocab_size=13, seq_len=8, n_layer=1, n_head=2,
                        hidden=8, init_seed=1)
        model = GPT(cfg)
        opt = AdamW(model.parameters(), lr=1e-2)
        corpus = SyntheticCorpus(13, 4000, seed=0, markov_weight=0.9)
        batches = LMBatches(corpus, batch_size=16, seq_len=8)
        for i in range(40):
            x, y = batches.batch(i)
            opt.zero_grad()
            _, loss = model(x, targets=y)
            loss.backward()
            opt.step()
        real = corpus.tokens[100:109]
        rng = np.random.default_rng(0)
        fake = rng.permutation(real)
        assert sequence_log_prob(model, real) > sequence_log_prob(model, fake)
