"""Tests for the communication layer: messages, messenger semantics,
collectives and the OSU-style microbenchmarks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import MB, Machine, summit
from repro.comm import (
    Message,
    Messenger,
    allreduce,
    chunked_allreduce,
    osu_allreduce,
    osu_latency,
)


class TestMessage:
    def test_valid_message(self):
        msg = Message(0, 1, 1024, tag="forward", meta={"microbatch": 3})
        assert msg.nbytes == 1024
        assert msg.meta["microbatch"] == 3

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 1, -1)

    def test_self_message_rejected(self):
        with pytest.raises(ValueError):
            Message(2, 2, 10)


class TestMessengerMPI:
    """MPI semantics: sends never occupy the compute stream."""

    def _setup(self, nodes=2):
        m = Machine(spec=summit(nodes))
        return m, Messenger(m, m.cal.mpi)

    def test_delivery(self):
        m, msn = self._setup()
        got = []

        def receiver(env):
            got.append((yield msn.irecv(1)))

        m.env.process(receiver(m.env))
        msn.isend(Message(0, 1, 4 * MB, tag="x"))
        m.run()
        assert len(got) == 1 and got[0].tag == "x"
        assert m.now == pytest.approx(m.cal.mpi.p2p_time(4 * MB, True))

    def test_send_overlaps_compute(self):
        """The defining MPI property: a kernel issued right after isend runs
        concurrently with the wire time."""
        m, msn = self._setup()
        gpu = m.gpu(0)
        wire = m.cal.mpi.p2p_time(40 * MB, True)

        def worker(env):
            msn.isend(Message(0, 1, 40 * MB))
            yield from gpu.busy(wire, label="kernel")  # same length as wire

        m.env.process(worker(m.env))
        m.run()
        # Overlapped: total time ~ wire, not 2x wire.
        assert m.now == pytest.approx(wire, rel=0.01)

    def test_fifo_delivery_per_receiver(self):
        m, msn = self._setup()
        got = []

        def receiver(env):
            for _ in range(3):
                msg = yield msn.irecv(1)
                got.append(msg.meta["seq"])

        m.env.process(receiver(m.env))
        for seq in range(3):
            msn.isend(Message(0, 1, 1 * MB, meta={"seq": seq}))
        m.run()
        assert got == [0, 1, 2]

    def test_counters(self):
        m, msn = self._setup()
        msn.isend(Message(0, 1, 100))
        msn.isend(Message(0, 1, 200))
        m.run()
        assert msn.messages_sent == 2
        assert msn.bytes_sent == 300

    def test_pending(self):
        m, msn = self._setup()
        msn.isend(Message(0, 1, 1 * MB))
        m.run()
        assert msn.pending(1) == 1
        assert msn.pending(0) == 0


class TestMessengerNCCL:
    """NCCL semantics: sends block the sender's compute stream."""

    def test_send_blocks_compute(self):
        m = Machine(spec=summit(2))
        msn = Messenger(m, m.cal.nccl)
        gpu = m.gpu(0)
        wire = m.cal.nccl.p2p_time(40 * MB, True)

        def worker(env):
            msn.isend(Message(0, 1, 40 * MB))
            yield from gpu.busy(wire, label="kernel")

        m.env.process(worker(m.env))
        m.run()
        # Serialized: kernel queues behind the blocking send.
        assert m.now == pytest.approx(2 * wire, rel=0.01)

    def test_nccl_intra_node_slower_than_mpi(self):
        m = Machine(spec=summit(2))
        t_mpi = m.cal.mpi.p2p_time(16 * MB, True)
        t_nccl = m.cal.nccl.p2p_time(16 * MB, True)
        assert t_nccl > t_mpi


class TestCollectives:
    def test_allreduce_duration(self):
        m = Machine(spec=summit(2))
        ranks = list(range(12))
        expected = m.cal.nccl.allreduce_time(64 * MB, 12, False)
        m.env.process(allreduce(m, ranks, 64 * MB, m.cal.nccl))
        m.run()
        assert m.now == pytest.approx(expected)

    def test_allreduce_on_compute_stream_blocks_kernels(self):
        m = Machine(spec=summit(1))
        ranks = [0, 1, 2]
        dur = m.cal.nccl.allreduce_time(64 * MB, 3, True)

        def worker(env):
            yield from allreduce(m, ranks, 64 * MB, m.cal.nccl,
                                 stream="compute")
            yield from m.gpu(0).busy(1.0)

        m.env.process(worker(m.env))
        m.run()
        assert m.now == pytest.approx(dur + 1.0)

    def test_allreduce_on_aux_stream_overlaps_compute(self):
        m = Machine(spec=summit(1))
        dur = m.cal.nccl.allreduce_time(256 * MB, 3, True)
        m.env.process(allreduce(m, [0, 1, 2], 256 * MB, m.cal.nccl,
                                stream="aux"))
        m.env.process(m.gpu(0).busy(dur))
        m.run()
        assert m.now == pytest.approx(dur, rel=0.01)

    def test_duplicate_ranks_rejected(self):
        m = Machine(spec=summit(1))
        gen = allreduce(m, [0, 0, 1], 1, m.cal.nccl)
        with pytest.raises(ValueError):
            m.env.process(gen)
            m.run()

    def test_invalid_stream_rejected(self):
        m = Machine(spec=summit(1))
        gen = allreduce(m, [0, 1], 1, m.cal.nccl, stream="weird")
        with pytest.raises(ValueError):
            m.env.process(gen)
            m.run()

    def test_chunked_allreduce_fires_callbacks_in_order(self):
        m = Machine(spec=summit(2))
        done = []
        m.env.process(chunked_allreduce(
            m, list(range(12)), 128 * MB, 4, m.cal.nccl,
            on_chunk=done.append))
        m.run()
        assert done == [0, 1, 2, 3]

    def test_chunked_total_time_exceeds_single_due_to_latency(self):
        """More chunks -> more per-step latency; pure network time grows
        with chunk count (the k=1 effect of Fig. 8 in reverse)."""
        m1 = Machine(spec=summit(2))
        m1.env.process(chunked_allreduce(m1, list(range(12)), 128 * MB, 1,
                                         m1.cal.nccl, stream=None))
        m1.run()
        m2 = Machine(spec=summit(2))
        m2.env.process(chunked_allreduce(m2, list(range(12)), 128 * MB, 16,
                                         m2.cal.nccl, stream=None))
        m2.run()
        assert m2.now > m1.now

    def test_chunked_invalid_chunks(self):
        m = Machine(spec=summit(1))
        gen = chunked_allreduce(m, [0, 1], 100, 0, m.cal.nccl)
        with pytest.raises(ValueError):
            m.env.process(gen)
            m.run()


class TestMicrobench:
    def test_osu_latency_rows_shape(self):
        rows = osu_latency("mpi", intra_node=True, sizes=[1024, 1 * MB])
        assert len(rows) == 2
        assert rows[0]["scope"] == "intra-node"
        assert rows[0]["latency_s"] > 0

    def test_fig3_qualitative_shape(self):
        """MPI beats NCCL intra-node in the 1-50 MB region of interest;
        inter-node they are nearly identical."""
        sizes = [1 * MB, 8 * MB, 32 * MB]
        mpi_intra = osu_latency("mpi", True, sizes)
        nccl_intra = osu_latency("nccl", True, sizes)
        for a, b in zip(mpi_intra, nccl_intra):
            assert a["latency_s"] < b["latency_s"]
        mpi_inter = osu_latency("mpi", False, sizes)
        nccl_inter = osu_latency("nccl", False, sizes)
        for a, b in zip(mpi_inter, nccl_inter):
            assert 0.5 < a["latency_s"] / b["latency_s"] < 2.0

    def test_latency_monotone_in_size(self):
        rows = osu_latency("nccl", True, sizes=[2 ** e for e in range(10, 24, 2)])
        lat = [r["latency_s"] for r in rows]
        assert lat == sorted(lat)

    def test_fig4_qualitative_shape(self):
        """NCCL all-reduce dominates MPI at large sizes, 6 and 12 ranks."""
        sizes = [16 * MB, 256 * MB]
        for ranks in (6, 12):
            mpi = osu_allreduce("mpi", ranks, sizes)
            nccl = osu_allreduce("nccl", ranks, sizes)
            for a, b in zip(mpi, nccl):
                assert b["latency_s"] < a["latency_s"]

    def test_allreduce_scope_labels(self):
        assert osu_allreduce("nccl", 6, [1024])[0]["scope"] == "intra-node"
        assert osu_allreduce("nccl", 12, [1024])[0]["scope"] == "inter-node"


@given(nbytes=st.integers(min_value=1, max_value=1 << 30))
@settings(max_examples=40, deadline=None)
def test_p2p_time_positive_and_increasing_with_scope(nbytes):
    """Property: inter-node p2p is never faster than intra-node p2p for the
    same backend and size."""
    m = Machine(spec=summit(2))
    for model in (m.cal.mpi, m.cal.nccl):
        t_intra = model.p2p_time(nbytes, True)
        t_inter = model.p2p_time(nbytes, False)
        assert 0 < t_intra <= t_inter
