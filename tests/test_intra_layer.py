"""Tests for functional tensor (intra-layer) parallelism: the sharded
layers must be numerically identical to their dense references."""

import numpy as np
import pytest

from repro.baselines.intra_layer import (
    ColumnParallelLinear,
    CommCounter,
    RowParallelLinear,
    TensorParallelAttention,
    TensorParallelMLP,
)
from repro.nn import GPTConfig, Linear, Tensor
from repro.nn.transformer import MLP, CausalSelfAttention

RNG = np.random.default_rng(0)
CFG = GPTConfig(vocab_size=17, seq_len=8, n_layer=2, n_head=4, hidden=16,
                dropout=0.0, init_seed=3)


def tensor(shape, requires_grad=False):
    return Tensor(RNG.standard_normal(shape).astype(np.float32),
                  requires_grad=requires_grad)


def assert_grads_match_dense(dense_params, sharded_module, reconstruct):
    """Compare dense gradients against the reconstruction of shard grads."""
    for name, (dense_grad, shard_grad) in reconstruct.items():
        np.testing.assert_allclose(shard_grad, dense_grad, rtol=1e-4,
                                   atol=1e-5, err_msg=name)


class TestColumnParallel:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_forward_matches_dense(self, world):
        dense = Linear(8, 12, rng=np.random.default_rng(1))
        tp = ColumnParallelLinear(dense, world)
        x = tensor((3, 8))
        np.testing.assert_allclose(tp(x).data, dense(x).data, atol=1e-6)

    def test_backward_matches_dense(self):
        dense = Linear(8, 12, rng=np.random.default_rng(1))
        tp = ColumnParallelLinear(dense, 4)
        x1 = tensor((3, 8), requires_grad=True)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        (dense(x1) ** 2).sum().backward()
        (tp(x2) ** 2).sum().backward()
        np.testing.assert_allclose(x2.grad, x1.grad, rtol=1e-4, atol=1e-6)
        rebuilt = np.concatenate([w.grad for w in tp.shards], axis=0)
        np.testing.assert_allclose(rebuilt, dense.weight.grad, rtol=1e-4,
                                   atol=1e-6)

    def test_uneven_split_exact(self):
        """10 output rows across 4 ranks: shards [3, 3, 2, 2], forward and
        backward bit-exact against the dense layer."""
        dense = Linear(8, 10, rng=np.random.default_rng(7))
        tp = ColumnParallelLinear(dense, 4)
        assert [w.data.shape[0] for w in tp.shards] == [3, 3, 2, 2]
        x1 = tensor((3, 8), requires_grad=True)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        out_d = dense(x1)
        out_t = tp(x2)
        # Forward is bit-exact: every output element is one dot product
        # over the same operands in the same order.
        np.testing.assert_array_equal(out_t.data, out_d.data)
        (out_d ** 2).sum().backward()
        (out_t ** 2).sum().backward()
        # Backward sums per-shard input-grad contributions (split-K), so
        # only the summation order differs from dense.
        np.testing.assert_allclose(x2.grad, x1.grad, rtol=1e-6, atol=1e-8)
        rebuilt = np.concatenate([w.grad for w in tp.shards], axis=0)
        np.testing.assert_allclose(rebuilt, dense.weight.grad, rtol=1e-6,
                                   atol=1e-8)

    def test_zero_row_rank_rejected(self):
        dense = Linear(8, 3)
        with pytest.raises(ValueError):
            ColumnParallelLinear(dense, 4)

    def test_gather_counted(self):
        counter = CommCounter()
        tp = ColumnParallelLinear(Linear(4, 8), 2, counter)
        tp(tensor((2, 4)))
        assert counter.allgathers == 1

    def test_no_gather_returns_partials(self):
        tp = ColumnParallelLinear(Linear(4, 8), 2, gather_output=False)
        parts = tp(tensor((2, 4)))
        assert isinstance(parts, list) and len(parts) == 2
        assert parts[0].shape == (2, 4)


class TestRowParallel:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_forward_matches_dense(self, world):
        dense = Linear(12, 6, rng=np.random.default_rng(2))
        tp = RowParallelLinear(dense, world)
        x = tensor((3, 12))
        np.testing.assert_allclose(tp(x).data, dense(x).data, rtol=1e-5,
                                   atol=1e-6)

    def test_backward_matches_dense(self):
        dense = Linear(12, 6, rng=np.random.default_rng(2))
        tp = RowParallelLinear(dense, 3)
        x1 = tensor((3, 12), requires_grad=True)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        (dense(x1) ** 2).sum().backward()
        (tp(x2) ** 2).sum().backward()
        np.testing.assert_allclose(x2.grad, x1.grad, rtol=1e-4, atol=1e-5)
        rebuilt = np.concatenate([w.grad for w in tp.shards], axis=1)
        np.testing.assert_allclose(rebuilt, dense.weight.grad, rtol=1e-4,
                                   atol=1e-5)

    def test_allreduce_counted(self):
        counter = CommCounter()
        tp = RowParallelLinear(Linear(8, 4), 2, counter)
        tp(tensor((2, 8)))
        assert counter.allreduces == 1

    def test_accepts_partial_list(self):
        dense = Linear(8, 4, rng=np.random.default_rng(3))
        tp = RowParallelLinear(dense, 2)
        x = tensor((2, 8))
        whole = tp(x)
        parts = [x[..., :4], x[..., 4:]]
        from_parts = tp(parts)
        np.testing.assert_allclose(from_parts.data, whole.data, atol=1e-6)


class TestTensorParallelMLP:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_forward_matches_dense(self, world):
        dense = MLP(CFG, np.random.default_rng(4))
        tp = TensorParallelMLP(dense, world)
        x = tensor((2, CFG.seq_len, CFG.hidden))
        np.testing.assert_allclose(tp(x).data, dense(x).data, rtol=1e-4,
                                   atol=1e-5)

    def test_one_allreduce_per_forward(self):
        """Megatron's claim: the MLP needs exactly one forward all-reduce
        (and no all-gather, thanks to the fused f/g pattern)."""
        counter = CommCounter()
        tp = TensorParallelMLP(MLP(CFG, np.random.default_rng(4)), 2,
                               counter)
        tp(tensor((2, CFG.seq_len, CFG.hidden)))
        assert counter.allreduces == 1
        assert counter.allgathers == 0

    def test_backward_input_grad_matches(self):
        dense = MLP(CFG, np.random.default_rng(4))
        tp = TensorParallelMLP(dense, 2)
        x1 = tensor((2, CFG.seq_len, CFG.hidden), requires_grad=True)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        dense(x1).sum().backward()
        tp(x2).sum().backward()
        np.testing.assert_allclose(x2.grad, x1.grad, rtol=1e-4, atol=1e-5)


class TestTensorParallelAttention:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_forward_matches_dense(self, world):
        dense = CausalSelfAttention(CFG, np.random.default_rng(5))
        tp = TensorParallelAttention(dense, world)
        x = tensor((2, CFG.seq_len, CFG.hidden))
        np.testing.assert_allclose(tp(x).data, dense(x).data, rtol=1e-4,
                                   atol=1e-5)

    def test_uneven_heads_match_dense(self):
        """4 heads across 3 ranks: head_counts [2, 1, 1]; the row-parallel
        projection follows the head partition, not an even hidden split."""
        dense = CausalSelfAttention(CFG, np.random.default_rng(5))
        tp = TensorParallelAttention(dense, 3)
        assert tp.head_counts == [2, 1, 1]
        hd = CFG.head_dim
        assert tp.proj.in_sizes == [2 * hd, hd, hd]
        x1 = tensor((2, CFG.seq_len, CFG.hidden), requires_grad=True)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        np.testing.assert_allclose(tp(x2).data, dense(x1).data, rtol=1e-4,
                                   atol=1e-5)
        dense(x1).sum().backward()
        tp(x2).sum().backward()
        np.testing.assert_allclose(x2.grad, x1.grad, rtol=1e-4, atol=1e-5)

    def test_more_ranks_than_heads_rejected(self):
        dense = CausalSelfAttention(CFG, np.random.default_rng(5))
        with pytest.raises(ValueError):
            TensorParallelAttention(dense, CFG.n_head + 1)

    def test_one_allreduce_per_forward(self):
        counter = CommCounter()
        dense = CausalSelfAttention(CFG, np.random.default_rng(5))
        tp = TensorParallelAttention(dense, 2, counter)
        tp(tensor((2, CFG.seq_len, CFG.hidden)))
        assert counter.allreduces == 1

    def test_backward_input_grad_matches(self):
        dense = CausalSelfAttention(CFG, np.random.default_rng(5))
        tp = TensorParallelAttention(dense, 2)
        x1 = tensor((2, CFG.seq_len, CFG.hidden), requires_grad=True)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        dense(x1).sum().backward()
        tp(x2).sum().backward()
        np.testing.assert_allclose(x2.grad, x1.grad, rtol=1e-4, atol=1e-5)

    def test_transformer_layer_collective_budget(self):
        """A full transformer layer = attention + MLP: exactly the 2
        forward all-reduces the DES cost model charges per layer."""
        counter = CommCounter()
        attn = TensorParallelAttention(
            CausalSelfAttention(CFG, np.random.default_rng(5)), 2, counter)
        mlp = TensorParallelMLP(MLP(CFG, np.random.default_rng(4)), 2,
                                counter)
        x = tensor((1, CFG.seq_len, CFG.hidden))
        mlp(attn(x))
        assert counter.allreduces == 2
