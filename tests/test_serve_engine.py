"""Tests for repro.serve.engine: continuous-batching pipeline serving on
the functional runtime, token-for-token identical to serial generate."""

import itertools

import numpy as np
import pytest

from repro.analysis.protocol import TraceRecorder, verify_trace
from repro.nn import GPT, GPTConfig, generate
from repro.obs import RuntimeTracer
from repro.serve import PipelineServer, Request, RequestSpec, make_requests

CFG = GPTConfig(vocab_size=31, seq_len=32, n_layer=4, n_head=2, hidden=12)


def serial_reference(cfg, requests):
    """What each request would produce through plain `generate`."""
    model = GPT(cfg)
    return {
        req.rid: generate(model, req.prompt, req.max_new_tokens,
                          temperature=req.temperature, top_k=req.top_k,
                          rng=np.random.default_rng(req.seed),
                          greedy=req.greedy)
        for req in requests
    }


def fake_clock():
    counter = itertools.count()
    return lambda: float(next(counter))


class TestTokenEquivalence:
    @pytest.mark.parametrize("g_inter,max_batch",
                             [(1, 4), (2, 1), (2, 4), (3, 2), (4, 8),
                              (6, 3)])
    def test_matches_serial_generate(self, g_inter, max_batch):
        requests = make_requests(
            CFG, 8, RequestSpec(mean_prompt=5, mean_new_tokens=5, seed=3))
        expected = serial_reference(CFG, requests)
        server = PipelineServer(CFG, g_inter=g_inter, max_batch=max_batch)
        got = server.serve(requests)
        assert set(got) == set(expected)
        for rid in got:
            assert np.array_equal(got[rid], expected[rid]), rid
        # every stage drained its KV caches
        assert all(s.inflight_requests == 0 for s in server.stages)

    def test_without_continuous_batching_identical(self):
        """max_active=1 serves strictly one request at a time; outputs
        must not depend on the batching policy."""
        requests = make_requests(
            CFG, 6, RequestSpec(mean_prompt=4, mean_new_tokens=6, seed=9))
        expected = serial_reference(CFG, requests)
        got = PipelineServer(CFG, g_inter=2, max_batch=1,
                             max_active=1).serve(requests)
        for rid in got:
            assert np.array_equal(got[rid], expected[rid]), rid

    def test_greedy_request_is_deterministic_across_servers(self):
        req = Request(rid=0, prompt=np.array([1, 2, 3]), max_new_tokens=8,
                      greedy=True)
        a = PipelineServer(CFG, g_inter=2).serve([req])
        b = PipelineServer(CFG, g_inter=4, max_batch=2).serve([req])
        assert np.array_equal(a[0], b[0])

    def test_zero_token_request_returns_prompt(self):
        req = Request(rid=7, prompt=np.array([3, 1]), max_new_tokens=0)
        out = PipelineServer(CFG, g_inter=2).serve([req])
        assert np.array_equal(out[7], [3, 1])


class TestValidation:
    def test_prompt_plus_budget_over_seq_len_rejected(self):
        req = Request(rid=0, prompt=np.arange(1, 20), max_new_tokens=20)
        with pytest.raises(ValueError, match="seq_len"):
            PipelineServer(CFG, g_inter=2).serve([req])

    def test_duplicate_rid_rejected(self):
        reqs = [Request(rid=1, prompt=np.array([1]), max_new_tokens=1),
                Request(rid=1, prompt=np.array([2]), max_new_tokens=1)]
        with pytest.raises(ValueError, match="duplicate"):
            PipelineServer(CFG, g_inter=2).serve(reqs)

    def test_bad_sampling_params_rejected(self):
        with pytest.raises(ValueError, match="temperature"):
            PipelineServer(CFG).serve([Request(
                rid=0, prompt=np.array([1]), max_new_tokens=1,
                temperature=0.0)])
        with pytest.raises(ValueError, match="top_k"):
            PipelineServer(CFG).serve([Request(
                rid=0, prompt=np.array([1]), max_new_tokens=1, top_k=0)])

    def test_out_of_vocab_prompt_rejected(self):
        with pytest.raises(ValueError, match="vocabulary"):
            PipelineServer(CFG).serve([Request(
                rid=0, prompt=np.array([CFG.vocab_size]),
                max_new_tokens=1)])

    def test_bad_server_params_rejected(self):
        with pytest.raises(ValueError):
            PipelineServer(CFG, g_inter=0)
        with pytest.raises(ValueError):
            PipelineServer(CFG, max_batch=0)
        with pytest.raises(ValueError):
            PipelineServer(CFG, max_active=0)


class TestObservability:
    def _serve_traced(self, g_inter):
        tracer = RuntimeTracer(clock=fake_clock())
        requests = make_requests(
            CFG, 4, RequestSpec(mean_prompt=4, mean_new_tokens=4, seed=1))
        PipelineServer(CFG, g_inter=g_inter, max_batch=2,
                       tracer=tracer).serve(requests)
        return tracer, requests

    @pytest.mark.parametrize("g_inter", [1, 3])
    def test_request_spans_emitted(self, g_inter):
        tracer, requests = self._serve_traced(g_inter)
        spans = [s for s in tracer.spans if s.stream == "serve"]
        assert spans and spans == tracer.spans
        by_rid = {req.rid: [s.name for s in spans
                            if s.microbatch == req.rid]
                  for req in requests}
        for req in requests:
            names = by_rid[req.rid]
            # one prefill, then decode2..decodeN, then the request span
            assert names[0] == "prefill"
            assert names[-1] == "request"
            assert names[1:-1] == [f"decode{t}"
                                   for t in range(1, req.max_new_tokens)]

    def test_disabled_tracer_records_nothing(self):
        tracer = RuntimeTracer(enabled=False, clock=fake_clock())
        requests = make_requests(CFG, 2)
        PipelineServer(CFG, g_inter=2, tracer=tracer).serve(requests)
        assert tracer.spans == []


class TestProtocol:
    def test_transport_trace_is_clean(self):
        recorder = TraceRecorder()
        requests = make_requests(
            CFG, 5, RequestSpec(mean_prompt=4, mean_new_tokens=5, seed=2))
        PipelineServer(CFG, g_inter=3, max_batch=2,
                       recorder=recorder).serve(requests)
        assert verify_trace(recorder) == []
        assert recorder.events
