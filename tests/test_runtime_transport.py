"""Tests for the cooperative rank transport and the process grid."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (RECV, DeadlockError, Packet, ProtocolError,
                           RankGrid, RankTransport)


class TestTransport:
    def test_send_and_receive(self):
        tr = RankTransport(2)
        got = []

        def receiver():
            pkt = yield RECV
            got.append(pkt)

        def sender():
            tr.send(0, 1, "forward", 7, data="payload")
            return
            yield  # pragma: no cover

        tr.run({0: sender(), 1: receiver()})
        assert got[0].tag == "forward"
        assert got[0].microbatch == 7
        assert got[0].data == "payload"

    def test_fifo_per_pair(self):
        tr = RankTransport(2)
        got = []

        def receiver():
            for _ in range(4):
                pkt = yield RECV
                got.append(pkt.microbatch)

        def sender():
            for mb in range(4):
                tr.send(0, 1, "t", mb)
            return
            yield  # pragma: no cover

        tr.run({0: sender(), 1: receiver()})
        assert got == [0, 1, 2, 3]

    def test_ping_pong(self):
        tr = RankTransport(2)
        log = []

        def a():
            tr.send(0, 1, "ping", 0)
            pkt = yield RECV
            log.append(("a-got", pkt.tag))

        def b():
            pkt = yield RECV
            log.append(("b-got", pkt.tag))
            tr.send(1, 0, "pong", 0)

        tr.run({0: a(), 1: b()})
        assert log == [("b-got", "ping"), ("a-got", "pong")]

    def test_deadlock_detected(self):
        tr = RankTransport(2)

        def waiter():
            yield RECV

        with pytest.raises(DeadlockError, match=r"ranks \[0, 1\]"):
            tr.run({0: waiter(), 1: waiter()})

    def test_protocol_violation(self):
        tr = RankTransport(1)

        def bad():
            yield "something else"

        with pytest.raises(RuntimeError, match="may only yield RECV"):
            tr.run({0: bad()})

    def test_self_send_rejected(self):
        tr = RankTransport(2)
        with pytest.raises(ValueError):
            tr.send(1, 1, "t", 0)

    def test_rank_bounds(self):
        tr = RankTransport(2)
        with pytest.raises(ValueError):
            tr.send(0, 5, "t", 0)
        with pytest.raises(ValueError):
            tr.pending(9)
        with pytest.raises(ValueError):
            RankTransport(0)

    def test_run_is_deterministic(self):
        def build():
            tr = RankTransport(3)
            order = []

            def worker(rank):
                if rank == 0:
                    tr.send(0, 1, "a", 0)
                    tr.send(0, 2, "b", 0)
                    return
                    yield  # pragma: no cover
                pkt = yield RECV
                order.append((rank, pkt.tag))
                if rank == 1:
                    tr.send(1, 2, "c", 1)
                if rank == 2:
                    pkt = yield RECV
                    order.append((rank, pkt.tag))

            tr.run({r: worker(r) for r in range(3)})
            return order

        assert build() == build()

    def test_strict_run_rejects_orphan_packets(self):
        """A send nobody receives is a protocol error under strict mode."""
        def programs(tr):
            def sender():
                tr.send(0, 1, "a", 0)
                tr.send(0, 2, "orphaned", 3)  # rank 2 never receives
                return
                yield  # pragma: no cover

            def receiver():
                yield RECV

            def idle():
                return
                yield  # pragma: no cover

            return {0: sender(), 1: receiver(), 2: idle()}

        tr = RankTransport(3)
        with pytest.raises(ProtocolError, match=r"0 -> 2 tag='orphaned'"):
            tr.run(programs(tr))

        tr = RankTransport(3, strict=False)
        tr.run(programs(tr))  # tolerated when explicitly requested
        assert tr.pending(2) == 1

    def test_protocol_error_is_typed(self):
        tr = RankTransport(1)

        def bad():
            yield "something else"

        with pytest.raises(ProtocolError):
            tr.run({0: bad()})
        assert issubclass(ProtocolError, RuntimeError)

    def test_generators_closed_on_deadlock(self):
        """Error exits close suspended rank programs (no leaked finally)."""
        tr = RankTransport(2)
        closed = []

        def waiter(rank):
            try:
                yield RECV
            finally:
                closed.append(rank)

        with pytest.raises(DeadlockError):
            tr.run({0: waiter(0), 1: waiter(1)})
        assert sorted(closed) == [0, 1]

    def test_generators_closed_on_protocol_error(self):
        tr = RankTransport(2)
        closed = []

        def waiter():
            try:
                yield RECV
            finally:
                closed.append("waiter")

        def bad():
            yield "not-recv"

        # The waiter (rank 0) suspends on RECV before rank 1 misbehaves.
        with pytest.raises(ProtocolError):
            tr.run({0: waiter(), 1: bad()})
        assert closed == ["waiter"]

    def test_deadlock_diagnosis_names_unmatched_send(self):
        """The wait-for-graph diagnosis points at the misrouted packet."""
        tr = RankTransport(3)

        def sender():
            # Misrouted: meant for rank 1, sent to rank 2 (who exits).
            tr.send(0, 2, "forward", 5)
            return
            yield  # pragma: no cover

        def starving():
            yield RECV  # waits forever

        def exits():
            return
            yield  # pragma: no cover

        with pytest.raises(DeadlockError) as excinfo:
            tr.run({0: sender(), 1: starving(), 2: exits()})
        err = excinfo.value
        msg = str(err)
        assert "wait-for graph" in msg
        assert "0 -> 2 tag='forward' microbatch=5" in msg
        assert err.stuck == [1]
        assert [
            (p.src, p.dst, p.tag, p.microbatch) for p in err.orphans
        ] == [(0, 2, "forward", 5)]

    def test_deadlock_wait_for_edges(self):
        """A rank that received from a peer is diagnosed as waiting on it."""
        tr = RankTransport(2)

        def feeder():
            tr.send(0, 1, "x", 0)
            return
            yield  # pragma: no cover

        def hungry():
            yield RECV
            yield RECV  # second message never comes

        with pytest.raises(DeadlockError) as excinfo:
            tr.run({0: feeder(), 1: hungry()})
        err = excinfo.value
        assert err.stuck == [1]
        assert err.wait_for == {1: [0]}
        assert "rank 1 waits on rank 0" in str(err)

    def test_messages_counted(self):
        tr = RankTransport(2)
        tr.send(0, 1, "x", 0)
        tr.send(0, 1, "x", 1)
        assert tr.messages_sent == 2
        assert tr.pending(1) == 2

    @given(n=st.integers(2, 6), chain_len=st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_relay_chain_delivers_everything(self, n, chain_len):
        """Property: a token relayed through all ranks arrives intact."""
        tr = RankTransport(n)
        seen = []

        def relay(rank):
            for _ in range(chain_len):
                if rank == 0:
                    tr.send(0, 1, "tok", 0, data=0)
                pkt = yield RECV
                value = pkt.data + 1
                if rank == n - 1:
                    seen.append(value)
                    tr.send(rank, 0, "ack", 0, data=value)
                else:
                    tr.send(rank, rank + 1, "tok", 0, data=value)
            # rank 0 consumes final acks above via the same loop shape

        def head():
            for _ in range(chain_len):
                tr.send(0, 1 % n, "tok", 0, data=0)
                pkt = yield RECV
                assert pkt.tag == "ack"

        programs = {0: head()}
        for r in range(1, n):
            programs[r] = relay(r)
        tr.run(programs)
        assert seen == [n - 1] * chain_len


class TestRankGrid:
    def test_world_size(self):
        assert RankGrid(4, 3).world_size == 12

    def test_round_trip(self):
        g = RankGrid(4, 3)
        for i in range(4):
            for j in range(3):
                assert g.coord_of(g.rank_of(i, j)) == (i, j)

    def test_neighbours(self):
        g = RankGrid(3, 2)
        first = g.rank_of(0, 1)
        mid = g.rank_of(1, 1)
        last = g.rank_of(2, 1)
        assert g.prev_in_pipeline(first) is None
        assert g.next_in_pipeline(first) == mid
        assert g.prev_in_pipeline(mid) == first
        assert g.next_in_pipeline(last) is None
        assert g.is_first_stage(first)
        assert g.is_last_stage(last)

    def test_groups(self):
        g = RankGrid(3, 2)
        assert g.pipeline_ranks(0) == [0, 1, 2]
        assert g.pipeline_ranks(1) == [3, 4, 5]
        assert g.data_parallel_ranks(0) == [0, 3]
        assert g.data_parallel_ranks(2) == [2, 5]

    def test_bounds(self):
        g = RankGrid(2, 2)
        with pytest.raises(ValueError):
            g.rank_of(2, 0)
        with pytest.raises(ValueError):
            g.coord_of(4)
        with pytest.raises(ValueError):
            RankGrid(0, 1)

    @given(gi=st.integers(1, 6), gd=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_groups_partition_world(self, gi, gd):
        g = RankGrid(gi, gd)
        from_pipelines = sorted(
            r for j in range(gd) for r in g.pipeline_ranks(j))
        from_columns = sorted(
            r for i in range(gi) for r in g.data_parallel_ranks(i))
        assert from_pipelines == list(range(g.world_size))
        assert from_columns == list(range(g.world_size))
