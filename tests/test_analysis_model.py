"""Tests for the pre-run communication model checker: skeleton
extraction, exhaustive interleaving exploration, the seeded deadlock
mutant's counterexample, and op-for-op cross-validation of every static
skeleton against a TraceRecorder trace of the corresponding real run."""

import numpy as np
import pytest

from repro.analysis import TraceRecorder, assert_clean
from repro.analysis.model import (
    ModelError,
    axonn_model,
    builtin_models,
    check_model,
    compare_with_trace,
    deadlock_mutant_model,
    disagg_serve_model,
    extract_skeleton,
    flushing_model,
    serve_model,
)
from repro.baselines import FlushingPipelineTrainer
from repro.fleet import DisaggPipelineServer
from repro.nn import GPTConfig, LMBatches, SyntheticCorpus
from repro.runtime import AxoNNTrainer
from repro.serve.engine import PipelineServer, Request


class TestSkeletons:
    def test_axonn_skeleton_has_pipeline_traffic(self):
        sk = extract_skeleton(axonn_model(2, 1, 2))
        # 2 forwards down + 2 backwards up, recorded on both endpoints.
        kinds0 = [op.kind for op in sk.ops[0]]
        assert kinds0.count("send") == 2 and kinds0.count("recv") == 2
        assert sk.channels == [(0, 1, "p2p"), (1, 0, "p2p")]

    def test_degenerate_single_rank_never_communicates(self):
        sk = extract_skeleton(axonn_model(1, 1, 3))
        assert sk.ops[0] == [] and sk.channels == []

    def test_data_parallel_columns_are_separate_components(self):
        sk = extract_skeleton(axonn_model(2, 2, 2))
        # rank_of(i, j) = j*g_inter + i: pipelines {0,1} and {2,3} never
        # exchange p2p messages, so the checker explores them separately.
        assert sk.components() == [[0, 1], [2, 3]]

    def test_flushing_skeleton_uses_tag_planes(self):
        sk = extract_skeleton(flushing_model("1f1b", 2, 1, 2))
        planes = {op.plane for ops in sk.ops.values() for op in ops
                  if op.kind in ("send", "recv")}
        assert planes == {"F", "B"}

    def test_describe_names_the_config(self):
        assert axonn_model(2, 1, 2).describe() == \
            "axonn[g_inter=2,g_data=1,m=2,limit=2]"


class TestCheckerSweep:
    def test_all_builtin_configs_verify(self):
        """The acceptance sweep: AxoNN / 1F1B / GPipe at every config
        with g_inter*g_data <= 8 and microbatches <= 4 (plus small
        serving pipelines) are deadlock-free with complete matching and
        consistent collective order, over EVERY interleaving."""
        models = builtin_models(max_world=8, max_microbatches=4)
        assert len(models) >= 200  # 20 grids x 4 m x 3 variants + serve
        for model in models:
            result = check_model(model)
            assert result.ok, (
                f"{model.describe()} failed: {result.violations}")
            assert result.deadlock_free
            assert result.matching_complete
            assert result.collectives_consistent

    @pytest.mark.parametrize("g_decode", [1, 2, 3])
    def test_disagg_handoff_protocol_deadlock_free(self, g_decode):
        """The KV-handoff protocol at the smoke config family: one
        prefill rank feeding 1..3 decode ranks, every interleaving."""
        result = check_model(disagg_serve_model(
            1, g_decode, n_requests=3, max_new_tokens=2, max_batch=2))
        assert result.ok, result.violations
        assert result.deadlock_free
        assert result.matching_complete

    def test_multi_rank_prefill_pool_is_out_of_scope(self):
        """With g_prefill >= 2 the scheduler has two inbound sources
        (KV pieces and decode tokens) and its pump reacts to arrival
        order, so the counts-quotient is unsound — the checker must
        refuse rather than mis-verify.  Runtime token-identity tests
        cover those splits instead."""
        with pytest.raises(ModelError, match="non-confluent"):
            check_model(disagg_serve_model(
                2, 2, n_requests=3, max_new_tokens=2, max_batch=2))
            assert result.states >= 1
            assert result.counterexample is None

    def test_interleavings_actually_explored(self):
        # Two independent warm-up sends from rank 0 plus downstream
        # progress give strictly more reachable states than a single
        # linear execution would.
        result = check_model(axonn_model(8, 1, 4))
        assert result.states > 100

    def test_component_decomposition_bounds_the_state_space(self):
        # With column decomposition the 2x4 grid costs ~4x the 2x1
        # pipeline, not its 4th power.
        one = check_model(axonn_model(2, 1, 4)).states
        four = check_model(axonn_model(2, 4, 4)).states
        assert four <= 4 * one + 4


class TestDeadlockMutant:
    def test_mutant_is_caught_with_counterexample(self):
        result = check_model(deadlock_mutant_model())
        assert not result.ok
        assert not result.deadlock_free
        cx = result.counterexample
        assert cx is not None
        # Rank 0 starves waiting for the backward the mutant never sends.
        assert cx.stuck == [0]
        assert cx.wait_for == {0: [1]}
        assert "wait-for graph" in cx.message
        assert "rank 0 waits on rank 1" in cx.message

    def test_counterexample_trace_is_a_concrete_interleaving(self):
        cx = check_model(deadlock_mutant_model()).counterexample
        assert cx.trace, "the witness must include the op trace"
        kinds = [op.kind for op in cx.trace]
        assert set(kinds) <= {"send", "recv"}
        # The trace ends one backward short: 2 forwards down, both
        # received, one backward up, received — then rank 0 starves.
        sends = [(op.rank, op.peer, op.tag) for op in cx.trace
                 if op.kind == "send"]
        assert sends.count((1, 0, "backward")) == 1
        assert all(str(op) for op in cx.trace)  # renders for humans

    def test_extractor_reports_the_deadlock_too(self):
        # Every interleaving of the mutant deadlocks, including the
        # extractor's sweep order; it must diagnose, not hang.
        with pytest.raises(ModelError, match="wait-for graph"):
            extract_skeleton(deadlock_mutant_model())


class Test4DTensorParallel:
    def test_tp_grids_verify(self):
        for g_inter, g_data, g_intra in ((2, 1, 2), (1, 2, 2), (2, 2, 2)):
            result = check_model(axonn_model(g_inter, g_data, 2,
                                             g_intra=g_intra))
            assert result.ok, (g_inter, g_data, g_intra, result.violations)
            assert result.collectives_consistent

    def test_followers_marked_as_reflectors(self):
        from repro.runtime.grid import RankGrid
        model = axonn_model(2, 1, 2, g_intra=2)
        grid = RankGrid(2, 1, 2)
        followers = frozenset(r for r in range(grid.world_size)
                              if not grid.is_tp_lead(r))
        assert model.reflector_ranks == followers
        # A dense grid has no reflectors: the reduction must not touch it.
        assert axonn_model(2, 1, 2).reflector_ranks == frozenset()

    def test_reflector_reduction_shrinks_the_state_space(self):
        """Eagerly firing deliveries to TP followers is a *reduction*:
        same verdict, strictly fewer states than branching against the
        full action set."""
        from dataclasses import replace
        model = axonn_model(1, 2, 2, g_intra=2)
        reduced = check_model(model)
        full = check_model(replace(model, reflector_ranks=frozenset()))
        assert reduced.ok and full.ok
        assert reduced.states < full.states

    def test_tp_skeleton_collectives_carry_group_keys(self):
        sk = extract_skeleton(axonn_model(2, 1, 2, g_intra=2))
        tp_ops = [o for rank in sk.ops for o in sk.ops[rank]
                  if o.kind == "collective" and o.tag.startswith("tp_")]
        assert tp_ops, "TP grids must record tp_* collectives in-stream"
        assert all(o.key is not None for o in tp_ops)

    def test_tampered_member_order_is_a_violation(self):
        """The invariant the checker proves: two members of one TP group
        recording the same collectives in different orders must trip the
        order check."""
        from repro.analysis import check_collective_order
        trace = TraceRecorder()
        trace.record_collective(0, "tp_allgather", key=((0, 0), "fwd", 0))
        trace.record_collective(0, "tp_reduce_scatter",
                                key=((0, 0), "bwd", 0))
        trace.record_collective(1, "tp_reduce_scatter",
                                key=((0, 0), "bwd", 0))
        trace.record_collective(1, "tp_allgather", key=((0, 0), "fwd", 0))
        violations = check_collective_order(trace, [[0, 1]], tags=("tp_",))
        assert violations


class TestCrossValidation:
    """The static skeletons must agree op-for-op with TraceRecorder
    traces of actual runs — the extractor drives the production
    generators, so any divergence means the model lies."""

    def _cfg(self, n_layer=2):
        return GPTConfig(vocab_size=32, seq_len=8, n_layer=n_layer,
                         n_head=2, hidden=16)

    def _batch(self, cfg, batch_size=8):
        corpus = SyntheticCorpus(cfg.vocab_size, 2_000, seed=0)
        return LMBatches(corpus, batch_size=batch_size,
                         seq_len=cfg.seq_len).batch(0)

    @staticmethod
    def _param_slots(trainer):
        grid = trainer.grid
        return [len(trainer.stages[grid.rank_of(i, 0)].parameters())
                for i in range(grid.g_inter)]

    def test_axonn_skeleton_matches_runtime_trace(self):
        rec = TraceRecorder()
        cfg = self._cfg()
        trainer = AxoNNTrainer(cfg, g_inter=2, g_data=2,
                               microbatch_size=2, recorder=rec)
        trainer.train_batch(*self._batch(cfg))
        model = axonn_model(2, 2, microbatches=2,
                            param_slots=self._param_slots(trainer))
        assert compare_with_trace(extract_skeleton(model), rec) == []

    @pytest.mark.parametrize("schedule", ["1f1b", "gpipe"])
    def test_flushing_skeleton_matches_runtime_trace(self, schedule):
        rec = TraceRecorder()
        cfg = self._cfg()
        trainer = FlushingPipelineTrainer(cfg, g_inter=2, g_data=2,
                                          microbatch_size=2,
                                          schedule=schedule, recorder=rec)
        trainer.train_batch(*self._batch(cfg))
        columns = [trainer.grid.data_parallel_ranks(i)
                   for i in range(trainer.grid.g_inter)]
        assert_clean(rec, groups=columns)  # new recorder wiring is sound
        model = flushing_model(schedule, 2, 2, microbatches=2,
                               param_slots=self._param_slots(trainer))
        assert compare_with_trace(extract_skeleton(model), rec) == []

    def test_serve_skeleton_matches_runtime_trace(self):
        rec = TraceRecorder()
        cfg = self._cfg(n_layer=3)
        server = PipelineServer(cfg, g_inter=3, max_batch=2, recorder=rec)
        requests = [Request(rid, np.zeros(1, dtype=np.int64),
                            max_new_tokens=2, greedy=True, seed=rid)
                    for rid in range(3)]
        outputs = server.serve(requests)
        assert set(outputs) == {0, 1, 2}
        model = serve_model(3, n_requests=3, max_new_tokens=2,
                            max_batch=2)
        assert compare_with_trace(extract_skeleton(model), rec) == []

    def test_disagg_skeleton_matches_runtime_trace(self):
        """The KV-handoff wire protocol, op-for-op: the symbolic
        disaggregated model predicts exactly the sends/recvs a real
        DisaggPipelineServer run records."""
        rec = TraceRecorder()
        cfg = self._cfg(n_layer=3)
        server = DisaggPipelineServer(cfg, g_prefill=1, g_decode=2,
                                      max_batch=2, recorder=rec)
        requests = [Request(rid, np.zeros(1, dtype=np.int64),
                            max_new_tokens=2, greedy=True, seed=rid)
                    for rid in range(3)]
        outputs = server.serve(requests)
        assert set(outputs) == {0, 1, 2}
        model = disagg_serve_model(1, 2, n_requests=3, max_new_tokens=2,
                                   max_batch=2)
        assert compare_with_trace(extract_skeleton(model), rec) == []
