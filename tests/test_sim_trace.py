"""Tests for the timeline tracer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Span, Tracer, overlap_time, render_ascii_timeline, \
    spans_overlap, track_busy_time


def test_record_and_query_by_track():
    tr = Tracer()
    tr.record("gpu0.compute", "fwd", 0.0, 1.0, category="compute")
    tr.record("gpu0.comm", "send", 0.5, 1.5, category="p2p")
    tr.record("gpu0.compute", "bwd", 1.0, 3.0, category="compute")
    assert tr.tracks() == ["gpu0.compute", "gpu0.comm"]
    names = [s.name for s in tr.on_track("gpu0.compute")]
    assert names == ["fwd", "bwd"]


def test_disabled_tracer_records_nothing():
    tr = Tracer(enabled=False)
    tr.record("t", "x", 0, 1)
    assert tr.spans == []


def test_negative_duration_rejected():
    tr = Tracer()
    with pytest.raises(ValueError):
        tr.record("t", "x", 2.0, 1.0)


def test_meta_round_trip():
    tr = Tracer()
    tr.record("t", "x", 0, 1, category="p2p", bytes=1024, microbatch=3)
    row = tr.to_rows()[0]
    assert row["bytes"] == 1024
    assert row["microbatch"] == 3


def test_by_category():
    tr = Tracer()
    tr.record("a", "x", 0, 1, category="compute")
    tr.record("b", "y", 0, 1, category="allreduce")
    assert [s.name for s in tr.by_category("allreduce")] == ["y"]


def test_spans_overlap_detection():
    a = Span("t", "a", 0.0, 2.0)
    b = Span("t", "b", 1.0, 3.0)
    c = Span("t", "c", 2.0, 4.0)  # touching is not overlapping
    assert spans_overlap(a, b)
    assert not spans_overlap(a, c)


def test_track_busy_time_merges_intervals():
    spans = [Span("t", "a", 0, 2), Span("t", "b", 1, 3), Span("t", "c", 5, 6)]
    assert track_busy_time(spans) == pytest.approx(4.0)


def test_overlap_time_between_streams():
    # optimizer stream busy [0,2] and [4,6]; allreduce stream busy [1,5]
    opt = [Span("opt", "o1", 0, 2), Span("opt", "o2", 4, 6)]
    ar = [Span("ar", "a1", 1, 5)]
    assert overlap_time(opt, ar) == pytest.approx(2.0)  # [1,2] + [4,5]


def test_overlap_time_zero_when_disjoint():
    opt = [Span("opt", "o", 0, 1)]
    ar = [Span("ar", "a", 2, 3)]
    assert overlap_time(opt, ar) == 0.0


def test_render_ascii_contains_all_tracks():
    tr = Tracer()
    tr.record("gpu0.optimizer", "step", 0, 1, category="optimizer")
    tr.record("gpu0.allreduce", "chunk", 0.5, 2, category="allreduce")
    text = render_ascii_timeline(tr, width=40)
    assert "gpu0.optimizer" in text
    assert "gpu0.allreduce" in text
    assert "o" in text and "a" in text


def test_render_empty_timeline():
    assert "empty" in render_ascii_timeline(Tracer())


def _row(text, line=1):
    """Extract the painted bins of the n-th track row."""
    return text.splitlines()[line].split("|")[1]


def test_render_half_open_bins_keep_adjacent_spans_distinct():
    # Regression: the right edge used to be painted inclusively, so a span
    # ending exactly where the next one starts overwrote its first bin.
    tr = Tracer()
    tr.record("t", "o", 0.0, 1.0, category="optimizer")
    tr.record("t", "a", 1.0, 2.0, category="allreduce")
    assert _row(render_ascii_timeline(tr, width=10)) == "oooooaaaaa"


def test_render_span_does_not_bleed_into_idle_tail():
    tr = Tracer()
    tr.record("t", "o", 0.0, 1.0, category="optimizer")
    row = _row(render_ascii_timeline(tr, width=10, t1=2.0))
    assert row == "ooooo....."


def test_render_zero_width_span_paints_one_bin():
    tr = Tracer()
    tr.record("t", "mark", 1.0, 1.0, category="optimizer")
    row = _row(render_ascii_timeline(tr, width=10, t0=0.0, t1=2.0))
    assert row == ".....o...."


@given(
    ivs=st.lists(
        st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False),
                  st.floats(min_value=0, max_value=100, allow_nan=False)),
        min_size=1, max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_busy_time_bounds(ivs):
    """Property: union time <= sum of durations and >= max single duration."""
    spans = [Span("t", "s", min(a, b), max(a, b)) for a, b in ivs]
    busy = track_busy_time(spans)
    total = sum(s.duration for s in spans)
    longest = max(s.duration for s in spans)
    assert busy <= total + 1e-9
    assert busy >= longest - 1e-9


@given(
    a=st.lists(st.tuples(st.floats(0, 50, allow_nan=False),
                         st.floats(0, 50, allow_nan=False)), min_size=1, max_size=10),
    b=st.lists(st.tuples(st.floats(0, 50, allow_nan=False),
                         st.floats(0, 50, allow_nan=False)), min_size=1, max_size=10),
)
@settings(max_examples=100, deadline=None)
def test_overlap_time_symmetric_and_bounded(a, b):
    sa = [Span("a", "x", min(p, q), max(p, q)) for p, q in a]
    sb = [Span("b", "y", min(p, q), max(p, q)) for p, q in b]
    o1 = overlap_time(sa, sb)
    o2 = overlap_time(sb, sa)
    assert o1 == pytest.approx(o2)
    assert o1 <= min(track_busy_time(sa), track_busy_time(sb)) + 1e-9
