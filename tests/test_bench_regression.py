"""Opt-in wall-clock regression gate (``pytest -m bench``).

Excluded from the default run (``addopts = -q -m "not bench"``): a timing
assertion is only meaningful on a quiet machine, so it must be requested
explicitly.  The test shells out to ``benchmarks/check_regression.py``,
which re-times the trainers and compares against the committed
``BENCH_PR1.json``.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.mark.bench
def test_step_time_regression_gate():
    baseline = REPO / "BENCH_PR1.json"
    assert baseline.exists(), "run benchmarks/bench_wallclock.py first"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, str(REPO / "benchmarks" / "check_regression.py")],
        env=env, capture_output=True, text=True)
    assert proc.returncode == 0, (
        f"step-time regression detected:\n{proc.stdout}\n{proc.stderr}")
