"""Benchmark: paper Fig. 4 — all-reduce latency, MPI vs NCCL, over 6 GPUs
(one node) and 12 GPUs (two nodes)."""

import pytest

from conftest import print_claims, print_rows, run_once
from repro.experiments import fig4_claims, fig4_rows


@pytest.mark.benchmark(group="fig4")
def test_fig4_allreduce_latency(benchmark):
    rows = run_once(benchmark, fig4_rows)
    claims = fig4_claims(rows)
    for r in rows:
        r["latency_ms"] = r.pop("latency_s") * 1e3
    print_rows("Fig. 4: all-reduce latency (milliseconds)", rows)
    print_claims("Fig. 4", claims)
    assert all(claims.values())
