"""Benchmark: paper Fig. 6 — batch-time breakdown with and without the
memory optimizations (12 B model, 48 GPUs, batch 2048), plus the
Section V-B memory-accounting anchors (20 phi -> 4 phi + 16 bsize,
520 GB -> ~130 GB)."""

import pytest

from conftest import print_claims, print_rows, run_once
from repro.experiments import fig6_claims, fig6_rows, memory_savings_summary


@pytest.mark.benchmark(group="fig6")
def test_fig6_memopt_breakdown(benchmark):
    rows = run_once(benchmark, fig6_rows)
    print_rows("Fig. 6: breakdown of batch times (12B, 48 GPUs)", rows)
    claims = fig6_claims(rows)
    print_claims("Fig. 6", claims)
    summary = memory_savings_summary()
    print_rows("Section V-B memory accounting",
               [{k: round(v, 2) for k, v in summary.items()}])
    assert all(claims.values())
    assert 4.0 < summary["state_saving_ratio"] < 5.0
