"""Benchmark: paper Fig. 1 — the inter-layer parallelism occupancy diagram
(warm-up wavefront, steady state, drain bubble), regenerated from a traced
simulation."""

import pytest

from conftest import print_rows, run_once
from repro.experiments import pipeline_occupancy, render_occupancy


@pytest.mark.benchmark(group="fig1")
def test_fig1_pipeline_diagram(benchmark):
    occ = run_once(benchmark, pipeline_occupancy, g_inter=4, microbatches=8)
    print("\n" + render_occupancy(occ))
    rows = [{"stage": st["stage"], "busy_s": st["busy_s"],
             "idle_pct": 100 * st["idle_fraction"]}
            for st in occ["stages"]]
    print_rows("Fig. 1: per-stage occupancy", rows)
    # The bubble exists and is bounded; stage idle fractions are similar.
    idles = [st["idle_fraction"] for st in occ["stages"]]
    assert 0.05 < max(idles) < 0.6
