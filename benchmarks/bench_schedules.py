"""Schedule benchmark: DES makespan + bubble per shipped schedule (PR 9).

Simulates one batch of every shipped IR schedule
(:mod:`repro.sched.builders`) on the DES twin at pipeline depths 4 and 8
with 8 microbatches (12B-layer stage costs, no jitter — the numbers are
deterministic, so any drift is a cost-model or schedule change, not
noise), and records makespan, bubble fraction and peak activation
residency.  Writes ``BENCH_PR9.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_schedules.py

``check_regression.py`` re-simulates and compares against the committed
file: makespans must not grow past the threshold, and the structural
wins the PR's acceptance bar pinned (interleaved and zero-bubble beat
1F1B's bubble at depth 4) must still hold.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.sched import SCHEDULE_NAMES, build_schedule  # noqa: E402
from repro.sched.des import simulate_schedule  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"

STAGE_COUNTS = (4, 8)
MICROBATCHES = 8


def bench_schedules() -> Dict[str, Dict[str, Dict[str, float]]]:
    """``{stages: {schedule: {makespan_s, bubble_fraction, ...}}}``."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for n_stages in STAGE_COUNTS:
        per_stage: Dict[str, Dict[str, float]] = {}
        for name in SCHEDULE_NAMES:
            try:
                sched = build_schedule(name, n_stages, MICROBATCHES)
            except ValueError:
                continue  # e.g. interleaved off its round constraint
            sim = simulate_schedule(sched)
            per_stage[name] = {
                "makespan_s": sim.makespan,
                "bubble_fraction": sim.bubble_fraction,
                "peak_activation_bytes": sim.peak_memory,
            }
            print(f"  S={n_stages} {name:>12}: makespan "
                  f"{sim.makespan:.4f}s bubble {sim.bubble_fraction:.4f}")
        results[str(n_stages)] = per_stage
    return results


def main() -> int:
    print(f"schedule DES benchmark: stages={STAGE_COUNTS} "
          f"microbatches={MICROBATCHES}")
    schedules = bench_schedules()
    report = {
        "config": {"stage_counts": list(STAGE_COUNTS),
                   "microbatches": MICROBATCHES, "model": "12B",
                   "sigma": 0.0},
        "schedules": schedules,
    }
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
