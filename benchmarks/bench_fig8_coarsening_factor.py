"""Benchmark: paper Fig. 8 — combined all-reduce + optimizer time versus
the coarsening factor k (12 B model, 48 GPUs, memopt, bsize 16M)."""

import pytest

from conftest import print_claims, print_rows, run_once
from repro.experiments import fig8_claims, fig8_rows


@pytest.mark.benchmark(group="fig8")
def test_fig8_coarsening_factor(benchmark):
    rows = run_once(benchmark, fig8_rows)
    print_rows("Fig. 8: all-reduce + optimizer phase time vs k", rows)
    claims = fig8_claims(rows)
    print_claims("Fig. 8", claims)
    assert all(claims.values())
