"""Elastic-fleet benchmark (PR 10).

Records the fleet economics the autoscaler PR claims and writes them to
``BENCH_PR10.json`` at the repository root.  Everything here is the
deterministic DES — identical numbers on every machine — so the file
regression-gates the *model*, not the host:

* **diurnal** — static-peak vs reactive vs predictive on the seeded
  diurnal trace (p50/p99 TTFT, mean TPOT, replica-seconds, the split
  rejection ledger, cold starts, scale events);
* **flash** — the same three policies under a flash crowd, the
  anti-diurnal stress case for the predictive controller;
* **disaggregation** — unified vs 1-prefill + 7-decode at equal
  hardware on the decode-heavy mix (p99 TTFT, throughput, handoffs);
* **failover** — one crash plus one drain-then-retire mid-run on the
  shared decommission path (restarts, losses).

Run directly::

    PYTHONPATH=src python benchmarks/bench_fleet.py

``benchmarks/check_regression.py`` compares a fresh run against the
committed ``BENCH_PR10.json`` (skipping cleanly when it is absent).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List

from repro.experiments import (autoscale_serving_model, autoscaling_rows,
                               disagg_rows, fleet_failover)
from repro.experiments.fleet import _admission, _autoscale_spec, _policy_row
from repro.fleet import (PredictivePolicy, ReactivePolicy, StaticPolicy,
                         service_rate_per_replica, simulate_fleet)
from repro.fleet.sim import FleetModel
from repro.serve import ArrivalSpec

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"


def _with_rejection_rate(rows: List[Dict[str, float]]
                         ) -> List[Dict[str, float]]:
    for row in rows:
        rejected = (row["rejected_backpressure"] + row["rejected_admission"]
                    + row["rejected_down"])
        row["rejection_rate"] = rejected / max(1.0, row["completed"]
                                               + rejected)
    return rows


def bench_diurnal(fast: bool = True) -> List[Dict[str, float]]:
    return _with_rejection_rate(autoscaling_rows(fast))


def bench_flash(fast: bool = True) -> List[Dict[str, float]]:
    """Static vs reactive vs predictive under a flash crowd.

    The predictive controller fits a sinusoid, which a flash crowd is
    not — these rows record how gracefully it degrades, while the
    reactive controller's queue-pressure path is what actually absorbs
    the spike."""
    serving = autoscale_serving_model()
    spec = _autoscale_spec(0)
    mu = service_rate_per_replica(serving, spec)
    horizon = 120.0 if fast else 240.0
    arrivals = ArrivalSpec(rate_per_s=0.9 * mu, seed=0, kind="flash",
                           flash_at_s=horizon / 4, flash_factor=4.0,
                           flash_decay_s=15.0)
    model = FleetModel(serving=serving, cold_start_s=5.0,
                       control_interval_s=1.0, drain_timeout_s=10.0)
    policies = [
        ("static-peak", StaticPolicy(serving.n_replicas)),
        ("reactive", ReactivePolicy(min_replicas=1,
                                    max_replicas=serving.n_replicas,
                                    cooldown_s=5.0)),
        ("predictive", PredictivePolicy(period_s=horizon, lead_s=10.0,
                                        min_replicas=1,
                                        max_replicas=serving.n_replicas,
                                        target_utilization=0.6)),
    ]
    rows = []
    for name, policy in policies:
        stats = simulate_fleet(model, policy, arrivals, horizon,
                               request_spec=spec, seq_len=64,
                               admission=_admission())
        rows.append(_policy_row(name, stats))
    return _with_rejection_rate(rows)


def bench_fleet(fast: bool = True) -> Dict[str, object]:
    print("== diurnal: static vs reactive vs predictive ==")
    diurnal = bench_diurnal(fast)
    for row in diurnal:
        print(f"{row['policy']:>12}: rs={row['replica_seconds']:7.1f}  "
              f"p99={row['ttft_p99_ms']:7.1f}ms  "
              f"tpot={row['tpot_ms']:5.2f}ms  "
              f"rej={row['rejection_rate']:.3f}")
    print("\n== flash crowd ==")
    flash = bench_flash(fast)
    for row in flash:
        print(f"{row['policy']:>12}: rs={row['replica_seconds']:7.1f}  "
              f"p99={row['ttft_p99_ms']:7.1f}ms  "
              f"rej={row['rejection_rate']:.3f}")
    print("\n== disaggregation at equal hardware ==")
    disagg = _with_rejection_rate(disagg_rows(fast))
    for row in disagg:
        print(f"{row['policy']:>14}: p99={row['ttft_p99_ms']:7.1f}ms  "
              f"tok/s={row['throughput_tok_s']:7.1f}  "
              f"handoffs={row['handoffs']:.0f}")
    print("\n== shared-path failover ==")
    failover = fleet_failover(fast)
    print(f"  crashes={failover['crashes']:.0f} "
          f"retired={failover['retired']:.0f} "
          f"restarted={failover['restarted']:.0f} "
          f"lost={failover['lost']:.0f}")
    return {"diurnal": diurnal, "flash": flash, "disaggregation": disagg,
            "failover": failover}


def main() -> int:
    report = {"fleet": bench_fleet()}
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
