"""Scaling benchmark for the process execution backend (PR 6).

Times one full ``train_batch`` of the 8-layer GPT below at 1, 2, 4 and 8
ranks (``g_inter = ranks``, ``g_data = 1`` — one pipeline stage per rank,
fixed global batch, i.e. strong scaling) on both execution backends:

* **cooperative** — every rank program driven in-process by the
  deterministic scheduler (the pre-PR-6 baseline);
* **process** — each rank is a real OS process exchanging ndarray
  activations over shared-memory rings
  (:class:`repro.runtime.parallel.ProcessBackend`).

Writes ``BENCH_PR6.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_scaling.py

**Read the numbers against the recorded ``cores`` field.**  The process
backend can only beat the cooperative scheduler when the OS has physical
cores to run the stages on; on a single-core machine the workers
time-slice one CPU and the measurement records the IPC overhead of the
transport, not a speedup.  The ISSUE's acceptance bar (>= 2x at 4 ranks)
is therefore asserted by ``check_regression.py`` **only when the machine
has >= 4 cores**; on smaller machines the honest numbers are recorded
and the bar is reported as not measurable.

It also re-times the :mod:`bench_wallclock` trainer section so this file
carries trainer entries comparable with every other ``BENCH_PR*.json`` —
``check_regression.py`` takes the best ``min_s`` per variant across all
of them as its baseline.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Dict

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_wallclock  # noqa: E402  (needs the path tweak above)

from repro.nn import GPTConfig  # noqa: E402
from repro.perf import time_fn  # noqa: E402
from repro.runtime import AxoNNTrainer  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"

# One pipeline stage per rank; 8 layers so every rank count divides evenly.
CFG = GPTConfig(vocab_size=64, seq_len=32, n_layer=8, n_head=4, hidden=64,
                dropout=0.0, init_seed=7)
BATCH_SIZE = 16          # fixed global batch: strong scaling
MICROBATCH = 2
RANK_COUNTS = (1, 2, 4, 8)
REPEATS = 3


def cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_backend(backend: str, ranks: int) -> Dict[str, float]:
    """Min/mean/max ``train_batch`` wall time at this world size."""
    rng = np.random.default_rng(3)
    x = rng.integers(0, CFG.vocab_size, (BATCH_SIZE, CFG.seq_len))
    y = rng.integers(0, CFG.vocab_size, (BATCH_SIZE, CFG.seq_len))
    trainer = AxoNNTrainer(CFG, g_inter=ranks, g_data=1,
                           microbatch_size=MICROBATCH, backend=backend)
    try:
        # One untimed step first: the process backend spawns its workers
        # and maps the parameter segments lazily on the first batch.
        trainer.train_batch(x, y)
        return time_fn(lambda: trainer.train_batch(x, y),
                       repeats=REPEATS).as_dict()
    finally:
        trainer.close()


def bench_scaling() -> Dict[str, Dict[str, Dict[str, float]]]:
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for backend in ("cooperative", "process"):
        results[backend] = {}
        for ranks in RANK_COUNTS:
            stats = bench_backend(backend, ranks)
            results[backend][str(ranks)] = stats
            print(f"{backend:>12} x{ranks}: {stats['min_s']:.4f}s min "
                  f"({stats['mean_s']:.4f}s mean)")
    return results


def main() -> int:
    n_cores = cores()
    print(f"config: {CFG}")
    print(f"batch={BATCH_SIZE} microbatch={MICROBATCH} "
          f"ranks={RANK_COUNTS} repeats={REPEATS} cores={n_cores}")

    scaling = bench_scaling()
    trainers = bench_wallclock.bench_trainers()

    speedup_vs_1rank = {
        backend: {r: scaling[backend]["1"]["min_s"] / stats["min_s"]
                  for r, stats in per_rank.items()}
        for backend, per_rank in scaling.items()
    }
    process_vs_cooperative = {
        r: scaling["cooperative"][r]["min_s"] / scaling["process"][r]["min_s"]
        for r in scaling["process"]
    }
    for r, s in process_vs_cooperative.items():
        print(f"process vs cooperative x{r}: {s:.2f}x")

    report = {
        "config": {
            "vocab_size": CFG.vocab_size, "seq_len": CFG.seq_len,
            "n_layer": CFG.n_layer, "n_head": CFG.n_head,
            "hidden": CFG.hidden, "batch_size": BATCH_SIZE,
            "microbatch_size": MICROBATCH, "rank_counts": list(RANK_COUNTS),
            "repeats": REPEATS,
        },
        "cores": n_cores,
        "note": (
            "Strong scaling of train_batch: g_inter=ranks, g_data=1, fixed "
            "global batch.  Speedups are only physically attainable when "
            "cores >= ranks; with fewer cores the workers time-slice one "
            "CPU and these numbers measure transport overhead, honestly "
            "recorded as such.  check_regression.py asserts the >= 2x at "
            "4 ranks acceptance bar only when cores >= 4."),
        "scaling": scaling,
        "speedup_vs_1rank": speedup_vs_1rank,
        "process_vs_cooperative": process_vs_cooperative,
        "trainers": trainers,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")

    if n_cores >= 4:
        target = 2.0
        got = speedup_vs_1rank["process"]["4"]
        ok = got >= target
        print(f"acceptance (process x4 >= {target}x vs x1): "
              f"{'PASS' if ok else 'FAIL'} ({got:.2f}x)")
        return 0 if ok else 1
    print(f"acceptance (process x4 >= 2x vs x1): not measurable on "
          f"{n_cores} core(s); recorded honest numbers only")
    return 0


if __name__ == "__main__":
    sys.exit(main())
