"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one paper table/figure: it runs the
experiment once under ``benchmark.pedantic`` (so pytest-benchmark records
the wall time) and prints the figure's rows/series in a terminal table, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's artefacts
end to end.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_rows(title: str, rows: Sequence[Dict[str, object]],
                float_fmt: str = "{:.4g}") -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"\n== {title} ==\n(no rows)\n"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value) -> str:
        if isinstance(value, bool) or value is None:
            return str(value)
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    table = [[fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(c), *(len(line[i]) for line in table))
              for i, c in enumerate(columns)]
    sep = "  "
    header = sep.join(c.ljust(w) for c, w in zip(columns, widths))
    lines = [f"\n== {title} ==", header, "-" * len(header)]
    lines += [sep.join(v.ljust(w) for v, w in zip(line, widths))
              for line in table]
    return "\n".join(lines) + "\n"


def print_rows(title: str, rows: Sequence[Dict[str, object]]) -> None:
    print(format_rows(title, rows))


def print_claims(title: str, claims: Dict[str, bool]) -> None:
    print(f"\n== {title}: paper-claim checklist ==")
    for name, ok in claims.items():
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}")
    print()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
