"""Benchmark: paper Fig. 7 — the Nsight-style two-stream profile showing
the all-reduce chunks and optimizer buckets interleaving."""

import pytest

from conftest import print_claims, run_once
from repro.experiments import fig7_claims, fig7_profile


@pytest.mark.benchmark(group="fig7")
def test_fig7_overlap_timeline(benchmark):
    profile = run_once(benchmark, fig7_profile)
    print("\n== Fig. 7: simulated two-stream profile "
          "(a=allreduce chunk, o=optimizer bucket) ==")
    # Show only the data-parallel-phase tracks (aux + compute of gpu0).
    ascii_timeline = profile["ascii"]
    for line in ascii_timeline.splitlines():
        if "gpu0" in line or line.startswith("timeline"):
            print(line)
    print(f"allreduce busy: {profile['allreduce_busy_s']:.3f}s  "
          f"optimizer busy: {profile['optimizer_busy_s']:.3f}s  "
          f"overlapped: {profile['overlap_s']:.3f}s")
    claims = fig7_claims(profile)
    print_claims("Fig. 7", claims)
    assert all(claims.values())
