"""Benchmark: paper Fig. 10 — loss curves of serial training vs AxoNN's
hybrid-parallel training must coincide (scaled-down GPT on the synthetic
corpus; G_inter = 2 as in the paper)."""

import pytest

from conftest import print_claims, print_rows, run_once
from repro.experiments import fig10_claims, fig10_curves


@pytest.mark.benchmark(group="fig10")
def test_fig10_convergence(benchmark):
    curves = run_once(benchmark, fig10_curves, n_batches=40)
    rows = [
        {"batch": i, "serial_loss": s, "axonn_loss": a,
         "abs_diff": abs(s - a)}
        for i, (s, a) in enumerate(zip(curves["serial"], curves["axonn"]))
        if i % 5 == 0
    ]
    print_rows("Fig. 10: training loss, serial vs AxoNN (every 5th batch)",
               rows)
    claims = fig10_claims(curves)
    print_claims("Fig. 10", claims)
    assert all(claims.values())
