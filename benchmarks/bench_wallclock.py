"""Wall-clock benchmark for the fused-kernel + buffer-reuse layer (PR 1).

Times three things and writes the results to ``BENCH_PR1.json`` at the
repository root:

* **trainers** — one full ``train_batch`` of the serial reference trainer
  and of the 2x2 hybrid :class:`~repro.runtime.engine.AxoNNTrainer`
  (fp32 and mixed precision) on a 4-layer GPT;
* **kernels** — each fused op in :mod:`repro.nn.functional`
  (forward + backward) against its primitive-composition ``*_unfused``
  reference, plus the autograd-node count of both variants;
* **speedups** — the trainer times against the pre-PR baselines measured
  at the seed commit (0bb7f54, same machine class, same config), checking
  the ISSUE acceptance bar of >= 1.5x on the hybrid step.

Run directly::

    PYTHONPATH=src python benchmarks/bench_wallclock.py

``benchmarks/check_regression.py`` (and the opt-in ``pytest -m bench``
marker) re-runs this harness and compares the fresh ``min_s`` step times
against the committed ``BENCH_PR1.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Callable, Dict

import numpy as np

from repro.nn import GPTConfig, LMBatches, SyntheticCorpus, Tensor
from repro.nn import functional as F
from repro.perf import counters, counting, time_fn
from repro.runtime import AxoNNTrainer, SerialTrainer

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"

# Trainer workload: 4-layer GPT on the 2x2 grid (g_inter=2, g_data=2),
# batch 8 split into microbatches of 2 — the ISSUE's acceptance config.
CFG = GPTConfig(vocab_size=64, seq_len=32, n_layer=4, n_head=4, hidden=64,
                dropout=0.0, init_seed=7)
BATCH_SIZE = 8
MICROBATCH = 2
G_INTER, G_DATA = 2, 2
REPEATS = 5

# Step times (seconds, min over 5 repeats) measured at the seed commit
# 0bb7f54 with this exact config, before any of the PR-1 optimizations.
# The "speedups" section of BENCH_PR1.json is relative to these.
PRE_PR_BASELINE = {
    "serial": 0.0779,
    "hybrid_fp32": 0.0645,
    "hybrid_mixed": 0.0820,
}

# Kernel microbenchmark shape: one attention-sized activation block.
KB, KT, KH = 8, 32, 64


def _batches() -> LMBatches:
    corpus = SyntheticCorpus(CFG.vocab_size, 40000, seed=3)
    return LMBatches(corpus, batch_size=BATCH_SIZE, seq_len=CFG.seq_len)


def bench_trainers() -> Dict[str, Dict[str, float]]:
    """Min/mean/max train_batch wall time for each trainer variant."""
    batches = _batches()
    results: Dict[str, Dict[str, float]] = {}

    serial = SerialTrainer(CFG)
    x, y = batches.batch(0)
    results["serial"] = time_fn(
        lambda: serial.train_batch(x, y), repeats=REPEATS).as_dict()

    for name, precision in (("hybrid_fp32", "fp32"),
                            ("hybrid_mixed", "mixed")):
        trainer = AxoNNTrainer(CFG, g_inter=G_INTER, g_data=G_DATA,
                               microbatch_size=MICROBATCH,
                               precision=precision)
        results[name] = time_fn(
            lambda t=trainer: t.train_batch(x, y), repeats=REPEATS).as_dict()
    return results


def _fwd_bwd(build: Callable[[], Tensor]) -> Callable[[], None]:
    """A thunk running forward + backward through ``build``'s graph."""
    def run() -> None:
        out = build()
        out.sum().backward()
    return run


def _kernel_cases() -> Dict[str, Dict[str, Callable[[], Tensor]]]:
    """{op: {"fused": thunk, "unfused": thunk}} over a (8, 32, 64) block."""
    rng = np.random.default_rng(11)

    # Inputs are generated once; the thunks wrap them in fresh Tensors so
    # the measurement covers the op (forward + backward), not the RNG.
    act_data = rng.standard_normal((KB, KT, KH)).astype(np.float32)
    score_data = rng.standard_normal((KB, 4, KT, KT)).astype(np.float32)

    def act() -> Tensor:
        return Tensor(act_data, requires_grad=True)

    def scores() -> Tensor:
        # Attention-score block (b, nh, t, t) for the masked-softmax case.
        return Tensor(score_data, requires_grad=True)

    w = Tensor(rng.standard_normal((KH, KH)).astype(np.float32) * 0.02,
               requires_grad=True)
    b = Tensor(np.zeros(KH, dtype=np.float32), requires_grad=True)
    ln_w = Tensor(np.ones(KH, dtype=np.float32), requires_grad=True)
    ln_b = Tensor(np.zeros(KH, dtype=np.float32), requires_grad=True)
    targets = rng.integers(0, KH, size=(KB, KT))
    causal = np.triu(np.ones((KT, KT), dtype=bool), k=1)
    scale = 1.0 / np.sqrt(KH)

    def masked_softmax_unfused(x: Tensor) -> Tensor:
        return F.softmax(F.where_mask(x * scale, causal, -1e9), axis=-1)

    return {
        "softmax": {
            "fused": lambda: F.softmax(act()),
            "unfused": lambda: F.softmax_unfused(act()),
        },
        "log_softmax": {
            "fused": lambda: F.log_softmax(act()),
            "unfused": lambda: F.log_softmax_unfused(act()),
        },
        "gelu": {
            "fused": lambda: F.gelu(act()),
            "unfused": lambda: F.gelu_unfused(act()),
        },
        "layer_norm": {
            "fused": lambda: F.layer_norm(act(), ln_w, ln_b),
            "unfused": lambda: F.layer_norm_unfused(act(), ln_w, ln_b),
        },
        "cross_entropy": {
            "fused": lambda: F.cross_entropy(act(), targets),
            "unfused": lambda: F.cross_entropy_unfused(act(), targets),
        },
        "linear": {
            "fused": lambda: F.linear(act(), w, b),
            "unfused": lambda: F.linear_unfused(act(), w, b),
        },
        "masked_softmax": {
            "fused": lambda: F.masked_softmax(scores(), causal, scale=scale),
            "unfused": lambda: masked_softmax_unfused(scores()),
        },
    }


def bench_kernels() -> Dict[str, Dict[str, object]]:
    """Fused-vs-unfused forward+backward timing and node counts per op."""
    results: Dict[str, Dict[str, object]] = {}
    for op, variants in _kernel_cases().items():
        entry: Dict[str, object] = {}
        for variant, build in variants.items():
            entry[variant] = time_fn(_fwd_bwd(build),
                                     repeats=REPEATS, warmup=2).as_dict()
            with counting():
                build()
                entry[f"{variant}_graph_nodes"] = counters.get("graph_nodes")
        fused_min = entry["fused"]["min_s"]
        unfused_min = entry["unfused"]["min_s"]
        entry["speedup"] = unfused_min / fused_min
        results[op] = entry
    return results


def main() -> int:
    print(f"config: {CFG}")
    print(f"grid: g_inter={G_INTER} g_data={G_DATA} "
          f"batch={BATCH_SIZE} microbatch={MICROBATCH}")

    trainers = bench_trainers()
    speedups = {}
    for name, stats in trainers.items():
        speedups[name] = PRE_PR_BASELINE[name] / stats["min_s"]
        print(f"{name:>13}: {stats['min_s']:.4f}s min "
              f"(baseline {PRE_PR_BASELINE[name]:.4f}s, "
              f"{speedups[name]:.2f}x)")

    kernels = bench_kernels()
    for op, entry in kernels.items():
        print(f"{op:>14}: fused {entry['fused']['min_s'] * 1e6:8.1f}us  "
              f"unfused {entry['unfused']['min_s'] * 1e6:8.1f}us  "
              f"({entry['speedup']:.2f}x, "
              f"{entry['fused_graph_nodes']} vs "
              f"{entry['unfused_graph_nodes']} nodes)")

    report = {
        "config": {
            "vocab_size": CFG.vocab_size, "seq_len": CFG.seq_len,
            "n_layer": CFG.n_layer, "n_head": CFG.n_head,
            "hidden": CFG.hidden, "batch_size": BATCH_SIZE,
            "microbatch_size": MICROBATCH,
            "g_inter": G_INTER, "g_data": G_DATA, "repeats": REPEATS,
        },
        "pre_pr_baseline_s": PRE_PR_BASELINE,
        "trainers": trainers,
        "speedup_vs_pre_pr": speedups,
        "kernels": kernels,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")

    target = 1.5
    ok = speedups["hybrid_fp32"] >= target
    print(f"acceptance (hybrid fp32 >= {target}x): "
          f"{'PASS' if ok else 'FAIL'} ({speedups['hybrid_fp32']:.2f}x)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
