"""Serving benchmark for the inference layer (PR 5).

Times two things and writes the results to ``BENCH_PR5.json`` at the
repository root:

* **functional** — wall-clock serving throughput (generated tokens per
  second, min over repeats) of the continuous-batching
  :class:`~repro.serve.PipelineServer` on a small GPT, against the same
  requests served strictly one at a time (``max_active=1``) and through
  plain serial :func:`repro.nn.generate` — continuous batching must not
  be slower than the sequential policies it replaces;
* **des** — the deterministic DES twin at the paper settings: saturated
  throughput vs the analytic roofline plus light-load TTFT p50/p99.  The
  DES numbers are exactly reproducible, so they regression-gate the
  *model*, not the machine.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py

``benchmarks/check_regression.py`` compares a fresh run against the
committed ``BENCH_PR5.json`` (skipping cleanly when it is absent).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict

import numpy as np

from repro.experiments import serving_rows
from repro.nn import GPT, GPTConfig, generate
from repro.perf import time_fn
from repro.serve import PipelineServer, RequestSpec, make_requests

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"

# Functional workload: 16 mixed requests on a 2-stage pipeline of the
# 4-layer benchmark GPT (same model family as bench_wallclock).
CFG = GPTConfig(vocab_size=64, seq_len=48, n_layer=4, n_head=4, hidden=64,
                dropout=0.0, init_seed=7)
N_REQUESTS = 16
REPEATS = 3


def bench_functional() -> Dict[str, Dict[str, float]]:
    requests = make_requests(
        CFG, N_REQUESTS, RequestSpec(mean_prompt=8, mean_new_tokens=8,
                                     seed=0))
    new_tokens = sum(r.max_new_tokens for r in requests)
    model = GPT(CFG)

    def serve_batched():
        PipelineServer(CFG, g_inter=2, max_batch=4).serve(requests)

    def serve_sequential():
        PipelineServer(CFG, g_inter=2, max_batch=1,
                       max_active=1).serve(requests)

    def serve_serial():
        for req in requests:
            generate(model, req.prompt, req.max_new_tokens,
                     temperature=req.temperature, top_k=req.top_k,
                     rng=np.random.default_rng(req.seed),
                     greedy=req.greedy)

    out: Dict[str, Dict[str, float]] = {}
    for name, fn in (("batched", serve_batched),
                     ("sequential", serve_sequential),
                     ("serial_generate", serve_serial)):
        stats = time_fn(fn, repeats=REPEATS)
        out[name] = {"min_s": stats.min,
                     "tokens_per_s": new_tokens / stats.min}
        print(f"{name:>16}: {stats.min:.4f}s  "
              f"({out[name]['tokens_per_s']:.1f} tok/s)")
    return out


def bench_des() -> Dict[str, float]:
    rows = serving_rows(fast=True)
    sat = max(r["throughput_tok_s"] for r in rows)
    out = {
        "roofline_tok_s": rows[0]["roofline_tok_s"],
        "saturated_throughput_tok_s": sat,
        "roofline_fraction": sat / rows[0]["roofline_tok_s"],
        "ttft_p50_ms_light": rows[0]["ttft_p50_ms"],
        "ttft_p99_ms_light": rows[0]["ttft_p99_ms"],
        "ttft_p99_ms_overload": rows[-1]["ttft_p99_ms"],
    }
    for key, value in out.items():
        print(f"{key:>28}: {value:.2f}")
    return out


def main() -> int:
    print("== functional: PipelineServer wall-clock ==")
    functional = bench_functional()
    print("\n== DES twin (deterministic) ==")
    des = bench_des()
    report = {"functional": functional, "des": des}
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
