"""Benchmark: paper Table I — the weak-scaling transformer zoo; the
analytic parameter counts must land on 12/24/50/100 billion."""

import pytest

from conftest import print_claims, print_rows, run_once
from repro.experiments import table1_claims, table1_rows


@pytest.mark.benchmark(group="table1")
def test_table1_model_zoo(benchmark):
    rows = run_once(benchmark, table1_rows)
    print_rows("Table I: weak-scaling model configurations", rows)
    claims = table1_claims(rows)
    print_claims("Table I", claims)
    assert all(claims.values())
