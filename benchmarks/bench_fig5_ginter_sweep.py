"""Benchmark: paper Fig. 5 — time in the inter-layer parallel phase for
G_inter in {6, 12, 24, 48} (12 B model, 48 GPUs, batch 2048, mbs 1,
optimizer states removed)."""

import pytest

from conftest import print_claims, print_rows, run_once
from repro.experiments import fig5_claims, fig5_rows


@pytest.mark.benchmark(group="fig5")
def test_fig5_ginter_sweep(benchmark):
    rows = run_once(benchmark, fig5_rows)
    print_rows("Fig. 5: inter-layer phase time vs G_inter "
               "(12B, 48 GPUs, batch 2048)", rows)
    claims = fig5_claims(rows)
    print_claims("Fig. 5", claims)
    assert all(claims.values())
