"""Benchmarks: ablation studies beyond the paper's headline figures —
backend swap (Section IV-A), placement policy, pipeline_limit, flushing
schedule, and offload bucket size."""

import pytest

from conftest import print_rows, run_once
from repro.experiments import (
    backend_ablation,
    bucket_size_ablation,
    pipeline_limit_ablation,
    placement_ablation,
    schedule_ablation,
)


@pytest.mark.benchmark(group="ablations")
def test_backend_ablation(benchmark):
    rows = run_once(benchmark, backend_ablation)
    print_rows("Ablation: AxoNN pipeline with MPI vs NCCL p2p", rows)
    by = {r["p2p_backend"]: r for r in rows}
    assert by["mpi"]["pipeline_s"] < by["nccl"]["pipeline_s"]


@pytest.mark.benchmark(group="ablations")
def test_placement_ablation(benchmark):
    rows = run_once(benchmark, placement_ablation)
    print_rows("Ablation: grid placement policy", rows)


@pytest.mark.benchmark(group="ablations")
def test_pipeline_limit_ablation(benchmark):
    rows = run_once(benchmark, pipeline_limit_ablation)
    print_rows("Ablation: pipeline_limit sweep", rows)
    times = [r["pipeline_s"] for r in rows]
    assert times[0] == max(times)


@pytest.mark.benchmark(group="ablations")
def test_schedule_ablation(benchmark):
    rows = run_once(benchmark, schedule_ablation)
    print_rows("Ablation: 1F1B vs GPipe (DeepSpeed baseline)", rows)


@pytest.mark.benchmark(group="ablations")
def test_bucket_size_ablation(benchmark):
    rows = run_once(benchmark, bucket_size_ablation)
    print_rows("Ablation: offload bucket-size sweep", rows)


@pytest.mark.benchmark(group="ablations")
def test_scheduling_jitter_ablation(benchmark):
    from repro.experiments import scheduling_jitter_ablation
    rows = run_once(benchmark, scheduling_jitter_ablation)
    print_rows("Ablation: message-driven vs static 1F1B under compute "
               "jitter (same MPI backend)", rows)
    assert all(0.8 < r["ratio"] < 1.25 for r in rows)


@pytest.mark.benchmark(group="ablations")
def test_full_grid_validation(benchmark):
    from repro.experiments import full_grid_validation
    rows = run_once(benchmark, full_grid_validation)
    print_rows("Validation: one-row symmetry vs full-grid simulation", rows)
    assert all(r["relative_gap"] < 0.05 for r in rows)
