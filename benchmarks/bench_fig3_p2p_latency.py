"""Benchmark: paper Fig. 3 — point-to-point latency, MPI vs NCCL,
intra-node vs inter-node, over the OSU message-size sweep."""

import pytest

from conftest import print_claims, print_rows, run_once
from repro.experiments import fig3_claims, fig3_rows


@pytest.mark.benchmark(group="fig3")
def test_fig3_p2p_latency(benchmark):
    rows = run_once(benchmark, fig3_rows)
    for r in rows:
        r["latency_us"] = r.pop("latency_s") * 1e6
    print_rows("Fig. 3: osu_latency ping-pong (one-way, microseconds)", rows)
    claims = fig3_claims(fig3_rows())
    print_claims("Fig. 3", claims)
    assert all(claims.values())
