"""Benchmark: paper Fig. 9 — weak scaling of AxoNN vs DeepSpeed vs
Megatron-LM: estimated training time (days, left plot) and percentage of
peak half-precision throughput (right plot) for the 12/24/50/100 B models
on 48/96/192/384 GPUs at batch size 16384 (Table II configurations)."""

import pytest

from conftest import print_claims, print_rows, run_once
from repro.experiments import fig9_claims, weak_scaling_rows


@pytest.mark.benchmark(group="fig9")
def test_fig9_weak_scaling(benchmark):
    rows = run_once(benchmark, weak_scaling_rows)
    print_rows("Fig. 9: weak scaling (training days + % of peak)", rows)
    claims = fig9_claims(rows)
    print_claims("Fig. 9", claims)
    assert all(claims.values())
