"""Benchmark: paper Table II — per-framework hyperparameter tuning under
the 16 GB memory-feasibility constraint, for all four model scales.

The printed rows carry both the tuner's selection and the paper's values;
the claim checklist asserts the paper's qualitative observations (AxoNN
prefers far more data parallelism than Megatron-LM and is the fastest
tuned framework)."""

import pytest

from conftest import print_claims, print_rows, run_once
from repro.experiments import table2_claims, table2_rows


@pytest.mark.benchmark(group="table2")
def test_table2_tuning(benchmark):
    rows = run_once(benchmark, table2_rows,
                    models=("12B", "24B", "50B", "100B"))
    print_rows("Table II: tuned hyperparameters (ours vs paper)", rows)
    claims = table2_claims(rows)
    print_claims("Table II", claims)
    assert all(claims.values())
