"""Performance-regression gate for the trainer step times and serving
throughput.

Re-measures the trainer section of :mod:`bench_wallclock` and compares
each variant's ``min_s`` against the **best** time recorded for that
variant across *every* committed ``BENCH_PR*.json`` at the repo root
that carries a ``trainers`` section (a later PR may have made a variant
faster; the gate must hold the high-water mark, not the oldest file).
The winning baseline file is printed per variant.  When
``BENCH_PR5.json`` is present it also re-measures the
:mod:`bench_serving` functional throughput (tokens/s) and the
deterministic DES tail latency, and when ``BENCH_PR6.json`` is present
it re-measures one process-backend step (:mod:`bench_scaling`) and —
only on machines with >= 4 cores — asserts the >= 2x scaling bar at 4
ranks.  The scaling section is skipped (with a message) when this
machine's core count differs from the one the baseline was recorded
on, since process-backend times are not comparable across core counts.
When ``BENCH_PR10.json`` is present the elastic-fleet DES is re-run and
gated: the diurnal p99 TTFTs and replica-seconds must hold, and the
structural acceptance bars — both elastic policies >= 25% cheaper than
static at the same met SLO, disaggregated beating unified p99 at equal
hardware — are re-asserted on the fresh rows.  Exits nonzero when any
metric regressed by more than the
threshold (default 20%), so CI can fail the build::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --threshold 0.1

The opt-in ``pytest -m bench`` marker (``tests/test_bench_regression.py``)
runs this script as a subprocess; it is excluded from the default test
run because a timing gate on a loaded machine is noise, not signal.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_fleet  # noqa: E402  (needs the path tweak above)
import bench_scaling  # noqa: E402
import bench_schedules  # noqa: E402
import bench_serving  # noqa: E402
import bench_wallclock  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent


def check_serving(baseline_path: Path, threshold: float) -> bool:
    """Compare fresh serving numbers against ``BENCH_PR5.json``.

    Returns True when a regression was detected.  Throughput must not
    drop by more than ``threshold``; the DES p99 TTFT (deterministic in
    the model, so any change is a model change) must not grow by more
    than ``threshold``.
    """
    if not baseline_path.exists():
        print(f"no serving baseline found at {baseline_path}; nothing to "
              f"compare against.\nRun `PYTHONPATH=src python "
              f"benchmarks/bench_serving.py` to record one.")
        return False
    baseline = json.loads(baseline_path.read_text())

    failed = False
    fresh = bench_serving.bench_functional()
    for name, stats in fresh.items():
        base = baseline["functional"][name]["tokens_per_s"]
        ratio = stats["tokens_per_s"] / base
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            failed = True
        print(f"{name:>16}: {stats['tokens_per_s']:.1f} tok/s vs baseline "
              f"{base:.1f} tok/s ({ratio:.2f}x)  {status}")

    des = bench_serving.bench_des()
    for key in ("saturated_throughput_tok_s", "ttft_p99_ms_light"):
        base, now = baseline["des"][key], des[key]
        worse = now / base if key.startswith("ttft") else base / now
        status = "ok"
        if worse > 1.0 + threshold:
            status = "REGRESSION"
            failed = True
        print(f"{key:>28}: {now:.2f} vs baseline {base:.2f}  {status}")
    return failed


def check_schedules(baseline_path: Path, threshold: float) -> bool:
    """Compare fresh schedule-DES numbers against ``BENCH_PR9.json``.

    Returns True when a regression was detected.  The simulation is
    deterministic (no jitter), so makespans growing past ``threshold``
    means the cost model or a schedule changed.  The PR's structural
    acceptance bar — interleaved and zero-bubble beat 1F1B's bubble
    fraction at depth 4 — is re-asserted on the fresh numbers.
    """
    if not baseline_path.exists():
        print(f"no schedule baseline found at {baseline_path}; nothing to "
              f"compare against.\nRun `PYTHONPATH=src python "
              f"benchmarks/bench_schedules.py` to record one.")
        return False
    baseline = json.loads(baseline_path.read_text())["schedules"]

    failed = False
    fresh = bench_schedules.bench_schedules()
    for stages, per_sched in fresh.items():
        for name, stats in per_sched.items():
            base = baseline.get(stages, {}).get(name)
            if base is None:
                print(f"S={stages} {name:>12}: new schedule, no baseline")
                continue
            ratio = stats["makespan_s"] / base["makespan_s"]
            status = "ok"
            if ratio > 1.0 + threshold:
                status = "REGRESSION"
                failed = True
            print(f"S={stages} {name:>12}: makespan "
                  f"{stats['makespan_s']:.4f}s vs baseline "
                  f"{base['makespan_s']:.4f}s ({ratio:.2f}x)  {status}")
    at4 = fresh.get("4", {})
    if at4:
        bar = at4["1f1b"]["bubble_fraction"]
        for name in ("interleaved", "zb-h1"):
            ok = name in at4 and at4[name]["bubble_fraction"] < bar
            print(f"acceptance: {name} bubble beats 1f1b ({bar:.4f}) at "
                  f"S=4: {'ok' if ok else 'REGRESSION'}")
            failed = failed or not ok
    return failed


def check_fleet(baseline_path: Path, threshold: float) -> bool:
    """Compare fresh elastic-fleet numbers against ``BENCH_PR10.json``.

    Returns True when a regression was detected.  The fleet DES is
    deterministic, so diurnal/flash p99 TTFT or replica-seconds drifting
    past ``threshold`` means the cost model or a policy changed.  On top
    of the drift gate, the PR's structural bars are re-asserted on the
    fresh rows: under the diurnal trace every elastic policy must pay
    <= 75% of static's replica-seconds while holding the p99 SLO static
    holds, and the disaggregated split must beat the unified pool's p99
    TTFT at equal hardware.
    """
    if not baseline_path.exists():
        print(f"no fleet baseline found at {baseline_path}; nothing to "
              f"compare against.\nRun `PYTHONPATH=src python "
              f"benchmarks/bench_fleet.py` to record one.")
        return False
    baseline = json.loads(baseline_path.read_text())["fleet"]

    failed = False
    fresh = bench_fleet.bench_fleet()
    for section in ("diurnal", "flash"):
        base_rows = {r["policy"]: r for r in baseline.get(section, [])}
        for row in fresh[section]:
            base = base_rows.get(row["policy"])
            if base is None:
                print(f"{section} {row['policy']:>12}: new policy, "
                      f"no baseline")
                continue
            for key in ("ttft_p99_ms", "replica_seconds"):
                ratio = row[key] / base[key] if base[key] else 1.0
                status = "ok"
                if ratio > 1.0 + threshold:
                    status = "REGRESSION"
                    failed = True
                print(f"{section} {row['policy']:>12} {key}: "
                      f"{row[key]:.1f} vs baseline {base[key]:.1f} "
                      f"({ratio:.2f}x)  {status}")

    # structural acceptance bars, on the fresh rows
    from repro.experiments import AUTOSCALE_SLO_S
    slo_ms = AUTOSCALE_SLO_S * 1e3
    by_policy = {r["policy"]: r for r in fresh["diurnal"]}
    static = by_policy["static-peak"]
    for name in ("reactive", "predictive"):
        row = by_policy[name]
        holds = (static["ttft_p99_ms"] > slo_ms
                 or row["ttft_p99_ms"] <= slo_ms)
        cheaper = row["replica_seconds"] <= 0.75 * static["replica_seconds"]
        ok = holds and cheaper
        print(f"acceptance: {name} meets the SLO static meets at <= 75% "
              f"of its replica-seconds: {'ok' if ok else 'REGRESSION'}")
        failed = failed or not ok
    uni = next(r for r in fresh["disaggregation"]
               if r["policy"] == "unified")
    dis = next(r for r in fresh["disaggregation"]
               if r["policy"] == "disaggregated")
    ok = dis["ttft_p99_ms"] < uni["ttft_p99_ms"]
    print(f"acceptance: disaggregated p99 {dis['ttft_p99_ms']:.1f}ms beats "
          f"unified {uni['ttft_p99_ms']:.1f}ms at equal hardware: "
          f"{'ok' if ok else 'REGRESSION'}")
    failed = failed or not ok
    ok = fresh["failover"]["lost"] == 0
    print(f"acceptance: failover loses nothing "
          f"(lost={fresh['failover']['lost']:.0f}): "
          f"{'ok' if ok else 'REGRESSION'}")
    failed = failed or not ok
    return failed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max allowed fractional step-time regression")
    parser.add_argument("--serving-baseline", type=Path,
                        default=bench_serving.OUTPUT,
                        help="committed BENCH_PR5.json to compare against")
    parser.add_argument("--scaling-baseline", type=Path,
                        default=bench_scaling.OUTPUT,
                        help="committed BENCH_PR6.json to compare against")
    parser.add_argument("--schedules-baseline", type=Path,
                        default=bench_schedules.OUTPUT,
                        help="committed BENCH_PR9.json to compare against")
    parser.add_argument("--fleet-baseline", type=Path,
                        default=bench_fleet.OUTPUT,
                        help="committed BENCH_PR10.json to compare against")
    parser.add_argument("--bench-root", type=Path, default=REPO_ROOT,
                        help="directory globbed for BENCH_PR*.json trainer "
                             "baselines")
    args = parser.parse_args(argv)

    failed = check_trainers(args.threshold, args.bench_root)
    failed = check_serving(args.serving_baseline, args.threshold) or failed
    failed = check_scaling(args.scaling_baseline, args.threshold) or failed
    failed = check_schedules(args.schedules_baseline,
                             args.threshold) or failed
    failed = check_fleet(args.fleet_baseline, args.threshold) or failed
    return 1 if failed else 0


def best_trainer_baselines(root: Path = REPO_ROOT) -> Dict[str, Tuple[float, str]]:
    """Best ``min_s`` per trainer variant across all ``BENCH_PR*.json``.

    Returns ``{variant: (min_s, filename)}`` — the fastest time any
    committed bench file ever recorded for that variant and which file
    holds it.  Files without a ``trainers`` section (e.g. the serving
    baseline) are skipped.
    """
    best: Dict[str, Tuple[float, str]] = {}
    for path in sorted(root.glob("BENCH_PR*.json")):
        try:
            trainers = json.loads(path.read_text()).get("trainers")
        except (json.JSONDecodeError, OSError):
            continue
        if not isinstance(trainers, dict):
            continue
        for name, stats in trainers.items():
            min_s = stats.get("min_s")
            if min_s is None:
                continue
            if name not in best or min_s < best[name][0]:
                best[name] = (min_s, path.name)
    return best


def check_trainers(threshold: float, root: Path = REPO_ROOT) -> bool:
    """Compare fresh trainer step times against the best committed time.

    The baseline per variant is the minimum ``min_s`` across every
    ``BENCH_PR*.json`` carrying a ``trainers`` section; the file that
    holds the winning time is printed alongside each comparison.
    """
    best = best_trainer_baselines(root)
    if not best:
        # No baseline is not a regression — a fresh checkout (or CI cache
        # miss) has nothing to compare against.  Say so clearly and pass.
        print(f"no trainer baseline found (no BENCH_PR*.json with a "
              f"trainers section under {root}); nothing to compare "
              f"against.\nRun `PYTHONPATH=src python "
              f"benchmarks/bench_wallclock.py` to record one.")
        return False

    fresh = bench_wallclock.bench_trainers()
    failed = False
    for name, stats in fresh.items():
        if name not in best:
            print(f"{name:>13}: {stats['min_s']:.4f}s (no baseline; "
                  f"recorded for future gates)")
            continue
        base_min, source = best[name]
        ratio = stats["min_s"] / base_min
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            failed = True
        print(f"{name:>13}: {stats['min_s']:.4f}s vs best baseline "
              f"{base_min:.4f}s from {source} ({ratio:.2f}x)  {status}")
    return failed


def check_scaling(baseline_path: Path, threshold: float) -> bool:
    """Gate the process-backend numbers against ``BENCH_PR6.json``.

    Re-measures one 2-rank process-backend step and compares it with the
    committed time.  Process-backend step time is a function of how many
    workers actually run in parallel, so the whole section is comparable
    only when this machine has the same core count the baseline was
    recorded on — otherwise it is skipped with a message rather than
    gating against an apples-to-oranges bar (a 1-core baseline looks
    like a huge "speedup" on any multi-core box, and vice versa).  The
    ISSUE's >= 2x-at-4-ranks bar is additionally asserted only when both
    machines have >= 4 cores — on fewer cores the workers time-slice one
    CPU and the bar is physically unattainable, so it is reported as not
    measurable instead of faked.
    """
    if not baseline_path.exists():
        print(f"no scaling baseline found at {baseline_path}; nothing to "
              f"compare against.\nRun `PYTHONPATH=src python "
              f"benchmarks/bench_scaling.py` to record one.")
        return False
    baseline = json.loads(baseline_path.read_text())

    n_cores = bench_scaling.cores()
    recorded_cores = int(baseline.get("cores", 1))
    if n_cores != recorded_cores:
        print(f"{'scaling':>13}: skipped — baseline "
              f"{baseline_path.name} was recorded on {recorded_cores} "
              f"core(s), this machine has {n_cores}; process-backend "
              f"times are not comparable across core counts.  Re-record "
              f"with `PYTHONPATH=src python benchmarks/bench_scaling.py` "
              f"to gate on this machine.")
        return False

    failed = False
    fresh = bench_scaling.bench_backend("process", 2)
    base_min = baseline["scaling"]["process"]["2"]["min_s"]
    ratio = fresh["min_s"] / base_min
    status = "ok"
    if ratio > 1.0 + threshold:
        status = "REGRESSION"
        failed = True
    print(f"{'process x2':>13}: {fresh['min_s']:.4f}s vs baseline "
          f"{base_min:.4f}s ({ratio:.2f}x)  {status}")

    if n_cores >= 4 and recorded_cores >= 4:
        speedup = baseline["speedup_vs_1rank"]["process"]["4"]
        ok = speedup >= 2.0
        if not ok:
            failed = True
        print(f"{'scaling bar':>13}: process x4 {speedup:.2f}x vs x1 "
              f"(target >= 2.0x)  {'ok' if ok else 'REGRESSION'}")
    else:
        print(f"{'scaling bar':>13}: not measurable (recorded on "
              f"{recorded_cores} core(s), running on {n_cores}); "
              f"honest numbers only")
    return failed


if __name__ == "__main__":
    sys.exit(main())
