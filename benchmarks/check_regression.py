"""Performance-regression gate for the trainer step times.

Re-measures the trainer section of :mod:`bench_wallclock` and compares
each variant's ``min_s`` against the committed ``BENCH_PR1.json``
baseline.  Exits nonzero when any step time regressed by more than the
threshold (default 20%), so CI can fail the build::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --threshold 0.1

The opt-in ``pytest -m bench`` marker (``tests/test_bench_regression.py``)
runs this script as a subprocess; it is excluded from the default test
run because a timing gate on a loaded machine is noise, not signal.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_wallclock  # noqa: E402  (needs the path tweak above)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path,
                        default=bench_wallclock.OUTPUT,
                        help="committed BENCH_PR1.json to compare against")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max allowed fractional step-time regression")
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        # No baseline is not a regression — a fresh checkout (or CI cache
        # miss) has nothing to compare against.  Say so clearly and pass.
        print(f"no baseline found at {args.baseline}; nothing to compare "
              f"against.\nRun `PYTHONPATH=src python "
              f"benchmarks/bench_wallclock.py` to record one.")
        return 0
    baseline = json.loads(args.baseline.read_text())["trainers"]

    fresh = bench_wallclock.bench_trainers()
    failed = False
    for name, stats in fresh.items():
        base_min = baseline[name]["min_s"]
        ratio = stats["min_s"] / base_min
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSION"
            failed = True
        print(f"{name:>13}: {stats['min_s']:.4f}s vs baseline "
              f"{base_min:.4f}s ({ratio:.2f}x)  {status}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
