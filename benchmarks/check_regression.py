"""Performance-regression gate for the trainer step times and serving
throughput.

Re-measures the trainer section of :mod:`bench_wallclock` and compares
each variant's ``min_s`` against the committed ``BENCH_PR1.json``
baseline; when ``BENCH_PR5.json`` is present it also re-measures the
:mod:`bench_serving` functional throughput (tokens/s) and the
deterministic DES tail latency.  Exits nonzero when any metric regressed
by more than the threshold (default 20%), so CI can fail the build::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --threshold 0.1

The opt-in ``pytest -m bench`` marker (``tests/test_bench_regression.py``)
runs this script as a subprocess; it is excluded from the default test
run because a timing gate on a loaded machine is noise, not signal.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_serving  # noqa: E402  (needs the path tweak above)
import bench_wallclock  # noqa: E402


def check_serving(baseline_path: Path, threshold: float) -> bool:
    """Compare fresh serving numbers against ``BENCH_PR5.json``.

    Returns True when a regression was detected.  Throughput must not
    drop by more than ``threshold``; the DES p99 TTFT (deterministic in
    the model, so any change is a model change) must not grow by more
    than ``threshold``.
    """
    if not baseline_path.exists():
        print(f"no serving baseline found at {baseline_path}; nothing to "
              f"compare against.\nRun `PYTHONPATH=src python "
              f"benchmarks/bench_serving.py` to record one.")
        return False
    baseline = json.loads(baseline_path.read_text())

    failed = False
    fresh = bench_serving.bench_functional()
    for name, stats in fresh.items():
        base = baseline["functional"][name]["tokens_per_s"]
        ratio = stats["tokens_per_s"] / base
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            failed = True
        print(f"{name:>16}: {stats['tokens_per_s']:.1f} tok/s vs baseline "
              f"{base:.1f} tok/s ({ratio:.2f}x)  {status}")

    des = bench_serving.bench_des()
    for key in ("saturated_throughput_tok_s", "ttft_p99_ms_light"):
        base, now = baseline["des"][key], des[key]
        worse = now / base if key.startswith("ttft") else base / now
        status = "ok"
        if worse > 1.0 + threshold:
            status = "REGRESSION"
            failed = True
        print(f"{key:>28}: {now:.2f} vs baseline {base:.2f}  {status}")
    return failed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path,
                        default=bench_wallclock.OUTPUT,
                        help="committed BENCH_PR1.json to compare against")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max allowed fractional step-time regression")
    parser.add_argument("--serving-baseline", type=Path,
                        default=bench_serving.OUTPUT,
                        help="committed BENCH_PR5.json to compare against")
    args = parser.parse_args(argv)

    failed = check_trainers(args.baseline, args.threshold)
    failed = check_serving(args.serving_baseline, args.threshold) or failed
    return 1 if failed else 0


def check_trainers(baseline_path: Path, threshold: float) -> bool:
    """Compare fresh trainer step times against ``BENCH_PR1.json``."""
    if not baseline_path.exists():
        # No baseline is not a regression — a fresh checkout (or CI cache
        # miss) has nothing to compare against.  Say so clearly and pass.
        print(f"no baseline found at {baseline_path}; nothing to compare "
              f"against.\nRun `PYTHONPATH=src python "
              f"benchmarks/bench_wallclock.py` to record one.")
        return False
    baseline = json.loads(baseline_path.read_text())["trainers"]

    fresh = bench_wallclock.bench_trainers()
    failed = False
    for name, stats in fresh.items():
        base_min = baseline[name]["min_s"]
        ratio = stats["min_s"] / base_min
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            failed = True
        print(f"{name:>13}: {stats['min_s']:.4f}s vs baseline "
              f"{base_min:.4f}s ({ratio:.2f}x)  {status}")
    return failed


if __name__ == "__main__":
    sys.exit(main())
