"""Benchmark: paper Fig. 11 — strong scaling of the 12 B model from 48 to
384 GPUs with the batch size scaling 4096 -> 32768 (G_data grows, other
Table II hyperparameters held)."""

import pytest

from conftest import print_claims, print_rows, run_once
from repro.experiments import fig11_claims, strong_scaling_rows


@pytest.mark.benchmark(group="fig11")
def test_fig11_strong_scaling(benchmark):
    rows = run_once(benchmark, strong_scaling_rows)
    print_rows("Fig. 11: strong scaling (12B model)", rows)
    claims = fig11_claims(rows)
    print_claims("Fig. 11", claims)
    assert all(claims.values())
