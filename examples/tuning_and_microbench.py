#!/usr/bin/env python3
"""Backend microbenchmarks (Figs. 3-4) and the Table II tuning search.

Part 1 regenerates the OSU-style measurements that motivated AxoNN's
backend split — MPI for point-to-point, NCCL for collectives.

Part 2 runs the hyperparameter tuner per framework for a chosen model
scale, reporting the selected (microbatch, G_intra, G_inter, G_data)
against the paper's Table II values.

Run:  python examples/tuning_and_microbench.py [--model 12B]
"""

import argparse

from repro.cluster import MB
from repro.core import WEAK_SCALING_MODELS
from repro.experiments import MODEL_GPUS, table2_row
from repro.comm import osu_allreduce, osu_latency
from repro.tuning import tune_axonn, tune_baseline


def part1_microbench() -> None:
    print("Fig. 3 — point-to-point latency (one-way), region of interest:")
    sizes = [1 * MB, 4 * MB, 16 * MB, 50 * MB]
    print(f"{'bytes':>10} {'mpi intra':>10} {'nccl intra':>11} "
          f"{'mpi inter':>10} {'nccl inter':>11}")
    series = {
        (backend, intra): {r["bytes"]: r["latency_s"]
                           for r in osu_latency(backend, intra, sizes)}
        for backend in ("mpi", "nccl") for intra in (True, False)
    }
    for b in sizes:
        print(f"{b:>10} "
              f"{series[('mpi', True)][b] * 1e3:>9.2f}ms "
              f"{series[('nccl', True)][b] * 1e3:>10.2f}ms "
              f"{series[('mpi', False)][b] * 1e3:>9.2f}ms "
              f"{series[('nccl', False)][b] * 1e3:>10.2f}ms")
    print("  -> MPI wins intra-node p2p; inter-node nearly identical.\n")

    print("Fig. 4 — all-reduce latency (12 GPUs / two nodes):")
    sizes = [16 * MB, 256 * MB, 1024 * MB]
    mpi = {r["bytes"]: r["latency_s"] for r in osu_allreduce("mpi", 12, sizes)}
    nccl = {r["bytes"]: r["latency_s"]
            for r in osu_allreduce("nccl", 12, sizes)}
    for b in sizes:
        print(f"{b:>11} B: mpi {mpi[b]:7.3f}s   nccl {nccl[b]:7.3f}s")
    print("  -> NCCL wins collectives outright.\n")


def part2_tuning(model: str) -> None:
    spec = WEAK_SCALING_MODELS[model]
    gpus = MODEL_GPUS[model]
    print(f"Table II — tuning {model} on {gpus} GPUs, batch 16384 "
          f"(memory-feasible candidates only):")
    print(f"{'framework':>10} {'mbs':>4} {'G_intra':>8} {'G_inter':>8} "
          f"{'G_data':>7} {'batch time':>11} {'paper (mbs,Gi,Gp,Gd)':>22}")
    for framework in ("axonn", "deepspeed", "megatron"):
        if framework == "axonn":
            result = tune_axonn(spec, gpus, 16384, refine_top=0)
        else:
            result = tune_baseline(spec, gpus, 16384, framework,
                                   refine_top=0)
        row = result.as_row()
        paper = table2_row(model, framework)
        print(f"{framework:>10} {row['mbs']:>4} "
              f"{str(row['g_intra'] or '-'):>8} {row['g_inter']:>8} "
              f"{row['g_data']:>7} {row['batch_time_s']:>10.1f}s "
              f"{str((paper.microbatch, paper.g_intra or '-', paper.g_inter, paper.g_data)):>22}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="12B",
                        choices=list(WEAK_SCALING_MODELS))
    args = parser.parse_args()
    part1_microbench()
    part2_tuning(args.model)
