#!/usr/bin/env python3
"""Reproduce the paper's Fig. 10: serial vs parallel loss curves.

The paper validates AxoNN by training GPT-2 small on wikitext-103 with
plain PyTorch on one GPU and with AxoNN on 12 GPUs (G_inter = 2), showing
the two loss curves coincide.  We run the same experiment on the functional
substrate: a scaled-down GPT on the seeded synthetic corpus, serial vs a
2 x 3 AxoNN grid, and render both curves as an ASCII chart.

Run:  python examples/validate_convergence.py
"""

import numpy as np

from repro.experiments import fig10_claims, fig10_curves


def ascii_chart(series: dict, width: int = 70, height: int = 16) -> str:
    """Plot multiple loss curves in the terminal (one mark per series)."""
    all_vals = np.concatenate([np.asarray(v) for v in series.values()])
    lo, hi = all_vals.min(), all_vals.max()
    if hi <= lo:
        hi = lo + 1.0
    n = max(len(v) for v in series.values())
    grid = [[" "] * width for _ in range(height)]
    marks = ["*", "o", "+", "x"]
    for (name, values), mark in zip(series.items(), marks):
        for i, v in enumerate(values):
            col = int(i / max(1, n - 1) * (width - 1))
            row = int((hi - v) / (hi - lo) * (height - 1))
            cell = grid[row][col]
            grid[row][col] = "@" if cell not in (" ", mark) else mark
    lines = [f"{hi:8.4f} ┤" + "".join(grid[0])]
    lines += ["         │" + "".join(row) for row in grid[1:-1]]
    lines.append(f"{lo:8.4f} ┤" + "".join(grid[-1]))
    lines.append("          " + "└" + "─" * (width - 1))
    legend = "   ".join(f"{m} {name}" for (name, _), m
                        in zip(series.items(), marks))
    lines.append(f"          batches 0..{n - 1}    ({legend}; @ = overlap)")
    return "\n".join(lines)


def main() -> None:
    print("Training a scaled-down GPT twice on identical data:")
    print("  1. serial single-GPU reference")
    print("  2. AxoNN, G_inter=2 x G_data=3 (6 ranks), microbatch 2\n")
    curves = fig10_curves(n_batches=60, batch_size=12, g_inter=2, g_data=3,
                          microbatch_size=2)
    print(ascii_chart(curves))

    diffs = np.abs(np.asarray(curves["serial"])
                   - np.asarray(curves["axonn"]))
    print(f"\nmax |serial - axonn| loss difference: {diffs.max():.2e}")
    claims = fig10_claims(curves)
    for name, ok in claims.items():
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}")


if __name__ == "__main__":
    main()
