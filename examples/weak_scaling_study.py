#!/usr/bin/env python3
"""Reproduce the paper's weak-scaling comparison (Fig. 9) on the simulated
Summit: AxoNN vs DeepSpeed vs Megatron-LM training 12-100 B parameter
transformers on 48-384 GPUs at batch size 16384.

Each framework runs its tuned Table II configuration on the discrete-event
cluster model; the script prints the estimated training time (Eq. 2, days
for 300 B tokens) and the percentage of peak half-precision throughput
(Eq. 3) exactly as the paper reports them.

Run:  python examples/weak_scaling_study.py [--models 12B 24B]
"""

import argparse

from repro.experiments import fig9_claims, weak_scaling_rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="+",
                        default=["12B", "24B", "50B", "100B"],
                        choices=["12B", "24B", "50B", "100B"])
    parser.add_argument("--batch-size", type=int, default=16384)
    args = parser.parse_args()

    print(f"Weak scaling, batch size {args.batch_size} "
          f"(each framework at its Table II configuration)\n")
    rows = weak_scaling_rows(models=args.models,
                             batch_size=args.batch_size)
    header = (f"{'model':>6} {'GPUs':>5} {'framework':>10} "
              f"{'batch time':>11} {'train days':>11} {'% peak':>7}")
    print(header)
    print("-" * len(header))
    for r in rows:
        print(f"{r['model']:>6} {r['gpus']:>5} {r['framework']:>10} "
              f"{r['batch_time_s']:>10.1f}s {r['training_days']:>11.1f} "
              f"{r['pct_peak']:>7.1f}")

    print("\nPaper-claim checklist:")
    for name, ok in fig9_claims(rows).items():
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}")

    ax = {r["model"]: r for r in rows if r["framework"] == "axonn"}
    ds = {r["model"]: r for r in rows if r["framework"] == "deepspeed"}
    for model in args.models:
        saved = ds[model]["training_days"] - ax[model]["training_days"]
        print(f"  {model}: AxoNN saves {saved:.0f} days of training vs "
              f"DeepSpeed (paper: 22-37 days)")


if __name__ == "__main__":
    main()
