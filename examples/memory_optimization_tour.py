#!/usr/bin/env python3
"""Tour of AxoNN's memory optimizations (paper Section V).

Walks through the three pieces on both substrates:

1. the ``20 phi -> 4 phi + 16 bsize`` byte accounting and the G_inter
   reduction it unlocks (simulated cluster, Fig. 6);
2. the all-reduce/optimizer overlap and the coarsening factor k (Fig. 8),
   with the two-stream ASCII profile (Fig. 7);
3. the *functional* bucketed CPU-offload optimizer: numerically identical
   to monolithic AdamW while touching only 16*bsize device bytes.

Run:  python examples/memory_optimization_tour.py
"""

import numpy as np

from repro.experiments import (
    fig6_rows,
    fig7_profile,
    fig8_rows,
    memory_savings_summary,
)
from repro.nn import GPT, GPTConfig, LossScaler, MixedPrecisionAdamW
from repro.runtime import BucketedOffloadAdamW


def part1_memory_accounting() -> None:
    print("=" * 72)
    print("1. Memory accounting (Section V-B)")
    print("=" * 72)
    s = memory_savings_summary()
    print(f"  per-GPU state, baseline (20 phi):  "
          f"{s['state_bytes_per_gpu_baseline_gb']:7.2f} GB")
    print(f"  per-GPU state, memopt (4 phi+16b): "
          f"{s['state_bytes_per_gpu_memopt_gb']:7.2f} GB  "
          f"({s['state_saving_ratio']:.1f}x saving; paper: ~5x)")
    print(f"  cluster total without memopt:      "
          f"{s['cluster_total_without_gb']:7.1f} GB  (paper: 520 GB)")
    print(f"  cluster total with memopt:         "
          f"{s['cluster_total_with_gb']:7.1f} GB  (paper: 130.24 GB)\n")

    print("  Fig. 6 — what the saved memory buys (G_inter 24 -> 6):")
    for r in fig6_rows():
        print(f"    {r['variant']:>16}: pipeline {r['pipeline_s']:6.2f}s  "
              f"all-reduce {r['allreduce_s']:5.2f}s  "
              f"optimizer {r['optimizer_s']:5.2f}s  "
              f"total {r['total_s']:6.2f}s")
    print()


def part2_overlap() -> None:
    print("=" * 72)
    print("2. Overlapping the all-reduce with the optimizer (Section V-C)")
    print("=" * 72)
    print("  Fig. 8 — combined phase time vs coarsening factor k:")
    for r in fig8_rows():
        print(f"    {r['label']:>12}: {r['combined_s']:.3f}s")
    profile = fig7_profile(batch_size=96)
    print("\n  Fig. 7 — two-stream profile "
          "(a = all-reduce chunk, o = optimizer bucket):")
    for line in profile["ascii"].splitlines():
        if "gpu0" in line:
            print("   " + line)
    print(f"    optimizer work hidden under the all-reduce: "
          f"{profile['overlap_s']:.3f}s of "
          f"{profile['optimizer_busy_s']:.3f}s\n")


def part3_functional_offload() -> None:
    print("=" * 72)
    print("3. Functional bucketed CPU-offload optimizer")
    print("=" * 72)
    cfg = GPTConfig(vocab_size=32, seq_len=8, n_layer=2, n_head=2,
                    hidden=16, init_seed=3)
    reference = GPT(cfg)
    offloaded = GPT(cfg)  # identical weights by construction
    scaler = LossScaler(init_scale=64, dynamic=False)
    mono = MixedPrecisionAdamW(reference.parameters(), lr=1e-2,
                               scaler=scaler)
    bucketed = BucketedOffloadAdamW(offloaded.parameters(),
                                    bucket_size=1000, lr=1e-2,
                                    scaler=LossScaler(init_scale=64,
                                                      dynamic=False))
    rng = np.random.default_rng(0)
    for step in range(5):
        grads = [(rng.standard_normal(p.data.shape) * 64).astype(np.float16)
                 for p in reference.parameters()]
        mono.step(grads)
        bucketed.step(np.concatenate([g.reshape(-1) for g in grads]))
    drift = max(
        np.abs(a.data - b.data).max()
        for a, b in zip(reference.parameters(), offloaded.parameters())
    )
    print(f"  parameters: {reference.num_parameters():,}; "
          f"bucket: 1000 params "
          f"({bucketed.num_buckets} buckets/step)")
    print(f"  device bytes for optimizer state: "
          f"{bucketed.device_optimizer_bytes():,} "
          f"(vs {20 * reference.num_parameters():,} resident)")
    print(f"  host<->device traffic per step: "
          f"{bucketed.h2d_bytes // bucketed.steps:,} B each way")
    print(f"  max parameter drift vs monolithic AdamW after 5 steps: "
          f"{drift:.2e}  (bit-level agreement)\n")


if __name__ == "__main__":
    part1_memory_accounting()
    part2_overlap()
    part3_functional_offload()
