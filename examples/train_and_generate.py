#!/usr/bin/env python3
"""Full training lifecycle on the parallel runtime: train with AxoNN's
mixed-precision + CPU-offload configuration, checkpoint, restore, evaluate
held-out perplexity, and sample from the trained model.

This exercises every production feature of the functional runtime in one
script:

* hybrid message-driven training (Algorithms 1-2) on a 2 x 2 grid;
* mixed precision with dynamic loss scaling and a globally synchronized
  overflow skip (Section II-A / IV-B);
* the bucketed CPU-offload optimizer (Section V-B);
* checkpoint/resume and pipeline-parallel evaluation;
* autoregressive sampling showing the model learned the corpus statistics.

Run:  python examples/train_and_generate.py
"""

import tempfile

import numpy as np

from repro.nn import GPT, GPTConfig, LMBatches, SyntheticCorpus, generate, \
    sequence_log_prob
from repro.runtime import (
    AxoNNTrainer,
    evaluate_parallel,
    load_trainer,
    save_trainer,
)


def main() -> None:
    cfg = GPTConfig(vocab_size=48, seq_len=16, n_layer=4, n_head=4,
                    hidden=32, init_seed=99)
    corpus = SyntheticCorpus(cfg.vocab_size, 40_000, seed=11,
                             markov_weight=0.85)
    batches = LMBatches(corpus, batch_size=16, seq_len=cfg.seq_len)

    trainer = AxoNNTrainer(cfg, g_inter=2, g_data=2, microbatch_size=4,
                           lr=3e-3, precision="mixed", offload=True,
                           bucket_size=2048)
    print(f"grid: 2 x 2 ranks | precision: mixed (fp16 grads, dynamic "
          f"loss scale) | optimizer: bucketed CPU offload")
    print(f"initial held-out: "
          f"{evaluate_parallel(trainer, batches, 4)['perplexity']:.2f} ppl "
          f"(uniform would be {cfg.vocab_size})")

    for i in range(40):
        report = trainer.train_batch(*batches.batch(i))
        if i % 10 == 0:
            print(f"  batch {i:>3}: loss {report.loss:.4f}  "
                  f"scale {report.loss_scale:g}  "
                  f"applied={report.applied}")

    with tempfile.NamedTemporaryFile(suffix=".npz") as tmp:
        save_trainer(trainer, tmp.name)
        restored = AxoNNTrainer(cfg, g_inter=2, g_data=2,
                                microbatch_size=4, lr=3e-3,
                                precision="mixed", offload=True,
                                bucket_size=2048)
        load_trainer(restored, tmp.name)
    print(f"checkpoint round trip: resumed at batch "
          f"{restored.batches_trained}")

    final = evaluate_parallel(restored, batches, 4)
    print(f"final held-out: {final['perplexity']:.2f} ppl")

    # Reassemble the shards into a serial model for generation.
    model = GPT(cfg)
    slots = {f"slot{k}": layer
             for k, layer in enumerate(model.layer_sequence())}
    gathered = restored.gather_state()
    for key, value in gathered.items():
        slot, _, pname = key.partition(".")
        params = dict(slots[slot].named_parameters())
        params[pname].data[...] = value

    prompt = corpus.tokens[:4]
    sample = generate(model, prompt, 24, rng=np.random.default_rng(1),
                      temperature=0.8)
    print(f"\nprompt tokens:  {prompt.tolist()}")
    print(f"sampled tokens: {sample[4:].tolist()}")
    real = corpus.tokens[200:209]
    shuffled = np.random.default_rng(0).permutation(real)
    print(f"log p(real corpus window)      = "
          f"{sequence_log_prob(model, real):.3f}")
    print(f"log p(same tokens, shuffled)   = "
          f"{sequence_log_prob(model, shuffled):.3f}")
    print("The model prefers real corpus order: it learned the Markov "
          "structure\nthrough the fully parallel, mixed-precision, "
          "offloaded training path.")


if __name__ == "__main__":
    main()
