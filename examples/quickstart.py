#!/usr/bin/env python3
"""Quickstart: train a small GPT with AxoNN's hybrid parallel algorithm.

This is the 60-second tour of the *functional* half of the library: a
2 x 2 grid of simulated GPUs (2-way inter-layer pipeline x 2-way data
parallelism, the paper's Fig. 2 shape) trains a scaled-down GPT on the
synthetic corpus with the message-driven scheduler of Algorithm 2 — and the
loss matches single-device training exactly.

Run:  python examples/quickstart.py
"""

from repro.nn import GPTConfig, LMBatches, SyntheticCorpus
from repro.runtime import AxoNNTrainer, SerialTrainer


def main() -> None:
    cfg = GPTConfig(vocab_size=64, seq_len=16, n_layer=4, n_head=4,
                    hidden=32, init_seed=7)

    # Deterministic synthetic corpus (the wikitext-103 stand-in).
    corpus = SyntheticCorpus(cfg.vocab_size, length=20_000, seed=0)
    batches = LMBatches(corpus, batch_size=8, seq_len=cfg.seq_len)

    # AxoNN on a G_inter x G_data = 2 x 2 grid of simulated GPUs.
    parallel = AxoNNTrainer(cfg, g_inter=2, g_data=2, microbatch_size=2,
                            lr=1e-3)
    # Single-GPU reference with identical initialization.
    serial = SerialTrainer(cfg, lr=1e-3)

    print(f"model: {serial.model.num_parameters():,} parameters, "
          f"grid: {parallel.grid.g_inter} x {parallel.grid.g_data} "
          f"({parallel.grid.world_size} ranks)")
    print(f"{'batch':>5} {'axonn loss':>12} {'serial loss':>12} "
          f"{'messages':>9}")
    for i in range(15):
        x, y = batches.batch(i)
        report = parallel.train_batch(x, y)
        serial_loss = serial.train_batch(x, y)
        print(f"{i:>5} {report.loss:>12.6f} {serial_loss:>12.6f} "
              f"{report.messages:>9}")

    print("\nThe two loss columns coincide: AxoNN's asynchronous, "
          "message-driven\nexecution preserves exact optimizer semantics "
          "(paper Fig. 10).")


if __name__ == "__main__":
    main()
