"""Parallel-training configuration for the performance model."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .model_stats import TransformerSpec

__all__ = ["AxoNNConfig"]


@dataclass(frozen=True)
class AxoNNConfig:
    """One AxoNN run configuration (paper Table II row, AxoNN flavor).

    ``g_intra * g_inter * g_data`` must equal ``num_gpus``; the batch is
    split into ``g_data`` shards of ``batch_size / g_data`` sequences, each
    processed as microbatches of ``microbatch_size`` sequences.  With
    ``g_intra > 1`` every pipeline stage is additionally sharded across a
    tensor-parallel group (the 4D follow-up's intra-layer axis).
    """

    spec: TransformerSpec
    num_gpus: int
    g_inter: int
    g_data: int
    microbatch_size: int
    batch_size: int
    #: intra-layer (tensor) parallel degree per pipeline stage
    g_intra: int = 1
    #: point-to-point backend for the inter-layer phase (paper: "mpi")
    backend_p2p: str = "mpi"
    #: collective backend for the data-parallel phase (paper: "nccl")
    backend_coll: str = "nccl"
    #: Section V-B memory optimization (CPU offload, smaller G_inter)
    memopt: bool = False
    #: offload bucket size in parameters (paper: 4-16 million)
    bucket_size: int = 4_000_000
    #: all-reduce coarsening factor k (Section V-C; paper fixes 4)
    coarsening_k: int = 4
    #: overlap the all-reduce with the optimizer (Section V-C)
    overlap: bool = True
    #: include optimizer state in memory/time (Fig. 5 removes it)
    include_optimizer: bool = True
    placement_policy: str = "pipeline-contiguous"
    #: max in-flight microbatches (None -> G_inter, Section IV-A)
    pipeline_limit: Optional[int] = None
    #: multiplicative compute-time noise (sigma of a lognormal factor);
    #: used by the message-driven-vs-static scheduling ablation
    compute_jitter: float = 0.0
    #: seed of the jitter stream (same seed -> same perturbations)
    jitter_seed: int = 0

    def __post_init__(self):
        if self.g_intra < 1:
            raise ValueError(f"G_intra ({self.g_intra}) must be >= 1")
        if self.g_intra * self.g_inter * self.g_data != self.num_gpus:
            raise ValueError(
                f"G_intra ({self.g_intra}) x G_inter ({self.g_inter}) x "
                f"G_data ({self.g_data}) != num_gpus ({self.num_gpus})"
            )
        if self.g_intra > self.spec.n_head:
            # Uneven head splits are fine; a headless rank is not.
            raise ValueError(
                f"G_intra ({self.g_intra}) exceeds attention heads "
                f"({self.spec.n_head})")
        if self.batch_size % self.g_data != 0:
            raise ValueError("batch size must divide evenly across G_data")
        shard = self.batch_size // self.g_data
        if shard % self.microbatch_size != 0:
            raise ValueError("batch shard must divide into microbatches")
        if self.g_inter > self.spec.n_layer:
            raise ValueError("more pipeline stages than transformer layers")
        if self.microbatch_size < 1 or self.batch_size < 1:
            raise ValueError("batch/microbatch sizes must be >= 1")
        if self.bucket_size < 1 or self.coarsening_k < 1:
            raise ValueError("bucket_size and coarsening_k must be >= 1")
        if self.compute_jitter < 0:
            raise ValueError("compute_jitter must be >= 0")

    @property
    def microbatches_per_shard(self) -> int:
        return self.batch_size // self.g_data // self.microbatch_size

    @property
    def total_microbatches(self) -> int:
        return self.batch_size // self.microbatch_size

    @property
    def effective_pipeline_limit(self) -> int:
        limit = self.pipeline_limit if self.pipeline_limit is not None \
            else self.g_inter
        return max(1, min(limit, self.microbatches_per_shard))

    def with_(self, **kwargs) -> "AxoNNConfig":
        """Functional update."""
        return replace(self, **kwargs)
