"""Analytic statistics of GPT-style transformers.

Everything the performance model needs to know about a model configuration:

* parameter counts (validated against the paper's Table I: the 12/24/50/100
  billion parameter configurations);
* flops per batch, using Narayanan et al.'s lower bound — the paper's
  Eq. (3):  ``96 b s l h^2 (1 + s/6h + V/16lh)`` (this *includes* the
  activation-recompute forward);
* per-layer forward flops for the discrete-event compute model;
* point-to-point message sizes (fp16 boundary activations — the paper's
  "1-50 MB region of interest");
* gradient bytes for the data-parallel all-reduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["TransformerSpec", "WEAK_SCALING_MODELS", "GPT2_SMALL",
           "paper_table1_specs"]

BYTES_HALF = 2
BYTES_FULL = 4


@dataclass(frozen=True)
class TransformerSpec:
    """Architecture + training-shape description used by the perf model."""

    name: str
    n_layer: int
    hidden: int
    n_head: int
    vocab_size: int = 51200
    seq_len: int = 512

    def __post_init__(self):
        if self.hidden % self.n_head != 0:
            raise ValueError("hidden must be divisible by n_head")
        for fld in ("n_layer", "hidden", "n_head", "vocab_size", "seq_len"):
            if getattr(self, fld) < 1:
                raise ValueError(f"{fld} must be >= 1")

    # -- parameters -----------------------------------------------------------
    @property
    def params_per_layer(self) -> int:
        """One transformer layer: 12 h^2 weights + 13 h bias/norm terms."""
        h = self.hidden
        return 12 * h * h + 13 * h

    @property
    def embedding_params(self) -> int:
        """Token + positional embeddings and the (untied) LM head."""
        return (2 * self.vocab_size + self.seq_len) * self.hidden

    @property
    def total_params(self) -> int:
        return self.n_layer * self.params_per_layer + self.embedding_params

    @property
    def billions(self) -> float:
        return self.total_params / 1e9

    # -- flops ------------------------------------------------------------------
    def flops_per_batch(self, batch_size: int) -> float:
        """Eq. (3) numerator: total flops to process one batch (fwd + bwd +
        recompute), Narayanan et al.'s lower bound."""
        b, s, l, h, v = (batch_size, self.seq_len, self.n_layer,
                         self.hidden, self.vocab_size)
        return 96 * b * s * l * h * h * (
            1 + s / (6 * h) + v / (16 * l * h)
        )

    def layer_forward_flops(self, microbatch: int) -> float:
        """Forward flops of one transformer layer on one microbatch:
        ``b s (24 h^2 + 4 s h)`` (QKV/proj/MLP GEMMs + attention scores)."""
        b, s, h = microbatch, self.seq_len, self.hidden
        return b * s * (24 * h * h + 4 * s * h)

    def head_forward_flops(self, microbatch: int) -> float:
        """Forward flops of the LM-head GEMM: ``2 b s h V``."""
        return 2 * microbatch * self.seq_len * self.hidden * self.vocab_size

    # -- bytes ---------------------------------------------------------------
    def activation_message_bytes(self, microbatch: int) -> int:
        """fp16 boundary activation (b, s, h) — the inter-layer p2p payload."""
        return BYTES_HALF * microbatch * self.seq_len * self.hidden

    def layer_activation_bytes(self, microbatch: int,
                               internal_factor: float = 4.0) -> int:
        """Live activation memory of one layer for one microbatch.

        ``internal_factor`` scales the boundary size up for the layer's
        internal buffers (attention matrices, 4h MLP) that are live during
        (re)computation.
        """
        return int(internal_factor
                   * self.activation_message_bytes(microbatch))

    def gradient_bytes_half(self, params: int) -> int:
        """fp16 gradient payload of ``params`` parameters (the all-reduce
        message of Section IV-B)."""
        return BYTES_HALF * params

    # -- sharding ------------------------------------------------------------
    def params_per_stage(self, g_inter: int) -> int:
        """Parameter count of the *largest* pipeline stage (ceil split of
        layers; embeddings/head on the boundary stages)."""
        if g_inter < 1:
            raise ValueError("g_inter must be >= 1")
        if g_inter > self.n_layer:
            raise ValueError(
                f"cannot split {self.n_layer} layers over {g_inter} stages"
            )
        layers_heavy = -(-self.n_layer // g_inter)
        body = layers_heavy * self.params_per_layer
        if g_inter == 1:
            return body + self.embedding_params
        # Boundary stages carry the embedding / head in addition to blocks.
        boundary_extra = self.embedding_params // 2 + self.hidden
        return body + boundary_extra

    def layers_per_stage(self, g_inter: int) -> int:
        return -(-self.n_layer // g_inter)


#: The paper's Table I weak-scaling model zoo.
WEAK_SCALING_MODELS: Dict[str, TransformerSpec] = {
    "12B": TransformerSpec("12B", n_layer=48, hidden=4512, n_head=24),
    "24B": TransformerSpec("24B", n_layer=48, hidden=6336, n_head=36),
    "50B": TransformerSpec("50B", n_layer=96, hidden=6528, n_head=48),
    "100B": TransformerSpec("100B", n_layer=96, hidden=9360, n_head=60),
}

#: GPT-2 small (the Fig. 10 validation model).
GPT2_SMALL = TransformerSpec("GPT2-small", n_layer=12, hidden=768, n_head=12,
                             vocab_size=51200, seq_len=512)


def paper_table1_specs() -> List[Dict[str, object]]:
    """Table I rows: nodes, GPUs, parameters, layers, hidden, heads."""
    gpu_counts = {"12B": (8, 48), "24B": (16, 96), "50B": (32, 192),
                  "100B": (64, 384)}
    rows = []
    for name, spec in WEAK_SCALING_MODELS.items():
        nodes, gpus = gpu_counts[name]
        rows.append({
            "nodes": nodes,
            "gpus": gpus,
            "params_billions": round(spec.billions, 1),
            "layers": spec.n_layer,
            "hidden": spec.hidden,
            "heads": spec.n_head,
        })
    return rows
