"""AxoNN core: the paper's contribution as a performance model.

Public surface:

* :class:`TransformerSpec`, :data:`WEAK_SCALING_MODELS`, :data:`GPT2_SMALL` —
  model statistics (Table I);
* :class:`AxoNNConfig` — a parallel-run configuration;
* :func:`simulate_batch` / :class:`BatchResult` — one batch on the DES
  cluster with phase breakdown and metrics;
* :func:`estimate_batch_time` — the analytic fast path for tuning;
* :class:`MemoryModel` — Section V-B byte accounting and OOM feasibility;
* :func:`estimated_training_days`, :func:`percent_of_peak` — Eqs. (2)-(3).
"""

from .axonn import BatchResult, check_memory, estimate_batch_time, simulate_batch
from .config import AxoNNConfig
from .memory_model import MemoryBreakdown, MemoryModel
from .metrics import (
    GPT3_TOKENS,
    achieved_flops,
    estimated_training_days,
    percent_of_peak,
)
from .model_stats import (
    GPT2_SMALL,
    WEAK_SCALING_MODELS,
    TransformerSpec,
    paper_table1_specs,
)
from .phases import StageCost, stage_costs

__all__ = [
    "BatchResult",
    "check_memory",
    "estimate_batch_time",
    "simulate_batch",
    "AxoNNConfig",
    "MemoryBreakdown",
    "MemoryModel",
    "GPT3_TOKENS",
    "achieved_flops",
    "estimated_training_days",
    "percent_of_peak",
    "GPT2_SMALL",
    "WEAK_SCALING_MODELS",
    "TransformerSpec",
    "paper_table1_specs",
    "StageCost",
    "stage_costs",
]
