"""Discrete-event programs for AxoNN's three execution phases.

The performance twin of :mod:`repro.runtime`: the same algorithms, but the
payloads are byte counts and the work items are kernel durations on the
simulated cluster.

Phase 1 — *inter-layer* (Algorithm 2): one data-parallel pipeline row is
simulated in full (rows are statistically identical; tests validate the
symmetry).  Stage processes are message-driven — they receive from either
neighbour and start the corresponding forward/backward pass, with the
paper's ``pipeline_limit`` in-flight bound.

Phase 2 — *data-parallel* (Algorithm 1, line 13): a gradient all-reduce
over each column.

Phase 3 — *optimizer*: either resident on the GPU (baseline; bound by HBM
bandwidth over the ``20 phi`` state) or bucketed through the CPU
(Section V-B), optionally overlapped with the chunked all-reduce via the
coarsening factor ``k`` (Section V-C).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generator, List, Optional

import numpy as np

from ..analysis.protocol import TraceRecorder
from ..cluster import GridPlacement, Machine
from ..comm import Message, Messenger, TAG_BACKWARD, TAG_FORWARD
from ..nn.checkpoint import optimal_checkpoint_interval
from .config import AxoNNConfig

__all__ = ["StageCost", "stage_costs", "run_pipeline_phase",
           "run_pipeline_phase_all_rows", "run_data_parallel_and_optimizer",
           "optimizer_time_on_gpu", "offload_bucket_time", "jitter_factor"]


def jitter_factor(sigma: float, seed: int, stage: int, microbatch: int,
                  kind: int) -> float:
    """Deterministic lognormal compute-time perturbation.

    Models real-machine variability (clock throttling, stragglers, OS
    noise).  Keyed by (seed, stage, microbatch, fwd/bwd) so both the
    message-driven and the static schedulers see the *same* perturbed
    kernel durations — only their reaction differs.
    """
    if sigma <= 0:
        return 1.0
    rng = np.random.default_rng((seed, stage, microbatch, kind))
    return float(np.exp(sigma * rng.standard_normal()))


@dataclass(frozen=True)
class StageCost:
    """Per-microbatch execution costs of one pipeline stage."""

    stage: int
    n_block_layers: int
    params: int
    fwd_flops: float
    bwd_flops: float      # backward proper (2x forward) + head backward
    recompute_flops: float  # checkpoint recompute during backward
    work_granularity: float  # per-kernel work for the efficiency model
    activation_bytes: int   # boundary message size
    #: per-microbatch tensor-parallel collective volume (the weight
    #: all-gather forward, its mirrored gradient reduce-scatter backward);
    #: zero when the stage is not intra-layer sharded
    tp_collective_bytes: int = 0


def stage_costs(cfg: AxoNNConfig) -> List[StageCost]:
    """Cost table for every stage of the pipeline.

    With ``g_intra > 1`` each stage's transformer blocks are sharded
    across the tensor-parallel group: per-rank block flops, parameters and
    kernel granularity all divide by ``g_intra`` (smaller kernels run less
    efficiently — the Megatron-LM penalty the ComputeModel encodes), the
    head and embeddings stay whole on the group lead, and every
    forward/backward pass additionally pays the group's weight
    all-gather / gradient reduce-scatter (``tp_collective_bytes``) —
    exactly the collectives the runtime's :class:`~repro.runtime.tp.TPComm`
    emits, so the DES twin prices what the transport actually carries.
    """
    spec = cfg.spec
    mbs = cfg.microbatch_size
    g_intra = cfg.g_intra
    layer_fwd = spec.layer_forward_flops(mbs) / g_intra
    head_fwd = spec.head_forward_flops(mbs)
    base, extra = divmod(spec.n_layer, cfg.g_inter)
    costs = []
    for i in range(cfg.g_inter):
        n_layers = base + (1 if i < extra else 0)
        fwd = n_layers * layer_fwd
        bwd = 2 * fwd
        recompute = fwd  # full activation recompute of the stage's blocks
        if i == cfg.g_inter - 1:
            fwd += head_fwd
            bwd += 2 * head_fwd
        block_params = n_layers * spec.params_per_layer
        phi = -(-block_params // g_intra)  # this rank's block shard
        if i == 0 or i == cfg.g_inter - 1:
            phi += spec.embedding_params // 2
        tp_bytes = 0
        if g_intra > 1:
            # fp32 weights of the shards each peer lacks, per microbatch
            tp_bytes = 4 * (block_params - block_params // g_intra)
        costs.append(StageCost(
            stage=i,
            n_block_layers=n_layers,
            params=phi,
            fwd_flops=fwd,
            bwd_flops=bwd,
            recompute_flops=recompute,
            work_granularity=layer_fwd,
            activation_bytes=spec.activation_message_bytes(mbs),
            tp_collective_bytes=tp_bytes,
        ))
    return costs


def run_pipeline_phase(machine: Machine, cfg: AxoNNConfig,
                       placement: Optional[GridPlacement] = None,
                       row: int = 0,
                       track_memory: bool = False,
                       recorder: Optional[TraceRecorder] = None,
                       strict: bool = True) -> Generator:
    """Process: Algorithm 2 on one pipeline row; returns the phase duration.

    Spawns one message-driven process per stage and waits for all of them.
    ``recorder`` logs every send/recv for post-hoc protocol verification;
    ``strict`` (default) raises :class:`~repro.analysis.ProtocolError` if
    any message is still undelivered when the phase completes.

    With ``track_memory`` every in-flight microbatch allocates its
    checkpointed activations on the owning GPU's memory pool (one
    ``layers/ac`` set of checkpoints per microbatch, plus the transient
    ``1 + ac`` recompute workspace during the backward pass).  The pool's
    peak then *emerges* from the schedule — the quantity Eq. (1) predicts —
    and an over-committed configuration raises
    :class:`~repro.cluster.memory.OutOfMemoryError` mid-flight, exactly
    like the real machine.
    """
    placement = placement or GridPlacement(machine.spec, cfg.g_inter,
                                           cfg.g_data,
                                           policy=cfg.placement_policy)
    gpus = placement.pipeline(row)
    costs = stage_costs(cfg)
    model = machine.cal.backend(cfg.backend_p2p)
    messenger = Messenger(machine, model, recorder=recorder)
    m = cfg.microbatches_per_shard
    limit = cfg.effective_pipeline_limit
    env = machine.env
    start = env.now
    # Activation accounting (Eq. 1 units).
    layers_per_stage = cfg.spec.layers_per_stage(cfg.g_inter)
    ac = optimal_checkpoint_interval(cfg.spec.n_layer, layers_per_stage)
    act_unit = cfg.spec.layer_activation_bytes(cfg.microbatch_size)
    checkpoint_bytes = (layers_per_stage // ac) * act_unit
    recompute_bytes = (1 + ac) * act_unit

    def stage_proc(i: int) -> Generator:
        gpu = machine.gpu(gpus[i])
        cost = costs[i]
        prev_gpu = gpus[i - 1] if i > 0 else None
        next_gpu = gpus[i + 1] if i < cfg.g_inter - 1 else None
        queue = deque(range(m))

        handling = machine.cal.p2p_handling_overhead
        sigma, jseed = cfg.compute_jitter, cfg.jitter_seed

        # Tensor-parallel collectives ride the compute events as extra
        # serial time: each forward all-gathers the stage's sharded
        # weights across the TP group, each backward reduce-scatters the
        # matching gradients.  TP groups are packed innermost on the node
        # (ranks t of one stage are consecutive), so the group is
        # intra-node whenever it fits on one.
        tp_fwd = tp_bwd = 0.0
        if cfg.g_intra > 1 and cost.tp_collective_bytes:
            coll = machine.cal.backend(cfg.backend_coll)
            tp_intra = cfg.g_intra <= machine.spec.node.gpus_per_node
            tp_fwd = (coll.allgather_time(cost.tp_collective_bytes,
                                          cfg.g_intra, tp_intra)
                      + machine.cal.coll_launch_overhead)
            tp_bwd = (coll.reduce_scatter_time(cost.tp_collective_bytes,
                                               cfg.g_intra, tp_intra)
                      + machine.cal.coll_launch_overhead)

        def fwd(mb: int) -> Generator:
            if track_memory:
                gpu.memory.allocate(f"row{row}.ckpt{mb}", checkpoint_bytes)
            factor = jitter_factor(sigma, jseed, i, mb, 0)
            yield from gpu.compute(cost.fwd_flops * factor,
                                   label=f"fwd{mb}",
                                   category="compute",
                                   work=cost.work_granularity,
                                   extra_time=handling + tp_fwd,
                                   mb=mb, stage=i)

        def bwd(mb: int) -> Generator:
            if track_memory:
                gpu.memory.allocate(f"row{row}.recompute", recompute_bytes)
            factor = jitter_factor(sigma, jseed, i, mb, 1)
            yield from gpu.compute(
                (cost.recompute_flops + cost.bwd_flops) * factor,
                label=f"bwd{mb}", category="compute",
                work=cost.work_granularity,
                extra_time=handling + tp_bwd,
                mb=mb, stage=i)
            if track_memory:
                gpu.memory.free_label(f"row{row}.recompute")
                gpu.memory.free_label(f"row{row}.ckpt{mb}")

        if cfg.g_inter == 1:
            for mb in queue:
                yield from fwd(mb)
                yield from bwd(mb)
            return

        # Warm-up: first stage injects pipeline_limit microbatches.
        if i == 0:
            for _ in range(min(limit, m)):
                mb = queue.popleft()
                yield from fwd(mb)
                messenger.isend(Message(gpus[0], next_gpu,
                                        cost.activation_bytes,
                                        tag=TAG_FORWARD,
                                        meta={"mb": mb}))

        expected = (m if prev_gpu is not None else 0) + \
                   (m if next_gpu is not None else 0)
        received = 0
        while received < expected:
            msg = yield messenger.irecv(gpus[i])
            received += 1
            if msg.tag == TAG_FORWARD:
                mb = msg.meta["mb"]
                yield from fwd(mb)
                if i == cfg.g_inter - 1:
                    yield from bwd(mb)  # BACKWARD(1) on the last stage
                    messenger.isend(Message(gpus[i], prev_gpu,
                                            cost.activation_bytes,
                                            tag=TAG_BACKWARD,
                                            meta={"mb": mb}))
                else:
                    messenger.isend(Message(gpus[i], next_gpu,
                                            cost.activation_bytes,
                                            tag=TAG_FORWARD,
                                            meta={"mb": mb}))
            else:  # backward gradient from downstream
                mb = msg.meta["mb"]
                yield from bwd(mb)
                if i == 0:
                    if queue:
                        nxt = queue.popleft()
                        yield from fwd(nxt)
                        messenger.isend(Message(gpus[0], next_gpu,
                                                cost.activation_bytes,
                                                tag=TAG_FORWARD,
                                                meta={"mb": nxt}))
                else:
                    messenger.isend(Message(gpus[i], prev_gpu,
                                            cost.activation_bytes,
                                            tag=TAG_BACKWARD,
                                            meta={"mb": mb}))

    procs = [env.process(stage_proc(i), name=f"stage{i}")
             for i in range(cfg.g_inter)]
    yield env.all_of(procs)
    if strict:
        messenger.check_drained()
    return env.now - start


def run_pipeline_phase_all_rows(machine: Machine, cfg: AxoNNConfig,
                                placement: Optional[GridPlacement] = None,
                                recorder: Optional[TraceRecorder] = None,
                                strict: bool = True) -> Generator:
    """Process: Algorithm 2 on *every* data-parallel row concurrently.

    The default simulation exploits data-parallel symmetry and runs one
    row; this variant runs the whole grid, so rows that share nodes (small
    G_inter) contend for NVLink ports and NICs.  Used to validate the
    symmetry assumption and to quantify inter-row interference.
    Returns the makespan of the slowest row.
    """
    placement = placement or GridPlacement(machine.spec, cfg.g_inter,
                                           cfg.g_data,
                                           policy=cfg.placement_policy)
    env = machine.env
    start = env.now
    rows = [env.process(run_pipeline_phase(machine, cfg, placement, row=j,
                                           recorder=recorder, strict=strict),
                        name=f"row{j}")
            for j in range(cfg.g_data)]
    yield env.all_of(rows)
    return env.now - start


def optimizer_time_on_gpu(machine: Machine, params: int) -> float:
    """Resident (no-offload) optimizer step duration: an elementwise pass
    over the 20-bytes-per-parameter state, HBM-bandwidth bound."""
    cal = machine.cal
    bytes_touched = 20 * params
    return bytes_touched / cal.hbm_bandwidth + cal.kernel_launch_overhead


def offload_bucket_time(machine: Machine, gpu_id: int,
                        bucket_params: int) -> float:
    """Duration of one offloaded optimizer bucket: fetch master+state
    (12 B/param), CPU Adam math, write back (12 B/param)."""
    gpu = machine.gpu(gpu_id)
    cal = machine.cal
    dma = gpu.dma_time(12 * bucket_params)
    cpu = bucket_params * cal.adam_flops_per_param / cal.cpu_flops
    return dma + cpu + dma + cal.optimizer_bucket_overhead


def run_data_parallel_and_optimizer(machine: Machine, cfg: AxoNNConfig,
                                    placement: Optional[GridPlacement] = None,
                                    stage: int = 0) -> Generator:
    """Process: Algorithm 1 line 13 + optimizer for one stage's column.

    Returns ``(allreduce_seconds, optimizer_seconds, combined_seconds)``
    where *combined* is the makespan of the phase (with overlap it is less
    than the sum).
    """
    placement = placement or GridPlacement(machine.spec, cfg.g_inter,
                                           cfg.g_data,
                                           policy=cfg.placement_policy)
    env = machine.env
    cal = machine.cal
    coll = cal.backend(cfg.backend_coll)
    costs = stage_costs(cfg)
    phi = costs[stage].params
    column = placement.data_group(stage)
    gpu_id = column[0]
    gpu = machine.gpu(gpu_id)
    intra = placement.data_group_nodes(stage) == 1
    grad_bytes = cfg.spec.gradient_bytes_half(phi)
    start = env.now
    ar_busy = 0.0
    opt_busy = 0.0

    # Every stage's column reduces *simultaneously*; columns whose members
    # share a node share its NIC, dividing the effective ring bandwidth.
    # With pipeline-contiguous placement, min(G_inter, gpus/node) columns
    # land on each node — the contention that makes the data-parallel phase
    # grow from 0.62 s to 4.32 s in the paper's Fig. 6 when G_inter drops
    # from 24 to 6 (more data and more ranks per column).
    nic_sharing = 1 if intra else min(cfg.g_inter,
                                      machine.spec.node.gpus_per_node)

    def allreduce_chunk(nbytes: int) -> float:
        return (nic_sharing * coll.allreduce_time(nbytes, cfg.g_data, intra)
                + cal.coll_launch_overhead)

    if not cfg.include_optimizer:
        # Fig. 5 setting: optimizer states removed; only the all-reduce runs.
        dur = allreduce_chunk(grad_bytes)
        yield from gpu.busy(dur, label="allreduce", category="allreduce",
                            stream=gpu.aux_stream, bytes=grad_bytes,
                            ranks=cfg.g_data)
        return dur, 0.0, env.now - start

    if not cfg.memopt:
        # Baseline: monolithic all-reduce then resident optimizer.
        ar = allreduce_chunk(grad_bytes)
        yield from gpu.busy(ar, label="allreduce", category="allreduce",
                            stream=gpu.aux_stream, bytes=grad_bytes,
                            ranks=cfg.g_data)
        opt = optimizer_time_on_gpu(machine, phi)
        yield from gpu.busy(opt, label="optimizer", category="optimizer",
                            stream=gpu.compute_stream, params=phi)
        return ar, opt, env.now - start

    # Memory-optimized path: bucketed CPU offload, chunked all-reduce with
    # coarsening factor k, optimizer chunks enqueued as reductions finish.
    bsize = min(cfg.bucket_size, phi)
    n_buckets = -(-phi // bsize)
    k = cfg.coarsening_k
    n_chunks = -(-n_buckets // k)

    if not cfg.overlap:
        ar = allreduce_chunk(grad_bytes)
        yield from gpu.busy(ar, label="allreduce", category="allreduce",
                            stream=gpu.aux_stream, bytes=grad_bytes,
                            ranks=cfg.g_data)
        for b in range(n_buckets):
            params_here = min(bsize, phi - b * bsize)
            dur = offload_bucket_time(machine, gpu_id, params_here)
            yield from gpu.busy(dur, label=f"opt-bucket{b}",
                                category="optimizer",
                                stream=gpu.compute_stream,
                                params=params_here)
        return ar, env.now - start - ar, env.now - start

    # Overlapped: all-reduce chunks on the aux stream feed optimizer bucket
    # work on the compute stream through a ready-queue (Fig. 7's two rows).
    from ..sim import Store
    ready: Store = Store(env, name="chunk-ready")

    def allreduce_proc() -> Generator:
        nonlocal ar_busy
        remaining = phi
        for c in range(n_chunks):
            chunk_params = min(k * bsize, remaining)
            remaining -= chunk_params
            chunk_bytes = cfg.spec.gradient_bytes_half(chunk_params)
            dur = allreduce_chunk(chunk_bytes)
            yield from gpu.busy(dur, label=f"allreduce-chunk{c}",
                                category="allreduce",
                                stream=gpu.aux_stream, bytes=chunk_bytes,
                                chunk=c, ranks=cfg.g_data)
            ar_busy += dur
            ready.put(chunk_params)

    def optimizer_proc() -> Generator:
        nonlocal opt_busy
        for _ in range(n_chunks):
            chunk_params = yield ready.get()
            while chunk_params > 0:
                params_here = min(bsize, chunk_params)
                chunk_params -= params_here
                dur = offload_bucket_time(machine, gpu_id, params_here)
                yield from gpu.busy(dur, label="opt-bucket",
                                    category="optimizer",
                                    stream=gpu.compute_stream,
                                    params=params_here)
                opt_busy += dur

    procs = [env.process(allreduce_proc(), name="allreduce"),
             env.process(optimizer_proc(), name="optimizer")]
    yield env.all_of(procs)
    return ar_busy, opt_busy, env.now - start
