"""AxoNN batch-time simulation: the paper's framework on the modeled Summit.

:func:`simulate_batch` runs one full training batch through the
discrete-event cluster — the message-driven inter-layer phase, the
data-parallel gradient all-reduce and the optimizer — and returns a
:class:`BatchResult` with the phase breakdown (the quantities plotted in
Figs. 5, 6 and 8), the memory feasibility verdict, and the derived metrics
(Eq. 2 training days, Eq. 3 percentage of peak).

An *analytic* fast path (:func:`estimate_batch_time`) approximates the same
quantities in closed form for the tuning sweeps; the DES is the source of
truth and the tests keep the two within tolerance of each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cluster import GridPlacement, Machine, OutOfMemoryError, summit
from .config import AxoNNConfig
from .memory_model import MemoryBreakdown, MemoryModel
from .metrics import estimated_training_days, percent_of_peak
from .phases import (
    offload_bucket_time,
    optimizer_time_on_gpu,
    run_data_parallel_and_optimizer,
    run_pipeline_phase,
    run_pipeline_phase_all_rows,
    stage_costs,
)

__all__ = ["BatchResult", "simulate_batch", "estimate_batch_time",
           "check_memory"]


@dataclass(frozen=True)
class BatchResult:
    """Outcome of simulating one training batch."""

    config: AxoNNConfig
    pipeline_s: float
    allreduce_s: float
    optimizer_s: float
    #: makespan of the combined data-parallel + optimizer phase
    dp_opt_combined_s: float
    memory: MemoryBreakdown
    feasible: bool

    @property
    def batch_time_s(self) -> float:
        return self.pipeline_s + self.dp_opt_combined_s

    @property
    def training_days(self) -> float:
        return estimated_training_days(self.batch_time_s,
                                       self.config.batch_size,
                                       self.config.spec.seq_len)

    @property
    def pct_of_peak(self) -> float:
        return percent_of_peak(self.config.spec, self.config.batch_size,
                               self.batch_time_s, self.config.num_gpus)

    def as_row(self) -> Dict[str, object]:
        return {
            "model": self.config.spec.name,
            "gpus": self.config.num_gpus,
            "g_inter": self.config.g_inter,
            "g_data": self.config.g_data,
            "g_intra": self.config.g_intra,
            "mbs": self.config.microbatch_size,
            "memopt": self.config.memopt,
            "pipeline_s": self.pipeline_s,
            "allreduce_s": self.allreduce_s,
            "optimizer_s": self.optimizer_s,
            "batch_time_s": self.batch_time_s,
            "training_days": self.training_days,
            "pct_peak": self.pct_of_peak,
            "memory_gb": self.memory.total / 1024 ** 3,
            "feasible": self.feasible,
        }


def check_memory(cfg: AxoNNConfig,
                 cluster_spec=None) -> tuple[MemoryBreakdown, bool]:
    """Memory breakdown + does-it-fit verdict for an AxoNN config."""
    cluster_spec = cluster_spec or summit(max(1, cfg.num_gpus // 6))
    mm = MemoryModel(cfg.spec)
    breakdown = mm.axonn_bytes(cfg.g_inter, cfg.microbatch_size,
                               memopt=cfg.memopt,
                               bucket_size=cfg.bucket_size,
                               include_optimizer=cfg.include_optimizer,
                               g_intra=cfg.g_intra)
    return breakdown, mm.fits(breakdown, cluster_spec.node.gpu.dram_bytes)


def simulate_batch(cfg: AxoNNConfig, machine: Optional[Machine] = None,
                   trace: bool = False,
                   enforce_memory: bool = False,
                   full_grid: bool = False) -> BatchResult:
    """Simulate one batch; raises :class:`OutOfMemoryError` when
    ``enforce_memory`` and the configuration does not fit the GPUs.

    ``full_grid=True`` simulates every data-parallel row instead of
    exploiting row symmetry (slower; exposes inter-row fabric contention
    when pipelines share nodes)."""
    if machine is None:
        nodes = max(1, -(-cfg.num_gpus // 6))
        machine = Machine(spec=summit(nodes), trace=trace)
    if cfg.num_gpus > machine.spec.num_gpus:
        raise ValueError(
            f"config needs {cfg.num_gpus} GPUs, machine has "
            f"{machine.spec.num_gpus}"
        )
    breakdown, feasible = check_memory(cfg, machine.spec)
    if enforce_memory and not feasible:
        pool_gpu = machine.gpu(0).memory
        raise OutOfMemoryError(pool_gpu, "model state + activations",
                               breakdown.total)

    placement = GridPlacement(machine.spec, cfg.g_inter, cfg.g_data,
                              policy=cfg.placement_policy)
    env = machine.env

    result = {}

    def batch_proc():
        t0 = env.now
        if full_grid:
            pipeline_s = yield env.process(
                run_pipeline_phase_all_rows(machine, cfg, placement),
                name="pipeline-all-rows")
        else:
            pipeline_s = yield env.process(
                run_pipeline_phase(machine, cfg, placement),
                name="pipeline-row0")
        ar_s, opt_s, combined_s = yield env.process(
            run_data_parallel_and_optimizer(machine, cfg, placement),
            name="data-parallel")
        result["pipeline_s"] = pipeline_s
        result["allreduce_s"] = ar_s
        result["optimizer_s"] = opt_s
        result["combined_s"] = combined_s
        result["total"] = env.now - t0

    env.process(batch_proc(), name="batch")
    machine.run()

    return BatchResult(
        config=cfg,
        pipeline_s=result["pipeline_s"],
        allreduce_s=result["allreduce_s"],
        optimizer_s=result["optimizer_s"],
        dp_opt_combined_s=result["combined_s"],
        memory=breakdown,
        feasible=feasible,
    )


def estimate_batch_time(cfg: AxoNNConfig,
                        machine: Optional[Machine] = None) -> float:
    """Closed-form batch-time estimate (the tuning fast path).

    Pipeline: ``(m + pipeline_limit - 1)`` slots of the bottleneck stage's
    fwd+bwd time plus per-hop communication exposure; data-parallel and
    optimizer phases mirror the DES cost formulas without event simulation.
    """
    if machine is None:
        nodes = max(1, -(-cfg.num_gpus // 6))
        machine = Machine(spec=summit(nodes))
    cal = machine.cal
    peak = machine.spec.node.gpu.peak_half_flops
    costs = stage_costs(cfg)
    m = cfg.microbatches_per_shard

    coll = cal.backend(cfg.backend_coll)
    tp_intra = cfg.g_intra <= machine.spec.node.gpus_per_node

    def stage_time(c):
        t = cal.compute.time(
            c.fwd_flops + c.recompute_flops + c.bwd_flops, peak,
            work=c.work_granularity) + 2 * (cal.kernel_launch_overhead
                                            + cal.p2p_handling_overhead)
        if cfg.g_intra > 1 and c.tp_collective_bytes:
            # Forward weight all-gather + backward gradient reduce-scatter
            # (mirrors run_pipeline_phase's extra_time charges).
            t += (coll.allgather_time(c.tp_collective_bytes, cfg.g_intra,
                                      tp_intra)
                  + coll.reduce_scatter_time(c.tp_collective_bytes,
                                             cfg.g_intra, tp_intra)
                  + 2 * cal.coll_launch_overhead)
        return t

    bottleneck = max(stage_time(c) for c in costs)
    # Steady state: m rounds of the bottleneck; ramp: pipeline depth - 1.
    pipeline = (m + cfg.g_inter - 1) * bottleneck
    # Communication exposure: with non-blocking MPI, only the ramp hops are
    # exposed; with blocking NCCL p2p every message serializes with compute.
    p2p = cal.backend(cfg.backend_p2p)
    placement = GridPlacement(machine.spec, cfg.g_inter, cfg.g_data,
                              policy=cfg.placement_policy)
    locality = placement.pipeline_edge_locality(0)
    n_edges = max(1, cfg.g_inter - 1)
    intra_frac = locality["intra"] / n_edges if n_edges else 1.0
    hop = (intra_frac * p2p.p2p_time(costs[0].activation_bytes, True)
           + (1 - intra_frac) * p2p.p2p_time(costs[0].activation_bytes, False))
    if p2p.blocking_p2p:
        pipeline += 2 * m * hop
    else:
        pipeline += 2 * (cfg.g_inter - 1) * hop

    # Data-parallel + optimizer (mirrors run_data_parallel_and_optimizer).
    phi = costs[0].params
    intra = placement.data_group_nodes(0) == 1
    sharing = 1 if intra else min(cfg.g_inter,
                                  machine.spec.node.gpus_per_node)
    ar = sharing * coll.allreduce_time(
        cfg.spec.gradient_bytes_half(phi), cfg.g_data, intra) \
        + cal.coll_launch_overhead
    if not cfg.include_optimizer:
        return pipeline + ar
    if not cfg.memopt:
        return pipeline + ar + optimizer_time_on_gpu(machine, phi)
    bsize = min(cfg.bucket_size, phi)
    n_buckets = -(-phi // bsize)
    opt = n_buckets * offload_bucket_time(machine, 0, bsize)
    if cfg.overlap:
        n_chunks = -(-n_buckets // cfg.coarsening_k)
        ar_chunked = sharing * n_chunks * coll.allreduce_time(
            cfg.spec.gradient_bytes_half(phi) // max(1, n_chunks),
            cfg.g_data, intra) + n_chunks * cal.coll_launch_overhead
        first_chunk = ar_chunked / max(1, n_chunks)
        return pipeline + max(ar_chunked, opt + first_chunk)
    return pipeline + ar + opt
