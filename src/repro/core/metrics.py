"""The paper's evaluation metrics (Section VI-D).

* :func:`estimated_training_days` — Eq. (2): time to train on 300 B tokens,
  ``3e11 * t / (b * s)``, reported in days;
* :func:`achieved_flops` — Eq. (3): hardware flop/s from the batch time;
* :func:`percent_of_peak` — achieved / aggregate peak half-precision.
"""

from __future__ import annotations

from .model_stats import TransformerSpec

__all__ = ["estimated_training_days", "achieved_flops", "percent_of_peak",
           "GPT3_TOKENS"]

#: GPT-3's training-token budget the paper normalizes to.
GPT3_TOKENS = 3e11

SECONDS_PER_DAY = 86_400.0


def estimated_training_days(batch_time_s: float, batch_size: int,
                            seq_len: int) -> float:
    """Eq. (2) converted to days."""
    if batch_time_s <= 0 or batch_size < 1 or seq_len < 1:
        raise ValueError("batch time, batch size and seq len must be positive")
    tokens_per_batch = batch_size * seq_len
    total_seconds = GPT3_TOKENS * batch_time_s / tokens_per_batch
    return total_seconds / SECONDS_PER_DAY


def achieved_flops(spec: TransformerSpec, batch_size: int,
                   batch_time_s: float) -> float:
    """Eq. (3): model flop/s achieved over the batch."""
    if batch_time_s <= 0:
        raise ValueError("batch time must be positive")
    return spec.flops_per_batch(batch_size) / batch_time_s


def percent_of_peak(spec: TransformerSpec, batch_size: int,
                    batch_time_s: float, num_gpus: int,
                    peak_per_gpu: float = 125e12) -> float:
    """Achieved percentage of aggregate peak half-precision throughput."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    peak = num_gpus * peak_per_gpu
    return 100.0 * achieved_flops(spec, batch_size, batch_time_s) / peak
