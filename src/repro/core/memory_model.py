"""Per-GPU memory accounting for all three frameworks.

Reproduces the byte arithmetic of paper Section V-B:

* **baseline** state bytes: ``20 phi``  (4 phi fp32 params, 4 phi fp32
  grads, 2 phi fp16 params, 2 phi fp16 grads, 8 phi Adam state);
* **AxoNN memopt** state bytes: ``4 phi + 16 bsize`` (fp16 params + grads
  stay on the GPU; fp32 master and Adam state live on the CPU and stream
  through 16-bytes-per-parameter bucket buffers);
* **ZeRO-1 (DeepSpeed)**: fp16 params + grads replicated (``4 phi``),
  fp32 master + Adam state sharded across the data-parallel group
  (``16 phi / G_data``);
* activations per Eq. (1):
  ``M_act ∝ G_inter (N / (G_inter ac)) + 1 + ac`` in units of one layer's
  per-microbatch activation bytes.

Feasibility (fits in the 16 GB V100) is what makes tuning configurations
valid/invalid exactly as on Summit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..nn.checkpoint import optimal_checkpoint_interval
from .model_stats import TransformerSpec

__all__ = ["MemoryModel", "MemoryBreakdown"]

BYTES_HALF = 2
BYTES_FULL = 4


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bytes per GPU, by category."""

    params_and_grads: int
    optimizer_state: int
    activations: int

    @property
    def total(self) -> int:
        return self.params_and_grads + self.optimizer_state + self.activations

    def as_dict(self) -> Dict[str, int]:
        return {
            "params_and_grads": self.params_and_grads,
            "optimizer_state": self.optimizer_state,
            "activations": self.activations,
            "total": self.total,
        }


class MemoryModel:
    """Memory estimates for one (model, parallel-config) pair."""

    def __init__(self, spec: TransformerSpec, internal_factor: float = 4.0):
        self.spec = spec
        self.internal_factor = internal_factor

    # -- state memory ----------------------------------------------------------
    def state_bytes_baseline(self, phi: int,
                             include_optimizer: bool = True) -> int:
        """The ``20 phi`` accounting (``12 phi`` without optimizer state +
        fp32 gradients, for the Fig. 5 experiment that removes them)."""
        base = 2 * phi + 2 * phi + 4 * phi  # theta16, grad16, theta32
        if include_optimizer:
            base += 4 * phi + 8 * phi  # fp32 grads + Adam state
        return base

    def state_bytes_memopt(self, phi: int, bucket_size: int) -> int:
        """AxoNN's optimization: ``4 phi + 16 bsize``."""
        if bucket_size < 1:
            raise ValueError("bucket_size must be >= 1")
        return 4 * phi + 16 * min(bucket_size, phi)

    def state_bytes_zero1(self, phi: int, g_data: int) -> int:
        """ZeRO stage 1: optimizer state + master weights sharded."""
        if g_data < 1:
            raise ValueError("g_data must be >= 1")
        return 4 * phi + (16 * phi) // g_data

    # -- activation memory --------------------------------------------------
    def activation_bytes(self, g_inter: int, microbatch: int,
                         ac: int = 0) -> int:
        """Eq. (1) in bytes for one GPU.

        ``ac`` defaults to the paper's optimal sqrt rule.  The unit is one
        layer's live activation footprint for one microbatch.
        """
        n = self.spec.n_layer
        layers_per_gpu = self.spec.layers_per_stage(g_inter)
        if ac == 0:
            ac = optimal_checkpoint_interval(n, layers_per_gpu)
        unit = self.spec.layer_activation_bytes(microbatch,
                                                self.internal_factor)
        factor = g_inter * (n / (g_inter * ac)) + 1 + ac
        return int(factor * unit)

    # -- per-framework totals ------------------------------------------------
    def axonn_bytes(self, g_inter: int, microbatch: int,
                    memopt: bool, bucket_size: int = 4_000_000,
                    include_optimizer: bool = True,
                    g_intra: int = 1) -> MemoryBreakdown:
        """With ``g_intra > 1`` each rank owns ``phi / g_intra`` of the
        stage's parameter state plus a transient fp32 workspace for the
        peers' weight shards it all-gathers every forward (the 4D
        protocol gathers whole weights rather than splitting GEMMs, which
        is what keeps losses bit-identical to the dense run)."""
        if g_intra < 1:
            raise ValueError("g_intra must be >= 1")
        phi_full = self.spec.params_per_stage(g_inter)
        phi = phi_full // g_intra
        if memopt:
            state = self.state_bytes_memopt(phi, bucket_size)
            pg = 4 * phi  # fp16 params + fp16 grads resident
            opt = state - pg
        else:
            state = self.state_bytes_baseline(phi, include_optimizer)
            pg = 12 * phi if include_optimizer else state
            opt = state - pg
        if g_intra > 1:
            pg += BYTES_FULL * (phi_full - phi)  # gathered-weight workspace
        act = self.activation_bytes(g_inter, microbatch)
        return MemoryBreakdown(pg, max(opt, 0), act)

    def megatron_bytes(self, g_inter: int, g_intra: int,
                       microbatch: int) -> MemoryBreakdown:
        """3D parallelism without ZeRO: baseline state over the
        intra-layer-sharded parameter count."""
        if g_intra < 1:
            raise ValueError("g_intra must be >= 1")
        phi = self.spec.params_per_stage(g_inter) // g_intra
        state = self.state_bytes_baseline(phi)
        # Baselines checkpoint every layer (ac=1): the paper's Section V-A
        # claims first derivation of the *optimal* ac, so the baselines do
        # not benefit from the sqrt rule.
        act = self.activation_bytes(g_inter, microbatch, ac=1) // g_intra
        return MemoryBreakdown(12 * phi, state - 12 * phi, act)

    def deepspeed_bytes(self, g_inter: int, g_intra: int, g_data: int,
                        microbatch: int) -> MemoryBreakdown:
        """3D parallelism + ZeRO-1.

        Besides the sharded state, ZeRO-1 materializes an fp32 flat buffer
        for its gradient shard while running the optimizer (``4 phi /
        g_data`` bytes of staging) — the overhead that in practice keeps
        DeepSpeed from dropping tensor parallelism entirely on 16 GB GPUs.
        """
        if g_intra < 1:
            raise ValueError("g_intra must be >= 1")
        phi = self.spec.params_per_stage(g_inter) // g_intra
        state = self.state_bytes_zero1(phi, g_data) + (4 * phi) // g_data
        # Per-layer (ac=1) checkpointing, as for Megatron-LM above.
        act = self.activation_bytes(g_inter, microbatch, ac=1) // g_intra
        return MemoryBreakdown(4 * phi, state - 4 * phi, act)

    def cluster_total_bytes(self, g_inter: int, g_data: int, microbatch: int,
                            memopt: bool,
                            bucket_size: int = 16_000_000) -> int:
        """Aggregate memory across the whole GPU grid — the quantity behind
        the paper's "520 GB -> 130.24 GB"four-fold reduction (Section V-B).

        Model state is counted once per data-parallel replica over the
        *total* parameter count (stages partition the model exactly);
        activations are per-GPU.
        """
        total = self.spec.total_params
        num_gpus = g_inter * g_data
        if memopt:
            state = 4 * total * g_data + 16 * bucket_size * num_gpus
        else:
            state = self.state_bytes_baseline(total) * g_data
        act = self.activation_bytes(g_inter, microbatch) * num_gpus
        return state + act

    # -- feasibility ------------------------------------------------------------
    def fits(self, breakdown: MemoryBreakdown, dram_bytes: int,
             reserve_fraction: float = 0.08) -> bool:
        """True when the breakdown fits device DRAM with a fragmentation /
        workspace reserve."""
        return breakdown.total <= dram_bytes * (1.0 - reserve_fraction)
