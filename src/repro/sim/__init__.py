"""Deterministic discrete-event simulation kernel (SimPy-like).

Public surface:

* :class:`Environment`, :class:`Event`, :class:`Timeout`, :class:`Process`,
  :class:`AnyOf`, :class:`AllOf`, :class:`Interrupt` — the engine.
* :class:`Resource`, :class:`PriorityResource`, :class:`Store` — shared
  resources (streams, links, inboxes).
* :class:`Tracer`, :class:`Span` — timeline capture for profile-style output.
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .processes import poisson_process
from .resources import PriorityResource, Request, Resource, Store
from .trace import (
    Span,
    Tracer,
    overlap_time,
    render_ascii_timeline,
    spans_overlap,
    track_busy_time,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "poisson_process",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
    "Span",
    "Tracer",
    "overlap_time",
    "render_ascii_timeline",
    "spans_overlap",
    "track_busy_time",
]
