"""Discrete-event simulation kernel.

A minimal, deterministic, generator-based discrete-event engine in the style
of SimPy.  Simulated *processes* are Python generators that ``yield`` event
objects; the engine resumes a process when the event it is waiting on fires.

The kernel is the substrate for the cluster / network / GPU models used by
the performance experiments: every GPU, CUDA stream, DMA engine, link and
communication backend in :mod:`repro.cluster` and :mod:`repro.comm` is a
process or resource built on these primitives.

Determinism
-----------
The event queue is a binary heap ordered by ``(time, priority, sequence)``.
The monotonically increasing sequence number makes tie-breaking fully
deterministic, so a simulation with the same inputs always produces the same
schedule.  No wall-clock time is consulted anywhere.

Example
-------
>>> env = Environment()
>>> def proc(env, out):
...     yield env.timeout(3.0)
...     out.append(env.now)
>>> out = []
>>> _ = env.process(proc(env, out), name="example")
>>> env.run()
>>> out
[3.0]

Always pass ``name=`` to :meth:`Environment.process` — named processes
keep traces and deadlock diagnostics readable, and lint rule REP004
(``python -m repro.analysis lint``) enforces it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
]

# Scheduling priorities: URGENT events (e.g. process resumption after an
# event fires) run before NORMAL events scheduled for the same instant.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. yielding twice on a
    triggered-and-consumed event, or running a finished environment with
    ``until`` in the past)."""


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the interrupter-supplied payload.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    schedules it; once the engine pops it from the queue it is *processed*
    and its callbacks run.  Processes wait on events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed",
                 "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: callables invoked (in registration order) when the event fires
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        #: set True once a waiter has handled this event's failure
        self._defused = False

    # -- inspection -------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """Payload delivered to waiters.  Valid only once triggered."""
        if not self._triggered:
            raise SimulationError("value accessed before event was triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure carrying ``exception``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay=delay)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for cb in callbacks:  # type: ignore[union-attr]
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self._triggered
            else "pending"
        )
        name = getattr(self, "name", "")
        label = f" {name!r}" if name else ""
        return f"<{type(self).__name__}{label} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, delay=delay, priority=PRIORITY_NORMAL)


class Process(Event):
    """A running generator.  Also an event: it fires when the generator
    returns (value = the generator's return value) or raises (failure).

    Yield protocol inside the generator:

    * ``yield some_event``  — suspend until the event fires.  The ``yield``
      expression evaluates to the event's value; a failed event re-raises
      its exception inside the generator.
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on (None if ready)
        self._target: Optional[Event] = None
        # Bootstrap: resume the generator at time `now` via an urgent event.
        boot = Event(env)
        boot._triggered = True
        boot.callbacks.append(self._resume)
        env._schedule(boot, delay=0.0, priority=PRIORITY_URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (the target event is
        left untouched and may still fire later, unobserved).
        """
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        hit = Event(self.env)
        hit._triggered = True
        hit._ok = False
        hit._value = Interrupt(cause)
        hit.callbacks.append(self._resume)
        # Suppress "unhandled failure" checking: delivery is via throw().
        hit._defused = True
        self.env._schedule(hit, delay=0.0, priority=PRIORITY_URGENT)

    # -- engine internals --------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self.env._active_process = self
        event: Optional[Event] = trigger
        while True:
            try:
                if event is None:
                    raise AssertionError("resumed with no trigger")
                if event._ok:
                    target = self.generator.send(event._value)
                else:
                    # Mark the failure as handled by this process.
                    event._defused = True
                    exc = event._value
                    if isinstance(exc, Interrupt):
                        target = self.generator.throw(exc)
                    else:
                        target = self.generator.throw(type(exc), exc)
            except StopIteration as stop:
                self._target = None
                self.env._active_process = None
                if not self._triggered:
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                self._target = None
                self.env._active_process = None
                if not self._triggered:
                    self.fail(exc)
                else:  # pragma: no cover - defensive
                    raise
                return

            if not isinstance(target, Event):
                self.env._active_process = None
                err = SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
                self.generator.close()
                self.fail(err)
                return
            if target.env is not self.env:
                raise SimulationError("yielded event belongs to another Environment")
            if target.callbacks is not None:
                # Not yet processed: register and suspend.
                target.callbacks.append(self._resume)
                self._target = target
                self.env._active_process = None
                return
            # Already processed: continue immediately with its value.
            event = target


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes environments")
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev._triggered and ev.callbacks is None
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when *any* constituent event fires.  Value: dict of the events
    processed so far mapped to their values."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when *all* constituent events have fired.  Value: dict mapping
    every event to its value."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed(self._collect())


class Environment:
    """The simulation environment: clock + event queue + scheduler."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []  # heap of (time, priority, seq, event)
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = PRIORITY_NORMAL) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        t, _prio, _seq, event = heapq.heappop(self._queue)
        if t < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = t
        event._run_callbacks()
        if not event._ok and not event._defused:
            # A failure nobody handled: surface it instead of silently
            # swallowing broken simulations.
            exc = event._value
            raise exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        With ``until``, the clock is advanced to exactly ``until`` even if
        the last event fires earlier (mirrors SimPy semantics closely enough
        for our use).
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            if until is not None and self.peek() > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
