"""Shared resources for the simulation kernel.

Three primitives cover everything the cluster model needs:

* :class:`Resource` — a counted semaphore with FIFO queueing.  Models CUDA
  streams, DMA engines, NICs: anything that serializes work.
* :class:`PriorityResource` — like :class:`Resource` but requests carry a
  priority (lower value served first; FIFO within a priority level).
* :class:`Store` — an unbounded (or bounded) FIFO of items.  Models message
  inboxes for the message-driven scheduler.

All primitives are deterministic: waiters are served in request order.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Any, List, Optional, Tuple

from .engine import Environment, Event, SimulationError

__all__ = ["Resource", "PriorityResource", "Store", "Request"]


class Request(Event):
    """Event that fires when the resource grants the request.

    Usable as a context token: pass it back to :meth:`Resource.release`.
    """

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority


class Resource:
    """Counted resource with ``capacity`` concurrent users, FIFO-granted.

    Usage inside a process::

        req = resource.request()
        yield req
        ...  # hold the resource
        resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: int = 0
        self._waiters: List[Request] = []
        #: cumulative (time-weighted) busy integral, for utilization stats
        self._busy_integral = 0.0
        self._last_change = env.now
        #: (time, busy integral at that time, holders from that time on) —
        #: one checkpoint per holder-count change, so windowed utilization
        #: queries can reconstruct the integral at any past instant
        self._checkpoints: List[Tuple[float, float, int]] = [
            (env.now, 0.0, 0)]

    # -- stats -------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of current holders."""
        return self._users

    @property
    def queue_len(self) -> int:
        """Number of pending requests."""
        return len(self._waiters)

    def _account(self) -> None:
        now = self.env.now
        self._busy_integral += self._users * (now - self._last_change)
        self._last_change = now

    def _checkpoint(self) -> None:
        """Snapshot the integral after a holder-count change (the integral
        is piecewise linear between changes, so these points suffice to
        evaluate it at any past time).  Callers must :meth:`_account`
        *before* mutating ``_users`` so the integral is current."""
        entry = (self.env.now, self._busy_integral, self._users)
        if self._checkpoints[-1][0] == self.env.now:
            self._checkpoints[-1] = entry
        else:
            self._checkpoints.append(entry)

    def _integral_at(self, t: float) -> float:
        """Busy integral accumulated by time ``t`` (0 before creation)."""
        checkpoints = self._checkpoints
        if t <= checkpoints[0][0]:
            return 0.0
        lo = bisect.bisect_right(checkpoints, (t, float("inf"), 0)) - 1
        t_i, integral, users = checkpoints[lo]
        return integral + users * (t - t_i)

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity in use over [since, now].

        The busy integral over the window is the *difference* of the
        cumulative integral at its endpoints — never the lifetime integral
        divided by the windowed elapsed time, which would exceed 1.0 for a
        resource busy before ``since``.
        """
        self._account()
        elapsed = self.env.now - since
        if elapsed <= 0:
            return 0.0
        window_integral = self._busy_integral - self._integral_at(since)
        return window_integral / (elapsed * self.capacity)

    # -- protocol ------------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        """Ask for one unit of the resource; returned event fires on grant."""
        req = Request(self, priority)
        if self._users < self.capacity and not self._waiters:
            self._account()
            self._users += 1
            self._checkpoint()
            req.succeed(req)
        else:
            self._enqueue(req)
        return req

    def release(self, req: Request) -> None:
        """Give back a granted unit and wake the next waiter, if any."""
        if req.resource is not self:
            raise SimulationError("release() of a foreign request")
        if not req.triggered:
            # Cancelling a never-granted request.
            self._dequeue(req)
            return
        self._account()
        self._users -= 1
        if self._users < 0:  # pragma: no cover - defensive
            raise SimulationError(f"double release on resource {self.name!r}")
        nxt = self._pop_next()
        if nxt is not None:
            self._users += 1
            nxt.succeed(nxt)
        self._checkpoint()

    # -- queue policy (overridden by PriorityResource) ----------------------
    def _enqueue(self, req: Request) -> None:
        self._waiters.append(req)

    def _dequeue(self, req: Request) -> None:
        try:
            self._waiters.remove(req)
        except ValueError:
            pass

    def _pop_next(self) -> Optional[Request]:
        return self._waiters.pop(0) if self._waiters else None


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-priority-value first,
    FIFO among equals."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        super().__init__(env, capacity, name)
        self._pq: List[Tuple[int, int, Request]] = []
        self._pq_seq = 0

    def _enqueue(self, req: Request) -> None:
        heapq.heappush(self._pq, (req.priority, self._pq_seq, req))
        self._pq_seq += 1

    def _dequeue(self, req: Request) -> None:
        self._pq = [entry for entry in self._pq if entry[2] is not req]
        heapq.heapify(self._pq)

    def _pop_next(self) -> Optional[Request]:
        if not self._pq:
            return None
        return heapq.heappop(self._pq)[2]

    @property
    def queue_len(self) -> int:
        return len(self._pq)


class Store:
    """FIFO store of items — the message inbox primitive.

    ``put`` never blocks unless a finite ``capacity`` is given; ``get``
    returns an event firing when an item is available.  Items are delivered
    to getters in arrival order (FIFO on both sides), which is exactly the
    delivery guarantee the message-driven scheduler relies on.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None,
                 name: str = ""):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be None or >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List[Tuple[Event, Any]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """A copy of the queued items, oldest first."""
        return list(self._items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; returned event fires when accepted."""
        ev = Event(self.env)
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Returned event fires with the oldest item."""
        ev = Event(self.env)
        if self._items:
            item = self._items.pop(0)
            ev.succeed(item)
            if self._putters:
                pev, pitem = self._putters.pop(0)
                self._items.append(pitem)
                pev.succeed()
        else:
            self._getters.append(ev)
        return ev
