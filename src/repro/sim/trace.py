"""Timeline tracing for simulated executions.

The tracer records *spans* — named intervals on named tracks — and produces
the data behind the paper's Fig. 7 (the Nsight Systems profile showing the
all-reduce and optimizer phases interleaving on separate CUDA streams).  A
track corresponds to one CUDA stream / engine of one GPU; a span is one
kernel / transfer / collective chunk.

The tracer is deliberately storage-only: rendering (ASCII timeline, CSV) is
done by pure functions over the recorded spans so tests can assert on the
structure directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Span", "Tracer", "render_ascii_timeline", "spans_overlap",
           "track_busy_time", "overlap_time"]


@dataclass(frozen=True)
class Span:
    """One traced interval."""

    track: str
    name: str
    start: float
    end: float
    #: free-form category, e.g. "compute" / "p2p" / "allreduce" / "optimizer"
    category: str = ""
    #: extra payload (message sizes, microbatch ids, ...)
    meta: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def with_meta(self) -> Dict[str, object]:
        return dict(self.meta)


class Tracer:
    """Collects spans; optionally disabled (zero overhead when off)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: List[Span] = []

    def record(self, track: str, name: str, start: float, end: float,
               category: str = "", **meta: object) -> None:
        """Record a completed span."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span ends before it starts: {name} [{start}, {end}]")
        self.spans.append(
            Span(track, name, start, end, category, tuple(sorted(meta.items())))
        )

    # -- queries -------------------------------------------------------------
    def tracks(self) -> List[str]:
        """Track names in first-seen order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.track, None)
        return list(seen)

    def on_track(self, track: str) -> List[Span]:
        """Spans on ``track`` sorted by start time."""
        return sorted((s for s in self.spans if s.track == track),
                      key=lambda s: (s.start, s.end))

    def by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def to_rows(self) -> List[Dict[str, object]]:
        """Flatten to CSV-ready dict rows."""
        return [
            {"track": s.track, "name": s.name, "start": s.start,
             "end": s.end, "category": s.category, **s.with_meta()}
            for s in self.spans
        ]


def spans_overlap(a: Span, b: Span) -> bool:
    """True when the two spans share a positive-length interval."""
    return min(a.end, b.end) > max(a.start, b.start)


def track_busy_time(spans: Iterable[Span]) -> float:
    """Total covered time of ``spans`` (union of intervals)."""
    ivs = sorted((s.start, s.end) for s in spans)
    total = 0.0
    cur_start: Optional[float] = None
    cur_end = 0.0
    for start, end in ivs:
        if cur_start is None:
            cur_start, cur_end = start, end
        elif start <= cur_end:
            cur_end = max(cur_end, end)
        else:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
    if cur_start is not None:
        total += cur_end - cur_start
    return total


def overlap_time(a: Iterable[Span], b: Iterable[Span]) -> float:
    """Total time during which some span of ``a`` and some span of ``b`` are
    simultaneously active — the quantity Fig. 7 demonstrates is large."""
    events: List[Tuple[float, int, int]] = []  # (time, +1/-1, which)
    for s in a:
        events.append((s.start, +1, 0))
        events.append((s.end, -1, 0))
    for s in b:
        events.append((s.start, +1, 1))
        events.append((s.end, -1, 1))
    events.sort()
    active = [0, 0]
    last = None
    total = 0.0
    for t, delta, which in events:
        if last is not None and active[0] > 0 and active[1] > 0:
            total += t - last
        active[which] += delta
        last = t
    return total


def render_ascii_timeline(tracer: Tracer, width: int = 100,
                          t0: Optional[float] = None,
                          t1: Optional[float] = None) -> str:
    """Render all tracks as fixed-width ASCII rows (one char per time bin).

    Each bin shows the first letter of the dominant span category in that
    bin, or ``.`` for idle — a terminal-friendly stand-in for Fig. 7.

    Binning is half-open: a span paints ``[b0, b1)`` so back-to-back spans
    never overwrite each other's boundary bin (the later span starts in
    the bin where the earlier one's exclusive right edge lands).  Spans
    too short to cover a full bin — including zero-width markers — still
    paint the single bin they start in.
    """
    if not tracer.spans:
        return "(empty timeline)"
    lo = min(s.start for s in tracer.spans) if t0 is None else t0
    hi = max(s.end for s in tracer.spans) if t1 is None else t1
    if hi <= lo:
        hi = lo + 1.0
    scale = width / (hi - lo)
    lines = [f"timeline [{lo:.6g}, {hi:.6g}] ({width} bins)"]
    for track in tracer.tracks():
        row = ["."] * width
        for s in tracer.on_track(track):
            b0 = max(0, min(width - 1, int((s.start - lo) * scale)))
            b1 = max(b0 + 1, min(width, int((s.end - lo) * scale)))
            ch = (s.category or s.name or "x")[0]
            for i in range(b0, b1):
                row[i] = ch
        lines.append(f"{track:>24} |{''.join(row)}|")
    return "\n".join(lines)
