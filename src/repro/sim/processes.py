"""Reusable stochastic event processes for the DES substrate.

One seeded Poisson generator serves every subsystem that needs memoryless
arrivals — GPU failures in :mod:`repro.resilience.sim`, inference-request
arrivals in :mod:`repro.serve.sim` — so the arrival statistics (and their
determinism guarantees) live in exactly one place.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from .engine import Environment

__all__ = ["poisson_process"]

MeanInterval = Union[float, Callable[[float], float]]


def poisson_process(env: Environment, mean_interval_s: MeanInterval,
                    seed: int, on_event: Callable[[float], None],
                    alive: Optional[Callable[[], bool]] = None):
    """Generator: fire ``on_event(now)`` at exponential inter-arrival times.

    ``mean_interval_s`` is either a constant mean or a callable of the
    current sim time returning the instantaneous mean — the latter yields a
    (piecewise-)inhomogeneous process, used for bursty request workloads.
    The RNG is built from ``seed`` inside the process, so two runs with the
    same seed see the same arrival times regardless of what else the
    simulation does.  ``alive`` (checked before each wait *and* before each
    firing, matching the historical failure-injector semantics) stops the
    process once it returns False.

    Drive it with ``env.process(poisson_process(...), name=...)``.
    """
    rng = np.random.default_rng(seed)
    while alive is None or alive():
        mean = (mean_interval_s(env.now) if callable(mean_interval_s)
                else mean_interval_s)
        if mean <= 0:
            raise ValueError("mean inter-arrival time must be positive")
        yield env.timeout(float(rng.exponential(mean)))
        if alive is None or alive():
            on_event(env.now)
