"""OSU-style communication microbenchmarks on the simulated fabric.

These regenerate the measurements behind the paper's backend choice:

* :func:`osu_latency` — the ``osu_latency`` ping-pong of Fig. 3, for MPI and
  NCCL, intra-node and inter-node, across message sizes.
* :func:`osu_allreduce` — the all-reduce benchmark of Fig. 4 over 6 GPUs
  (one node) and 12 GPUs (two nodes).

Each function runs a fresh simulation per (backend, size) point and returns
plain dict rows, so benchmarks and tests share one code path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cluster import Machine, summit
from .collectives import allreduce
from .message import Message
from .messenger import Messenger

__all__ = ["osu_latency", "osu_allreduce", "DEFAULT_P2P_SIZES",
           "DEFAULT_COLL_SIZES"]

#: Fig. 3 x-axis: 8 B .. 128 MB
DEFAULT_P2P_SIZES: List[int] = [8 * 4 ** e for e in range(13)]
#: Fig. 4 x-axis: 512 B .. 8 GB (per process)
DEFAULT_COLL_SIZES: List[int] = [512 * 4 ** e for e in range(13)]


def osu_latency(backend: str, intra_node: bool,
                sizes: Optional[Sequence[int]] = None,
                machine: Optional[Machine] = None) -> List[Dict[str, object]]:
    """Ping-pong latency sweep; returns one row per message size.

    One-way latency is half of the measured round trip, following the OSU
    convention.
    """
    sizes = list(sizes if sizes is not None else DEFAULT_P2P_SIZES)
    rows: List[Dict[str, object]] = []
    for nbytes in sizes:
        m = machine or Machine(spec=summit(2))
        model = m.cal.backend(backend)
        dst = 1 if intra_node else m.spec.node.gpus_per_node  # first GPU of node 1
        messenger = Messenger(m, model)

        def pingpong(m=m, messenger=messenger, nbytes=nbytes, dst=dst):
            yield messenger.isend(Message(0, dst, nbytes, tag="ping"))
            yield messenger.irecv(dst)
            yield messenger.isend(Message(dst, 0, nbytes, tag="pong"))
            yield messenger.irecv(0)

        m.env.process(pingpong(), name="osu-pingpong")
        m.run()
        rows.append({
            "backend": backend,
            "scope": "intra-node" if intra_node else "inter-node",
            "bytes": nbytes,
            "latency_s": m.now / 2.0,
        })
        machine = None  # never reuse a dirtied caller machine
    return rows


def osu_allreduce(backend: str, ranks: int,
                  sizes: Optional[Sequence[int]] = None) -> List[Dict[str, object]]:
    """All-reduce latency sweep over the first ``ranks`` GPUs.

    With 6 ranks the group is one full Summit node (the paper's intra-node
    case); with 12 it spans two nodes (inter-node case).
    """
    sizes = list(sizes if sizes is not None else DEFAULT_COLL_SIZES)
    rows: List[Dict[str, object]] = []
    for nbytes in sizes:
        m = Machine(spec=summit(max(2, (ranks + 5) // 6)))
        model = m.cal.backend(backend)
        group = list(range(ranks))
        m.env.process(allreduce(m, group, nbytes, model, stream=None),
                      name="osu-allreduce")
        m.run()
        rows.append({
            "backend": backend,
            "ranks": ranks,
            "scope": "intra-node" if ranks <= 6 else "inter-node",
            "bytes": nbytes,
            "latency_s": m.now,
        })
    return rows
