"""Collective operations over groups of simulated GPUs.

The data-parallel phase of every framework reduces parameter gradients with
an all-reduce (paper Algorithm 1, line 13).  The cost comes from the
backend's ring/tree model (:meth:`CommCostModel.allreduce_time`); this module
adds the *scheduling* semantics:

* ``stream="compute"`` — the collective occupies every participant's compute
  stream (the default NCCL behaviour: nothing else runs during the
  all-reduce);
* ``stream="aux"`` — the collective runs on the auxiliary stream, leaving
  the compute stream free (how AxoNN overlaps the all-reduce with the
  optimizer, Section V-C);
* ``stream=None`` — network-only (used by cost probes).

``chunked_allreduce`` splits one large reduction into equal chunks and
yields per-chunk completion events — the primitive behind the coarsening
factor ``k`` study (paper Fig. 8).
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..cluster import Machine
from ..cluster.calibration import CommCostModel
from ..sim import Event

__all__ = ["allreduce", "chunked_allreduce", "broadcast_time"]


def _acquire_streams(machine: Machine, ranks: List[int], stream: str):
    streams = []
    for r in sorted(ranks):
        gpu = machine.gpu(r)
        res = gpu.compute_stream if stream == "compute" else gpu.aux_stream
        streams.append(res)
    return streams


def allreduce(machine: Machine, ranks: List[int], nbytes: int,
              model: CommCostModel, stream: Optional[str] = "compute",
              label: str = "allreduce") -> Generator:
    """Process: all-reduce ``nbytes`` per rank over GPU ids ``ranks``.

    Returns the collective's duration.
    """
    if len(ranks) != len(set(ranks)):
        raise ValueError("duplicate ranks in collective group")
    if len(ranks) <= 1:
        return 0.0
    if stream is not None and stream not in ("compute", "aux"):
        raise ValueError(f"stream must be 'compute', 'aux' or None, "
                         f"got {stream!r}")
    # The whole acquire-hold sequence is guarded: a collective cancelled
    # while still waiting on a later stream request releases every grant
    # and cancels the pending request (same contract as Fabric.transfer).
    grants = []
    try:
        if stream is not None:
            for res in _acquire_streams(machine, ranks, stream):
                req = res.request()
                grants.append((res, req))
                yield req
        start = machine.env.now
        yield from machine.fabric.allreduce(ranks, nbytes, model, label=label)
    finally:
        for res, req in reversed(grants):
            res.release(req)
    return machine.env.now - start


def chunked_allreduce(machine: Machine, ranks: List[int], total_bytes: int,
                      num_chunks: int, model: CommCostModel,
                      stream: Optional[str] = "aux",
                      on_chunk: Optional[Callable[[int], None]] = None,
                      label: str = "allreduce-chunk") -> Generator:
    """Process: all-reduce ``total_bytes`` in ``num_chunks`` equal pieces.

    Chunks are issued back-to-back (chunk *c+1* starts as soon as chunk *c*
    finishes its network time); ``on_chunk(c)`` fires at each completion so
    the caller can enqueue the optimizer step for the corresponding buckets
    — the paper's overlap mechanism (Section V-C).
    """
    if num_chunks < 1:
        raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
    chunk = total_bytes // num_chunks
    remainder = total_bytes - chunk * (num_chunks - 1)
    for c in range(num_chunks):
        nbytes = chunk if c < num_chunks - 1 else remainder
        yield from allreduce(machine, ranks, nbytes, model, stream=stream,
                             label=f"{label}{c}")
        if on_chunk is not None:
            on_chunk(c)


def broadcast_time(model: CommCostModel, nbytes: int, ranks: int,
                   intra_node: bool) -> float:
    """Modeled broadcast time (ring pipeline: one traversal, not two)."""
    if ranks <= 1:
        return 0.0
    bw = model.coll_bw_intra if intra_node else model.coll_bw_inter
    return (ranks - 1) * model.coll_alpha + nbytes / bw
