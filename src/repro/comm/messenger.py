"""Point-to-point messaging with backend-faithful semantics.

The paper's central implementation claim (Section IV-A) is that the *choice
of point-to-point backend changes what overlaps*:

* **MPI (CUDA-aware, GPUDirect)** — ``MPI_Isend``/``MPI_Irecv`` are
  non-blocking: the message progresses on the network while the GPU keeps
  computing.  In the model, an MPI send occupies only the fabric (ports /
  NICs), never a compute stream; the send call itself costs one kernel-launch
  overhead on the caller.

* **NCCL** — point-to-point primitives "block on the communicating GPUs
  until a handshake is completed".  In the model, an NCCL send occupies the
  *sender's compute stream* for the full wire time (the receiver additionally
  stalls on the data dependency when it tries to consume the message).

Every GPU has an inbox (:class:`~repro.sim.Store`); delivery order into the
inbox is the arrival order on the wire, which is exactly the order the
message-driven scheduler consumes.

``messages_sent``/``bytes_sent`` count **deliveries**, not ``isend()``
calls: a blocking-backend send whose process never completes (simulation cut
short, deadlock) does not inflate the counters, keeping them consistent with
what the receivers — and the tests — actually observe.

Pass ``recorder=`` (a :class:`~repro.analysis.protocol.TraceRecorder`) to
log sends at initiation and receives at consumption, for post-hoc protocol
verification; :meth:`Messenger.check_drained` raises
:class:`~repro.analysis.protocol.ProtocolError` listing any message still
rotting in an inbox after a phase completes.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..analysis.protocol import ProtocolError, TraceRecorder
from ..cluster import Machine
from ..cluster.calibration import CommCostModel
from ..sim import Event, Store
from .message import Message

__all__ = ["Messenger"]


class Messenger:
    """Backend-parameterized p2p messaging layer over a :class:`Machine`."""

    def __init__(self, machine: Machine, model: CommCostModel, *,
                 recorder: Optional[TraceRecorder] = None):
        self.machine = machine
        self.model = model
        self.recorder = recorder
        self.inboxes: List[Store] = [
            Store(machine.env, name=f"gpu{g}.inbox")
            for g in range(machine.spec.num_gpus)
        ]
        #: counters for tests / stats — incremented on *delivery*
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- send ------------------------------------------------------------------
    def isend(self, msg: Message) -> Event:
        """Initiate a send; returns a completion event (the MPI request).

        With a non-blocking backend the caller's compute stream is untouched;
        with a blocking backend the wire time runs *on the sender's compute
        stream* (the caller still gets a request event, but any kernel the
        sender schedules afterwards queues behind the transfer).
        """
        if self.recorder is not None:
            self.recorder.record_send(msg.src, msg.dst, msg.tag,
                                      msg.meta.get("mb"), nbytes=msg.nbytes)
        if self.model.blocking_p2p:
            proc = self.machine.env.process(
                self._blocking_send(msg), name=f"nccl-send-{msg.tag}"
            )
        else:
            proc = self.machine.env.process(
                self._async_send(msg), name=f"mpi-isend-{msg.tag}"
            )
        return proc

    def send(self, msg: Message) -> Generator:
        """Process form of :meth:`isend` (yields until delivery)."""
        yield self.isend(msg)

    def _deliver(self, msg: Message) -> Event:
        self.messages_sent += 1
        self.bytes_sent += msg.nbytes
        return self.inboxes[msg.dst].put(msg)

    def _span_meta(self, msg: Message) -> dict:
        """Span metadata attached to the fabric's p2p trace record."""
        mb = msg.meta.get("mb")
        return {} if mb is None else {"mb": mb}

    def _async_send(self, msg: Message) -> Generator:
        yield from self.machine.fabric.transfer(
            msg.src, msg.dst, msg.nbytes, self.model, label=msg.tag,
            meta=self._span_meta(msg)
        )
        yield self._deliver(msg)

    def _blocking_send(self, msg: Message) -> Generator:
        gpu = self.machine.gpu(msg.src)
        req = gpu.compute_stream.request()
        try:
            yield req
            yield from self.machine.fabric.transfer(
                msg.src, msg.dst, msg.nbytes, self.model, label=msg.tag,
                meta=self._span_meta(msg)
            )
        finally:
            gpu.compute_stream.release(req)
        yield self._deliver(msg)

    # -- receive ---------------------------------------------------------------
    def irecv(self, gpu_id: int) -> Event:
        """Non-blocking receive: event firing with the next inbox message.

        AxoNN issues its ``MPI_Irecv`` preemptively at the start of each
        pass so reception overlaps computation; the Store-based inbox gives
        the same behaviour — messages arriving while the GPU computes are
        queued and the next ``yield messenger.irecv(g)`` completes instantly.
        """
        ev = self.inboxes[gpu_id].get()
        if self.recorder is not None:
            recorder = self.recorder

            def _record(event: Event) -> None:
                msg = event.value
                if isinstance(msg, Message):
                    recorder.record_recv(gpu_id, msg.src, msg.tag,
                                         msg.meta.get("mb"),
                                         nbytes=msg.nbytes)

            if ev.callbacks is not None:
                ev.callbacks.append(_record)
            else:  # already processed (cannot happen for Store.get, but safe)
                _record(ev)
        return ev

    def pending(self, gpu_id: int) -> int:
        """Messages queued in ``gpu_id``'s inbox."""
        return len(self.inboxes[gpu_id])

    def check_drained(self) -> None:
        """Raise :class:`ProtocolError` if any inbox still holds messages.

        Call after a phase completes: a non-empty inbox means some rank sent
        a message nobody received — the orphan-packet bug class the protocol
        verifier exists to catch.
        """
        orphans = [(g, msg) for g, inbox in enumerate(self.inboxes)
                   for msg in getattr(inbox, "items", [])]
        if not orphans:
            return
        listing = "\n  ".join(
            f"{msg.src} -> {msg.dst} tag={msg.tag!r} "
            f"microbatch={msg.meta.get('mb')} (in gpu {g}'s inbox)"
            for g, msg in orphans[:20])
        more = f"\n  ... and {len(orphans) - 20} more" \
            if len(orphans) > 20 else ""
        raise ProtocolError(
            f"phase finished with {len(orphans)} undelivered message(s) "
            f"left in inboxes (orphan sends — a receive is missing):\n  "
            f"{listing}{more}"
        )
