"""Simulated communication backends (MPI-like and NCCL-like).

Public surface:

* :class:`Message`, :class:`Messenger` — backend-faithful point-to-point
  messaging with per-GPU inboxes;
* :func:`allreduce`, :func:`chunked_allreduce` — collectives with stream
  placement semantics;
* :func:`osu_latency`, :func:`osu_allreduce` — the Fig. 3 / Fig. 4
  microbenchmarks.
"""

from .algorithms import ring_allreduce_des, ring_step_count
from .collectives import allreduce, broadcast_time, chunked_allreduce
from .message import TAG_BACKWARD, TAG_DATA, TAG_FORWARD, Message
from .messenger import Messenger
from .microbench import (
    DEFAULT_COLL_SIZES,
    DEFAULT_P2P_SIZES,
    osu_allreduce,
    osu_latency,
)

__all__ = [
    "ring_allreduce_des",
    "ring_step_count",
    "allreduce",
    "broadcast_time",
    "chunked_allreduce",
    "Message",
    "Messenger",
    "TAG_FORWARD",
    "TAG_BACKWARD",
    "TAG_DATA",
    "osu_latency",
    "osu_allreduce",
    "DEFAULT_P2P_SIZES",
    "DEFAULT_COLL_SIZES",
]
