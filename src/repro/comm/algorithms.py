"""Explicit collective algorithms built from point-to-point transfers.

The cost model in :class:`~repro.cluster.calibration.CommCostModel` gives
the *closed-form* ring all-reduce time; this module constructs the actual
ring — ``p - 1`` reduce-scatter steps followed by ``p - 1`` all-gather
steps, each moving ``bytes / p`` per rank over the simulated fabric — and
lets contention and latency emerge from the discrete-event machinery.

Tests cross-validate the two: the emergent ring time must match the
closed-form model within tolerance, which pins the cost model to an actual
algorithm rather than a free-floating formula.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..cluster import Machine
from ..cluster.calibration import CommCostModel
from ..sim import Store

__all__ = ["ring_allreduce_des", "ring_step_count"]


def ring_step_count(ranks: int) -> int:
    """Total p2p steps of a ring all-reduce: 2 (p - 1)."""
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    return 2 * (ranks - 1)


def ring_allreduce_des(machine: Machine, gpu_ids: List[int], nbytes: int,
                       model: CommCostModel,
                       label: str = "ring") -> Generator:
    """Process: execute a ring all-reduce step by step over the fabric.

    Each of the ``p`` ranks owns one chunk of ``nbytes / p``; in each of the
    ``2 (p - 1)`` rounds every rank forwards a chunk to its ring successor.
    Rounds are separated by a barrier (each rank must have received before
    forwarding), matching the synchronous ring NCCL implements.

    Returns the wall time of the collective.
    """
    p = len(gpu_ids)
    if p != len(set(gpu_ids)):
        raise ValueError("duplicate GPUs in ring")
    if p == 0:
        raise ValueError("empty ring")
    env = machine.env
    start = env.now
    if p == 1 or nbytes == 0:
        return 0.0
    chunk = max(1, nbytes // p)

    # Per-rank mailbox for the chunk handoff of the current round.
    mailboxes = {g: Store(env, name=f"ring-{g}") for g in gpu_ids}

    def rank_proc(idx: int) -> Generator:
        src = gpu_ids[idx]
        dst = gpu_ids[(idx + 1) % p]
        for _round in range(ring_step_count(p)):
            # Send this round's chunk to the successor...
            send = env.process(
                machine.fabric.transfer(src, dst, chunk, model,
                                        label=f"{label}-r{_round}"),
                name=f"{label}-send{idx}-r{_round}")

            def deliver(send=send, dst=dst):
                yield send
                mailboxes[dst].put(_round)

            env.process(deliver(), name=f"{label}-deliver{idx}-r{_round}")
            # ... and wait for the predecessor's chunk before continuing.
            yield mailboxes[src].get()

    procs = [env.process(rank_proc(i), name=f"ring{i}") for i in range(p)]
    yield env.all_of(procs)
    return env.now - start
