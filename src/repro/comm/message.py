"""Message descriptors for the simulated point-to-point layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Message", "TAG_FORWARD", "TAG_BACKWARD", "TAG_DATA"]

#: activation message travelling down the pipeline (paper Fig. 2, blue)
TAG_FORWARD = "forward"
#: output-gradient message travelling up the pipeline (paper Fig. 2, red)
TAG_BACKWARD = "backward"
#: generic payload (microbenchmarks etc.)
TAG_DATA = "data"


@dataclass(frozen=True)
class Message:
    """One point-to-point message between two simulated GPUs.

    ``src``/``dst`` are physical GPU ids.  ``tag`` is what the
    message-driven scheduler dispatches on: AxoNN decides between a forward
    and a backward pass purely from which neighbour a message arrived from
    (Algorithm 2, lines 13/21) — the tag encodes that provenance.
    """

    src: int
    dst: int
    nbytes: int
    tag: str = TAG_DATA
    #: microbatch id or other scheduler payload
    meta: Dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError(f"negative message size: {self.nbytes}")
        if self.src == self.dst:
            raise ValueError(f"message to self (gpu {self.src})")
