"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig3                 # p2p microbenchmark
    python -m repro fig9 --models 12B    # weak scaling, one model
    python -m repro all --fast           # everything, reduced sizes
    python -m repro fig9 --csv out.csv   # also write the rows as CSV
    python -m repro lint                 # repo-specific AST lint over repro
    python -m repro trace                # Chrome-trace both substrates
    python -m repro trace --substrate sim --out sim.json

Each command prints the figure's rows as an aligned table plus the paper-
claim checklist, mirroring what the benchmark harness asserts.  ``trace``
runs a small 2x2 hybrid scenario with the observability layer enabled and
writes a Chrome-trace JSON (open in Perfetto or chrome://tracing).
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Callable, Dict, List, Optional, Sequence

from . import experiments as ex

__all__ = ["main", "EXPERIMENTS"]


def _format_rows(title: str, rows: Sequence[Dict[str, object]]) -> str:
    if not rows:
        return f"\n== {title} ==\n(no rows)\n"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table = [[fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(c), *(len(line[i]) for line in table))
              for i, c in enumerate(columns)]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines = [f"\n== {title} ==", header, "-" * len(header)]
    lines += ["  ".join(v.ljust(w) for v, w in zip(line, widths))
              for line in table]
    return "\n".join(lines)


def _emit(title: str, rows, claims: Optional[Dict[str, bool]],
          csv_path: Optional[str]) -> bool:
    print(_format_rows(title, rows))
    ok = True
    if claims is not None:
        print(f"\n== {title}: paper-claim checklist ==")
        for name, passed in claims.items():
            print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
            ok = ok and passed
    if csv_path:
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        with open(csv_path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=columns)
            writer.writeheader()
            writer.writerows(rows)
        print(f"\nwrote {len(rows)} rows to {csv_path}")
    return ok


# -- commands -----------------------------------------------------------------

def cmd_fig1(args) -> bool:
    from .experiments import pipeline_occupancy, render_occupancy
    occ = pipeline_occupancy(g_inter=4, microbatches=4 if args.fast else 8)
    print("\n== Fig. 1: inter-layer parallelism occupancy ==")
    print(render_occupancy(occ))
    rows = [{"stage": st["stage"], "busy_s": st["busy_s"],
             "idle_fraction": st["idle_fraction"]}
            for st in occ["stages"]]
    return _emit("Fig. 1: per-stage occupancy", rows, None, args.csv)


def cmd_fig3(args) -> bool:
    sizes = [2 ** e for e in range(10, 27, 4)] if args.fast else None
    rows = ex.fig3_rows(sizes=sizes)
    return _emit("Fig. 3: p2p latency (s)", rows, ex.fig3_claims(rows),
                 args.csv)


def cmd_fig4(args) -> bool:
    sizes = [2 ** e for e in range(16, 29, 4)] if args.fast else None
    rows = ex.fig4_rows(sizes=sizes)
    return _emit("Fig. 4: all-reduce latency (s)", rows,
                 ex.fig4_claims(rows), args.csv)


def cmd_fig5(args) -> bool:
    batch = 512 if args.fast else 2048
    rows = ex.fig5_rows(batch_size=batch)
    return _emit(f"Fig. 5: inter-layer phase vs G_inter (batch {batch})",
                 rows, ex.fig5_claims(rows), args.csv)


def cmd_fig6(args) -> bool:
    rows = ex.fig6_rows()
    ok = _emit("Fig. 6: batch-time breakdown", rows, ex.fig6_claims(rows),
               args.csv)
    summary = ex.memory_savings_summary()
    print(_format_rows("Section V-B memory accounting",
                       [{k: round(v, 2) for k, v in summary.items()}]))
    return ok


def cmd_fig7(args) -> bool:
    profile = ex.fig7_profile(batch_size=96 if args.fast else 512)
    print("\n== Fig. 7: two-stream profile "
          "(a = all-reduce chunk, o = optimizer bucket) ==")
    for line in profile["ascii"].splitlines():
        if "gpu0" in line or line.startswith("timeline"):
            print(line)
    rows = [{
        "allreduce_busy_s": profile["allreduce_busy_s"],
        "optimizer_busy_s": profile["optimizer_busy_s"],
        "overlap_s": profile["overlap_s"],
        "allreduce_chunks": profile["n_allreduce_chunks"],
        "optimizer_buckets": profile["n_optimizer_buckets"],
    }]
    return _emit("Fig. 7: overlap statistics", rows,
                 ex.fig7_claims(profile), args.csv)


def cmd_fig8(args) -> bool:
    rows = ex.fig8_rows()
    return _emit("Fig. 8: all-reduce + optimizer vs k", rows,
                 ex.fig8_claims(rows), args.csv)


def cmd_fig9(args) -> bool:
    models = tuple(args.models) if args.models else (
        ("12B",) if args.fast else ("12B", "24B", "50B", "100B"))
    rows = ex.weak_scaling_rows(models=models)
    return _emit("Fig. 9: weak scaling", rows, ex.fig9_claims(rows),
                 args.csv)


def cmd_fig10(args) -> bool:
    curves = ex.fig10_curves(n_batches=10 if args.fast else 40)
    rows = [{"batch": i, "serial": s, "axonn": a, "abs_diff": abs(s - a)}
            for i, (s, a) in enumerate(zip(curves["serial"],
                                           curves["axonn"]))]
    return _emit("Fig. 10: loss curves", rows, ex.fig10_claims(curves),
                 args.csv)


def cmd_fig11(args) -> bool:
    counts = (48, 96) if args.fast else (48, 96, 192, 384)
    rows = ex.strong_scaling_rows(gpu_counts=counts)
    return _emit("Fig. 11: strong scaling", rows, ex.fig11_claims(rows),
                 args.csv)


def cmd_table1(args) -> bool:
    rows = ex.table1_rows()
    return _emit("Table I: model zoo", rows, ex.table1_claims(rows),
                 args.csv)


def cmd_table2(args) -> bool:
    models = tuple(args.models) if args.models else (
        ("12B",) if args.fast else ("12B", "24B", "50B", "100B"))
    rows = ex.table2_rows(models=models)
    return _emit("Table II: tuned hyperparameters", rows,
                 ex.table2_claims(rows), args.csv)


def cmd_ablations(args) -> bool:
    ok = True
    ok &= _emit("Backend ablation", ex.backend_ablation(), None, None)
    ok &= _emit("Placement ablation", ex.placement_ablation(), None, None)
    ok &= _emit("pipeline_limit ablation", ex.pipeline_limit_ablation(),
                None, None)
    ok &= _emit("Schedule ablation", ex.schedule_ablation(), None, None)
    ok &= _emit("Bucket-size ablation", ex.bucket_size_ablation(),
                None, None)
    ok &= _emit("Scheduling-under-jitter ablation",
                ex.scheduling_jitter_ablation(), None, None)
    ok &= _emit("Full-grid validation", ex.full_grid_validation(),
                None, args.csv)
    return ok


# -- trace: observability over a small scenario -------------------------------

def _trace_sim(fast: bool):
    """One memopt batch on the discrete-event substrate, 2x2 grid."""
    from .cluster import Machine, summit
    from .core import AxoNNConfig, WEAK_SCALING_MODELS, simulate_batch
    from .obs import from_sim_tracer
    cfg = AxoNNConfig(
        spec=WEAK_SCALING_MODELS["12B"], num_gpus=4, g_inter=2, g_data=2,
        microbatch_size=1, batch_size=8 if fast else 16, memopt=True)
    machine = Machine(spec=summit(1), trace=True)
    simulate_batch(cfg, machine=machine)
    return from_sim_tracer(machine.tracer)


def _trace_runtime(fast: bool):
    """One real-numerics batch on the functional runtime, 2x2 grid."""
    import numpy as np
    from .nn import GPTConfig
    from .obs import RuntimeTracer
    from .runtime import AxoNNTrainer
    cfg = GPTConfig(vocab_size=32, seq_len=8, n_layer=4, n_head=2,
                    hidden=12, dropout=0.0, init_seed=7)
    tracer = RuntimeTracer()
    trainer = AxoNNTrainer(cfg, g_inter=2, g_data=2,
                           microbatch_size=2 if fast else 1, tracer=tracer)
    rng = np.random.default_rng(7)
    x = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
    y = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
    trainer.train_batch(x, y)
    return tracer.spans


def cmd_trace(args) -> bool:
    """Run a small scenario with tracing; write Chrome-trace JSON."""
    from .obs import summarize, write_chrome_trace
    substrates = ["sim", "runtime"] if args.substrate == "both" \
        else [args.substrate]
    for sub in substrates:
        out = args.out
        if len(substrates) > 1:
            stem, dot, ext = out.rpartition(".")
            out = f"{stem}-{sub}.{ext}" if dot else f"{out}-{sub}"
        spans = _trace_sim(args.fast) if sub == "sim" \
            else _trace_runtime(args.fast)
        print(summarize(spans, title=f"{sub} substrate"))
        write_chrome_trace(out, spans)
        print(f"wrote {len(spans)} spans to {out} "
              f"(open in Perfetto / chrome://tracing)\n")
    return True


EXPERIMENTS: Dict[str, Callable] = {
    "fig1": cmd_fig1,
    "fig3": cmd_fig3,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "table1": cmd_table1,
    "table2": cmd_table2,
    "ablations": cmd_ablations,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the AxoNN paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "list", "lint",
                                                       "trace"],
                        help="which artefact to regenerate, 'lint' to run "
                             "the repo-specific static analysis, or 'trace' "
                             "to emit a Chrome-trace of a small scenario")
    parser.add_argument("--fast", action="store_true",
                        help="reduced sizes for a quick look")
    parser.add_argument("--models", nargs="+", default=None,
                        choices=["12B", "24B", "50B", "100B"],
                        help="restrict fig9/table2 to these models")
    parser.add_argument("--csv", default=None,
                        help="also write the rows to this CSV file")
    parser.add_argument("--substrate", default="both",
                        choices=["sim", "runtime", "both"],
                        help="which substrate 'trace' runs on")
    parser.add_argument("--out", default="trace.json",
                        help="Chrome-trace output path for 'trace' "
                             "(suffixed -sim/-runtime when both run)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[name].__doc__ or "").strip()
            print(f"  {name:<10} {doc}")
        print("  all        run every experiment")
        print("  lint       repo-specific AST lint (rules REP001-REP005)")
        print("  trace      Chrome-trace of a small scenario "
              "(--substrate, --out)")
        return 0

    if args.experiment == "lint":
        from .analysis.lint import main as lint_main
        return lint_main([])

    if args.experiment == "trace":
        return 0 if cmd_trace(args) else 1

    targets = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    ok = True
    for name in targets:
        ok = EXPERIMENTS[name](args) and ok
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
