"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig3                 # p2p microbenchmark
    python -m repro fig9 --models 12B    # weak scaling, one model
    python -m repro all --fast           # everything, reduced sizes
    python -m repro fig9 --csv out.csv   # also write the rows as CSV
    python -m repro lint                 # repo-specific AST lint over repro
    python -m repro lint --json          # same, JSON output for CI
    python -m repro trace                # Chrome-trace both substrates
    python -m repro trace --substrate sim --out sim.json
    python -m repro trace --faults       # same scenarios under a fault plan
    python -m repro faults               # fault injection on both substrates
    python -m repro faults --substrate sim --report faults.json
    python -m repro faults --substrate runtime --seed 3
    python -m repro serve                # inference serving, both substrates
    python -m repro serve --fast         # reduced sizes / shorter horizons
    python -m repro serve --substrate sim --csv sweep.csv
    python -m repro train --backend process --ranks 4
    python -m repro train --backend cooperative --ranks 2 --steps 5
    python -m repro train --ranks 2 --g-intra 2   # 4D: tensor-parallel axis
    python -m repro verify               # model-check all comm skeletons
    python -m repro verify --fast        # smaller config sweep (CI)
    python -m repro scaling4d            # best 4D decomposition per cluster

Each command prints the figure's rows as an aligned table plus the paper-
claim checklist, mirroring what the benchmark harness asserts.  ``trace``
runs a small 2x2 hybrid scenario with the observability layer enabled and
writes a Chrome-trace JSON (open in Perfetto or chrome://tracing).
``faults`` runs a deterministic fault plan: on the functional runtime it
crashes ranks mid-batch and checks the recovered loss trajectory is
bit-identical to a fault-free run; on the DES it sweeps MTBF x checkpoint
interval against the Young/Daly optimum.  ``serve`` exercises the
inference-serving layer: on the functional runtime it checks the
continuous-batching pipeline server emits token-for-token what serial
``generate`` emits; on the DES it sweeps offered load against the analytic
roofline and replays a replica-crash failover.  ``train`` runs a few real
training steps on either execution backend — the in-process cooperative
scheduler or the multiprocessing + shared-memory ``process`` backend —
with one pipeline stage per rank, and cross-checks the process backend's
losses against the cooperative ones bit-for-bit.  ``verify`` runs the
pre-run static verification layer: it extracts the communication skeleton
of every built-in rank-program variant (AxoNN, 1F1B, GPipe, serving),
model-checks all interleavings for deadlock-freedom / complete matching /
collective-order consistency, proves the seeded deadlock mutant is caught
with a wait-for-graph counterexample, and self-checks the shared-memory
race detector on synthetic ring traffic plus its torn-write mutant.
``sched`` drives the schedules-as-data subsystem: list the shipped IR
schedule builders with their analytic bubble/memory metrics, search
orderings in the DES under compute jitter, and replay the winner on the
functional substrate with loss equivalence as the acceptance oracle.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Callable, Dict, List, Optional, Sequence

from . import experiments as ex

__all__ = ["main", "EXPERIMENTS"]


def _format_rows(title: str, rows: Sequence[Dict[str, object]]) -> str:
    if not rows:
        return f"\n== {title} ==\n(no rows)\n"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table = [[fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(c), *(len(line[i]) for line in table))
              for i, c in enumerate(columns)]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines = [f"\n== {title} ==", header, "-" * len(header)]
    lines += ["  ".join(v.ljust(w) for v, w in zip(line, widths))
              for line in table]
    return "\n".join(lines)


def _emit(title: str, rows, claims: Optional[Dict[str, bool]],
          csv_path: Optional[str]) -> bool:
    print(_format_rows(title, rows))
    ok = True
    if claims is not None:
        print(f"\n== {title}: paper-claim checklist ==")
        for name, passed in claims.items():
            print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
            ok = ok and passed
    if csv_path:
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        with open(csv_path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=columns)
            writer.writeheader()
            writer.writerows(rows)
        print(f"\nwrote {len(rows)} rows to {csv_path}")
    return ok


# -- commands -----------------------------------------------------------------

def cmd_fig1(args) -> bool:
    from .experiments import pipeline_occupancy, render_occupancy
    occ = pipeline_occupancy(g_inter=4, microbatches=4 if args.fast else 8)
    print("\n== Fig. 1: inter-layer parallelism occupancy ==")
    print(render_occupancy(occ))
    rows = [{"stage": st["stage"], "busy_s": st["busy_s"],
             "idle_fraction": st["idle_fraction"]}
            for st in occ["stages"]]
    return _emit("Fig. 1: per-stage occupancy", rows, None, args.csv)


def cmd_fig3(args) -> bool:
    sizes = [2 ** e for e in range(10, 27, 4)] if args.fast else None
    rows = ex.fig3_rows(sizes=sizes)
    return _emit("Fig. 3: p2p latency (s)", rows, ex.fig3_claims(rows),
                 args.csv)


def cmd_fig4(args) -> bool:
    sizes = [2 ** e for e in range(16, 29, 4)] if args.fast else None
    rows = ex.fig4_rows(sizes=sizes)
    return _emit("Fig. 4: all-reduce latency (s)", rows,
                 ex.fig4_claims(rows), args.csv)


def cmd_fig5(args) -> bool:
    batch = 512 if args.fast else 2048
    rows = ex.fig5_rows(batch_size=batch)
    return _emit(f"Fig. 5: inter-layer phase vs G_inter (batch {batch})",
                 rows, ex.fig5_claims(rows), args.csv)


def cmd_fig6(args) -> bool:
    rows = ex.fig6_rows()
    ok = _emit("Fig. 6: batch-time breakdown", rows, ex.fig6_claims(rows),
               args.csv)
    summary = ex.memory_savings_summary()
    print(_format_rows("Section V-B memory accounting",
                       [{k: round(v, 2) for k, v in summary.items()}]))
    return ok


def cmd_fig7(args) -> bool:
    profile = ex.fig7_profile(batch_size=96 if args.fast else 512)
    print("\n== Fig. 7: two-stream profile "
          "(a = all-reduce chunk, o = optimizer bucket) ==")
    for line in profile["ascii"].splitlines():
        if "gpu0" in line or line.startswith("timeline"):
            print(line)
    rows = [{
        "allreduce_busy_s": profile["allreduce_busy_s"],
        "optimizer_busy_s": profile["optimizer_busy_s"],
        "overlap_s": profile["overlap_s"],
        "allreduce_chunks": profile["n_allreduce_chunks"],
        "optimizer_buckets": profile["n_optimizer_buckets"],
    }]
    return _emit("Fig. 7: overlap statistics", rows,
                 ex.fig7_claims(profile), args.csv)


def cmd_fig8(args) -> bool:
    rows = ex.fig8_rows()
    return _emit("Fig. 8: all-reduce + optimizer vs k", rows,
                 ex.fig8_claims(rows), args.csv)


def cmd_fig9(args) -> bool:
    models = tuple(args.models) if args.models else (
        ("12B",) if args.fast else ("12B", "24B", "50B", "100B"))
    rows = ex.weak_scaling_rows(models=models)
    return _emit("Fig. 9: weak scaling", rows, ex.fig9_claims(rows),
                 args.csv)


def cmd_fig10(args) -> bool:
    curves = ex.fig10_curves(n_batches=10 if args.fast else 40)
    rows = [{"batch": i, "serial": s, "axonn": a, "abs_diff": abs(s - a)}
            for i, (s, a) in enumerate(zip(curves["serial"],
                                           curves["axonn"]))]
    return _emit("Fig. 10: loss curves", rows, ex.fig10_claims(curves),
                 args.csv)


def cmd_fig11(args) -> bool:
    counts = (48, 96) if args.fast else (48, 96, 192, 384)
    rows = ex.strong_scaling_rows(gpu_counts=counts)
    return _emit("Fig. 11: strong scaling", rows, ex.fig11_claims(rows),
                 args.csv)


def cmd_table1(args) -> bool:
    rows = ex.table1_rows()
    return _emit("Table I: model zoo", rows, ex.table1_claims(rows),
                 args.csv)


def cmd_table2(args) -> bool:
    models = tuple(args.models) if args.models else (
        ("12B",) if args.fast else ("12B", "24B", "50B", "100B"))
    rows = ex.table2_rows(models=models)
    return _emit("Table II: tuned hyperparameters", rows,
                 ex.table2_claims(rows), args.csv)


def cmd_ablations(args) -> bool:
    ok = True
    ok &= _emit("Backend ablation", ex.backend_ablation(), None, None)
    ok &= _emit("Placement ablation", ex.placement_ablation(), None, None)
    ok &= _emit("pipeline_limit ablation", ex.pipeline_limit_ablation(),
                None, None)
    ok &= _emit("Schedule ablation", ex.schedule_ablation(), None, None)
    ok &= _emit("Bucket-size ablation", ex.bucket_size_ablation(),
                None, None)
    ok &= _emit("Scheduling-under-jitter ablation",
                ex.scheduling_jitter_ablation(), None, None)
    ok &= _emit("Full-grid validation", ex.full_grid_validation(),
                None, args.csv)
    return ok


# -- trace: observability over a small scenario -------------------------------

def _trace_sim(fast: bool):
    """One memopt batch on the discrete-event substrate, 2x2 grid."""
    from .cluster import Machine, summit
    from .core import AxoNNConfig, WEAK_SCALING_MODELS, simulate_batch
    from .obs import from_sim_tracer
    cfg = AxoNNConfig(
        spec=WEAK_SCALING_MODELS["12B"], num_gpus=4, g_inter=2, g_data=2,
        microbatch_size=1, batch_size=8 if fast else 16, memopt=True)
    machine = Machine(spec=summit(1), trace=True)
    simulate_batch(cfg, machine=machine)
    return from_sim_tracer(machine.tracer)


def _trace_runtime(fast: bool):
    """One real-numerics batch on the functional runtime, 2x2 grid."""
    import numpy as np
    from .nn import GPTConfig
    from .obs import RuntimeTracer
    from .runtime import AxoNNTrainer
    cfg = GPTConfig(vocab_size=32, seq_len=8, n_layer=4, n_head=2,
                    hidden=12, dropout=0.0, init_seed=7)
    tracer = RuntimeTracer()
    trainer = AxoNNTrainer(cfg, g_inter=2, g_data=2,
                           microbatch_size=2 if fast else 1, tracer=tracer)
    rng = np.random.default_rng(7)
    x = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
    y = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
    trainer.train_batch(x, y)
    return tracer.spans


def _demo_plan(seed=None, crash_only=False):
    """The fault plan the CLI demos run: seeded-random, or a fixed small
    scenario.  ``crash_only`` restricts it to rank crashes — the faults
    whose recovery is guaranteed bit-identical (drop/delay/straggler
    faults reorder the message-driven execution, which legitimately
    permutes dropout masks and accumulation order)."""
    from .resilience import Fault, FaultPlan
    if seed is not None:
        return FaultPlan.random(seed, n_ranks=4, n_steps=4)
    crashes = (
        Fault(kind="crash", rank=1, step=1, tick=2),
        Fault(kind="crash", rank=2, step=3, tick=4),
    )
    if crash_only:
        return FaultPlan.of(*crashes)
    return FaultPlan.of(
        *crashes,
        Fault(kind="drop", src=0, dst=1, step=0, count=1),
        Fault(kind="straggler", rank=3, step=2, ticks=2),
    )


def _trace_runtime_faults(fast: bool, plan=None):
    """The runtime trace scenario run under a fault plan: crash, drop and
    straggler faults plus the resulting snapshot/recovery spans."""
    import numpy as np
    from .nn import GPTConfig
    from .obs import RuntimeTracer
    from .resilience import ResilientTrainer
    from .runtime import AxoNNTrainer
    cfg = GPTConfig(vocab_size=32, seq_len=8, n_layer=4, n_head=2,
                    hidden=12, dropout=0.1, init_seed=7)
    tracer = RuntimeTracer()
    trainer = AxoNNTrainer(cfg, g_inter=2, g_data=2, microbatch_size=2,
                           tracer=tracer)
    resilient = ResilientTrainer(trainer, plan or _demo_plan(),
                                 detect_timeout=10)
    rng = np.random.default_rng(7)
    n_batches = 2 if fast else 4
    for _ in range(n_batches):
        x = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
        y = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
        resilient.train_batch(x, y)
    return tracer.spans, resilient


def _trace_sim_faults(fast: bool):
    """A resilient DES run (checkpoints, failures, restarts) as spans."""
    from .resilience import FailureModel, simulate_resilient_run
    model = FailureModel(step_time_s=30.0, checkpoint_write_s=12.0,
                         restart_s=60.0, mtbf_s=900.0, interval_steps=10,
                         total_steps=60 if fast else 240, seed=0)
    spans = []
    simulate_resilient_run(model, spans=spans)
    return spans


def cmd_trace(args) -> bool:
    """Run a small scenario with tracing; write Chrome-trace JSON."""
    from .obs import summarize, write_chrome_trace
    substrates = ["sim", "runtime"] if args.substrate == "both" \
        else [args.substrate]
    for sub in substrates:
        out = args.out
        if len(substrates) > 1:
            stem, dot, ext = out.rpartition(".")
            out = f"{stem}-{sub}.{ext}" if dot else f"{out}-{sub}"
        if args.faults:
            spans = _trace_sim_faults(args.fast) if sub == "sim" \
                else _trace_runtime_faults(args.fast)[0]
        else:
            spans = _trace_sim(args.fast) if sub == "sim" \
                else _trace_runtime(args.fast)
        print(summarize(spans, title=f"{sub} substrate"))
        write_chrome_trace(out, spans)
        print(f"wrote {len(spans)} spans to {out} "
              f"(open in Perfetto / chrome://tracing)\n")
    return True


# -- faults: deterministic fault injection on either substrate ----------------

def _faults_runtime(args) -> Dict:
    """Run the demo plan on the functional runtime and check that the
    recovered loss trajectory is bit-identical to a fault-free run."""
    import numpy as np
    from .nn import GPTConfig
    from .runtime import AxoNNTrainer
    cfg = GPTConfig(vocab_size=32, seq_len=8, n_layer=4, n_head=2,
                    hidden=12, dropout=0.1, init_seed=7)
    plan = _demo_plan(args.seed, crash_only=True)
    if args.plan:
        from .resilience import FaultPlan
        with open(args.plan) as fh:
            plan = FaultPlan.from_json(fh.read())

    rng = np.random.default_rng(7)
    n_batches = 2 if args.fast else 4
    batches = [(rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len)),
                rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len)))
               for _ in range(n_batches)]

    reference = AxoNNTrainer(cfg, g_inter=2, g_data=2, microbatch_size=2)
    ref_losses = [reference.train_batch(x, y).loss for x, y in batches]

    from .resilience import ResilientTrainer
    trainer = AxoNNTrainer(cfg, g_inter=2, g_data=2, microbatch_size=2)
    resilient = ResilientTrainer(trainer, plan, detect_timeout=10)
    losses = [resilient.train_batch(x, y).loss for x, y in batches]

    # Bit-identity is the guarantee for crash faults (recovery replays
    # from a bit-complete snapshot, fault-free).  Delivery faults
    # (drop/delay/straggler) reorder the message-driven execution, which
    # legitimately permutes dropout masks and accumulation order — there
    # the run must merely complete with finite, close losses.
    crash_only = all(f.kind == "crash" for f in plan)
    bit_identical = losses == ref_losses
    max_diff = max((abs(a - b) for a, b in zip(losses, ref_losses)),
                   default=0.0)
    passed = bit_identical if crash_only else (
        all(np.isfinite(losses)) and max_diff < 0.1)
    return {
        "plan": plan.to_dict(),
        "batches": n_batches,
        "crash_only_plan": crash_only,
        "losses": losses,
        "reference_losses": ref_losses,
        "bit_identical": bit_identical,
        "max_abs_loss_diff": max_diff,
        "passed": passed,
        "recoveries": [{
            "step": ev.step, "dead": list(ev.dead),
            "detected_at_tick": ev.detected_at,
            "restored_from": ev.restored_from, "replayed": ev.replayed,
        } for ev in resilient.recoveries],
    }


def cmd_faults(args) -> bool:
    """Deterministic fault injection: recovery on the runtime, MTBF x
    checkpoint-interval vs. Young/Daly on the DES."""
    import json
    substrates = ["runtime", "sim"] if args.substrate == "both" \
        else [args.substrate]
    report: Dict[str, object] = {}
    ok = True

    if "runtime" in substrates:
        result = _faults_runtime(args)
        report["runtime"] = result
        rows = [{"batch": i, "faulty_loss": a, "reference_loss": b,
                 "bit_identical": a == b}
                for i, (a, b) in enumerate(zip(result["losses"],
                                               result["reference_losses"]))]
        _emit("faults: runtime loss trajectory (faulty vs fault-free)",
              rows, None, None)
        if result["recoveries"]:
            _emit("faults: recoveries", result["recoveries"], None, None)
        print("\n== faults: runtime recovery equivalence ==")
        if result["crash_only_plan"]:
            print(f"  [{'PASS' if result['passed'] else 'FAIL'}] "
                  f"post-recovery losses bit-identical to fault-free run "
                  f"({len(result['recoveries'])} recoveries)")
        else:
            print(f"  [{'PASS' if result['passed'] else 'FAIL'}] "
                  f"completed under delivery faults; max |loss delta| = "
                  f"{result['max_abs_loss_diff']:.2e} "
                  f"({len(result['recoveries'])} recoveries; bit-identity "
                  f"is only guaranteed for crash-only plans)")
        ok = ok and result["passed"]

    if "sim" in substrates:
        from .experiments import resilience_claims, resilience_rows
        models = ("12B", "100B") if args.fast else None
        kwargs = dict(seeds=(0, 1)) if args.fast else {}
        rows = resilience_rows(models, **kwargs)
        claims = resilience_claims(rows)
        report["sim"] = {"rows": rows, "claims": claims}
        flat = [{k: v for k, v in r.items() if k != "sweep"} for r in rows]
        ok = _emit("faults: MTBF x checkpoint interval vs Young/Daly",
                   flat, {k: v for k, v in claims.items()
                          if isinstance(v, bool)}, args.csv) and ok

    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, default=float)
        print(f"\nwrote fault report to {args.report}")
    return ok


# -- serve: pipeline-parallel inference serving on both substrates ------------

def _serve_functional(fast: bool, seed: int) -> Dict:
    """Token-equivalence demo: PipelineServer vs serial ``generate``, with
    and without continuous batching."""
    import numpy as np

    from .nn import GPT, GPTConfig, generate
    from .serve import PipelineServer, RequestSpec, make_requests

    cfg = GPTConfig(vocab_size=61, seq_len=48, n_layer=4, n_head=2,
                    hidden=16)
    requests = make_requests(cfg, 6 if fast else 12,
                             RequestSpec(mean_prompt=6, mean_new_tokens=6,
                                         seed=seed))
    model = GPT(cfg)  # same (init_seed, slot) weights as the stage shards
    serial = {
        req.rid: generate(model, req.prompt, req.max_new_tokens,
                          temperature=req.temperature, top_k=req.top_k,
                          rng=np.random.default_rng(req.seed),
                          greedy=req.greedy)
        for req in requests
    }
    batched = PipelineServer(cfg, g_inter=3, max_batch=4).serve(requests)
    sequential = PipelineServer(cfg, g_inter=3, max_batch=1,
                                max_active=1).serve(requests)
    rows = [{
        "rid": req.rid, "prompt": int(np.asarray(req.prompt).size),
        "new_tokens": req.max_new_tokens,
        "sampling": "greedy" if req.greedy else
        f"T={req.temperature:.2f}" + (f",k={req.top_k}" if req.top_k else ""),
        "batched_identical": bool(np.array_equal(batched[req.rid],
                                                 serial[req.rid])),
        "sequential_identical": bool(np.array_equal(sequential[req.rid],
                                                    serial[req.rid])),
    } for req in requests]
    return {
        "rows": rows,
        "passed": all(r["batched_identical"] and r["sequential_identical"]
                      for r in rows),
    }


def cmd_serve(args) -> bool:
    """Inference serving: functional token-equivalence check plus the DES
    load sweep, Little's-law closed loop, and replica failover."""
    import json
    substrates = ["runtime", "sim"] if args.substrate == "both" \
        else [args.substrate]
    seed = args.seed if args.seed is not None else 0
    report: Dict[str, object] = {}
    ok = True

    if "runtime" in substrates:
        result = _serve_functional(args.fast, seed)
        report["runtime"] = result
        _emit("serve: pipeline server vs serial generate "
              "(3-stage pipeline, continuous batching on/off)",
              result["rows"], None, None)
        print("\n== serve: functional equivalence ==")
        print(f"  [{'PASS' if result['passed'] else 'FAIL'}] pipeline "
              "serving is token-for-token identical to serial generate "
              "(greedy + seeded sampling, with and without batching)")
        ok = ok and result["passed"]

    if "sim" in substrates:
        from .experiments import (serving_claims, serving_closed_loop,
                                  serving_failover, serving_rows)
        rows = serving_rows(args.fast, seed=seed)
        closed = serving_closed_loop(args.fast, seed=seed)
        failover = serving_failover(args.fast, seed=seed)
        claims = serving_claims(rows, closed, failover)
        report["sim"] = {"rows": rows, "closed_loop": closed,
                         "failover": failover, "claims": claims}
        ok = _emit("serve: throughput vs offered load "
                   "(DES, V100-calibrated 2-replica pipeline)",
                   rows, None, args.csv) and ok
        _emit("serve: closed-loop Little's law", [closed], None, None)
        ok = _emit("serve: replica failover under a seeded crash",
                   [failover], claims, None) and ok

    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, default=float)
        print(f"\nwrote serving report to {args.report}")
    return ok


# -- fleet: elastic serving fleet on both substrates --------------------------

def _fleet_functional(fast: bool, seed: int) -> Dict:
    """Two live demos over RankTransport: the disaggregated KV-handoff
    server emitting serial-identical tokens, and a real elastic fleet
    scaling 1 -> 2 -> 1 under a flash crowd with zero lost requests."""
    import numpy as np

    from .fleet import DisaggPipelineServer, FleetServer, ReactivePolicy
    from .nn import GPT, GPTConfig, generate
    from .serve import ArrivalSpec, RequestSpec, make_requests

    cfg = GPTConfig(vocab_size=61, seq_len=48, n_layer=4, n_head=2,
                    hidden=16)
    spec = RequestSpec(mean_prompt=6, mean_new_tokens=6, seed=seed)
    requests = make_requests(cfg, 8 if fast else 16, spec)
    model = GPT(cfg)  # same (init_seed, slot) weights as the stage shards

    def serial(req):
        return generate(model, req.prompt, req.max_new_tokens,
                        temperature=req.temperature, top_k=req.top_k,
                        rng=np.random.default_rng(req.seed),
                        greedy=req.greedy)

    disagg = DisaggPipelineServer(cfg, g_prefill=2, g_decode=2,
                                  max_batch=4).serve(requests)
    disagg_rows = [{
        "rid": req.rid, "prompt": int(np.asarray(req.prompt).size),
        "new_tokens": req.max_new_tokens,
        "identical": bool(np.array_equal(disagg[req.rid], serial(req))),
    } for req in requests]

    # a flash crowd at t=2s forces the reactive policy up, the decay back
    # down: every request must come back serial-identical even though the
    # fleet membership changed underneath them
    n_elastic = 30
    elastic_reqs = make_requests(cfg, n_elastic, spec)
    times = ArrivalSpec(rate_per_s=1.0, seed=5, kind="flash",
                        flash_at_s=2.0, flash_factor=15.0) \
        .sample_times(horizon_s=12.0)
    trace = list(zip(times, elastic_reqs))[:n_elastic]
    fleet = FleetServer(cfg, ReactivePolicy(min_replicas=1, max_replicas=2,
                                            cooldown_s=2.0),
                        g_inter=2, max_batch=4, serve_per_round=2)
    report = fleet.run(trace)
    elastic_identical = all(
        np.array_equal(report.results[req.rid], serial(req))
        for _, req in trace if req.rid in report.results)
    kinds = [e.kind for e in report.events]
    return {
        "disagg_rows": disagg_rows,
        "elastic": {
            "requests": len(trace),
            "admitted": report.n_admitted,
            "completed": report.n_completed,
            "lost": report.n_lost,
            "rounds": report.rounds,
            "replica_rounds": report.replica_rounds,
            "max_replicas": report.max_replicas_seen,
            "scale_events": [(e.t_s, e.kind, e.n_from, e.n_to)
                             for e in report.events],
            "token_identical": elastic_identical,
        },
        "passed": (all(r["identical"] for r in disagg_rows)
                   and elastic_identical and report.n_lost == 0
                   and "up" in kinds and "down" in kinds),
    }


def cmd_fleet(args) -> bool:
    """Elastic serving fleet: functional disaggregation + scaling demos,
    plus the DES autoscaling-economics, disaggregation and shared-path
    failover scenarios with their acceptance claims."""
    import json
    substrates = ["runtime", "sim"] if args.substrate == "both" \
        else [args.substrate]
    seed = args.seed if args.seed is not None else 0
    report: Dict[str, object] = {}
    ok = True

    if "runtime" in substrates:
        result = _fleet_functional(args.fast, seed)
        report["runtime"] = result
        _emit("fleet: disaggregated prefill/decode server vs serial "
              "generate (2 prefill + 2 decode ranks)",
              result["disagg_rows"], None, None)
        el = result["elastic"]
        _emit("fleet: elastic 1 -> 2 -> 1 under a flash crowd",
              [{k: v for k, v in el.items() if k != "scale_events"}],
              None, None)
        for t, kind, n_from, n_to in el["scale_events"]:
            print(f"    t={t:5.1f}s  {kind:<5} {n_from} -> {n_to}")
        print("\n== fleet: functional equivalence ==")
        print(f"  [{'PASS' if result['passed'] else 'FAIL'}] KV handoff "
              "and elastic membership changes are invisible in the "
              "tokens: everything matches serial generate, nothing lost")
        ok = ok and result["passed"]

    if "sim" in substrates:
        from .experiments import (autoscaling_rows, disagg_rows,
                                  fleet_claims, fleet_failover)
        auto = autoscaling_rows(args.fast, seed=seed)
        disagg = disagg_rows(args.fast, seed=seed)
        failover = fleet_failover(args.fast, seed=seed)
        claims = fleet_claims(auto, disagg, failover)
        report["sim"] = {"autoscaling": auto, "disaggregation": disagg,
                         "failover": failover, "claims": claims}
        ok = _emit("fleet: autoscaling economics under diurnal traffic "
                   "(DES, static vs reactive vs predictive)",
                   auto, None, args.csv) and ok
        _emit("fleet: prefill/decode disaggregation at equal hardware "
              "(8 replicas, decode-heavy mix)", disagg, None, None)
        ok = _emit("fleet: crash + planned retire on the shared "
                   "decommission path", [failover], claims, None) and ok

    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, default=float)
        print(f"\nwrote fleet report to {args.report}")
    return ok


# -- train: real training steps on either execution backend -------------------

def cmd_train(args) -> bool:
    """A few real training steps on the chosen execution backend; with
    ``--backend process`` each rank is an OS process exchanging ndarray
    activations over shared-memory rings, and the losses are cross-checked
    bit-for-bit against the in-process cooperative backend."""
    import numpy as np
    from .nn import GPTConfig
    from .runtime import BACKENDS, AxoNNTrainer

    ranks = args.ranks
    if ranks < 1:
        print("--ranks must be >= 1")
        return False
    g_intra = args.g_intra
    if g_intra < 1:
        print("--g-intra must be >= 1")
        return False
    n_layer = max(ranks, 2 if args.fast else 4)
    cfg = GPTConfig(vocab_size=64, seq_len=8 if args.fast else 16,
                    n_layer=n_layer, n_head=2,
                    hidden=16 if args.fast else 32,
                    dropout=0.1, init_seed=7)
    steps = args.steps if args.steps is not None else (2 if args.fast else 4)
    rng = np.random.default_rng(11)
    batch = 2 * max(ranks, 2)
    batches = [(rng.integers(0, cfg.vocab_size, (batch, cfg.seq_len)),
                rng.integers(0, cfg.vocab_size, (batch, cfg.seq_len)))
               for _ in range(steps)]

    def run(backend: str):
        trainer = AxoNNTrainer(cfg, g_inter=ranks, g_data=1,
                               g_intra=g_intra,
                               microbatch_size=2, backend=backend)
        try:
            return [trainer.train_batch(x, y) for x, y in batches]
        finally:
            trainer.close()

    world = ranks * g_intra
    print(f"\n== train: {steps} steps, {world} rank(s) "
          f"(g_inter={ranks} x g_intra={g_intra}), backend="
          f"{args.backend} ==")
    reports = run(args.backend)
    rows = [{"step": i, "loss": r.loss, "messages": r.messages}
            for i, r in enumerate(reports)]
    _emit(f"train: loss trajectory ({args.backend})", rows, None, args.csv)
    if args.backend not in BACKENDS:  # argparse already guards; belt+braces
        return False
    if args.backend != "process":
        return all(np.isfinite(r.loss) for r in reports)
    reference = run("cooperative")
    identical = [p.loss == c.loss for p, c in zip(reports, reference)]
    print("\n== train: process vs cooperative backend ==")
    print(f"  [{'PASS' if all(identical) else 'FAIL'}] process-backend "
          f"losses bit-identical to the cooperative backend "
          f"({sum(identical)}/{len(identical)} steps)")
    return all(identical)


def cmd_scaling4d(args) -> bool:
    """DES sweep over 4D decompositions: for each cluster size, simulate
    every ``g_intra x g_inter x g_data`` split and report the fastest
    feasible one."""
    sizes = (8, 16) if args.fast else (8, 16, 32, 64)
    model = args.models[0] if args.models else "12B"
    rows = ex.sweep_4d(cluster_sizes=sizes, model=model)
    best = ex.best_4d_decompositions(rows)
    ok = _emit(f"4D sweep: all decompositions ({model})", rows, None,
               args.csv)
    _emit(f"4D sweep: best decomposition per cluster size ({model})",
          best, None, None)
    return ok


def cmd_verify(args) -> bool:
    """Pre-run static verification: model-check every built-in rank
    program's communication skeleton (deadlock-freedom, complete
    matching, collective order) and self-check the shared-memory race
    detector, including both seeded mutants."""
    from .analysis.model import (builtin_models, check_model,
                                 deadlock_mutant_model)
    from .analysis.races import (check_races, drop_release,
                                 synthetic_ring_events)

    max_world = 4 if args.fast else 8
    max_mb = 2 if args.fast else 4
    models = builtin_models(max_world=max_world, max_microbatches=max_mb)
    ok = True
    total_states = 0
    print(f"\n== model checker: {len(models)} built-in configurations "
          f"(g_inter*g_data <= {max_world}, microbatches <= {max_mb}) ==")
    for model in models:
        result = check_model(model)
        total_states += result.states
        status = "ok" if result.ok else "FAIL"
        print(f"  [{status}] {model.describe():<40} "
              f"states={result.states}")
        if not result.ok:
            ok = False
            for violation in result.violations:
                print(f"      {violation}")
    print(f"  {total_states} interleaving states explored in total")

    print("\n== seeded deadlock mutant (the checker must catch it) ==")
    mutant = check_model(deadlock_mutant_model())
    if mutant.ok or mutant.counterexample is None:
        print("  [FAIL] the deadlocking mutant was NOT caught")
        ok = False
    else:
        cx = mutant.counterexample
        print(f"  [ok] caught after {mutant.states} states; "
              f"counterexample ({len(cx.trace)} ops):")
        for op in cx.trace:
            print(f"      {op}")
        for line in cx.message.splitlines():
            print(f"      {line}")

    print("\n== race detector self-check ==")
    events = synthetic_ring_events()
    clean = check_races(events)
    mutated = check_races(drop_release(events))
    print(f"  [{'ok' if not clean else 'FAIL'}] well-synchronized SPSC "
          f"traffic: {len(clean)} race(s)")
    print(f"  [{'ok' if mutated else 'FAIL'}] torn-write mutant (final "
          f"release dropped): {len(mutated)} race(s)")
    for race in mutated:
        print(f"      {race}")
    if clean or not mutated:
        ok = False

    print(f"\nverify: {'PASS' if ok else 'FAIL'}")
    return ok


def cmd_sched(args) -> bool:
    """Schedules-as-data driver: list the shipped IR schedules with
    their analytic metrics, search orderings in the DES under jitter
    (--search), and replay the winner on the functional substrate with
    the equivalence harness as the acceptance oracle (--replay)."""
    from .sched import SCHEDULE_NAMES, build_schedule
    from .sched.metrics import critical_path, peak_resident_activations
    S = args.ranks
    m = args.microbatches

    do_search = args.search or args.replay
    if args.list or not do_search:
        print(f"\n== shipped schedules as IR ({S} stages, {m} "
              f"microbatches) ==")
        print(f"  {'name':<12} {'tasks':>6} {'chunks':>6} "
              f"{'bubble':>8} {'peak-act':>9}")
        for name in SCHEDULE_NAMES:
            try:
                sched = build_schedule(name, S, m)
            except ValueError as e:
                print(f"  {name:<12} (not buildable here: {e})")
                continue
            cp = critical_path(sched)
            peak = max(peak_resident_activations(sched))
            n_tasks = sum(len(o) for o in sched.rank_order)
            print(f"  {name:<12} {n_tasks:>6} {sched.n_chunks:>6} "
                  f"{cp.bubble_fraction:>8.4f} {peak:>9}")
        if not do_search:
            return True

    from .sched.search import replay_winner, search_schedules
    print(f"\n== DES schedule search ({S} stages, {m} microbatches, "
          f"jitter sigma=0.1) ==")
    ranked = search_schedules(S, m, n_perturbations=4 if args.fast else 8)
    print(f"  {'rank':>4} {'name':<16} {'makespan':>10} {'bubble':>8} "
          f"{'peak-act-MiB':>12}")
    for pos, r in enumerate(ranked[:8]):
        print(f"  {pos:>4} {r.name:<16} {r.sim.makespan:>10.4f} "
              f"{r.sim.bubble_fraction:>8.4f} "
              f"{r.sim.peak_memory / 2**20:>12.1f}")
    winner = ranked[0].schedule
    if not args.replay:
        return True

    print(f"\n== replaying winner {winner.name!r} on the functional "
          f"substrate ==")
    try:
        report = replay_winner(winner)
    except RuntimeError as e:
        print(f"  [FAIL] {e}")
        return False
    losses = ", ".join(f"{l:.6f}" for l in report["losses"])
    print(f"  [ok] losses match flushing 1F1B: {losses}")
    print(f"  peak resident activations per rank: "
          f"{report['peak_resident_activations']}")
    return True


EXPERIMENTS: Dict[str, Callable] = {
    "fig1": cmd_fig1,
    "fig3": cmd_fig3,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "table1": cmd_table1,
    "table2": cmd_table2,
    "ablations": cmd_ablations,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the AxoNN paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "list", "lint",
                                                       "trace", "faults",
                                                       "serve", "fleet",
                                                       "train",
                                                       "verify",
                                                       "sched",
                                                       "scaling4d"],
                        help="which artefact to regenerate, 'lint' to run "
                             "the repo-specific static analysis, 'trace' "
                             "to emit a Chrome-trace of a small scenario, "
                             "'faults' to run a deterministic fault plan "
                             "against either substrate, 'serve' to "
                             "exercise the inference-serving layer, "
                             "'train' to run real steps on an execution "
                             "backend (--backend, --ranks, --steps), or "
                             "'verify' to model-check every built-in "
                             "communication skeleton pre-run, 'sched' to "
                             "list/search/replay IR pipeline schedules, or "
                             "'scaling4d' to sweep 4D decompositions on "
                             "the DES")
    parser.add_argument("--fast", action="store_true",
                        help="reduced sizes for a quick look")
    parser.add_argument("--models", nargs="+", default=None,
                        choices=["12B", "24B", "50B", "100B"],
                        help="restrict fig9/table2 to these models")
    parser.add_argument("--csv", default=None,
                        help="also write the rows to this CSV file")
    parser.add_argument("--substrate", default="both",
                        choices=["sim", "runtime", "both"],
                        help="which substrate 'trace' runs on")
    parser.add_argument("--out", default="trace.json",
                        help="Chrome-trace output path for 'trace' "
                             "(suffixed -sim/-runtime when both run)")
    parser.add_argument("--faults", action="store_true",
                        help="run the 'trace' scenarios under a fault plan "
                             "(crash/drop/straggler + recovery spans)")
    parser.add_argument("--json", action="store_true",
                        help="JSON output for 'lint' (CI/tooling)")
    parser.add_argument("--plan", default=None,
                        help="fault-plan JSON file for 'faults' (default: "
                             "a built-in crash/drop/straggler demo plan)")
    parser.add_argument("--seed", type=int, default=None,
                        help="generate the 'faults' plan with "
                             "FaultPlan.random(seed) instead")
    parser.add_argument("--report", default=None,
                        help="write the 'faults' results as a JSON report")
    parser.add_argument("--backend", default="cooperative",
                        choices=["cooperative", "process"],
                        help="execution backend for 'train': the "
                             "in-process cooperative scheduler or real "
                             "worker processes over shared-memory rings")
    parser.add_argument("--ranks", type=int, default=2,
                        help="pipeline depth for 'train' (g_inter=ranks, "
                             "g_data=1: one pipeline stage per rank)")
    parser.add_argument("--g-intra", type=int, default=1, dest="g_intra",
                        help="tensor-parallel degree for 'train': each "
                             "stage's layers are sharded across g_intra "
                             "ranks (world size = ranks * g_intra)")
    parser.add_argument("--steps", type=int, default=None,
                        help="number of 'train' batches (default 4, "
                             "2 with --fast)")
    parser.add_argument("--list", action="store_true",
                        help="'sched': print the shipped IR schedules "
                             "with their analytic metrics")
    parser.add_argument("--search", action="store_true",
                        help="'sched': search schedule orderings in the "
                             "DES under compute jitter")
    parser.add_argument("--replay", action="store_true",
                        help="'sched': replay the search winner on the "
                             "functional substrate (implies --search)")
    parser.add_argument("--microbatches", type=int, default=4,
                        help="microbatch count for 'sched' (default 4)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[name].__doc__ or "").strip()
            print(f"  {name:<10} {doc}")
        print("  all        run every experiment")
        print("  lint       repo-specific AST lint (rules REP001-REP012)")
        print("  trace      Chrome-trace of a small scenario "
              "(--substrate, --out, --faults)")
        print("  faults     deterministic fault injection on either "
              "substrate (--substrate, --plan, --seed, --report)")
        print("  serve      pipeline inference serving on either substrate "
              "(--substrate, --fast, --csv, --report)")
        print("  fleet      elastic serving fleet: autoscaling, "
              "prefill/decode disaggregation, SLO admission "
              "(--substrate, --fast, --csv, --report)")
        print("  train      real training steps on an execution backend "
              "(--backend, --ranks, --steps, --fast)")
        print("  verify     pre-run communication model checker + race-"
              "detector self-check (--fast)")
        print("  sched      pipeline schedules as data: list IR builders, "
              "search in the DES, replay the winner "
              "(--list, --search, --replay, --ranks, --microbatches)")
        print("  scaling4d  DES sweep of 4D decompositions per cluster "
              "size (--fast, --models, --csv)")
        return 0

    if args.experiment == "lint":
        from .analysis.lint import main as lint_main
        return lint_main(["--json"] if args.json else [])

    if args.experiment == "trace":
        return 0 if cmd_trace(args) else 1

    if args.experiment == "faults":
        return 0 if cmd_faults(args) else 1

    if args.experiment == "serve":
        return 0 if cmd_serve(args) else 1

    if args.experiment == "fleet":
        return 0 if cmd_fleet(args) else 1

    if args.experiment == "train":
        return 0 if cmd_train(args) else 1

    if args.experiment == "verify":
        return 0 if cmd_verify(args) else 1

    if args.experiment == "sched":
        return 0 if cmd_sched(args) else 1

    if args.experiment == "scaling4d":
        return 0 if cmd_scaling4d(args) else 1

    targets = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    ok = True
    for name in targets:
        ok = EXPERIMENTS[name](args) and ok
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
