"""Command-line entry point: ``python -m repro.analysis <subcommand>``.

Subcommands:

* ``lint [paths...]`` — run the repo-specific AST lint (REP001-REP012)
  over the given files/directories (default: the installed ``repro``
  package).  Exit code 1 if any issue is found.  ``--json`` / ``--sarif``
  switch the report format for CI tooling.
* ``rules`` — print the rule catalogue.

The pre-run model checker and race detector live behind
``python -m repro verify`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from .lint import RULES, main as lint_main


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    cmd, rest = argv[0], argv[1:]
    if cmd == "lint":
        return lint_main(rest)
    if cmd == "rules":
        for code in sorted(RULES):
            print(f"  {code}  {RULES[code]}")
        return 0
    print(f"unknown subcommand {cmd!r}; expected 'lint' or 'rules'",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
