"""Opt-in autograd sanitizer for the :class:`~repro.nn.Tensor` tape.

PR 1 introduced ownership-transfer fast paths into the autograd core:
backward closures hand *freshly allocated* arrays to
``Tensor._accumulate_owned`` and skip the defensive copy.  An aliasing
mistake there — passing the upstream gradient ``g``, or a view of a
parent's data — corrupts gradients **without failing any loss-equivalence
test**, because the corruption is often numerically small or
batch-dependent.  This module is the runtime net under that tightrope.

Four detectors, all opt-in (zero overhead when disabled — the hot paths in
:mod:`repro.nn.tensor` test a single ``enabled`` attribute, mirroring
:mod:`repro.perf.counters`):

* **Ownership / aliasing** — every ``_accumulate_owned(grad)`` call is
  checked with ``np.may_share_memory`` against the upstream gradient being
  propagated and against the destination tensor's own buffer.  Legitimate
  closures always allocate fresh arrays, so any shared base is a contract
  violation and raises :class:`OwnershipError` naming the op.

* **Mutation-after-save** (PyTorch-style version counters) — when a graph
  node is created, the sanitizer snapshots each parent's version counter
  and a cheap content fingerprint; the snapshot is re-checked just before
  the node's backward runs.  In-place mutation of a saved tensor between
  forward and backward raises :class:`MutationError`.  Code that mutates
  ``Tensor.data`` in place can call :meth:`~repro.nn.Tensor.bump_version`
  to make the detection exact; the fingerprint catches un-annotated
  mutations too.

* **Anomaly mode** — with :func:`detect_anomaly`, the first op whose
  forward output contains NaN/inf raises :class:`AnomalyError` naming that
  op, and non-finite gradients are caught as they enter each backward.

* **Graph hygiene** — running the same node's backward twice (double
  backward without re-running forward) raises :class:`GraphError`;
  :meth:`AutogradSanitizer.watch_graphs` reports interior nodes that were
  created but never backwarded and are still alive (leaked graphs).

Usage::

    from repro.analysis import sanitize, detect_anomaly

    with sanitize():             # ownership + mutation + graph checks
        loss = model(x, targets=y)[1]
        loss.backward()

    with detect_anomaly():       # additionally pinpoint the first NaN op
        ...
"""

from __future__ import annotations

import contextlib
import gc
import weakref
from typing import Any, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "AnomalyError",
    "AutogradSanitizer",
    "GraphError",
    "GraphWatch",
    "MutationError",
    "OwnershipError",
    "SanitizerError",
    "detect_anomaly",
    "sanitize",
    "sanitizer",
]


class SanitizerError(RuntimeError):
    """Base class for every sanitizer finding."""


class OwnershipError(SanitizerError):
    """``_accumulate_owned`` received an array it does not own."""


class MutationError(SanitizerError):
    """A tensor saved for backward was mutated before backward ran."""


class AnomalyError(SanitizerError):
    """An op produced (or received) non-finite values."""


class GraphError(SanitizerError):
    """Graph misuse: double backward or a leaked graph."""


def _op_name(backward: Any) -> str:
    """Derive the user-facing op name from a backward closure.

    Closures are defined as ``backward`` inside the op function, so the
    qualname looks like ``softmax.<locals>.backward`` or
    ``Tensor.__mul__.<locals>.backward`` — the op is the component before
    ``.<locals>.``.
    """
    qual = getattr(backward, "__qualname__", "") or \
        getattr(backward, "__name__", "op")
    qual = qual.rsplit(".<locals>.", 1)[0]
    return qual.split(".")[-1] or "op"


def _fingerprint(arr: np.ndarray) -> Tuple[Any, ...]:
    """Cheap content fingerprint: shape + a strided byte sample.

    Byte comparison (not value comparison) so NaNs fingerprint stably.
    ``reshape(-1)`` copies for non-contiguous arrays, which only makes the
    sample a faithful snapshot.
    """
    if arr.size == 0:
        return (arr.shape, b"")
    flat = arr.reshape(-1)
    stride = max(1, flat.shape[0] // 64)
    return (arr.shape, flat[::stride].tobytes())


def _all_finite(arr: np.ndarray) -> bool:
    if not np.issubdtype(arr.dtype, np.floating) and \
            not np.issubdtype(arr.dtype, np.complexfloating):
        return True
    return bool(np.isfinite(arr).all())


class GraphWatch:
    """Collects weak references to interior nodes created while active."""

    def __init__(self, san: "AutogradSanitizer") -> None:
        self._san = san
        self._refs: List[weakref.ref] = []

    def _track(self, node: Any) -> None:
        self._refs.append(weakref.ref(node))

    def created(self) -> int:
        """Number of interior nodes created while watching."""
        return len(self._refs)

    def leaked(self) -> List[Any]:
        """Interior nodes still alive whose backward never ran.

        A non-empty result after the training step finished means a graph
        (and every activation it pins) is being kept alive — the
        out-of-memory bug class in long pipelines.
        """
        gc.collect()
        out = []
        for ref in self._refs:
            node = ref()
            if node is not None and node not in self._san._consumed:
                out.append(node)
        return out


class AutogradSanitizer:
    """Process-wide sanitizer state consulted by the autograd hot paths."""

    def __init__(self) -> None:
        #: master switch — the only attribute the hot paths read when off
        self.enabled = False
        #: additionally check forward outputs / gradients for NaN/inf
        self.anomaly = False
        # node -> [(parent, saved_version, saved_fingerprint), ...]
        self._records: "weakref.WeakKeyDictionary[Any, list]" = \
            weakref.WeakKeyDictionary()
        self._consumed: "weakref.WeakSet[Any]" = weakref.WeakSet()
        self._watch: Optional[GraphWatch] = None
        # the upstream gradient / op currently propagating in backward()
        self._current_g: Optional[np.ndarray] = None
        self._current_op: Optional[str] = None

    # -- hooks called from repro.nn.tensor ---------------------------------
    def on_node_created(self, node: Any, parents: Sequence[Any],
                        backward: Any) -> None:
        """Snapshot parents of a freshly recorded op node."""
        if self.anomaly and not _all_finite(node.data):
            raise AnomalyError(
                f"op '{_op_name(backward)}' produced non-finite values in "
                f"its forward output (shape {node.data.shape})")
        self._records[node] = [
            (p, getattr(p, "_version", 0), _fingerprint(p.data))
            for p in parents
        ]
        if self._watch is not None:
            self._watch._track(node)

    def before_backward_node(self, node: Any) -> None:
        """Checks run just before ``node._backward(node.grad)``."""
        op = _op_name(node._backward)
        if node in self._consumed:
            raise GraphError(
                f"double backward through op '{op}': this node's backward "
                f"already ran and its saved buffers were released; rerun "
                f"the forward pass to build a fresh graph")
        if self.anomaly and node.grad is not None and \
                not _all_finite(node.grad):
            raise AnomalyError(
                f"non-finite gradient entering backward of op '{op}'")
        for parent, version, fp in self._records.get(node, ()):
            if getattr(parent, "_version", 0) != version or \
                    _fingerprint(parent.data) != fp:
                raise MutationError(
                    f"a tensor saved for the backward of op '{op}' was "
                    f"mutated in place after being saved (shape "
                    f"{parent.data.shape}); clone it before mutating, or "
                    f"move the mutation after backward()")
        self._current_op = op
        self._current_g = node.grad

    def after_backward_node(self, node: Any) -> None:
        self._consumed.add(node)
        self._current_g = None
        self._current_op = None

    def check_owned(self, target: Any, grad: np.ndarray) -> None:
        """Validate the ownership-transfer contract of
        ``Tensor._accumulate_owned``."""
        op = self._current_op or "<unknown op>"
        g = self._current_g
        if g is not None and np.may_share_memory(grad, g):
            raise OwnershipError(
                f"op '{op}': backward passed the upstream gradient 'g' (or "
                f"a view of it) to _accumulate_owned; the owned variant "
                f"requires a freshly allocated array — use _accumulate, or "
                f"allocate a copy (lint rule REP001)")
        if np.may_share_memory(grad, target.data):
            raise OwnershipError(
                f"op '{op}': the gradient handed to _accumulate_owned "
                f"aliases the parent tensor's own data buffer; accumulating "
                f"would silently corrupt the parameters (lint rule REP001)")

    # -- lifecycle ---------------------------------------------------------
    def reset(self) -> None:
        """Drop all snapshots and consumption records."""
        self._records = weakref.WeakKeyDictionary()
        self._consumed = weakref.WeakSet()
        self._current_g = None
        self._current_op = None

    @contextlib.contextmanager
    def watch_graphs(self) -> Iterator[GraphWatch]:
        """Track interior nodes created in the block for leak reporting."""
        watch = GraphWatch(self)
        prev = self._watch
        self._watch = watch
        try:
            yield watch
        finally:
            self._watch = prev


#: process-wide sanitizer instance the autograd hot paths consult
sanitizer = AutogradSanitizer()


@contextlib.contextmanager
def sanitize(anomaly: bool = False) -> Iterator[AutogradSanitizer]:
    """Enable the sanitizer (ownership, mutation and graph checks) for the
    duration of the block; ``anomaly=True`` adds NaN/inf pinpointing."""
    prev_enabled, prev_anomaly = sanitizer.enabled, sanitizer.anomaly
    sanitizer.enabled = True
    sanitizer.anomaly = anomaly or sanitizer.anomaly
    try:
        yield sanitizer
    finally:
        sanitizer.enabled = prev_enabled
        sanitizer.anomaly = prev_anomaly
        sanitizer.reset()


def detect_anomaly() -> Any:
    """Shorthand for :func:`sanitize` with anomaly mode on."""
    return sanitize(anomaly=True)
