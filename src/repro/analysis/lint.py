"""Repo-specific AST lint rules.

Generic linters cannot see this repo's contracts; these rules can.  Each
rule encodes an invariant that a refactor could silently break and whose
breakage the test suite may not catch:

* **REP001** — never pass the upstream gradient ``g`` (or a view of it, or
  a view of a parent tensor's ``.data``) to ``_accumulate_owned``.  The
  owned variant skips the defensive copy and takes ownership; an aliased
  argument corrupts gradients without failing any loss-equivalence test.
  This is the static twin of the runtime check in
  :mod:`repro.analysis.sanitizer` and the documented hot-path contract in
  :mod:`repro.nn.tensor`.

* **REP002** — rank programs only ``yield RECV`` or
  ``yield recv_within(...)``.  A function that yields either anywhere is a
  rank program for the cooperative transport; any other yielded value is a
  protocol error at runtime (a bare ``yield`` after ``return`` — the
  make-me-a-generator idiom — is allowed).

* **REP003** — no unseeded randomness: ``np.random.default_rng()`` without
  a seed and the legacy global ``np.random.*`` API both break the
  bit-reproducibility the serial-vs-parallel equivalence tests rely on.

* **REP004** — every ``env.process(...)`` call passes ``name=``.  Unnamed
  simulation processes make trace output and deadlock diagnostics
  unreadable at scale.

* **REP005** — a ``res.request()`` grant that a process waits on
  (``yield req``) must be protected by a ``try``/``finally`` whose
  ``finally`` calls ``.release(...)``.  A process interrupted or closed
  while suspended on the yield otherwise leaks every resource it already
  holds *and* leaves the pending request rotting in the queue — the
  ``Fabric.transfer`` leak this rule was extracted from.  Yielding a
  ``request()`` call directly is always flagged: the grant is unnamed, so
  no ``finally`` can release it.

* **REP006** — a rank program that performs a *timed* receive
  (``yield recv_within(...)``) must do so inside a ``try`` that handles
  ``TimeoutError`` or ``RankFailure``.  A timed receive exists precisely
  because the channel can be severed by a fault plan; letting the timeout
  escape tears down the whole batch with an unhandled exception instead of
  triggering the program's degraded path.

* **REP007** — serving RNG provenance: inside :mod:`repro.serve` (any path
  with a ``serve`` component), every ``np.random.default_rng(...)`` call
  must be built from something recognizably a seed — an integer literal or
  an expression mentioning a ``*seed*``-named variable/attribute.  Workload
  arrival times and request sampling streams feed the serving equivalence
  and latency claims; an RNG seeded from ambient state (time, os.urandom,
  another generator) silently de-determinizes them.

* **REP008** — transport payloads must be data, not code: an argument to
  a ``send(...)``/``.send(...)`` call may not be a lambda, a generator
  expression, or a locally ``def``-ed function.  The cooperative transport
  would happily deliver such a payload in-process, but the process backend
  pickles every payload across a shared-memory ring — closures and
  generators do not pickle, so the same rank program would work on one
  backend and explode on the other.  This is the static twin of the
  runtime ``_payload_ok`` check in :mod:`repro.runtime.parallel`.

* **REP009** — no blocking calls between a ``send(...)`` and the matching
  ``yield RECV``: a rank program that calls ``time.sleep``, ``input``, or
  blocking subprocess / ``os.wait*`` / ``select`` APIs while its own send
  is still in flight stalls the cooperative scheduler's sweep — every
  rank shares one thread, so a program that blocks outside a yield holds
  up delivery for the whole world.  Blocking work belongs before the send
  or after the receive resumes the program.

* **REP010** — tensor-parallel collectives must name their group and keep
  the op/direction pairing canonical.  The protocol verifier proves
  "every member of a TP group records the identical collective sequence"
  *per group key*: a ``tp_*`` record whose key omits the group collapses
  distinct groups into one stream and the order check silently compares
  the wrong ranks.  Three shapes are checked: a raw sink call recording a
  ``tp_*`` op must mention the group in its arguments; a
  ``record_collective`` wrapper definition (the TPComm signature, with a
  ``direction`` parameter) must forward a group-naming key to the sink;
  and a wrapper-style call ``record_collective("tp_allgather", "bwd",
  ...)`` that pairs an op with the wrong direction is flagged — lead and
  followers derive their identical per-member record order from that
  pairing (weight all-gather is forward, gradient reduce-scatter is
  backward).

* **REP011** — schedule code must emit IR, not hand-rolled rank loops.
  The schedules-as-data contract is that everything under a ``sched``
  package is *data* (task tuples + dependency edges) consumed by the one
  compiler in ``repro/sched/compile.py``: a builder that directly
  ``yield RECV``-drives a transport, or yields the flushing planes
  ``"F"`` / ``"B"``, has silently become a second compiler whose control
  flow the validator and the model checker never see.  Flagged for any
  function inside a ``sched`` directory other than ``compile.py``;
  legitimate exceptions carry a ``# lint-ok: REP011`` suppression.

* **REP012** — fleet policy code must be replayable: inside
  :mod:`repro.fleet`, no ambient wall-clock reads (``time.time``,
  ``time.monotonic``, ``datetime.now`` and friends) and no stdlib
  ``random.*`` draws; RNGs must be built from an explicit seed (the
  REP007 provenance test).  Autoscaling decisions are a pure function of
  the :class:`~repro.fleet.policy.FleetObservation` — its ``now_s`` field
  is the only clock — so a policy smuggling in real time or hidden RNG
  state would diverge the DES from the functional fleet and break the
  scale-event determinism test.

Suppression: append ``# lint-ok: REP003 <reason>`` to the offending line
(bare ``# lint-ok`` suppresses every rule on that line).

Run with ``python -m repro.analysis lint <paths>`` (also surfaced as
``python -m repro lint``), or via the opt-in ``pytest -m lint`` gate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence, Set,
                    Tuple)

__all__ = ["LintIssue", "RULES", "lint_paths", "lint_source", "main"]

RULES: Dict[str, str] = {
    "REP001": "never pass the upstream gradient g (or a view of it / of a "
              "parent's .data) to _accumulate_owned",
    "REP002": "rank programs may only `yield RECV`",
    "REP003": "no unseeded randomness (np.random.default_rng() without a "
              "seed, or the legacy np.random.* API)",
    "REP004": "every env.process(...) call must pass name=",
    "REP005": "a yielded res.request() grant must sit inside try/finally "
              "with a .release(...) in the finally (interrupt-safe hold)",
    "REP006": "a `yield recv_within(...)` timed receive must be inside a "
              "try that handles TimeoutError or RankFailure",
    "REP007": "serving RNGs (repro.serve) must be built from an explicit "
              "seed: an int literal or a *seed*-named variable/attribute",
    "REP008": "send(...) payloads must be picklable data (ndarrays, "
              "scalars, containers) — never lambdas, generator "
              "expressions, or locally defined functions",
    "REP009": "rank programs must not call time.sleep / blocking I/O "
              "between a send(...) and the matching yield RECV",
    "REP010": "tp_* collective records must carry a group-naming key and "
              "pair ops with their protocol direction (tp_allgather/fwd, "
              "tp_reduce_scatter/bwd) so every group member records the "
              "same order",
    "REP011": "schedule builders must emit IR: no raw `yield RECV` loops "
              "or plane-constant yields outside repro.sched.compile",
    "REP012": "fleet policy code (repro.fleet) must be replayable: no "
              "wall-clock reads, no stdlib random.* draws, and RNGs built "
              "from an explicit seed — the FleetObservation's now_s is "
              "the only clock",
}

SUPPRESS_MARK = "lint-ok"


@dataclass(frozen=True)
class LintIssue:
    """One finding: ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} " \
               f"{self.message}"


# -- suppression -------------------------------------------------------------

def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> set of suppressed codes (None = all codes)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), 1):
        if "#" not in line or SUPPRESS_MARK not in line:
            continue
        comment = line.split("#", 1)[1]
        if SUPPRESS_MARK not in comment:
            continue
        after = comment.split(SUPPRESS_MARK, 1)[1].lstrip(": ")
        codes = {tok.strip(",") for tok in after.split()
                 if tok.strip(",").startswith("REP")}
        out[lineno] = codes or None
    return out


# -- scope helpers -----------------------------------------------------------

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """All AST nodes of a function body, excluding nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNCTION_NODES + (ast.Lambda,)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# -- REP001 ------------------------------------------------------------------

#: ndarray methods that return views of their receiver
_VIEW_METHODS = {"reshape", "transpose", "swapaxes", "ravel", "squeeze",
                 "view"}
#: numpy functions that can return views of their first argument
_VIEW_FUNCS = {"transpose", "swapaxes", "expand_dims", "broadcast_to",
               "asarray", "asanyarray", "atleast_1d", "atleast_2d",
               "reshape", "squeeze", "ravel"}
#: ndarray attributes that alias the receiver
_VIEW_ATTRS = {"T", "flat", "real", "imag"}


def _is_upstream_view(node: ast.AST, gname: str) -> bool:
    """Does ``node`` evaluate to ``g`` or a view of it (conservatively)?"""
    if isinstance(node, ast.Name):
        return node.id == gname
    if isinstance(node, ast.Subscript):
        return _is_upstream_view(node.value, gname)
    if isinstance(node, ast.Attribute):
        if node.attr in _VIEW_ATTRS:
            return _is_upstream_view(node.value, gname)
        return False
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id == "_unbroadcast" and node.args:
            # _unbroadcast may return its input unchanged (documented).
            return _is_upstream_view(node.args[0], gname)
        if isinstance(fn, ast.Attribute):
            if fn.attr in _VIEW_METHODS and _is_upstream_view(fn.value, gname):
                return True
            if (fn.attr in _VIEW_FUNCS and isinstance(fn.value, ast.Name)
                    and fn.value.id in ("np", "numpy") and node.args):
                return _is_upstream_view(node.args[0], gname)
    return False


def _is_parent_data_view(node: ast.AST) -> bool:
    """Does ``node`` evaluate to some tensor's ``.data`` or a view of it?"""
    if isinstance(node, ast.Attribute):
        if node.attr == "data":
            return True
        if node.attr in _VIEW_ATTRS:
            return _is_parent_data_view(node.value)
        return False
    if isinstance(node, ast.Subscript):
        return _is_parent_data_view(node.value)
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Attribute):
            if fn.attr in _VIEW_METHODS and _is_parent_data_view(fn.value):
                return True
            if (fn.attr in _VIEW_FUNCS and isinstance(fn.value, ast.Name)
                    and fn.value.id in ("np", "numpy") and node.args):
                return _is_parent_data_view(node.args[0])
    return False


def _check_rep001(fn: ast.AST, issues: List[LintIssue], path: str) -> None:
    args = getattr(fn, "args", None)
    first = args.args[0].arg if args and args.args else ""
    name = getattr(fn, "name", "")
    if name != "backward" and first != "g":
        return
    gname = first or "g"
    for node in _own_nodes(fn):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_accumulate_owned"
                and node.args):
            continue
        arg = node.args[0]
        if _is_upstream_view(arg, gname):
            issues.append(LintIssue(
                path, node.lineno, node.col_offset, "REP001",
                f"the upstream gradient {gname!r} (or a view of it) is "
                f"passed to _accumulate_owned; ownership transfer requires "
                f"a freshly allocated array — use _accumulate instead"))
        elif _is_parent_data_view(arg):
            issues.append(LintIssue(
                path, node.lineno, node.col_offset, "REP001",
                "a view of a tensor's .data buffer is passed to "
                "_accumulate_owned; the accumulated gradient would alias "
                "live parameter/activation memory"))


# -- REP002 ------------------------------------------------------------------

def _is_recv_marker(value: Optional[ast.AST]) -> bool:
    """``RECV`` or ``recv_within(...)`` — the two legal yield requests."""
    if isinstance(value, ast.Name) and value.id == "RECV":
        return True
    return _is_timed_recv(value)


def _is_timed_recv(value: Optional[ast.AST]) -> bool:
    if not isinstance(value, ast.Call):
        return False
    fn = value.func
    name = fn.id if isinstance(fn, ast.Name) else \
        fn.attr if isinstance(fn, ast.Attribute) else None
    return name == "recv_within"


def _is_rank_program(fn: ast.AST) -> Tuple[bool, List[ast.AST]]:
    yields = [n for n in _own_nodes(fn)
              if isinstance(n, (ast.Yield, ast.YieldFrom))]
    is_rank = any(isinstance(y, ast.Yield) and _is_recv_marker(y.value)
                  for y in yields)
    return is_rank, yields


def _check_rep002(fn: ast.AST, issues: List[LintIssue], path: str) -> None:
    is_rank, yields = _is_rank_program(fn)
    if not is_rank:
        return
    for y in yields:
        if isinstance(y, ast.YieldFrom):
            issues.append(LintIssue(
                path, y.lineno, y.col_offset, "REP002",
                "rank programs may not use `yield from`; every suspension "
                "point must be an explicit `yield RECV` / "
                "`yield recv_within(...)`"))
        elif y.value is not None and not _is_recv_marker(y.value):
            issues.append(LintIssue(
                path, y.lineno, y.col_offset, "REP002",
                "rank programs may only `yield RECV` or "
                "`yield recv_within(...)` (a bare `yield` after `return` "
                "is allowed as the generator marker)"))


# -- REP003 ------------------------------------------------------------------

_LEGACY_RANDOM = {"rand", "randn", "random", "random_sample", "randint",
                  "choice", "shuffle", "permutation", "seed", "normal",
                  "uniform", "standard_normal"}


def _dotted(node: ast.AST) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return parts[::-1]


def _check_rep003(tree: ast.AST, issues: List[LintIssue], path: str) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _dotted(node.func)
        if len(chain) != 3 or chain[0] not in ("np", "numpy") or \
                chain[1] != "random":
            continue
        leaf = chain[2]
        if leaf == "default_rng":
            if not node.args and not node.keywords:
                issues.append(LintIssue(
                    path, node.lineno, node.col_offset, "REP003",
                    "np.random.default_rng() without a seed breaks "
                    "bit-reproducibility; thread an explicit seed or "
                    "Generator through"))
        elif leaf in _LEGACY_RANDOM:
            issues.append(LintIssue(
                path, node.lineno, node.col_offset, "REP003",
                f"legacy global np.random.{leaf}() draws from hidden "
                f"process-wide state; use an explicitly seeded "
                f"np.random.Generator"))


# -- REP004 ------------------------------------------------------------------

def _check_rep004(tree: ast.AST, issues: List[LintIssue], path: str) -> None:
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "process"):
            continue
        owner = node.func.value
        is_env = (isinstance(owner, ast.Name) and owner.id == "env") or \
                 (isinstance(owner, ast.Attribute) and owner.attr == "env")
        if not is_env:
            continue
        if not any(kw.arg == "name" for kw in node.keywords):
            issues.append(LintIssue(
                path, node.lineno, node.col_offset, "REP004",
                "env.process(...) without name=; unnamed processes make "
                "traces and deadlock diagnostics unreadable"))


# -- REP005 ------------------------------------------------------------------

def _is_request_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "request")


def _finalbody_releases(try_node: ast.Try) -> bool:
    for stmt in try_node.finalbody:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "release"):
                return True
    return False


def _expr_yields(node: ast.AST) -> Iterator[ast.Yield]:
    """Yield expressions in ``node``, excluding nested function bodies."""
    stack: List[ast.AST] = [node]
    while stack:
        n = stack.pop()
        if isinstance(n, _FUNCTION_NODES + (ast.Lambda,)):
            continue
        if isinstance(n, ast.Yield):
            yield n
        stack.extend(ast.iter_child_nodes(n))


def _check_rep005(fn: ast.AST, issues: List[LintIssue], path: str) -> None:
    # Names bound to an X.request(...) result anywhere in this function.
    grant_names: Set[str] = set()
    for node in _own_nodes(fn):
        if isinstance(node, ast.Assign) and _is_request_call(node.value):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    grant_names.add(tgt.id)
        elif isinstance(node, ast.NamedExpr) and \
                _is_request_call(node.value):
            grant_names.add(node.target.id)
    if not grant_names and not any(
            _is_request_call(y.value)
            for stmt in getattr(fn, "body", [])
            for y in _expr_yields(stmt)
            if y.value is not None):
        return

    found: List[Tuple[ast.Yield, bool]] = []

    def visit(stmts: List[ast.stmt], protected: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, _FUNCTION_NODES + (ast.ClassDef,)):
                continue
            if isinstance(stmt, ast.Try):
                inner = protected or _finalbody_releases(stmt)
                visit(stmt.body, inner)
                for handler in stmt.handlers:
                    visit(handler.body, protected)
                visit(stmt.orelse, inner)
                visit(stmt.finalbody, protected)
            elif isinstance(stmt, (ast.If, ast.For, ast.While, ast.With)):
                for field in ("test", "iter"):
                    expr = getattr(stmt, field, None)
                    if expr is not None:
                        found.extend((y, protected)
                                     for y in _expr_yields(expr))
                if isinstance(stmt, ast.With):
                    for item in stmt.items:
                        found.extend((y, protected)
                                     for y in _expr_yields(item.context_expr))
                visit(stmt.body, protected)
                visit(getattr(stmt, "orelse", []), protected)
            else:
                found.extend((y, protected) for y in _expr_yields(stmt))

    visit(list(getattr(fn, "body", [])), False)
    for y, protected in found:
        value = y.value
        if value is None:
            continue
        target = value.target if isinstance(value, ast.NamedExpr) else None
        if target is not None:
            value = value.value
        if _is_request_call(value) and target is None:
            issues.append(LintIssue(
                path, y.lineno, y.col_offset, "REP005",
                "yield X.request(...) discards the grant; bind it to a "
                "name inside try/finally so the hold can be released on "
                "interrupt"))
        elif not protected and (
                (target is not None and _is_request_call(value))
                or (isinstance(value, ast.Name)
                    and value.id in grant_names)):
            issues.append(LintIssue(
                path, y.lineno, y.col_offset, "REP005",
                "yield on a resource request outside try/finally; a "
                "process interrupted here leaks its grants and leaves the "
                "pending request queued — wrap the wait and hold in "
                "try/finally with .release(...)"))


# -- REP006 ------------------------------------------------------------------

_TIMEOUT_HANDLERS = {"TimeoutError", "RankFailure", "Exception",
                     "BaseException"}


def _handles_timeout(try_node: ast.Try) -> bool:
    """Does any except clause catch TimeoutError / RankFailure?"""
    for handler in try_node.handlers:
        t = handler.type
        if t is None:  # bare except
            return True
        types = t.elts if isinstance(t, ast.Tuple) else [t]
        for node in types:
            name = node.id if isinstance(node, ast.Name) else \
                node.attr if isinstance(node, ast.Attribute) else None
            if name in _TIMEOUT_HANDLERS:
                return True
    return False


def _check_rep006(fn: ast.AST, issues: List[LintIssue], path: str) -> None:
    is_rank, _yields = _is_rank_program(fn)
    if not is_rank:
        return

    def visit(stmts: List[ast.stmt], protected: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, _FUNCTION_NODES + (ast.ClassDef,)):
                continue
            if isinstance(stmt, ast.Try):
                inner = protected or _handles_timeout(stmt)
                visit(stmt.body, inner)
                for handler in stmt.handlers:
                    visit(handler.body, protected)
                visit(stmt.orelse, inner)
                visit(stmt.finalbody, protected)
            elif isinstance(stmt, (ast.If, ast.For, ast.While, ast.With)):
                for field in ("test", "iter"):
                    expr = getattr(stmt, field, None)
                    if expr is not None:
                        flag(_expr_yields(expr), protected)
                if isinstance(stmt, ast.With):
                    for item in stmt.items:
                        flag(_expr_yields(item.context_expr), protected)
                visit(stmt.body, protected)
                visit(getattr(stmt, "orelse", []), protected)
            else:
                flag(_expr_yields(stmt), protected)

    def flag(ys: Iterator[ast.Yield], protected: bool) -> None:
        for y in ys:
            if _is_timed_recv(y.value) and not protected:
                issues.append(LintIssue(
                    path, y.lineno, y.col_offset, "REP006",
                    "`yield recv_within(...)` outside a try that handles "
                    "TimeoutError/RankFailure; a timed receive exists "
                    "because the channel can be severed — handle the "
                    "timeout or use a plain `yield RECV`"))

    visit(list(getattr(fn, "body", [])), False)


# -- REP007 ------------------------------------------------------------------

def _mentions_seed(node: ast.AST) -> bool:
    """Is the expression recognizably seed-derived?  True for integer
    literals anywhere in it and for any name/attribute containing "seed"."""
    for n in ast.walk(node):
        if isinstance(n, ast.Constant) and isinstance(n.value, int) \
                and not isinstance(n.value, bool):
            return True
        if isinstance(n, ast.Name) and "seed" in n.id.lower():
            return True
        if isinstance(n, ast.Attribute) and "seed" in n.attr.lower():
            return True
    return False


def _check_rep007(tree: ast.AST, issues: List[LintIssue], path: str) -> None:
    if "serve" not in Path(path).parts:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _dotted(node.func)
        if chain[-1:] != ["default_rng"] or \
                (len(chain) == 3 and chain[:2] not in (["np", "random"],
                                                       ["numpy", "random"])):
            continue
        seed_exprs = list(node.args) + [kw.value for kw in node.keywords]
        if not seed_exprs:
            continue  # the unseeded case is REP003's finding
        if not any(_mentions_seed(e) for e in seed_exprs):
            issues.append(LintIssue(
                path, node.lineno, node.col_offset, "REP007",
                "serving RNG seeded from something that is not an explicit "
                "seed; arrival/sampling streams must be reproducible — "
                "derive the argument from a *seed*-named value or an int "
                "literal"))


# -- REP008 ------------------------------------------------------------------

def _is_send_call(node: ast.Call) -> bool:
    fn = node.func
    name = fn.id if isinstance(fn, ast.Name) else \
        fn.attr if isinstance(fn, ast.Attribute) else None
    return name == "send"


def _check_rep008_tree(tree: ast.AST, issues: List[LintIssue],
                       path: str) -> None:
    """Flag lambda / generator-expression literals passed to send()."""
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and _is_send_call(node)):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                issues.append(LintIssue(
                    path, arg.lineno, arg.col_offset, "REP008",
                    "a lambda is passed to send(); closures do not pickle "
                    "across the process backend's shared-memory rings — "
                    "send data and reconstruct behaviour on the far side"))
            elif isinstance(arg, ast.GeneratorExp):
                issues.append(LintIssue(
                    path, arg.lineno, arg.col_offset, "REP008",
                    "a generator expression is passed to send(); "
                    "generators do not pickle across the process backend's "
                    "shared-memory rings — materialize it (list/tuple/"
                    "ndarray) before sending"))


def _check_rep008(fn: ast.AST, issues: List[LintIssue], path: str) -> None:
    """Flag locally ``def``-ed functions passed to send() by name."""
    local_fns: Set[str] = set()
    for node in _own_nodes(fn):
        if isinstance(node, _FUNCTION_NODES):
            local_fns.add(node.name)
        elif isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Lambda):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    local_fns.add(tgt.id)
    if not local_fns:
        return
    for node in _own_nodes(fn):
        if not (isinstance(node, ast.Call) and _is_send_call(node)):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name) and arg.id in local_fns:
                issues.append(LintIssue(
                    path, arg.lineno, arg.col_offset, "REP008",
                    f"locally defined function {arg.id!r} is passed to "
                    f"send(); nested functions do not pickle across the "
                    f"process backend's shared-memory rings — only "
                    f"module-level callables and plain data survive"))


# -- REP009 ------------------------------------------------------------------

#: dotted call chains that block the calling thread
_BLOCKING_CALLS = {
    ("time", "sleep"), ("sleep",), ("input",),
    ("subprocess", "run"), ("subprocess", "call"),
    ("subprocess", "check_call"), ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("os", "wait"), ("os", "waitpid"), ("select", "select"),
}


def _is_blocking_call(node: ast.Call) -> bool:
    chain = tuple(_dotted(node.func))
    if chain in _BLOCKING_CALLS:
        return True
    # `import time as t; t.sleep(...)` still sleeps.
    return len(chain) >= 2 and chain[-1] == "sleep"


def _check_rep009(fn: ast.AST, issues: List[LintIssue], path: str) -> None:
    """A rank program must reach its next yield promptly after sending.

    The cooperative sweep runs every rank on one thread; between a
    ``send(...)`` and the program's next suspension point nothing else in
    the world executes, so a blocking call there freezes delivery for all
    ranks.  Detection is a linear source-position scan: a send arms the
    in-flight state, any yield disarms it, a blocking call while armed is
    flagged.  (Position order approximates control flow; rank programs
    are straight-line enough that this is exact in practice.)
    """
    is_rank, _yields = _is_rank_program(fn)
    if not is_rank:
        return
    marks: List[Tuple[int, int, str, ast.Call]] = []
    for node in _own_nodes(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            marks.append((node.lineno, node.col_offset, "yield", node))
        elif isinstance(node, ast.Call):
            if _is_send_call(node):
                marks.append((node.lineno, node.col_offset, "send", node))
            elif _is_blocking_call(node):
                marks.append((node.lineno, node.col_offset, "block", node))
    marks.sort(key=lambda m: (m[0], m[1]))
    pending = False
    for _line, _col, kind, node in marks:
        if kind == "send":
            pending = True
        elif kind == "yield":
            pending = False
        elif pending:
            name = ".".join(_dotted(node.func)) or "<call>"
            issues.append(LintIssue(
                path, node.lineno, node.col_offset, "REP009",
                f"blocking call {name}(...) between a send(...) and the "
                f"matching `yield RECV`; every rank shares one thread, so "
                f"blocking here stalls delivery for the whole world — do "
                f"the blocking work before the send or after the receive"))


# -- REP010 ------------------------------------------------------------------

#: the TP protocol's canonical op -> direction pairing; the lead emits and
#: every follower records in this order, which is what makes the per-member
#: collective-order check a tautology-free invariant
_TP_DIRECTIONS = {"tp_allgather": "fwd", "tp_reduce_scatter": "bwd"}

_RECORD_SINKS = (["record"], ["_record"])


def _mentions_group(node: ast.AST) -> bool:
    """Does the expression recognizably carry a TP group key?  True for any
    name/attribute containing "group" (``comm.group_key``, ``tp_group``)."""
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and "group" in n.id.lower():
            return True
        if isinstance(n, ast.Attribute) and "group" in n.attr.lower():
            return True
    return False


def _tp_op_literal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str) \
            and node.value.startswith("tp_"):
        return node.value
    return None


def _check_rep010(fn: ast.AST, issues: List[LintIssue], path: str) -> None:
    """A TP ``record_collective`` wrapper must forward a group-named key.

    The TPComm wrapper signature carries a ``direction`` parameter; the raw
    trace-recorder sink (``rank, op, key``) does not, so sinks are exempt.
    """
    if getattr(fn, "name", "") != "record_collective":
        return
    params = {a.arg for a in getattr(fn.args, "args", [])}
    if "direction" not in params:
        return
    for node in _own_nodes(fn):
        if not (isinstance(node, ast.Call)
                and _dotted(node.func)[-1:] in _RECORD_SINKS):
            continue
        exprs = list(node.args) + [kw.value for kw in node.keywords]
        if not any(_mentions_group(e) for e in exprs):
            issues.append(LintIssue(
                path, node.lineno, node.col_offset, "REP010",
                "record_collective forwards to the record sink without a "
                "group-naming key; every TP group member must record under "
                "the same group key or the per-member order check compares "
                "the wrong ranks"))


def _check_rep010_tree(tree: ast.AST, issues: List[LintIssue],
                       path: str) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _dotted(node.func)
        if chain[-1:] not in (["record"], ["record_collective"]):
            continue
        args = list(node.args)
        kwvals = [kw.value for kw in node.keywords]
        first_op = _tp_op_literal(args[0]) if args else None
        if first_op is not None:
            # Wrapper-style call: record_collective(op, direction, ...).
            # The group key lives in the wrapper definition (checked by
            # _check_rep010); here the op/direction pairing must match the
            # protocol, because member record order is derived from it.
            want = _TP_DIRECTIONS.get(first_op)
            have = None
            if len(args) > 1 and isinstance(args[1], ast.Constant) \
                    and isinstance(args[1].value, str):
                have = args[1].value
            for kw in node.keywords:
                if kw.arg == "direction" and \
                        isinstance(kw.value, ast.Constant) and \
                        isinstance(kw.value.value, str):
                    have = kw.value.value
            if want is not None and have is not None and have != want:
                issues.append(LintIssue(
                    path, node.lineno, node.col_offset, "REP010",
                    f"collective {first_op!r} recorded with direction "
                    f"{have!r}; the protocol pairs it with {want!r} — a "
                    f"mislabeled record makes the group members' collective "
                    f"orders diverge"))
            continue
        # Sink-style call recording a tp_* op (the literal is not the
        # first positional, i.e. record(rank, "tp_...", ...) or a key= /
        # op= keyword): the group must appear somewhere in the call.
        if any(_tp_op_literal(e) for e in args[1:] + kwvals):
            if not any(_mentions_group(e) for e in args + kwvals):
                issues.append(LintIssue(
                    path, node.lineno, node.col_offset, "REP010",
                    "a tp_* collective is recorded without a group-naming "
                    "key; the per-member order check is only well-defined "
                    "per TP group — put the group key (e.g. "
                    "comm.group_key) in the record's key"))


# -- REP011 ------------------------------------------------------------------

def _check_rep011(fn: ast.AST, issues: List[LintIssue], path: str) -> None:
    """Schedule packages hold data, not rank programs.

    Inside a ``sched`` directory every rank program belongs to the one
    compiler module (``compile.py``); a builder/metric/search function
    that itself ``yield RECV``s or yields the flushing plane constants
    ("F"/"B") is a second, unverified lowering.
    """
    p = Path(path)
    if "sched" not in p.parts or p.name == "compile.py":
        return
    is_rank, yields = _is_rank_program(fn)
    plane_yields = [
        y for y in yields
        if isinstance(y, ast.Yield) and isinstance(y.value, ast.Constant)
        and y.value.value in ("F", "B")
    ]
    if is_rank or plane_yields:
        node = plane_yields[0] if plane_yields else fn
        issues.append(LintIssue(
            path, node.lineno, node.col_offset, "REP011",
            f"{getattr(fn, 'name', '<lambda>')!r} hand-rolls a rank "
            f"program inside a sched package; schedule code must emit IR "
            f"tasks and leave lowering to repro.sched.compile"))


# -- REP012 ------------------------------------------------------------------

#: ambient clock reads a fleet policy must never make
_WALL_CLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "process_time"),
}
#: stdlib `random` module draws (hidden process-wide state)
_STDLIB_RANDOM = {"random", "randint", "randrange", "choice", "choices",
                  "shuffle", "sample", "uniform", "gauss", "normalvariate",
                  "expovariate", "betavariate", "seed", "getrandbits"}


def _check_rep012(tree: ast.AST, issues: List[LintIssue], path: str) -> None:
    """Fleet code is replay-critical: sim time and seeded streams only."""
    if "fleet" not in Path(path).parts:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = tuple(_dotted(node.func))
        if chain in _WALL_CLOCK_CALLS or (
                "datetime" in chain[:-1]
                and chain[-1] in ("now", "utcnow", "today")):
            issues.append(LintIssue(
                path, node.lineno, node.col_offset, "REP012",
                f"{'.'.join(chain)}() reads the ambient wall clock inside "
                f"repro.fleet; autoscaling decisions must be a pure "
                f"function of FleetObservation.now_s (simulated/round "
                f"time) or they cannot be replayed deterministically"))
        elif len(chain) == 2 and chain[0] == "random" \
                and chain[1] in _STDLIB_RANDOM:
            issues.append(LintIssue(
                path, node.lineno, node.col_offset, "REP012",
                f"stdlib random.{chain[1]}() draws from hidden process "
                f"state inside repro.fleet; use an explicitly seeded "
                f"np.random.Generator threaded through the caller"))
        elif chain[-1:] == ("default_rng",) and (
                len(chain) != 3 or chain[:2] in (("np", "random"),
                                                 ("numpy", "random"))):
            seed_exprs = list(node.args) + [kw.value for kw in node.keywords]
            if seed_exprs and not any(_mentions_seed(e) for e in seed_exprs):
                issues.append(LintIssue(
                    path, node.lineno, node.col_offset, "REP012",
                    "fleet RNG seeded from something that is not an "
                    "explicit seed; scale events and admission draws must "
                    "replay — derive the argument from a *seed*-named "
                    "value or an int literal"))


# -- driver ------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>") -> List[LintIssue]:
    """Lint one module's source; returns unsuppressed issues, sorted."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintIssue(path, exc.lineno or 0, exc.offset or 0, "PARSE",
                          f"syntax error: {exc.msg}")]
    issues: List[LintIssue] = []
    for node in ast.walk(tree):
        if isinstance(node, _FUNCTION_NODES):
            _check_rep001(node, issues, path)
            _check_rep002(node, issues, path)
            _check_rep005(node, issues, path)
            _check_rep006(node, issues, path)
            _check_rep008(node, issues, path)
            _check_rep009(node, issues, path)
            _check_rep010(node, issues, path)
            _check_rep011(node, issues, path)
    _check_rep003(tree, issues, path)
    _check_rep004(tree, issues, path)
    _check_rep007(tree, issues, path)
    _check_rep008_tree(tree, issues, path)
    _check_rep010_tree(tree, issues, path)
    _check_rep012(tree, issues, path)
    suppressed = _suppressions(source)
    out = []
    for issue in issues:
        codes = suppressed.get(issue.line, ...)
        if codes is ... or (codes is not None and issue.code not in codes):
            out.append(issue)
    return sorted(out, key=lambda i: (i.path, i.line, i.col, i.code))


def _iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: Sequence[str]) -> List[LintIssue]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    issues: List[LintIssue] = []
    for file in _iter_python_files(paths):
        issues.extend(lint_source(file.read_text(encoding="utf-8"),
                                  str(file)))
    return issues


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: print findings, return 1 if any (0 when clean)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.analysis lint",
        description="Repo-specific AST lint (rules REP001-REP012).")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: the installed "
                             "repro package)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON document (for CI and "
                             "tooling) instead of plain lines")
    parser.add_argument("--sarif", action="store_true",
                        help="emit findings as a SARIF 2.1.0 document "
                             "(GitHub code-scanning upload format)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            print(f"  {code}  {RULES[code]}")
        return 0

    paths = args.paths or [str(Path(__file__).resolve().parents[1])]
    issues = lint_paths(paths)
    n_files = sum(1 for _ in _iter_python_files(paths))
    if args.sarif:
        import json as _json
        print(_json.dumps({
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "repro-lint",
                    "rules": [{"id": code,
                               "shortDescription": {"text": RULES[code]}}
                              for code in sorted(RULES)],
                }},
                "results": [{
                    "ruleId": i.code,
                    "level": "error",
                    "message": {"text": i.message},
                    "locations": [{"physicalLocation": {
                        "artifactLocation": {"uri": i.path},
                        "region": {"startLine": max(i.line, 1),
                                   "startColumn": i.col + 1},
                    }}],
                } for i in issues],
            }],
        }, indent=2))
        return 1 if issues else 0
    if args.json:
        import json as _json
        print(_json.dumps({
            "files_checked": n_files,
            "issue_count": len(issues),
            "clean": not issues,
            "issues": [{"path": i.path, "line": i.line, "col": i.col,
                        "code": i.code, "message": i.message}
                       for i in issues],
        }, indent=2))
        return 1 if issues else 0
    for issue in issues:
        print(issue)
    if issues:
        print(f"{len(issues)} issue(s) in {n_files} file(s)")
        return 1
    print(f"clean: {n_files} file(s), 0 issues")
    return 0
