"""Static analysis and runtime-verification layer.

Five pillars protect the contracts the rest of the codebase relies on:

* :mod:`repro.analysis.protocol` — a MUST/MPI-Checker-style communication
  verifier.  Both substrates (the functional :class:`~repro.runtime.RankTransport`
  and the simulated :class:`~repro.comm.Messenger`) can record per-rank
  traces into a :class:`~repro.analysis.protocol.TraceRecorder`; the
  completed trace is then checked for unmatched sends, per-channel
  tag/microbatch match-order consistency, and collective call-order
  consistency across ranks.  :class:`~repro.analysis.protocol.ProtocolError`
  is the typed error both transports raise for protocol misuse, and
  deadlocks now come with a wait-for-graph diagnosis.

* :mod:`repro.analysis.sanitizer` — an opt-in autograd sanitizer for the
  :class:`~repro.nn.Tensor` tape: version counters / fingerprints that
  detect mutation-after-save (PyTorch-style), an anomaly mode that
  pinpoints the op producing the first NaN/inf, ownership checks on
  ``_accumulate_owned`` (the PR 1 fast path), and a double-backward /
  graph-leak detector.  Zero overhead when disabled — the hot paths test a
  single ``enabled`` attribute, exactly like :mod:`repro.perf.counters`.

* :mod:`repro.analysis.lint` — repo-specific AST lint rules (REP001-REP012)
  runnable as ``python -m repro.analysis lint <paths>`` or via the opt-in
  ``pytest -m lint`` gate.

* :mod:`repro.analysis.model` — a *pre-run* communication model checker.
  Every built-in rank-program variant (AxoNN message-driven, 1F1B, GPipe,
  the serve engine) is symbolically executed against a capture transport
  to extract its communication skeleton, then every interleaving of the
  resulting channel automaton is explored (DFS over consumed-count states
  — the Mazurkiewicz-trace quotient is the partial-order reduction) to
  prove deadlock-freedom, complete send/recv matching, and per-column
  collective-order consistency before any run happens.

* :mod:`repro.analysis.races` — a FastTrack-style happens-before race
  detector for the process backend's shared-memory rings, fed by the
  ``ring-push``/``ring-pop`` sync events the instrumented
  :class:`~repro.runtime.shm.ShmRing` records into per-rank trace JSONL.

This package imports only the standard library and NumPy so the production
modules can depend on it without cycles.  (:mod:`repro.analysis.model`
additionally imports the runtime/baselines/serve modules it verifies —
import it lazily from contexts that must stay cycle-free.)
"""

from .lint import LintIssue, RULES, lint_paths, lint_source
from .protocol import (
    CommEvent,
    ProtocolError,
    TraceRecorder,
    Violation,
    assert_clean,
    check_collective_order,
    check_match_order,
    check_unmatched_sends,
    verify_trace,
)
from .races import (
    Race,
    RaceError,
    RingEvent,
    assert_race_free,
    check_races,
    drop_release,
    load_ring_events,
    ring_events_from_spans,
    synthetic_ring_events,
)
from .sanitizer import (
    AnomalyError,
    AutogradSanitizer,
    GraphError,
    MutationError,
    OwnershipError,
    SanitizerError,
    detect_anomaly,
    sanitize,
    sanitizer,
)

__all__ = [
    "LintIssue",
    "RULES",
    "lint_paths",
    "lint_source",
    "CommEvent",
    "ProtocolError",
    "TraceRecorder",
    "Violation",
    "assert_clean",
    "check_collective_order",
    "check_match_order",
    "check_unmatched_sends",
    "verify_trace",
    "Race",
    "RaceError",
    "RingEvent",
    "assert_race_free",
    "check_races",
    "drop_release",
    "load_ring_events",
    "ring_events_from_spans",
    "synthetic_ring_events",
    "AnomalyError",
    "AutogradSanitizer",
    "GraphError",
    "MutationError",
    "OwnershipError",
    "SanitizerError",
    "detect_anomaly",
    "sanitize",
    "sanitizer",
]
