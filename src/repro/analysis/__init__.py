"""Static analysis and runtime-verification layer.

Three pillars protect the contracts the rest of the codebase relies on:

* :mod:`repro.analysis.protocol` — a MUST/MPI-Checker-style communication
  verifier.  Both substrates (the functional :class:`~repro.runtime.RankTransport`
  and the simulated :class:`~repro.comm.Messenger`) can record per-rank
  traces into a :class:`~repro.analysis.protocol.TraceRecorder`; the
  completed trace is then checked for unmatched sends, per-channel
  tag/microbatch match-order consistency, and collective call-order
  consistency across ranks.  :class:`~repro.analysis.protocol.ProtocolError`
  is the typed error both transports raise for protocol misuse, and
  deadlocks now come with a wait-for-graph diagnosis.

* :mod:`repro.analysis.sanitizer` — an opt-in autograd sanitizer for the
  :class:`~repro.nn.Tensor` tape: version counters / fingerprints that
  detect mutation-after-save (PyTorch-style), an anomaly mode that
  pinpoints the op producing the first NaN/inf, ownership checks on
  ``_accumulate_owned`` (the PR 1 fast path), and a double-backward /
  graph-leak detector.  Zero overhead when disabled — the hot paths test a
  single ``enabled`` attribute, exactly like :mod:`repro.perf.counters`.

* :mod:`repro.analysis.lint` — repo-specific AST lint rules (REP001-REP004)
  runnable as ``python -m repro.analysis lint <paths>`` or via the opt-in
  ``pytest -m lint`` gate.

This package imports only the standard library and NumPy so the production
modules can depend on it without cycles.
"""

from .lint import LintIssue, RULES, lint_paths, lint_source
from .protocol import (
    CommEvent,
    ProtocolError,
    TraceRecorder,
    Violation,
    assert_clean,
    check_collective_order,
    check_match_order,
    check_unmatched_sends,
    verify_trace,
)
from .sanitizer import (
    AnomalyError,
    AutogradSanitizer,
    GraphError,
    MutationError,
    OwnershipError,
    SanitizerError,
    detect_anomaly,
    sanitize,
    sanitizer,
)

__all__ = [
    "LintIssue",
    "RULES",
    "lint_paths",
    "lint_source",
    "CommEvent",
    "ProtocolError",
    "TraceRecorder",
    "Violation",
    "assert_clean",
    "check_collective_order",
    "check_match_order",
    "check_unmatched_sends",
    "verify_trace",
    "AnomalyError",
    "AutogradSanitizer",
    "GraphError",
    "MutationError",
    "OwnershipError",
    "SanitizerError",
    "detect_anomaly",
    "sanitize",
    "sanitizer",
]
