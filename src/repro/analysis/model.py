"""Pre-run communication model checker (skeleton extraction + exploration).

:mod:`repro.analysis.protocol` verifies traces of runs that *already
happened*; this module certifies a schedule/config *before* spending a run
on it.  Three pieces:

* **Comm-skeleton extraction** (:func:`extract_skeleton`) — symbolically
  execute each rank program against a capture transport that records
  ``send`` / ``yield RECV`` / ``recv_within`` calls with abstract payloads.
  Crucially the models drive the *real* generators — Algorithm 2's
  :func:`~repro.runtime.rankprog.inter_layer_step`, the flushing
  baselines' ``_rank_program`` and the serving engine's scheduler / mid /
  tail programs — with symbolic stages, so the skeleton cannot drift from
  the runtime (the cross-validation test pins op-for-op agreement with
  :class:`~repro.analysis.protocol.TraceRecorder` traces of actual runs).

* **Model checking** (:func:`check_model`) — exhaustively explore the
  interleavings of the skeleton ensemble.  The state is the vector of
  per-channel consumed counts (a channel is a directed ``(src, dst,
  plane)`` FIFO), which is exactly the Mazurkiewicz-trace quotient: all
  interleavings that merely commute independent deliveries hash to the
  same state, a partial-order reduction that keeps every small config
  (``g_inter x g_data <= 8``, ``microbatches <= 4``) in the low thousands
  of states.  Rank behaviour is memoized per (rank, consumed-counts) and
  reconstructed by witness replay on a fresh program; a global append-only
  per-channel send log cross-checks every replay (two interleavings that
  reach the same counts must produce identical channel prefixes —
  divergence means the program is not confluent and the quotient would be
  unsound, so it raises :class:`ModelError` instead of mis-verifying).
  The checker proves deadlock-freedom and complete matching, checks
  per-column collective-order consistency, and on failure emits a
  wait-for-graph counterexample with the full interleaving op trace
  (:class:`DeadlockWitness`).

* **Built-in models** — :func:`axonn_model`, :func:`flushing_model`
  (1F1B / GPipe), :func:`serve_model`, and the seeded
  :func:`deadlock_mutant_model` (a last stage that defers each backward
  send until the *next* forward arrives, so the final gradient is never
  sent — every interleaving deadlocks, and the checker must say exactly
  where).

``python -m repro verify`` sweeps :func:`builtin_models` with these
checks; ``pytest -m lint`` pins the acceptance bar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, FrozenSet, Generator, List, Optional,
                    Sequence, Tuple)

import numpy as np

from ..baselines.functional_pipeline import FlushingPipelineTrainer
from ..runtime.grid import RankGrid
from ..runtime.rankprog import TAG_BWD, TAG_FWD, inter_layer_step
from ..runtime.tp import TPComm, tp_follower_step
from ..runtime.transport import RECV, Packet, TimedRecv
from ..serve.engine import PipelineServer, Request
from .protocol import TraceRecorder, check_collective_order, describe_deadlock

__all__ = [
    "CheckResult",
    "CommModel",
    "DeadlockWitness",
    "ModelError",
    "Skeleton",
    "SkeletonOp",
    "axonn_model",
    "builtin_models",
    "check_model",
    "compare_with_trace",
    "deadlock_mutant_model",
    "disagg_serve_model",
    "extract_skeleton",
    "flushing_model",
    "scheduled_model",
    "serve_model",
]

#: the single plane of ordinary ``yield RECV`` traffic; the flushing
#: baselines add "F" / "B" planes (their two physical transports).
P2P = "p2p"

#: pseudo-plane for in-stream collective records (tensor-parallel groups);
#: these never enter an inbox or a channel — they are ordering marks.
COLLECTIVE_PLANE = "__collective__"

#: model-side plane routing for tensor-parallel traffic.  The runtime
#: multiplexes weight, gradient and ack messages over one FIFO per rank
#: pair; their interleaving there depends on the schedule, which would
#: make per-channel content interleaving-dependent and the checker's
#: counts-quotient unsound.  Per-direction planes restore confluence —
#: each plane's send sequence is schedule-independent — at the cost of
#: exploring a *superset* of the real FIFO's delivery orders, which is
#: sound for deadlock-freedom and matching (the programs accept the
#: messages in any order).
_TP_PLANES = {"tp_wgt": "W", "tp_grad": "G", "tp_ack": "A"}

Channel = Tuple[int, int, str]  # (src, dst, plane)


class ModelError(RuntimeError):
    """The model could not be checked: a rank program yielded something
    that is not a receive request, sent to an invalid destination,
    diverged between interleavings (non-confluent behaviour, which would
    make the counts-quotient unsound), or the state space exceeded
    ``max_states``."""


@dataclass(frozen=True)
class SkeletonOp:
    """One typed channel operation of a rank's communication skeleton."""

    kind: str                      # "send" | "recv" | "timeout" | "collective"
    rank: int
    peer: Optional[int] = None
    tag: str = ""
    microbatch: Any = None
    key: Any = None
    plane: str = P2P

    def __str__(self) -> str:
        if self.kind == "send":
            return (f"send {self.rank} -> {self.peer} tag={self.tag!r} "
                    f"microbatch={self.microbatch}")
        if self.kind == "recv":
            return (f"recv {self.rank} <- {self.peer} tag={self.tag!r} "
                    f"microbatch={self.microbatch}")
        if self.kind == "timeout":
            return f"timeout at rank {self.rank}"
        return (f"collective rank={self.rank} op={self.tag!r} "
                f"key={self.key!r}")


@dataclass(frozen=True)
class _Msg:
    src: int
    dst: int
    tag: str
    microbatch: Any
    plane: str
    data: Any = None


class _Capture:
    """The symbolic transport: every model's programs send through one of
    these.  Signature-compatible with ``RankTransport.send`` so the real
    generators run unmodified; sends accumulate in ``sent`` for the
    executor to drain after each generator resume."""

    def __init__(self, n_ranks: int):
        self.n_ranks = n_ranks
        self.sent: List[_Msg] = []

    def send(self, src: int, dst: int, tag: str, microbatch: Any,
             data: Any = None, *, plane: str = P2P) -> None:
        if not (0 <= src < self.n_ranks and 0 <= dst < self.n_ranks):
            raise ModelError(f"send outside rank space: {src} -> {dst}")
        if src == dst:
            raise ModelError(f"rank {src} sent to itself (tag={tag!r})")
        self.sent.append(_Msg(src, dst, tag, microbatch, plane, data))

    def collective(self, rank: int, op: str, key: Any) -> None:
        """Record an in-stream collective (e.g. a tensor-parallel weight
        all-gather) at its position in the rank's op sequence.  Rides the
        same buffer as sends so the executor sees it in program order, but
        never becomes a deliverable message."""
        self.sent.append(_Msg(rank, rank, op, None, COLLECTIVE_PLANE, key))

    def plane_view(self, plane: str) -> "_PlaneView":
        return _PlaneView(self, plane)

    def drain(self) -> List[_Msg]:
        out, self.sent = self.sent, []
        return out


class _PlaneView:
    """Facade binding a plane name — stands in for one of the flushing
    trainer's two physical transports (``fwd_net`` / ``bwd_net``)."""

    def __init__(self, capture: _Capture, plane: str):
        self._capture = capture
        self._plane = plane

    def send(self, src: int, dst: int, tag: str, microbatch: Any,
             data: Any = None) -> None:
        self._capture.send(src, dst, tag, microbatch, data,
                           plane=self._plane)


class _SymbolicStage:
    """Duck-typed :class:`~repro.runtime.stage.PipelineStage` that computes
    nothing: payloads are abstract (``None``), only the communication
    structure matters."""

    def forward(self, mb: Any, data: Any, targets: Any = None,
                loss_divisor: Any = None, loss_scale: Any = None) -> None:
        return None

    def backward(self, mb: Any, grad: Any = None) -> None:
        return None


class _SymbolicServeStage:
    """Duck-typed :class:`~repro.runtime.stage.InferenceStage`: the tail
    program samples from the returned logits, so hand it a fixed tiny
    distribution (greedy requests make the choice deterministic)."""

    def start_request(self, rid: int) -> None:
        return None

    def finish_request(self, rid: int) -> None:
        return None

    def forward(self, rid: int, x: Any) -> np.ndarray:
        return np.zeros((1, 1, 2))


@dataclass
class CommModel:
    """A parameterized ensemble of rank programs plus its collective plan.

    ``make_programs(capture)`` must build *fresh* generators each call
    (the checker replays prefixes on new instances); ``collectives`` maps
    rank -> ordered ``(op, key)`` list (what the engine's data-parallel
    phase records after the transport run); ``groups`` are the rank groups
    that must agree on collective order (the grid columns)."""

    name: str
    n_ranks: int
    make_programs: Callable[[_Capture], Dict[int, Generator]]
    collectives: Dict[int, List[Tuple[str, Any]]] = field(default_factory=dict)
    groups: List[List[int]] = field(default_factory=list)
    config: Dict[str, Any] = field(default_factory=dict)
    #: tensor-parallel groups whose in-stream ``tp_*`` collective sequences
    #: (captured during skeleton extraction) must agree member-for-member
    tp_groups: List[List[int]] = field(default_factory=list)
    #: ranks whose programs are *pure reflectors*: they always wait on an
    #: unrestricted receive ("any"), every delivery triggers only
    #: constant-content sends, and they finish after a fixed delivery
    #: count.  The explorer fires deliveries to these ranks eagerly
    #: (a sound partial-order reduction; see :class:`_Explorer`).
    reflector_ranks: FrozenSet[int] = frozenset()

    def describe(self) -> str:
        args = ",".join(f"{k}={v}" for k, v in self.config.items())
        return f"{self.name}[{args}]"


# ---------------------------------------------------------------------------
# Built-in models
# ---------------------------------------------------------------------------

def _close_all(programs: Dict[int, Generator]) -> None:
    for gen in programs.values():
        gen.close()


def axonn_model(g_inter: int, g_data: int, microbatches: int,
                pipeline_limit: Optional[int] = None,
                param_slots: Any = 1, g_intra: int = 1) -> CommModel:
    """AxoNN's message-driven Algorithm 2 — the *real*
    :func:`~repro.runtime.rankprog.inter_layer_step` generator over
    symbolic stages.  ``microbatches`` is the per-rank (per data-parallel
    shard) count, matching ``AxoNNTrainer``; ``param_slots`` (int or
    per-stage sequence) sizes the recorded all-reduce plan for
    cross-validation against a real trace.

    With ``g_intra > 1`` the grid gains its tensor-parallel axis: group
    leads run Algorithm 2 with a :class:`~repro.runtime.tp.TPComm`
    (emitting the per-microbatch weight all-gather and gradient
    reduce-scatter), followers run the *real*
    :func:`~repro.runtime.tp.tp_follower_step`, and every ``tp_*``
    collective is captured in-stream for the per-group order check."""
    grid = RankGrid(g_inter, g_data, g_intra)
    m = microbatches
    if m < 1:
        raise ValueError("microbatches must be >= 1")
    limit = g_inter if pipeline_limit is None else pipeline_limit
    slots = ([param_slots] * g_inter if isinstance(param_slots, int)
             else list(param_slots))

    def make(capture: _Capture) -> Dict[int, Generator]:
        programs: Dict[int, Generator] = {}
        for rank in range(grid.world_size):
            send = (lambda dst, tag, mb, data, _r=rank:
                    capture.send(_r, dst, tag, mb, data,
                                 plane=_TP_PLANES.get(tag, P2P)))
            record = (lambda r, op, key, nbytes:
                      capture.collective(r, op, key))
            if not grid.is_tp_lead(rank):
                comm = TPComm(rank, grid, send, record=record)
                programs[rank] = tp_follower_step(rank, grid, comm, m)
                continue
            tp = TPComm(rank, grid, send, record=record) \
                if g_intra > 1 else None
            programs[rank] = inter_layer_step(
                rank, grid, _SymbolicStage(), send, [(None, None)] * m,
                m * g_data, limit, tp=tp)
        return programs

    collectives: Dict[int, List[Tuple[str, Any]]] = {}
    groups: List[List[int]] = []
    if g_data > 1:
        for i in range(g_inter):
            column = grid.data_parallel_ranks(i)
            groups.append(column)
            plan = [("allreduce_fp32", (i, slot)) for slot in range(slots[i])]
            for r in column:
                collectives[r] = list(plan)
    tp_groups: List[List[int]] = []
    if g_intra > 1:
        for j in range(g_data):
            for i in range(g_inter):
                tp_groups.append(grid.tp_group(i, j))
    config = {"g_inter": g_inter, "g_data": g_data, "m": m, "limit": limit}
    reflectors: FrozenSet[int] = frozenset()
    if g_intra > 1:
        config["g_intra"] = g_intra
        # TP followers run tp_follower_step: always `yield RECV` ("any"),
        # one constant-content ack per delivery, done after a fixed count.
        reflectors = frozenset(r for r in range(grid.world_size)
                               if not grid.is_tp_lead(r))
    return CommModel("axonn", grid.world_size, make, collectives, groups,
                     config, tp_groups=tp_groups, reflector_ranks=reflectors)


def flushing_model(schedule: str, g_inter: int, g_data: int,
                   microbatches: int, param_slots: Any = 1) -> CommModel:
    """1F1B / GPipe — the *real*
    :meth:`~repro.baselines.functional_pipeline.FlushingPipelineTrainer.
    _rank_program` generators, driven on the two tag planes ("F"/"B")
    the trainer's ``_pump`` uses."""
    if schedule not in ("1f1b", "gpipe"):
        raise ValueError(f"unknown schedule {schedule!r}")
    grid = RankGrid(g_inter, g_data)
    m = microbatches
    if m < 1:
        raise ValueError("microbatches must be >= 1")
    slots = ([param_slots] * g_inter if isinstance(param_slots, int)
             else list(param_slots))

    def make(capture: _Capture) -> Dict[int, Generator]:
        shell = object.__new__(FlushingPipelineTrainer)
        shell.grid = grid
        shell.schedule = schedule
        shell.stages = {r: _SymbolicStage()
                        for r in range(grid.world_size)}
        fwd_net = capture.plane_view("F")
        bwd_net = capture.plane_view("B")
        return {
            rank: FlushingPipelineTrainer._rank_program(
                shell, rank, fwd_net, bwd_net, [(None, None)] * m,
                m * g_data)
            for rank in range(grid.world_size)
        }

    collectives: Dict[int, List[Tuple[str, Any]]] = {}
    groups: List[List[int]] = []
    if g_data > 1:
        for i in range(g_inter):
            column = grid.data_parallel_ranks(i)
            groups.append(column)
            plan = [("allreduce_fp32", (i, slot)) for slot in range(slots[i])]
            for r in column:
                collectives[r] = list(plan)
    return CommModel(schedule, grid.world_size, make, collectives, groups,
                     {"g_inter": g_inter, "g_data": g_data, "m": m})


def scheduled_model(schedule: Any, g_inter: int, g_data: int,
                    microbatches: int, param_slots: Any = 1) -> CommModel:
    """Any IR schedule, lowered by the *real* compiler.

    ``schedule`` is a shipped builder name or a validated
    :class:`~repro.sched.ir.Schedule` instance (e.g. a search
    perturbation).  Drives :func:`repro.sched.compile.lower_rank` — the
    same lowering the :class:`~repro.sched.compile.ScheduledPipelineTrainer`
    executes — with symbolic stages over the two tag planes, so
    interleaved and zero-bubble schedules get the identical
    deadlock-freedom / complete-matching proof as the hardcoded
    baselines.  Raises ``ValueError`` for grids the builder rejects
    (e.g. interleaved needs ``microbatches % g_inter == 0``).
    """
    from ..sched.builders import build_schedule
    from ..sched.compile import lower_rank
    from ..sched.ir import Schedule
    grid = RankGrid(g_inter, g_data)
    m = microbatches
    if isinstance(schedule, Schedule):
        if schedule.n_stages != g_inter or schedule.n_microbatches != m:
            raise ValueError(
                f"schedule {schedule.name} is for "
                f"{schedule.n_stages}x{schedule.n_microbatches}, not "
                f"{g_inter}x{m}")
        sched, schedule = schedule, schedule.name
    else:
        sched = build_schedule(schedule, g_inter, m)
    slots = ([param_slots] * g_inter if isinstance(param_slots, int)
             else list(param_slots))

    def make(capture: _Capture) -> Dict[int, Generator]:
        fwd_net = capture.plane_view("F")
        bwd_net = capture.plane_view("B")
        return {
            rank: lower_rank(
                sched, grid, rank,
                {v: _SymbolicStage() for v in range(sched.n_virtual)},
                fwd_net, bwd_net, [(None, None)] * m, m * g_data)
            for rank in range(grid.world_size)
        }

    collectives: Dict[int, List[Tuple[str, Any]]] = {}
    groups: List[List[int]] = []
    if g_data > 1:
        for i in range(g_inter):
            column = grid.data_parallel_ranks(i)
            groups.append(column)
            plan = [("allreduce_fp32", (i, slot)) for slot in range(slots[i])]
            for r in column:
                collectives[r] = list(plan)
    return CommModel(f"sched-{schedule}", grid.world_size, make,
                     collectives, groups,
                     {"g_inter": g_inter, "g_data": g_data, "m": m})


def serve_model(g_inter: int, n_requests: int, max_new_tokens: int = 2,
                max_batch: int = 2, pipeline_limit: Optional[int] = None,
                max_active: Optional[int] = None) -> CommModel:
    """The serving engine's continuous-batching pipeline — the *real*
    scheduler / mid / tail programs over a shell
    :class:`~repro.serve.engine.PipelineServer` with symbolic stages and
    greedy requests."""
    if g_inter < 2:
        raise ValueError("serve model needs g_inter >= 2 (a depth-one "
                         "pipeline never communicates)")
    if n_requests < 1 or max_new_tokens < 1:
        raise ValueError("need at least one request and one token")

    def make(capture: _Capture) -> Dict[int, Generator]:
        shell = object.__new__(PipelineServer)
        shell.cfg = None
        shell.g_inter = g_inter
        shell.max_batch = max_batch
        shell.pipeline_limit = max(
            1, pipeline_limit if pipeline_limit is not None else g_inter)
        shell.max_active = (max_active if max_active is not None
                            else max_batch * shell.pipeline_limit)
        shell.tracer = None
        shell.recorder = None
        shell.stages = [_SymbolicServeStage() for _ in range(g_inter)]
        reqs = {
            rid: Request(rid, np.zeros(1, dtype=np.int64), max_new_tokens,
                         greedy=True, seed=rid)
            for rid in range(n_requests)
        }
        order = [reqs[rid] for rid in range(n_requests)]
        results: Dict[int, List[int]] = {rid: [] for rid in range(n_requests)}
        programs: Dict[int, Generator] = {
            0: PipelineServer._scheduler_program(shell, capture, reqs,
                                                 order, results)}
        for rank in range(1, g_inter - 1):
            programs[rank] = PipelineServer._mid_program(shell, rank,
                                                         capture, reqs)
        programs[g_inter - 1] = PipelineServer._tail_program(shell, capture,
                                                             reqs)
        return programs

    return CommModel("serve", g_inter, make, config={
        "g_inter": g_inter, "requests": n_requests,
        "tokens": max_new_tokens, "max_batch": max_batch})


class _SymbolicDisaggStage(_SymbolicServeStage):
    """Adds the KV-handoff surface: exported blocks are empty (KV content
    is irrelevant to communication structure) and imports accept them."""

    def export_kv(self, rid: int) -> Tuple[int, Dict[int, Any]]:
        return 1, {}

    def import_kv(self, rid: int, pos: int, blocks: Dict[int, Any]) -> None:
        return None


def disagg_serve_model(g_prefill: int, g_decode: int, n_requests: int,
                       max_new_tokens: int = 2, max_batch: int = 2,
                       pipeline_limit: Optional[int] = None,
                       prefill_limit: Optional[int] = None,
                       max_active: Optional[int] = None) -> CommModel:
    """The disaggregated prefill/decode KV-handoff protocol — the *real*
    :class:`~repro.fleet.engine.DisaggPipelineServer` scheduler / prefill
    / decode programs over symbolic stages.

    This is the proof the fleet layer leans on: KV pieces (``TAG_KV``)
    flowing home to the scheduler, merged ingests (``TAG_INGEST``)
    relayed through the decode pipe, and decode groups (``TAG_DEC``)
    interleaving with them must be deadlock-free under *every* delivery
    order, for any request count the bounded window can produce.
    """
    if g_prefill < 1 or g_decode < 1:
        raise ValueError("need g_prefill >= 1 and g_decode >= 1")
    if g_prefill + g_decode < 2:
        raise ValueError("a one-rank world never communicates")
    if n_requests < 1 or max_new_tokens < 1:
        raise ValueError("need at least one request and one token")
    from ..fleet.engine import DisaggPipelineServer

    def make(capture: _Capture) -> Dict[int, Generator]:
        shell = object.__new__(DisaggPipelineServer)
        shell.cfg = None
        shell.g_prefill = g_prefill
        shell.g_decode = g_decode
        shell.n_ranks = g_prefill + g_decode
        shell.max_batch = max_batch
        shell.pipeline_limit = max(
            1, pipeline_limit if pipeline_limit is not None else g_decode)
        shell.prefill_limit = max(
            1, prefill_limit if prefill_limit is not None else g_prefill)
        shell.max_active = (max_active if max_active is not None
                            else max_batch * shell.pipeline_limit)
        shell.recorder = None
        shell.prefill_stages = [_SymbolicDisaggStage()
                                for _ in range(g_prefill)]
        shell.decode_stages = [_SymbolicDisaggStage()
                               for _ in range(g_decode)]
        reqs = {
            rid: Request(rid, np.zeros(1, dtype=np.int64), max_new_tokens,
                         greedy=True, seed=rid)
            for rid in range(n_requests)
        }
        order = [reqs[rid] for rid in range(n_requests)]
        results: Dict[int, List[int]] = {rid: [] for rid in range(n_requests)}
        programs: Dict[int, Generator] = {
            0: DisaggPipelineServer._scheduler_program(
                shell, capture, reqs, order, results)}
        for r in range(1, g_prefill):
            programs[r] = DisaggPipelineServer._prefill_program(
                shell, r, capture)
        for j in range(g_decode):
            programs[g_prefill + j] = DisaggPipelineServer._decode_program(
                shell, j, capture, reqs)
        return programs

    return CommModel("disagg-serve", g_prefill + g_decode, make, config={
        "g_prefill": g_prefill, "g_decode": g_decode,
        "requests": n_requests, "tokens": max_new_tokens,
        "max_batch": max_batch})


def _deferred_backward_tail(capture: _Capture, grid: RankGrid, rank: int,
                            m: int) -> Generator:
    """The seeded bug: the last stage holds each gradient until the *next*
    forward arrives — so the final microbatch's backward is never sent and
    the first stage starves (every interleaving deadlocks)."""
    prev_rank = grid.prev_in_pipeline(rank)
    pending = None
    for _ in range(m):
        pkt = yield RECV
        if pending is not None:
            capture.send(rank, prev_rank, TAG_BWD, pending, None)
        pending = pkt.microbatch
    # bug: the backward for `pending` is never sent.


def deadlock_mutant_model(g_inter: int = 2, microbatches: int = 2,
                          pipeline_limit: Optional[int] = None) -> CommModel:
    """AxoNN with the deferred-backward tail mutant spliced in — the
    checker must produce a wait-for-graph counterexample for this."""
    if g_inter < 2:
        raise ValueError("the mutant needs a real pipeline (g_inter >= 2)")
    grid = RankGrid(g_inter, 1)
    m = microbatches
    limit = g_inter if pipeline_limit is None else pipeline_limit
    last = grid.world_size - 1

    def make(capture: _Capture) -> Dict[int, Generator]:
        programs: Dict[int, Generator] = {}
        for rank in range(last):
            send = (lambda dst, tag, mb, data, _r=rank:
                    capture.send(_r, dst, tag, mb, data))
            programs[rank] = inter_layer_step(
                rank, grid, _SymbolicStage(), send, [(None, None)] * m,
                m, limit)
        programs[last] = _deferred_backward_tail(capture, grid, last, m)
        return programs

    return CommModel("axonn-deadlock-mutant", grid.world_size, make,
                     config={"g_inter": g_inter, "g_data": 1, "m": m})


def builtin_models(max_world: int = 8, max_microbatches: int = 4,
                   include_serve: bool = True) -> List[CommModel]:
    """Every built-in variant at every small config: AxoNN / 1F1B / GPipe
    over all ``g_inter x g_data <= max_world``, ``m <= max_microbatches``,
    plus small serving pipelines."""
    models: List[CommModel] = []
    for g_inter in range(1, max_world + 1):
        for g_data in range(1, max_world // g_inter + 1):
            for m in range(1, max_microbatches + 1):
                models.append(axonn_model(g_inter, g_data, m))
                models.append(flushing_model("1f1b", g_inter, g_data, m))
                models.append(flushing_model("gpipe", g_inter, g_data, m))
                # Every shipped IR schedule through the real compiler
                # (interleaved rejects grids with m % g_inter != 0 or a
                # depth-one pipeline; skip those instead of special-casing).
                for sched_name in ("axonn", "1f1b", "gpipe", "interleaved",
                                   "zb-h1"):
                    try:
                        models.append(scheduled_model(sched_name, g_inter,
                                                      g_data, m))
                    except ValueError:
                        continue
    # 4D variants: every decomposition with a real tensor-parallel axis.
    # TP traffic is per-microbatch homogeneous (one weight all-gather, one
    # gradient reduce-scatter), so m=2 already exercises every fwd/bwd
    # overlap the TP weave can produce; deeper m only multiplies pipeline
    # interleavings the 2D models above cover.
    for g_intra in (2, 4):
        for g_inter in range(1, max_world // g_intra + 1):
            for g_data in range(1, max_world // (g_intra * g_inter) + 1):
                for m in range(1, min(2, max_microbatches) + 1):
                    models.append(axonn_model(g_inter, g_data, m,
                                              g_intra=g_intra))
    if include_serve:
        for g_inter in range(2, max_world + 1):
            models.append(serve_model(g_inter, n_requests=3,
                                      max_new_tokens=2, max_batch=2))
        # The disaggregated KV-handoff protocol at every single-prefill
        # split (the fleet smoke configs: KV merging is then local, the
        # scheduler has a single inbound source, and the model is
        # confluent).  Multi-rank prefill pools give the scheduler two
        # inbound sources (KV pieces and tokens) whose arrival order
        # steers the pump — inherently non-confluent, so those splits are
        # covered by the runtime token-identity tests instead.
        for g_decode in range(1, max_world):
            models.append(disagg_serve_model(
                1, g_decode, n_requests=3, max_new_tokens=2, max_batch=2))
    return models


# ---------------------------------------------------------------------------
# Skeleton extraction
# ---------------------------------------------------------------------------

@dataclass
class Skeleton:
    """Per-rank typed channel-op sequences plus the channel graph."""

    model: str
    ops: Dict[int, List[SkeletonOp]]
    channels: List[Channel]

    def components(self) -> List[List[int]]:
        """Connected components of the channel graph (isolated ranks are
        singletons) — columns of the grid never interact, so the checker
        explores each component separately instead of their product."""
        parent = {r: r for r in self.ops}

        def find(r: int) -> int:
            while parent[r] != r:
                parent[r] = parent[parent[r]]
                r = parent[r]
            return r

        for src, dst, _plane in self.channels:
            parent[find(src)] = find(dst)
        groups: Dict[int, List[int]] = {}
        for r in self.ops:
            groups.setdefault(find(r), []).append(r)
        return sorted(sorted(g) for g in groups.values())


def _wait_kind(request: Any, rank: int) -> Tuple[str, ...]:
    if request == RECV:
        return ("any",)
    if isinstance(request, TimedRecv):
        return ("timed",)
    if isinstance(request, str):
        return ("plane", request)
    raise ModelError(f"rank {rank} yielded {request!r}; rank programs may "
                     f"only yield RECV / recv_within(n) / a tag plane")


def extract_skeleton(model: CommModel) -> Skeleton:
    """Run the ensemble once under the cooperative scheduler's own policy
    (sorted-rank sweeps, run-until-blocked with immediate redelivery) and
    record every channel op.  Faithful to ``RankTransport._sweep`` /
    ``FlushingPipelineTrainer._pump``, so per-rank op order matches what a
    :class:`~repro.analysis.protocol.TraceRecorder` sees on a real run."""
    capture = _Capture(model.n_ranks)
    programs = model.make_programs(capture)
    ops: Dict[int, List[SkeletonOp]] = {r: [] for r in programs}
    inboxes: Dict[Tuple[int, str], List[Tuple[int, _Msg]]] = {}
    channels: Dict[Channel, None] = {}
    waiting: Dict[int, Tuple[str, ...]] = {}
    live = dict(programs)
    arrival = 0

    def drain() -> None:
        nonlocal arrival
        for msg in capture.drain():
            if msg.plane == COLLECTIVE_PLANE:
                ops[msg.src].append(SkeletonOp(
                    "collective", msg.src, tag=msg.tag, key=msg.data))
                continue
            ops[msg.src].append(SkeletonOp(
                "send", msg.src, msg.dst, msg.tag, msg.microbatch,
                plane=msg.plane))
            channels.setdefault((msg.src, msg.dst, msg.plane))
            inboxes.setdefault((msg.dst, msg.plane), []).append(
                (arrival, msg))
            arrival += 1

    def pop_for(rank: int, wait: Tuple[str, ...]) -> Optional[_Msg]:
        if wait[0] == "plane":
            box = inboxes.get((rank, wait[1]))
            return box.pop(0)[1] if box else None
        # "any"/"timed": FIFO-faithful merge — the earliest arrival across
        # every plane addressed to this rank (the runtime multiplexes all
        # of a pair's traffic over one FIFO).
        best_key = None
        for (dst, _plane), box in inboxes.items():
            if dst != rank or not box:
                continue
            if best_key is None or box[0][0] < inboxes[best_key][0][0]:
                best_key = (dst, _plane)
        return inboxes[best_key].pop(0)[1] if best_key is not None else None

    def resume(rank: int, gen: Generator, *, start: bool = False,
               packet: Optional[Packet] = None,
               timeout: bool = False) -> bool:
        """One generator step; returns False when the program finished."""
        try:
            if start:
                request = next(gen)
            elif timeout:
                request = gen.throw(TimeoutError(
                    f"model timeout at rank {rank}"))
            else:
                request = gen.send(packet)
        except StopIteration:
            drain()
            return False
        drain()
        waiting[rank] = _wait_kind(request, rank)
        return True

    try:
        while live:
            progressed = False
            for rank in sorted(live):
                gen = live.get(rank)
                if gen is None:
                    continue
                while True:
                    if rank not in waiting:
                        alive = resume(rank, gen, start=True)
                    else:
                        msg = pop_for(rank, waiting[rank])
                        if msg is None:
                            break
                        ops[rank].append(SkeletonOp(
                            "recv", rank, msg.src, msg.tag, msg.microbatch,
                            plane=msg.plane))
                        alive = resume(rank, gen, packet=Packet(
                            src=msg.src, dst=msg.dst, tag=msg.tag,
                            microbatch=msg.microbatch, data=msg.data))
                    progressed = True
                    if not alive:
                        del live[rank]
                        waiting.pop(rank, None)
                        break
            if live and not progressed:
                # A starved timed receive fires before we call deadlock.
                timed = sorted(r for r in live
                               if waiting.get(r, ())[:1] == ("timed",))
                if timed:
                    rank = timed[0]
                    ops[rank].append(SkeletonOp("timeout", rank))
                    if not resume(rank, live[rank], timeout=True):
                        del live[rank]
                        waiting.pop(rank, None)
                    continue
                stuck = sorted(live)
                wait_for = {
                    r: sorted({src for (src, dst, _p) in channels
                               if dst == r}) for r in stuck}
                orphans = [m for box in inboxes.values() for _i, m in box]
                sent = sum(len(o) for o in ops.values())
                raise ModelError(
                    "skeleton extraction deadlocked:\n"
                    + describe_deadlock(stuck, wait_for, orphans, sent))
    finally:
        _close_all(programs)

    for rank, plan in model.collectives.items():
        for op, key in plan:
            ops[rank].append(SkeletonOp("collective", rank, tag=op, key=key))
    return Skeleton(model.describe(), ops, sorted(channels))


def compare_with_trace(skeleton: Skeleton,
                       trace: TraceRecorder) -> List[str]:
    """Op-for-op cross-validation of a skeleton against a recorded trace
    of an actual run; returns human-readable mismatches (empty == the
    static model matches the runtime)."""
    def from_skeleton(rank: int) -> List[Tuple]:
        return [(o.kind, o.peer, o.tag, o.microbatch, o.key)
                for o in skeleton.ops.get(rank, [])
                if o.kind != "timeout"]

    def from_trace(rank: int) -> List[Tuple]:
        return [(e.kind, e.peer, e.tag, e.microbatch, e.key)
                for e in trace.events_of(rank)]

    ranks = sorted(set(skeleton.ops) | {e.rank for e in trace.events})
    problems: List[str] = []
    for rank in ranks:
        want, got = from_skeleton(rank), from_trace(rank)
        if want == got:
            continue
        n = min(len(want), len(got))
        idx = next((i for i in range(n) if want[i] != got[i]), n)
        a = want[idx] if idx < len(want) else "<nothing>"
        b = got[idx] if idx < len(got) else "<nothing>"
        problems.append(
            f"rank {rank} diverges at op #{idx}: model {a!r} vs trace "
            f"{b!r} (model has {len(want)} ops, trace {len(got)})")
    return problems


# ---------------------------------------------------------------------------
# Model checking
# ---------------------------------------------------------------------------

@dataclass
class DeadlockWitness:
    """A concrete deadlocking interleaving: the wait-for graph plus the
    full op trace that reaches it."""

    message: str
    stuck: List[int]
    wait_for: Dict[int, List[int]]
    trace: List[SkeletonOp]


@dataclass
class CheckResult:
    """Verdict of :func:`check_model` for one model/config."""

    model: str
    config: Dict[str, Any]
    deadlock_free: bool
    matching_complete: bool
    collectives_consistent: bool
    states: int
    terminals: int
    violations: List[str]
    counterexample: Optional[DeadlockWitness] = None

    @property
    def ok(self) -> bool:
        return (self.deadlock_free and self.matching_complete
                and self.collectives_consistent)

    def __str__(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        return (f"{verdict} {self.model}: states={self.states} "
                f"terminals={self.terminals} "
                f"deadlock_free={self.deadlock_free} "
                f"matching_complete={self.matching_complete} "
                f"collectives_consistent={self.collectives_consistent}")


@dataclass
class _Behavior:
    """What a rank does after consuming a given multiset of channel
    prefixes: its next wait (or finished), its cumulative per-channel send
    counts, and the witness (delivery/timeout sequence) that reproduces
    this state on a fresh generator."""

    wait: Tuple[str, ...]
    finished: bool
    out_counts: Dict[Channel, int]
    witness: Tuple[Tuple, ...]


class _Explorer:
    """DFS over the counts-quotient state graph of one component."""

    def __init__(self, model: CommModel, ranks: Sequence[int],
                 max_states: int):
        self.model = model
        self.ranks = sorted(ranks)
        self.max_states = max_states
        self.log: Dict[Channel, List[Tuple[str, Any, Any]]] = {}
        self.in_channels: Dict[int, List[Channel]] = {r: [] for r in self.ranks}
        # (rank, local key) -> _Behavior; the local key is the rank's own
        # consumed counts + its timeout count, which fully determines its
        # generator state because behaviour is confluent (guarded below).
        self.cache: Dict[Tuple[int, Tuple], _Behavior] = {}
        self.states = 0
        self.terminals = 0
        self.leftover_violations: Dict[str, None] = {}
        self.counterexample: Optional[DeadlockWitness] = None

    # -- witness replay ----------------------------------------------------
    def _log_sends(self, capture: _Capture,
                   out_counts: Dict[Channel, int]) -> None:
        for msg in capture.drain():
            if msg.plane == COLLECTIVE_PLANE:
                continue  # ordering mark, not a deliverable message
            ch = (msg.src, msg.dst, msg.plane)
            k = out_counts.get(ch, 0)
            seq = self.log.setdefault(ch, [])
            if k < len(seq):
                if (seq[k][0], seq[k][1]) != (msg.tag, msg.microbatch):
                    raise ModelError(
                        f"{self.model.describe()}: non-confluent send on "
                        f"channel {ch} at position {k}: one interleaving "
                        f"sent (tag={seq[k][0]!r}, microbatch={seq[k][1]}),"
                        f" another (tag={msg.tag!r}, "
                        f"microbatch={msg.microbatch}); the counts-quotient"
                        f" is unsound for this model")
            else:
                seq.append((msg.tag, msg.microbatch, msg.data))
                if ch[1] in self.in_channels and \
                        ch not in self.in_channels[ch[1]]:
                    self.in_channels[ch[1]].append(ch)
            out_counts[ch] = k + 1

    def _replay(self, rank: int, witness: Tuple[Tuple, ...]) -> _Behavior:
        capture = _Capture(self.model.n_ranks)
        programs = self.model.make_programs(capture)
        gen = programs[rank]
        out_counts: Dict[Channel, int] = {}
        wait: Tuple[str, ...] = ()
        finished = False
        try:
            try:
                request = next(gen)
            except StopIteration:
                finished = True
            self._log_sends(capture, out_counts)
            if not finished:
                wait = _wait_kind(request, rank)
            for event in witness:
                try:
                    if event[0] == "deliver":
                        ch, idx = event[1], event[2]
                        tag, mb, data = self.log[ch][idx]
                        request = gen.send(Packet(
                            src=ch[0], dst=ch[1], tag=tag, microbatch=mb,
                            data=data))
                    else:
                        request = gen.throw(TimeoutError(
                            f"model timeout at rank {rank}"))
                except StopIteration:
                    finished = True
                self._log_sends(capture, out_counts)
                if finished:
                    break
                wait = _wait_kind(request, rank)
        finally:
            _close_all(programs)
        return _Behavior(wait, finished, out_counts, witness)

    def _behavior(self, rank: int, key: Tuple,
                  witness: Tuple[Tuple, ...]) -> _Behavior:
        beh = self.cache.get((rank, key))
        if beh is None:
            beh = self._replay(rank, witness)
            self.cache[(rank, key)] = beh
        return beh

    # -- state plumbing ----------------------------------------------------
    @staticmethod
    def _local_key(rank: int, consumed: Dict[Channel, int],
                   timeouts: Dict[int, int]) -> Tuple:
        mine = tuple(sorted((c, n) for c, n in consumed.items()
                            if c[1] == rank and n))
        return (mine, timeouts.get(rank, 0))

    @staticmethod
    def _state_key(consumed: Dict[Channel, int],
                   timeouts: Dict[int, int]) -> Tuple:
        return (tuple(sorted((c, n) for c, n in consumed.items() if n)),
                tuple(sorted((r, n) for r, n in timeouts.items() if n)))

    def _enabled(self, consumed: Dict[Channel, int],
                 timeouts: Dict[int, int],
                 behaviors: Dict[int, _Behavior]) -> List[Tuple]:
        actions: List[Tuple] = []
        for rank in self.ranks:
            beh = behaviors[rank]
            if beh.finished:
                continue
            wait = beh.wait
            for ch in self.in_channels[rank]:
                if wait[0] == "plane" and ch[2] != wait[1]:
                    continue
                # "any"/"timed" accept every plane: the runtime's single
                # FIFO per rank pair delivers whatever arrives next.
                produced = behaviors[ch[0]].out_counts.get(ch, 0) \
                    if ch[0] in behaviors else 0
                if consumed.get(ch, 0) < produced:
                    actions.append(("deliver", ch, rank))
            if wait[0] == "timed":
                actions.append(("timeout", None, rank))
        return actions

    # -- the search --------------------------------------------------------
    def run(self) -> None:
        consumed0: Dict[Channel, int] = {}
        timeouts0: Dict[int, int] = {}
        behaviors0 = {
            r: self._behavior(r, self._local_key(r, consumed0, timeouts0),
                              ())
            for r in self.ranks}
        root = self._state_key(consumed0, timeouts0)
        seen = {root}
        # Each frame carries its own dicts; parents reconstruct the
        # counterexample path.
        stack = [(consumed0, timeouts0, behaviors0)]
        parents: Dict[Tuple, Tuple[Optional[Tuple], Optional[Tuple]]] = {
            root: (None, None)}
        while stack:
            consumed, timeouts, behaviors = stack.pop()
            skey = self._state_key(consumed, timeouts)
            self.states += 1
            if self.states > self.max_states:
                raise ModelError(
                    f"{self.model.describe()}: state space exceeded "
                    f"{self.max_states} states")
            actions = self._enabled(consumed, timeouts, behaviors)
            # Partial-order reduction: deliveries to reflector ranks are
            # fired eagerly, one at a time, instead of branching against
            # everything else.  Sound because a reflector (a) always waits
            # on "any", so a pending delivery to it can never be disabled
            # by other actions — any "deadlock" with one pending is no
            # deadlock at all; (b) reacts to every delivery with only
            # constant-content sends, so firing it early appends the same
            # channel contents as firing it late (the counts-quotient
            # commutes); and (c) its sends can only *enable* other actions
            # (produced counts grow monotonically), never disable them.
            # Hence every deadlock / leftover-terminal reachable in the
            # full graph is reachable with reflector deliveries front-run.
            eager = [a for a in actions
                     if a[0] == "deliver"
                     and a[2] in self.model.reflector_ranks]
            if eager:
                actions = [min(eager)]
            if not actions:
                if all(b.finished for b in behaviors.values()):
                    self.terminals += 1
                    self._check_terminal(consumed, behaviors)
                else:
                    self._build_counterexample(skey, parents, behaviors)
                    return
                continue
            for action in actions:
                nc = dict(consumed)
                nt = dict(timeouts)
                rank = action[2]
                old_beh = behaviors[rank]
                if action[0] == "deliver":
                    ch = action[1]
                    idx = nc.get(ch, 0)
                    nc[ch] = idx + 1
                    event = ("deliver", ch, idx)
                else:
                    nt[rank] = nt.get(rank, 0) + 1
                    event = ("timeout",)
                nkey = self._state_key(nc, nt)
                if nkey in seen:
                    continue
                seen.add(nkey)
                nb = dict(behaviors)
                nb[rank] = self._behavior(
                    rank, self._local_key(rank, nc, nt),
                    old_beh.witness + (event,))
                parents[nkey] = (skey, action + (event,))
                stack.append((nc, nt, nb))

    def _check_terminal(self, consumed: Dict[Channel, int],
                        behaviors: Dict[int, _Behavior]) -> None:
        for rank in self.ranks:
            for ch, produced in behaviors[rank].out_counts.items():
                left = produced - consumed.get(ch, 0)
                if left > 0:
                    self.leftover_violations.setdefault(
                        f"channel {ch[0]} -> {ch[1]} (plane {ch[2]!r}): "
                        f"{left} sent message(s) never received in a "
                        f"terminal interleaving")

    def _build_counterexample(
            self, skey: Tuple,
            parents: Dict[Tuple, Tuple[Optional[Tuple], Optional[Tuple]]],
            behaviors: Dict[int, _Behavior]) -> None:
        path: List[Tuple] = []
        key: Optional[Tuple] = skey
        while key is not None:
            prev, action = parents[key]
            if action is not None:
                path.append(action)
            key = prev
        path.reverse()
        trace, orphans, sent = self._replay_path(path)
        stuck = sorted(r for r in self.ranks if not behaviors[r].finished)
        wait_for = {
            r: sorted({ch[0] for ch in self.in_channels[r]})
            for r in stuck}
        message = describe_deadlock(stuck, wait_for, orphans, sent)
        self.counterexample = DeadlockWitness(message, stuck, wait_for,
                                              trace)

    def _replay_path(self, path: Sequence[Tuple]
                     ) -> Tuple[List[SkeletonOp], List[_Msg], int]:
        """Re-run the deadlocking interleaving on one full fresh ensemble
        to produce an honest op trace and the undelivered packets."""
        capture = _Capture(self.model.n_ranks)
        programs = self.model.make_programs(capture)
        trace: List[SkeletonOp] = []
        consumed: Dict[Channel, int] = {}
        sent = 0

        def drain() -> None:
            nonlocal sent
            for msg in capture.drain():
                if msg.plane == COLLECTIVE_PLANE:
                    trace.append(SkeletonOp("collective", msg.src,
                                            tag=msg.tag, key=msg.data))
                    continue
                trace.append(SkeletonOp("send", msg.src, msg.dst, msg.tag,
                                        msg.microbatch, plane=msg.plane))
                sent += 1

        try:
            for rank in self.ranks:
                try:
                    next(programs[rank])
                except StopIteration:
                    pass
                drain()
            for action in path:
                rank = action[2]
                gen = programs[rank]
                try:
                    if action[0] == "deliver":
                        ch = action[1]
                        idx = consumed.get(ch, 0)
                        consumed[ch] = idx + 1
                        tag, mb, data = self.log[ch][idx]
                        trace.append(SkeletonOp("recv", rank, ch[0], tag,
                                                mb, plane=ch[2]))
                        gen.send(Packet(src=ch[0], dst=ch[1], tag=tag,
                                        microbatch=mb, data=data))
                    else:
                        trace.append(SkeletonOp("timeout", rank))
                        gen.throw(TimeoutError(
                            f"model timeout at rank {rank}"))
                except StopIteration:
                    pass
                drain()
        finally:
            _close_all(programs)
        orphans = [
            _Msg(ch[0], ch[1], tag, mb, ch[2])
            for ch, seq in sorted(self.log.items())
            for (tag, mb, _data) in seq[consumed.get(ch, 0):]
        ]
        return trace, orphans, sent


def check_model(model: CommModel, max_states: int = 200_000) -> CheckResult:
    """Exhaustively explore the interleavings of ``model`` and prove (or
    refute, with a counterexample) deadlock-freedom, complete matching,
    and per-column collective-order consistency."""
    # Skeleton extraction gives the channel graph; the checker then
    # explores each connected component separately (disjoint components
    # share no channel, so deadlocks and matching compose).  When the
    # deterministic extraction itself deadlocks, fall back to exploring
    # the whole system — the DFS will surface the counterexample.
    components: List[List[int]]
    skeleton: Optional[Skeleton] = None
    try:
        skeleton = extract_skeleton(model)
        components = skeleton.components()
    except ModelError:
        components = [list(range(model.n_ranks))]

    states = terminals = 0
    violations: List[str] = []
    counterexample: Optional[DeadlockWitness] = None
    deadlock_free = True
    for component in components:
        explorer = _Explorer(model, component, max_states - states)
        explorer.run()
        states += explorer.states
        terminals += explorer.terminals
        violations.extend(explorer.leftover_violations)
        if explorer.counterexample is not None:
            deadlock_free = False
            if counterexample is None:
                counterexample = explorer.counterexample
            violations.append(
                f"deadlock: ranks {explorer.counterexample.stuck} blocked")
            break
    matching_complete = deadlock_free and not any(
        "never received" in v for v in violations)

    collective_violations: List[str] = []
    if model.collectives:
        trace = TraceRecorder()
        for rank in sorted(model.collectives):
            for op, key in model.collectives[rank]:
                trace.record_collective(rank, op, key=key)
        collective_violations = [
            str(v) for v in check_collective_order(trace, model.groups)]
        violations.extend(collective_violations)
    if model.tp_groups and skeleton is not None:
        # The in-stream tp_* collectives captured during extraction: every
        # member of a tensor-parallel group must have recorded the same
        # (op, key) sequence.  Per-channel FIFO makes the follower's record
        # order the lead's emission order in *every* interleaving, so the
        # deterministic extraction is a sound witness.
        trace = TraceRecorder()
        for rank in sorted(skeleton.ops):
            for o in skeleton.ops[rank]:
                if o.kind == "collective" and o.tag.startswith("tp_"):
                    trace.record_collective(rank, o.tag, key=o.key)
        tp_violations = [
            str(v) for v in check_collective_order(trace, model.tp_groups,
                                                   tags=("tp_",))]
        collective_violations.extend(tp_violations)
        violations.extend(tp_violations)

    return CheckResult(
        model=model.describe(), config=dict(model.config),
        deadlock_free=deadlock_free, matching_complete=matching_complete,
        collectives_consistent=not collective_violations,
        states=states, terminals=terminals, violations=violations,
        counterexample=counterexample)
