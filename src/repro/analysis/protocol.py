"""Communication-protocol verifier (MUST / MPI-Checker style).

Algorithm 2's asynchronous send/recv protocol is fragile in exactly the way
real MPMD pipeline schedulers are: a mismatched tag or a missing receive
silently hangs a pipeline or corrupts a gradient without failing any
loss-equivalence test.  This module provides the machinery to rule that
class of bug out:

* :class:`TraceRecorder` — a per-rank log of send / recv / collective
  events.  Both substrates know how to feed one: pass ``recorder=`` to
  :class:`~repro.runtime.RankTransport` or :class:`~repro.comm.Messenger`
  (or ``recorder=`` on :class:`~repro.runtime.AxoNNTrainer`, which also
  records the data-parallel collectives per rank).

* Static checks over a *completed* trace:

  - :func:`check_unmatched_sends` — orphan packets: sends that no receive
    ever consumed (what a forgotten ``MPI_Irecv`` looks like);
  - :func:`check_match_order` — per-channel (src, dst) FIFO consistency:
    the (tag, microbatch) sequence received must equal the sequence sent;
  - :func:`check_collective_order` — every rank of a group must issue the
    same collective sequence, in the same order (the classic source of
    collective deadlock on real machines).

* :class:`ProtocolError` — the typed error raised for protocol misuse:
  non-RECV yields, undelivered packets at run end (``strict=True``), and
  trace verification failures via :func:`assert_clean`.

* :func:`describe_deadlock` — the wait-for-graph diagnosis attached to
  :class:`~repro.runtime.DeadlockError`: which rank waits on whom, plus the
  nearest unmatched send (the packet whose misrouting usually explains the
  hang).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CommEvent",
    "ProtocolError",
    "TraceRecorder",
    "Violation",
    "assert_clean",
    "check_collective_order",
    "check_match_order",
    "check_unmatched_sends",
    "describe_deadlock",
    "verify_trace",
]

SEND = "send"
RECV_EVENT = "recv"
COLLECTIVE = "collective"


class ProtocolError(RuntimeError):
    """A communication-protocol contract was violated.

    Raised by the transports for non-RECV yields and for undelivered
    packets at run end, and by :func:`assert_clean` when a recorded trace
    fails verification.  Subclasses :class:`RuntimeError` so call sites
    written against the old bare errors keep working.
    """


@dataclass(frozen=True)
class CommEvent:
    """One recorded communication event.

    ``rank`` is the rank *performing* the event; ``peer`` is the
    destination for a send and the source for a receive (``None`` for
    collectives).  ``key`` disambiguates collectives (e.g. the
    ``(stage, chunk)`` of an all-reduce chunk).
    """

    seq: int
    kind: str
    rank: int
    peer: Optional[int]
    tag: str
    microbatch: Any = None
    nbytes: int = 0
    key: Any = None

    def __str__(self) -> str:
        if self.kind == SEND:
            return (f"send {self.rank} -> {self.peer} tag={self.tag!r} "
                    f"microbatch={self.microbatch}")
        if self.kind == RECV_EVENT:
            return (f"recv {self.rank} <- {self.peer} tag={self.tag!r} "
                    f"microbatch={self.microbatch}")
        return f"collective rank={self.rank} op={self.tag!r} key={self.key!r}"


class TraceRecorder:
    """Append-only per-run communication trace.

    One recorder can span several transports (e.g. the rank transport and
    the engine's collective phase of the same batch); the global ``seq``
    preserves the interleaving.
    """

    def __init__(self) -> None:
        self.events: List[CommEvent] = []
        self._seq = 0

    def _record(self, **kw: Any) -> None:
        self.events.append(CommEvent(seq=self._seq, **kw))
        self._seq += 1

    def record_send(self, src: int, dst: int, tag: str, microbatch: Any,
                    nbytes: int = 0) -> None:
        self._record(kind=SEND, rank=src, peer=dst, tag=tag,
                     microbatch=microbatch, nbytes=nbytes)

    def record_recv(self, rank: int, src: int, tag: str, microbatch: Any,
                    nbytes: int = 0) -> None:
        self._record(kind=RECV_EVENT, rank=rank, peer=src, tag=tag,
                     microbatch=microbatch, nbytes=nbytes)

    def record_collective(self, rank: int, op: str, key: Any = None) -> None:
        self._record(kind=COLLECTIVE, rank=rank, peer=None, tag=op, key=key)

    def clear(self) -> None:
        self.events.clear()
        self._seq = 0

    # -- views -------------------------------------------------------------
    def events_of(self, rank: int) -> List[CommEvent]:
        return [e for e in self.events if e.rank == rank]

    def sends(self) -> List[CommEvent]:
        return [e for e in self.events if e.kind == SEND]

    def recvs(self) -> List[CommEvent]:
        return [e for e in self.events if e.kind == RECV_EVENT]

    def collectives(self) -> List[CommEvent]:
        return [e for e in self.events if e.kind == COLLECTIVE]

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class Violation:
    """One verification finding."""

    code: str
    message: str
    events: Tuple[CommEvent, ...] = field(default=(), compare=False)

    def __str__(self) -> str:
        return f"{self.code}: {self.message}"


def _channels(trace: TraceRecorder) -> Dict[Tuple[int, int],
                                            Tuple[List[CommEvent],
                                                  List[CommEvent]]]:
    """Group events into directed (src, dst) channels, FIFO order."""
    chans: Dict[Tuple[int, int], Tuple[List[CommEvent], List[CommEvent]]] = {}
    for e in trace.events:
        if e.kind == SEND:
            chans.setdefault((e.rank, e.peer), ([], []))[0].append(e)
        elif e.kind == RECV_EVENT:
            chans.setdefault((e.peer, e.rank), ([], []))[1].append(e)
    return chans


def check_match_order(trace: TraceRecorder) -> List[Violation]:
    """Per-channel FIFO consistency: (tag, microbatch) received must match
    the order sent.  A mismatch means the receiver consumed a packet it did
    not expect — the bug class that corrupts a pipeline silently."""
    out: List[Violation] = []
    for (src, dst), (sends, recvs) in sorted(_channels(trace).items()):
        for i, (s, r) in enumerate(zip(sends, recvs)):
            if (s.tag, s.microbatch) != (r.tag, r.microbatch):
                out.append(Violation(
                    "MATCH_ORDER",
                    f"channel {src} -> {dst} position {i}: sent "
                    f"(tag={s.tag!r}, microbatch={s.microbatch}) but "
                    f"receiver consumed (tag={r.tag!r}, "
                    f"microbatch={r.microbatch})",
                    (s, r)))
        if len(recvs) > len(sends):
            for r in recvs[len(sends):]:
                out.append(Violation(
                    "PHANTOM_RECV",
                    f"channel {src} -> {dst}: receive of (tag={r.tag!r}, "
                    f"microbatch={r.microbatch}) has no matching send",
                    (r,)))
    return out


def check_unmatched_sends(trace: TraceRecorder) -> List[Violation]:
    """Sends never consumed by any receive — orphan packets that a run
    either leaves rotting in an inbox or that indicate a missing recv."""
    out: List[Violation] = []
    for (src, dst), (sends, recvs) in sorted(_channels(trace).items()):
        for s in sends[len(recvs):]:
            out.append(Violation(
                "UNMATCHED_SEND",
                f"send {src} -> {dst} (tag={s.tag!r}, "
                f"microbatch={s.microbatch}) was never received",
                (s,)))
    return out


def check_collective_order(trace: TraceRecorder,
                           groups: Optional[Sequence[Sequence[int]]] = None,
                           tags: Optional[Sequence[str]] = None
                           ) -> List[Violation]:
    """Every rank of a group must issue the identical collective sequence.

    ``groups`` lists the rank groups that participate in the same
    collectives (e.g. the data-parallel columns of the grid); by default
    all ranks that recorded any collective form one group.  ``tags``
    restricts the check to collectives whose op name starts with one of
    the given prefixes — a grid with several collective planes (the
    data-parallel ``allreduce_*`` columns, the tensor-parallel ``tp_*``
    groups) checks each plane against its own groups without the planes
    contaminating each other's sequences.
    """
    per_rank: Dict[int, List[Tuple[str, Any]]] = {}
    for e in trace.collectives():
        if tags is not None and not any(e.tag.startswith(t) for t in tags):
            continue
        per_rank.setdefault(e.rank, []).append((e.tag, e.key))
    if groups is None:
        groups = [sorted(per_rank)] if per_rank else []
    out: List[Violation] = []
    for group in groups:
        members = list(group)
        if len(members) < 2:
            continue
        ref_rank = members[0]
        ref = per_rank.get(ref_rank, [])
        for rank in members[1:]:
            seq = per_rank.get(rank, [])
            if seq == ref:
                continue
            # Name the first divergence precisely.
            n = min(len(ref), len(seq))
            idx = next((i for i in range(n) if ref[i] != seq[i]), n)
            a = ref[idx] if idx < len(ref) else "<nothing>"
            b = seq[idx] if idx < len(seq) else "<nothing>"
            out.append(Violation(
                "COLLECTIVE_ORDER",
                f"ranks {ref_rank} and {rank} diverge at collective "
                f"#{idx}: rank {ref_rank} issued {a!r}, rank {rank} "
                f"issued {b!r}"))
    return out


def verify_trace(trace: TraceRecorder,
                 groups: Optional[Sequence[Sequence[int]]] = None
                 ) -> List[Violation]:
    """All protocol checks over a completed trace."""
    return (check_match_order(trace)
            + check_unmatched_sends(trace)
            + check_collective_order(trace, groups))


def assert_clean(trace: TraceRecorder,
                 groups: Optional[Sequence[Sequence[int]]] = None) -> None:
    """Raise :class:`ProtocolError` listing every violation, if any."""
    violations = verify_trace(trace, groups)
    if violations:
        listing = "\n  ".join(str(v) for v in violations)
        raise ProtocolError(
            f"communication trace failed verification with "
            f"{len(violations)} violation(s):\n  {listing}")


def describe_deadlock(stuck: Sequence[int],
                      wait_for: Dict[int, Sequence[int]],
                      orphans: Iterable[Any],
                      messages_sent: int) -> str:
    """Human-readable wait-for-graph diagnosis for a deadlock.

    ``orphans`` are undelivered packets (anything with ``src``/``dst``/
    ``tag``/``microbatch`` attributes).  The *nearest unmatched send* — an
    orphan originating from a rank the stuck rank waits on, or failing
    that any orphan — is usually the misrouted packet that explains the
    hang.
    """
    stuck = sorted(stuck)
    orphans = list(orphans)
    lines = [f"ranks {stuck} are all blocked on empty inboxes "
             f"(messages sent so far: {messages_sent})"]
    lines.append("wait-for graph:")
    for rank in stuck:
        peers = sorted(wait_for.get(rank, ()))
        if peers:
            who = ", ".join(f"rank {p}" for p in peers)
            lines.append(f"  rank {rank} waits on {who}")
        else:
            lines.append(f"  rank {rank} waits on an unknown sender "
                         f"(never received a message)")
    if orphans:
        lines.append("nearest unmatched sends (packets never received):")
        for pkt in orphans[:20]:
            lines.append(
                f"  {pkt.src} -> {pkt.dst} tag={pkt.tag!r} "
                f"microbatch={pkt.microbatch} (queued in rank "
                f"{pkt.dst}'s inbox)")
        if len(orphans) > 20:
            lines.append(f"  ... and {len(orphans) - 20} more")
    else:
        lines.append("no undelivered packets: the expected sender never "
                     "called send()")
    return "\n".join(lines)
