"""Shared-memory race detector for the process backend's SPSC rings.

PR 6's :class:`~repro.runtime.shm.ShmRing` is the repo's first true
shared-memory concurrency: one producer and one consumer process share a
``multiprocessing.shared_memory`` segment, synchronized only by the
monotone ``tail``/``head`` counters (release = publishing your counter,
acquire = reading the peer's).  This module checks that discipline
*dynamically*, the way TSan/FastTrack would:

* Every completed ``push``/``pop`` is observed via ``ShmRing.observer``
  (installed by the worker main loop when tracing is on) and lands in the
  per-rank ObsSpan JSONL as a ``ring-push``/``ring-pop`` event on the
  ``sync`` stream, carrying ``(ring, pos, size, seen)`` — the absolute
  byte range touched and the peer-counter value the operation's
  synchronizing load observed.

* :func:`check_races` rebuilds the happens-before relation: per-rank
  program order, plus acquire/release edges — a pop acquires the release
  of every push whose published range its ``tail_seen`` covers, a push
  acquires the release of every pop whose freed range its ``head_seen``
  covers.  Vector clocks propagate along these edges; each access keeps a
  FastTrack-style *epoch* ``(rank, clock)`` so the order test between two
  accesses is O(1).

* Two accesses **race** when their byte ranges alias in the ring's
  physical ``capacity`` window, they come from different ranks, and
  neither epoch happens-before the other's clock — exactly a torn
  write/read on ring state.

A correct SPSC run is provably clean: pops partition ``[0, head)``
contiguously, so any pop overlapping a push's frame saw a ``tail`` past
it (acquired its release), and any push overwriting popped bytes spun
until ``head`` covered them (acquired the pops' releases).  Dropping a
release edge (:func:`drop_release` — the seeded torn-write mutant) breaks
the chain for the final frame and the detector must flag it; both
directions are pinned by tests and ``python -m repro verify``.
"""

from __future__ import annotations

import glob
import os
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs.jsonl import read_spans_jsonl
from ..obs.schema import ObsSpan

__all__ = [
    "Race",
    "RaceError",
    "RingEvent",
    "assert_race_free",
    "check_races",
    "drop_release",
    "load_ring_events",
    "ring_events_from_spans",
    "synthetic_ring_events",
]


class RaceError(RuntimeError):
    """Raised by :func:`assert_race_free` when races are found, or when a
    ring-event log is internally inconsistent."""


@dataclass(frozen=True)
class RingEvent:
    """One completed ring access.

    ``pos``/``size`` use the ring's *absolute* byte positions (monotone,
    wrapped modulo ``capacity`` only at the physical layer); ``seen`` is
    the peer counter observed by the operation's acquiring load.
    ``released`` marks whether the operation published its own counter —
    always true for real runs; the torn-write mutant clears it.
    """

    rank: int
    op: str          # "push" | "pop"
    ring: str        # channel label, e.g. "0->1"
    pos: int
    size: int
    capacity: int
    seen: int
    released: bool = True


@dataclass(frozen=True)
class Race:
    """An unsynchronized pair of accesses to aliasing ring bytes."""

    ring: str
    first: RingEvent
    second: RingEvent

    def __str__(self) -> str:
        a, b = self.first, self.second
        return (f"race on ring {self.ring!r}: rank {a.rank} {a.op} "
                f"[{a.pos}, {a.pos + a.size}) and rank {b.rank} {b.op} "
                f"[{b.pos}, {b.pos + b.size}) alias in the "
                f"{a.capacity}-byte window with no happens-before order")


def ring_events_from_spans(spans: Sequence[ObsSpan]) -> List[RingEvent]:
    """Extract ring accesses from a span list.

    ``spans`` must be in per-rank program order (which per-rank JSONL
    files and a single in-process tracer both guarantee); order *between*
    ranks is irrelevant — happens-before is rebuilt from the sync edges.
    """
    events: List[RingEvent] = []
    for span in spans:
        if not span.name.startswith("ring-"):
            continue
        meta = span.with_meta()
        events.append(RingEvent(
            rank=span.rank, op=span.name[len("ring-"):],
            ring=str(meta["ring"]), pos=int(meta["pos"]),
            size=int(meta["size"]), capacity=int(meta["capacity"]),
            seen=int(meta["seen"])))
    return events


def load_ring_events(trace_dir: str) -> List[RingEvent]:
    """Read every worker's ``rank*.jsonl`` under ``trace_dir`` and extract
    its ring accesses, preserving each file's (program) order."""
    events: List[RingEvent] = []
    for path in sorted(glob.glob(os.path.join(trace_dir, "rank*.jsonl"))):
        spans, _pids = read_spans_jsonl(path)
        events.extend(ring_events_from_spans(spans))
    return events


def drop_release(events: Sequence[RingEvent], ring: Optional[str] = None,
                 index: int = -1) -> List[RingEvent]:
    """The seeded torn-write mutant: erase one push's release edge.

    By default the *last* push on the ring — an earlier push's missing
    release is masked by the next same-ring release (the writer's program
    order folds it in transitively), so only the final frame exposes the
    bug, which is exactly what makes it a good detector test.
    """
    pushes = [i for i, e in enumerate(events)
              if e.op == "push" and (ring is None or e.ring == ring)]
    if not pushes:
        raise ValueError("no push events to mutate")
    victim = pushes[index]
    out = list(events)
    out[victim] = replace(out[victim], released=False)
    return out


# ---------------------------------------------------------------------------
# Happens-before construction
# ---------------------------------------------------------------------------

@dataclass
class _Access:
    """A processed event with its epoch and (if released) release clock."""

    event: RingEvent
    clock: int = 0
    vc: Dict[int, int] = field(default_factory=dict)


def _aliases(a: RingEvent, b: RingEvent) -> bool:
    """Do the two accesses touch a common physical byte of the ring?"""
    cap = a.capacity
    da = (b.pos - a.pos) % cap
    db = (a.pos - b.pos) % cap
    return da < a.size or db < b.size


def _linearize(events: Sequence[RingEvent]) -> List[_Access]:
    """Vector-clock pass: process each rank's events in program order,
    joining the release clocks of every access the event's ``seen``
    counter proves completed.  Dependencies are monotone prefixes (both
    counters only grow), so a simple worklist over per-rank cursors
    terminates unless the log is inconsistent."""
    per_rank: Dict[int, List[_Access]] = {}
    # All (pos + size) bounds per (ring, op), sorted: how many peer
    # accesses a given ``seen`` value covers is one bisect away.  Ring
    # positions are monotone per side, so covered sets are prefixes.
    bounds: Dict[Tuple[str, str], List[int]] = {}
    for ev in events:
        per_rank.setdefault(ev.rank, []).append(_Access(ev))
        bounds.setdefault((ev.ring, ev.op), []).append(ev.pos + ev.size)
    for seq in bounds.values():
        seq.sort()
    done: Dict[Tuple[str, str], List[_Access]] = {}
    clocks: Dict[int, Dict[int, int]] = {r: {} for r in per_rank}
    cursors: Dict[int, int] = {r: 0 for r in per_rank}
    out: List[_Access] = []

    progressed = True
    while progressed:
        progressed = False
        for rank in sorted(per_rank):
            lane = per_rank[rank]
            while cursors[rank] < len(lane):
                acc = lane[cursors[rank]]
                ev = acc.event
                peer_op = "pop" if ev.op == "push" else "push"
                key = (ev.ring, peer_op)
                peers = done.get(key, [])
                # Every *observed* peer access the seen-counter covers
                # must be processed first, so its release clock exists.
                need = bisect_right(bounds.get(key, []), ev.seen)
                if len(peers) < need:
                    break  # the peer side hasn't caught up yet
                vc = clocks[rank]
                for peer in peers[:need]:
                    if not peer.event.released:
                        continue
                    for r, c in peer.vc.items():
                        if vc.get(r, 0) < c:
                            vc[r] = c
                vc[rank] = vc.get(rank, 0) + 1
                acc.clock = vc[rank]
                acc.vc = dict(vc)
                done.setdefault((ev.ring, ev.op), []).append(acc)
                out.append(acc)
                cursors[rank] += 1
                progressed = True
    if any(cursors[r] < len(per_rank[r]) for r in per_rank):
        stuck = {r: len(per_rank[r]) - cursors[r] for r in per_rank
                 if cursors[r] < len(per_rank[r])}
        raise RaceError(
            f"inconsistent ring-event log: events still blocked on "
            f"unobserved peers: {stuck}")
    return out


def check_races(events: Sequence[RingEvent]) -> List[Race]:
    """All unsynchronized aliasing access pairs in ``events``."""
    accesses = _linearize(events)
    by_ring: Dict[str, List[_Access]] = {}
    for acc in accesses:
        by_ring.setdefault(acc.event.ring, []).append(acc)
    races: List[Race] = []
    for ring, accs in sorted(by_ring.items()):
        pushes = [a for a in accs if a.event.op == "push"]
        pops = [a for a in accs if a.event.op == "pop"]
        for p in pushes:
            for q in pops:
                if p.event.rank == q.event.rank:
                    continue
                if not _aliases(p.event, q.event):
                    continue
                # FastTrack epoch test, both directions.
                p_before_q = q.vc.get(p.event.rank, 0) >= p.clock
                q_before_p = p.vc.get(q.event.rank, 0) >= q.clock
                if not (p_before_q or q_before_p):
                    races.append(Race(ring, p.event, q.event))
    return races


def assert_race_free(events: Sequence[RingEvent]) -> None:
    """Raise :class:`RaceError` listing every race, if any."""
    races = check_races(events)
    if races:
        listing = "\n  ".join(str(r) for r in races)
        raise RaceError(
            f"shared-memory race detector found {len(races)} race(s):\n"
            f"  {listing}")


# ---------------------------------------------------------------------------
# Synthetic traffic (self-checks without forking processes)
# ---------------------------------------------------------------------------

def synthetic_ring_events(n_frames: int = 8, frame: int = 96,
                          capacity: int = 256, writer: int = 0,
                          reader: int = 1,
                          ring: str = "0->1") -> List[RingEvent]:
    """Deterministic well-synchronized SPSC traffic with wraparound.

    Mimics exactly what the instrumented :class:`~repro.runtime.shm.
    ShmRing` records for a writer that fills the ring and a reader that
    drains it: ``seen`` values are the true counter observations, so the
    result is race-free — and :func:`drop_release` on it must not be.
    Used by the ``verify`` CLI's self-check and the unit tests (this
    container may have a single core; no forks needed).
    """
    if frame > capacity:
        raise ValueError("frame must fit the ring")
    events: List[Tuple[int, RingEvent]] = []  # (order stamp, event)
    tail = head = 0
    stamp = 0
    pushed = popped = 0
    while popped < n_frames:
        while pushed < n_frames and capacity - (tail - head) >= frame:
            events.append((stamp, RingEvent(writer, "push", ring, tail,
                                            frame, capacity, head)))
            tail += frame
            pushed += 1
            stamp += 1
        while tail - head >= frame:
            events.append((stamp, RingEvent(reader, "pop", ring, head,
                                            frame, capacity, tail)))
            head += frame
            popped += 1
            stamp += 1
    # Per-rank program order is what the detector consumes.
    writer_events = [e for _s, e in events if e.rank == writer]
    reader_events = [e for _s, e in events if e.rank == reader]
    return writer_events + reader_events
