"""Performance instrumentation: wall-clock timers and op-level counters.

This package is the measurement side of the fused-kernel work: the
benchmark harness (``benchmarks/bench_wallclock.py``) uses :mod:`timers`
to produce ``BENCH_PR1.json`` and :mod:`counters` to prove that the fused
ops really do collapse the autograd graph (one node where the unfused
composition records many).

It deliberately imports nothing from :mod:`repro.nn` so the tensor core
can hook into the counters without an import cycle.
"""

from .counters import OpCounters, counters, counting
from .timers import Timer, TimingStats, time_fn

__all__ = [
    "OpCounters",
    "counters",
    "counting",
    "Timer",
    "TimingStats",
    "time_fn",
]
