"""Wall-clock timing primitives for the benchmark harness.

:class:`Timer` is a context manager accumulating named spans;
:func:`time_fn` is the repeat/warmup measurement loop every entry in
``BENCH_PR1.json`` comes from.  Statistics are reported as min / mean /
max over repeats — the *min* is what the regression gate compares, being
the least noisy estimator of the true cost on a shared machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

__all__ = ["Timer", "TimingStats", "time_fn"]


@dataclass
class TimingStats:
    """Summary of repeated measurements of one operation (seconds)."""

    samples: List[float]

    @property
    def min(self) -> float:
        return min(self.samples)

    @property
    def max(self) -> float:
        return max(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    def as_dict(self) -> Dict[str, float]:
        return {
            "min_s": self.min,
            "mean_s": self.mean,
            "max_s": self.max,
            "repeats": len(self.samples),
        }


def time_fn(fn: Callable[[], object], repeats: int = 5,
            warmup: int = 1) -> TimingStats:
    """Time ``fn()`` over ``repeats`` runs after ``warmup`` throwaway runs."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return TimingStats(samples)


@dataclass
class Timer:
    """Accumulating named-span timer.

    ::

        t = Timer()
        with t.span("forward"):
            ...
        with t.span("forward"):   # accumulates into the same bucket
            ...
        t.totals()  # {"forward": 0.0123}
    """

    _totals: Dict[str, float] = field(default_factory=dict)
    _counts: Dict[str, int] = field(default_factory=dict)

    def span(self, name: str) -> "_Span":
        return _Span(self, name)

    def add(self, name: str, seconds: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> Dict[str, float]:
        return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()


class _Span:
    __slots__ = ("_timer", "_name", "_t0")

    def __init__(self, timer: Timer, name: str):
        self._timer = timer
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.add(self._name, time.perf_counter() - self._t0)
