"""Op-level counters for the numerical stack.

The autograd core calls :meth:`OpCounters.bump` when a graph node is
created and the fused kernels in :mod:`repro.nn.functional` record one
event per call.  Counting is **off by default** and the hot-path cost of
a disabled counter is a single attribute check, so the instrumentation
can stay in the production code paths.

Usage::

    from repro.perf import counters, counting

    with counting():
        loss = model(x, targets=y)[1]
        loss.backward()
    print(counters.snapshot())   # {"graph_nodes": 431, "gelu": 4, ...}
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator

__all__ = ["OpCounters", "counters", "counting"]


class OpCounters:
    """A named event tally with a cheap global enable flag."""

    __slots__ = ("enabled", "_counts")

    def __init__(self) -> None:
        self.enabled = False
        self._counts: Dict[str, int] = {}

    def bump(self, name: str, n: int = 1) -> None:
        """Record ``n`` events of ``name`` (no-op unless enabled)."""
        if not self.enabled:
            return
        self._counts[name] = self._counts.get(name, 0) + n

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A copy of the current tallies."""
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()


#: process-wide counter instance the instrumented code paths report to
counters = OpCounters()


@contextlib.contextmanager
def counting(reset: bool = True) -> Iterator[OpCounters]:
    """Enable the global counters for the duration of the block."""
    if reset:
        counters.reset()
    prev = counters.enabled
    counters.enabled = True
    try:
        yield counters
    finally:
        counters.enabled = prev
