"""Builders: the five shipped schedules expressed as pure data.

Three re-express what the repo already runs — the AxoNN message-driven
schedule (Algorithm 2, linearized by an abstract unit-cost simulation of
its dispatch rule), 1F1B and GPipe (expanded from the op lists in
:mod:`repro.baselines.schedules`, so the compiled programs are
bit-identical to the hardcoded ``FlushingPipelineTrainer``).  Two are
new and exist *only* as data: interleaved virtual-stage 1F1B
(``n_chunks`` chunks per rank, chunk placement ``stage % n_stages``)
and a ZB-H1-style zero-bubble schedule (backward split into the input-
gradient ``BWD`` and the deferred weight-gradient ``W``, which fills
the cooldown bubbles).

The new schedules are derived by a deterministic list-scheduling
simulation over the task DAG (unit costs, eager-backward priority,
per-rank in-flight caps) rather than a closed-form trace: the simulator
produces one *feasible execution*, and executing its per-rank
linearization with blocking FIFO receives is deadlock-free by
construction — which the validator (FIFO consistency) and the model
checker then prove independently.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines.schedules import gpipe_schedule, one_f_one_b_schedule
from .ir import (BWD, FWD, RECV_ACT, RECV_GRAD, SEND_ACT, SEND_GRAD, W,
                 Schedule, Task, required_deps, validate)

__all__ = ["SCHEDULE_NAMES", "build_schedule", "schedule_chunks",
           "axonn_ir", "one_f_one_b_ir", "gpipe_ir", "interleaved_ir",
           "zero_bubble_ir"]


def _expand_compute_order(name: str, n_stages: int, n_virtual: int,
                          n_microbatches: int,
                          compute_order: Sequence[Sequence[Task]],
                          activation_limit: Optional[int] = None,
                          meta: Optional[Dict[str, object]] = None,
                          ) -> Schedule:
    """Attach the canonical comm tasks to per-rank *compute* orders.

    Every cross-rank FWD/BWD gets its RECV immediately before and its
    SEND immediately after — exactly the shape of the hardcoded
    flushing rank program, which is what makes compiled-1F1B/GPipe
    trace-identical to it.  Dependencies are materialized as the full
    dataflow-required edge set.
    """
    last = n_virtual - 1

    def crosses(boundary: int) -> bool:
        return (boundary % n_stages) != ((boundary + 1) % n_stages)

    rank_order: List[Tuple[Task, ...]] = []
    for order in compute_order:
        full: List[Task] = []
        for task in order:
            v, mb = task.stage, task.mb
            if task.kind == FWD:
                if v > 0 and crosses(v - 1):
                    full.append(Task(RECV_ACT, v, mb))
                full.append(task)
                if v < last and crosses(v):
                    full.append(Task(SEND_ACT, v, mb))
            elif task.kind == BWD:
                if v < last and crosses(v):
                    full.append(Task(RECV_GRAD, v, mb))
                full.append(task)
                if v > 0 and crosses(v - 1):
                    full.append(Task(SEND_GRAD, v, mb))
            else:  # W: pure compute, no comm attached
                full.append(task)
        rank_order.append(tuple(full))

    schedule = Schedule(
        name=name, n_stages=n_stages, n_virtual=n_virtual,
        n_microbatches=n_microbatches, rank_order=tuple(rank_order),
        deps={}, activation_limit=activation_limit, meta=dict(meta or {}))
    schedule.deps = {t: required_deps(schedule, t)
                     for t in schedule.tasks()}
    validate(schedule)
    return schedule


# ---------------------------------------------------------------------------
# The two flushing baselines: straight from their existing op lists.
# ---------------------------------------------------------------------------

def one_f_one_b_ir(n_stages: int, n_microbatches: int) -> Schedule:
    """1F1B re-expressed in the IR (compiles bit-identical to the
    hardcoded trainer; peak residency on rank r is ``n_stages - r``)."""
    orders = [[Task(FWD if kind == "F" else BWD, stage, mb)
               for kind, mb in one_f_one_b_schedule(stage, n_stages,
                                                    n_microbatches)]
              for stage in range(n_stages)]
    return _expand_compute_order(
        "1f1b", n_stages, n_stages, n_microbatches, orders,
        activation_limit=n_stages)


def gpipe_ir(n_stages: int, n_microbatches: int) -> Schedule:
    """GPipe re-expressed in the IR: all forwards, flush, all backwards
    (every microbatch resident at the flush point)."""
    orders = [[Task(FWD if kind == "F" else BWD, stage, mb)
               for kind, mb in gpipe_schedule(stage, n_stages,
                                              n_microbatches)]
              for stage in range(n_stages)]
    return _expand_compute_order(
        "gpipe", n_stages, n_stages, n_microbatches, orders,
        activation_limit=n_microbatches)


# ---------------------------------------------------------------------------
# AxoNN's message-driven schedule, linearized.
# ---------------------------------------------------------------------------

def axonn_ir(n_stages: int, n_microbatches: int,
             pipeline_limit: Optional[int] = None) -> Schedule:
    """Algorithm 2's message-driven dispatch as a static schedule.

    A unit-cost abstract simulation replays the paper's rule — stage 0
    injects ``pipeline_limit`` forwards then alternates on returning
    gradients, middle stages react to arrival order, the last stage runs
    the backward immediately after each forward — and records each
    rank's op sequence.  The linearization of a feasible message-driven
    execution, run statically, keeps the same overlap structure; the DES
    comparison of the two is exactly the paper's static-vs-dynamic
    scheduling ablation (see :mod:`repro.sched.des`).
    """
    S, m = n_stages, n_microbatches
    if S < 1 or m < 1:
        raise ValueError("need n_stages >= 1 and n_microbatches >= 1")
    limit = min(S if pipeline_limit is None else pipeline_limit, m)
    orders: List[List[Task]] = [[] for _ in range(S)]
    if S == 1:
        for mb in range(m):
            orders[0] += [Task(FWD, 0, mb), Task(BWD, 0, mb)]
        return _expand_compute_order("axonn", 1, 1, m, orders,
                                     activation_limit=limit)

    # Merged-inbox arrival queues: (avail_time, send_seq, plane, mb).
    # send_seq breaks simultaneous-arrival ties deterministically.
    inbox: List[List[Tuple[float, int, str, int]]] = [[] for _ in range(S)]
    free_at = [0.0] * S
    seq = 0

    def post(dst: int, when: float, plane: str, mb: int) -> None:
        nonlocal seq
        inbox[dst].append((when, seq, plane, mb))
        seq += 1

    def run(rank: int, task: Task, cost: float) -> float:
        """Execute one op on ``rank`` starting no earlier than now."""
        orders[rank].append(task)
        free_at[rank] += cost
        return free_at[rank]

    queue = list(range(m))
    injected = 0
    for _ in range(limit):
        mb = queue[injected]
        injected += 1
        done = run(0, Task(FWD, 0, mb), 1.0)
        post(1, done, "F", mb)

    pending = [0] * S
    pending[0] = m - injected  # stage 0 still owes these injections
    expected = [m * (2 if 0 < r < S - 1 else 1) for r in range(S)]
    handled = [0] * S
    while any(handled[r] < expected[r] for r in range(1, S)) \
            or handled[0] < m or pending[0] > 0:
        # Earliest processable arrival across ranks (message-driven rule:
        # each rank handles its merged inbox in arrival order).
        best = None
        for r in range(S):
            if not inbox[r]:
                continue
            when, sq, plane, mb = min(inbox[r])
            start = max(when, free_at[r])
            if best is None or (start, sq) < (best[0], best[1]):
                best = (start, sq, r, (when, sq, plane, mb))
        if best is None:  # pragma: no cover - defended by construction
            raise RuntimeError("axonn linearization wedged")
        start, _sq, r, entry = best
        inbox[r].remove(entry)
        _when, _sq2, plane, mb = entry
        free_at[r] = max(free_at[r], start)
        handled[r] += 1
        if plane == "F":
            if r == S - 1:
                run(r, Task(FWD, r, mb), 1.0)
                done = run(r, Task(BWD, r, mb), 2.0)
                post(r - 1, done, "B", mb)
            else:
                done = run(r, Task(FWD, r, mb), 1.0)
                post(r + 1, done, "F", mb)
        else:
            done = run(r, Task(BWD, r, mb), 2.0)
            if r == 0:
                if injected < m:
                    mb2 = queue[injected]
                    injected += 1
                    pending[0] -= 1
                    done2 = run(0, Task(FWD, 0, mb2), 1.0)
                    post(1, done2, "F", mb2)
            else:
                post(r - 1, done, "B", mb)
    return _expand_compute_order("axonn", S, S, m, orders,
                                 activation_limit=limit)


# ---------------------------------------------------------------------------
# List-scheduling derivation for the data-only schedules.
# ---------------------------------------------------------------------------

def _list_schedule(n_stages: int, n_microbatches: int, n_chunks: int,
                   split_w: bool,
                   cap: Callable[[int], int]) -> List[List[Task]]:
    """Derive per-rank compute orders by simulating a greedy executor.

    Unit costs (FWD 1, full BWD 2, split BWD/W 1 each); eager-backward
    priority with ``W`` as idle filler; new forwards gated by the
    per-rank in-flight cap.  Cross-rank readiness honors per-channel
    FIFO (a message is consumable only at the head of its channel), so
    the recorded orders are FIFO-consistent by construction.
    """
    S, m, V = n_stages, n_microbatches, n_chunks
    VS = V * S
    last = VS - 1
    finish: Dict[Task, int] = {}
    orders: List[List[Task]] = [[] for _ in range(S)]
    busy_until = [0] * S
    inflight = [0] * S
    # Per (dst_rank, plane) FIFO: entries (avail_time, stage, mb) in
    # production order; a compute task needing a message is ready only
    # when its entry is the channel head and has arrived.
    chan: Dict[Tuple[int, str], List[Tuple[int, int, int]]] = {}

    def deliver(dst: int, plane: str, when: int, v: int, mb: int) -> None:
        chan.setdefault((dst, plane), []).append((when, v, mb))

    def head_ready(dst: int, plane: str, v: int, mb: int, now: int) -> bool:
        q = chan.get((dst, plane), [])
        return bool(q) and q[0][1] == v and q[0][2] == mb and q[0][0] <= now

    def start(rank: int, task: Task, cost: int, now: int) -> None:
        done = now + cost
        finish[task] = done
        busy_until[rank] = done
        orders[rank].append(task)
        v, mb = task.stage, task.mb
        if task.kind == FWD:
            inflight[rank] += 1
            if v > 0:
                chan[(rank, "F")].pop(0)
            if v < last:
                deliver((v + 1) % S, "F", done, v + 1, mb)
        elif task.kind == BWD:
            if v < last:
                chan[(rank, "B")].pop(0)
            if not split_w:
                inflight[rank] -= 1
            if v > 0:
                deliver((v - 1) % S, "B", done, v - 1, mb)
        else:  # W
            inflight[rank] -= 1

    pending = {Task(FWD, v, mb) for v in range(VS) for mb in range(m)}
    pending |= {Task(BWD, v, mb) for v in range(VS) for mb in range(m)}
    if split_w:
        pending |= {Task(W, v, mb) for v in range(VS) for mb in range(m)}

    now = 0
    guard = 0
    while pending:
        guard += 1
        if guard > 16 * len(finish) + 16 * len(pending) + 64:
            raise RuntimeError(
                f"list scheduler wedged at t={now} with {len(pending)} "
                f"tasks pending")  # pragma: no cover - defensive
        progressed = False
        for rank in range(S):
            if busy_until[rank] > now:
                continue
            mine = [t for t in pending
                    if (t.stage % S) == rank]
            ready_b = []
            ready_f = []
            ready_w = []
            for t in mine:
                v, mb = t.stage, t.mb
                if t.kind == BWD:
                    fwd_done = finish.get(Task(FWD, v, mb))
                    if fwd_done is None or fwd_done > now:
                        continue
                    if v == last or head_ready(rank, "B", v, mb, now):
                        ready_b.append(t)
                elif t.kind == FWD:
                    if v == 0 or head_ready(rank, "F", v, mb, now):
                        ready_f.append(t)
                else:  # W
                    bwd_done = finish.get(Task(BWD, v, mb))
                    if bwd_done is not None and bwd_done <= now:
                        ready_w.append(t)
            picked = None
            cost = 0
            if ready_b:  # eager backward: drain before growing residency
                picked = min(ready_b, key=lambda t: (t.mb, -t.stage))
                cost = 1 if split_w else 2
            elif ready_f and inflight[rank] < cap(rank):
                picked = min(ready_f, key=lambda t: (t.mb, t.stage))
                cost = 1
            elif ready_w:
                picked = min(ready_w, key=lambda t: (t.mb, t.stage))
                cost = 1
            if picked is not None:
                pending.discard(picked)
                start(rank, picked, cost, now)
                progressed = True
        # Decision points only change at task-finish times (arrivals land
        # exactly when their producer finishes), so jump to the next one;
        # with nothing in flight and nothing started, the DAG is wedged
        # and the guard above turns the stall into a hard error.
        future = [b for b in busy_until if b > now]
        now = min(future) if future else now + 1
    return orders


def interleaved_ir(n_stages: int, n_microbatches: int,
                   n_chunks: int = 2) -> Schedule:
    """Interleaved virtual-stage 1F1B: ``n_chunks`` model chunks per
    rank (chunk c's stage for rank r is ``c * n_stages + r``), shrinking
    the warm-up/cool-down bubble by the chunk count at the price of
    more in-flight activations and wrap-around messages.

    The per-rank order is the canonical Megatron-LM interleaved
    schedule: ``2 * (S - r - 1) + (V - 1) * S`` warm-up forwards in
    chunk-round-robin order (chunks advance every ``S`` microbatches),
    1F1B alternation with the backward chunk order reversed, then the
    cool-down drain.  Like the reference implementation it requires the
    microbatch count to divide evenly into rounds of ``n_stages``.
    """
    S, m, V = n_stages, n_microbatches, n_chunks
    if S < 2:
        raise ValueError("interleaved schedule needs n_stages >= 2")
    if V < 2:
        raise ValueError("interleaved schedule needs n_chunks >= 2")
    if m % S != 0:
        raise ValueError(
            f"interleaved schedule needs n_microbatches ({m}) divisible "
            f"by n_stages ({S}) — the Megatron-LM round constraint")
    total = m * V

    def fwd_step(rank: int, k: int) -> Task:
        group, within = divmod(k, S * V)
        chunk, idx = divmod(within, S)
        return Task(FWD, chunk * S + rank, group * S + idx)

    def bwd_step(rank: int, j: int) -> Task:
        group, within = divmod(j, S * V)
        chunk, idx = divmod(within, S)
        return Task(BWD, (V - 1 - chunk) * S + rank, group * S + idx)

    orders: List[List[Task]] = []
    limit = 1
    for r in range(S):
        warmup = min(total, 2 * (S - r - 1) + (V - 1) * S)
        limit = max(limit, min(total, warmup + 1))
        order = [fwd_step(r, k) for k in range(warmup)]
        for i in range(total - warmup):
            order.append(fwd_step(r, warmup + i))
            order.append(bwd_step(r, i))
        for j in range(total - warmup, total):
            order.append(bwd_step(r, j))
        orders.append(order)
    return _expand_compute_order(
        "interleaved", S, V * S, m, orders, activation_limit=limit,
        meta={"n_chunks": V})


def zero_bubble_ir(n_stages: int, n_microbatches: int) -> Schedule:
    """ZB-H1-style zero-bubble 1F1B: the backward is split into the
    input-gradient ``BWD`` (on the critical path) and the deferred
    weight-gradient ``W`` (idle filler), keeping 1F1B's activation
    residency while shrinking its cool-down bubble."""
    orders = _list_schedule(
        n_stages, n_microbatches, 1, split_w=True,
        cap=lambda r: min(n_stages - r, n_microbatches))
    return _expand_compute_order(
        "zb-h1", n_stages, n_stages, n_microbatches, orders,
        activation_limit=n_stages, meta={"split_w": True})


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------

_BUILDERS: Dict[str, Callable[[int, int], Schedule]] = {
    "axonn": axonn_ir,
    "1f1b": one_f_one_b_ir,
    "gpipe": gpipe_ir,
    "interleaved": interleaved_ir,
    "zb-h1": zero_bubble_ir,
}

#: The shipped schedules, in presentation order.
SCHEDULE_NAMES: Tuple[str, ...] = tuple(_BUILDERS)


def schedule_chunks(name: str) -> int:
    """Virtual chunks per rank for a named schedule (1 unless
    interleaved)."""
    return 2 if name == "interleaved" else 1


def build_schedule(name: str, n_stages: int,
                   n_microbatches: int) -> Schedule:
    """Build (and validate) a shipped schedule by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown schedule {name!r}; shipped: "
            f"{', '.join(SCHEDULE_NAMES)}") from None
    return builder(n_stages, n_microbatches)
