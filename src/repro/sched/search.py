"""Schedule search: perturb in the cheap twin, accept on the real one.

The search space is program orderings of the IR: a *perturbation*
swaps two adjacent tasks in one rank's order and keeps the move only
if the validator still accepts the schedule (deps, FIFO discipline and
activation limits all survive), so every candidate is executable by
construction.  Candidates — the shipped builders plus perturbations of
the best of them — are scored in the DES under compute jitter
(makespan first, peak activation residency as tiebreak), and the
winner is *replayed on the functional substrate* against the flushing
1F1B baseline: identical losses there are the acceptance oracle, the
same equivalence harness the baselines use.  A schedule that searches
well but trains differently is a bug, not a win.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from .builders import SCHEDULE_NAMES, build_schedule
from .des import SchedSimResult, simulate_schedule
from .ir import Schedule, ScheduleError, validate
from .metrics import peak_resident_activations

__all__ = ["perturb", "candidate_schedules", "search_schedules",
           "replay_winner", "SearchResult"]


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """One scored candidate, ranked by (makespan, peak memory)."""

    schedule: Schedule
    sim: SchedSimResult

    @property
    def name(self) -> str:
        return self.schedule.name

    @property
    def key(self) -> Tuple[float, int]:
        return (self.sim.makespan, self.sim.peak_memory)


def perturb(schedule: Schedule, rng: np.random.Generator,
            n_swaps: int = 4, label: Optional[str] = None) -> Schedule:
    """Random validator-gated adjacent swaps of one rank's order.

    Each attempted swap is kept only if the perturbed schedule still
    validates; invalid moves are reverted, so the result is always a
    runnable schedule (possibly identical to the input when every move
    was rejected).
    """
    orders = [list(order) for order in schedule.rank_order]
    made = 0
    for _ in range(n_swaps * 4):  # budget: invalid moves don't count
        if made >= n_swaps:
            break
        r = int(rng.integers(0, schedule.n_stages))
        if len(orders[r]) < 2:
            continue
        k = int(rng.integers(0, len(orders[r]) - 1))
        orders[r][k], orders[r][k + 1] = orders[r][k + 1], orders[r][k]
        candidate = dataclasses.replace(
            schedule,
            name=label or f"{schedule.name}~perturbed",
            rank_order=tuple(tuple(o) for o in orders))
        try:
            validate(candidate)
        except ScheduleError:
            orders[r][k], orders[r][k + 1] = orders[r][k + 1], orders[r][k]
            continue
        made += 1
    return dataclasses.replace(
        schedule, name=label or f"{schedule.name}~perturbed",
        rank_order=tuple(tuple(o) for o in orders))


def candidate_schedules(n_stages: int, n_microbatches: int) -> List[Schedule]:
    """Every shipped builder that accepts this grid (interleaved needs
    ``m % S == 0`` and at least two stages)."""
    out = []
    for name in SCHEDULE_NAMES:
        try:
            out.append(build_schedule(name, n_stages, n_microbatches))
        except ValueError:
            continue
    return out


def search_schedules(n_stages: int, n_microbatches: int, *,
                     n_perturbations: int = 8, sigma: float = 0.1,
                     seed: int = 0, spec=None,
                     microbatch_size: int = 1) -> List[SearchResult]:
    """Score shipped schedules + perturbations of the best; rank all.

    Returns every scored candidate sorted best-first.  Deterministic
    for a given seed: the jitter stream and the perturbation RNG are
    both seeded.
    """
    rng = np.random.default_rng(seed)
    pool = candidate_schedules(n_stages, n_microbatches)
    if not pool:
        raise ValueError(f"no shipped schedule accepts "
                         f"{n_stages}x{n_microbatches}")

    def score(s: Schedule) -> SearchResult:
        return SearchResult(s, simulate_schedule(
            s, spec=spec, microbatch_size=microbatch_size,
            sigma=sigma, seed=seed))

    scored = sorted((score(s) for s in pool), key=lambda r: r.key)
    base = scored[0].schedule
    for k in range(n_perturbations):
        cand = perturb(base, rng, label=f"{base.name}~p{k}")
        scored.append(score(cand))
    scored.sort(key=lambda r: r.key)
    return scored


def replay_winner(winner: Schedule, cfg=None, n_batches: int = 2,
                  batch_size: int = 8, rel_tol: float = 2e-4
                  ) -> Dict[str, object]:
    """Acceptance oracle: train the winner, compare to flushing 1F1B.

    Any valid schedule computes the same update (the schedule only
    reorders work), so the winner's per-batch losses must match the
    hardcoded baseline to numerical tolerance.  Raises RuntimeError on
    divergence; returns a replay report otherwise.
    """
    from ..baselines.functional_pipeline import FlushingPipelineTrainer
    from ..nn import GPTConfig, LMBatches, SyntheticCorpus
    from .compile import ScheduledPipelineTrainer
    if cfg is None:
        n_layer = max(winner.n_virtual, 4)
        cfg = GPTConfig(vocab_size=19, seq_len=8, n_layer=n_layer,
                        n_head=2, hidden=12, dropout=0.0, init_seed=11)
    m = winner.n_microbatches
    if batch_size % m != 0:
        batch_size = m
    mbs = batch_size // m
    corpus = SyntheticCorpus(cfg.vocab_size, 4000, seed=0)
    batches = LMBatches(corpus, batch_size=batch_size, seq_len=cfg.seq_len)
    ref = FlushingPipelineTrainer(cfg, g_inter=winner.n_stages, g_data=1,
                                  microbatch_size=mbs, schedule="1f1b")
    cand = ScheduledPipelineTrainer(cfg, g_inter=winner.n_stages,
                                    microbatch_size=mbs, schedule=winner)
    ref_losses, cand_losses = [], []
    for i in range(n_batches):
        x, y = batches.batch(i)
        ref_losses.append(ref.train_batch(x, y))
        cand_losses.append(cand.train_batch(x, y))
    for a, b in zip(ref_losses, cand_losses):
        if not np.isfinite(b) or abs(a - b) > rel_tol * abs(a):
            raise RuntimeError(
                f"replay diverged: {winner.name} loss {b} vs 1F1B {a}")
    return {
        "schedule": winner.name,
        "n_stages": winner.n_stages,
        "n_microbatches": m,
        "losses": cand_losses,
        "reference_losses": ref_losses,
        "peak_resident_activations": list(
            peak_resident_activations(winner)),
        "accepted": True,
    }
