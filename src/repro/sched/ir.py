"""The schedule IR: pipeline schedules as data.

A :class:`Schedule` describes one inter-layer execution plan as plain
data — per-(virtual stage, microbatch) typed tasks with explicit
dependency edges plus a per-physical-rank execution order — instead of
control flow baked into a trainer.  The same instance lowers to rank
programs on both substrates (:mod:`repro.sched.compile`,
:mod:`repro.sched.des`), can be perturbed and searched
(:mod:`repro.sched.search`), and extracts a communication skeleton for
the model checker (:func:`repro.analysis.model.scheduled_model`).

Task kinds (JaxPP-style, arXiv 2412.14374):

``FWD``/``BWD``
    the forward / backward pass of one microbatch through one *virtual*
    stage (``n_virtual = n_chunks * n_stages``; chunk placement is
    ``rank = stage % n_stages``, so ``n_chunks == 1`` reduces to the
    classic one-stage-per-rank pipeline);
``W``
    the optional zero-bubble split: when present, ``BWD`` computes only
    the input gradient and ``W`` the deferred weight gradient
    (ZB-H1-style);
``SEND_ACT``/``RECV_ACT`` and ``SEND_GRAD``/``RECV_GRAD``
    the boundary activation / gradient messages.  They exist exactly
    where a stage boundary crosses ranks; a same-rank boundary
    (``n_stages == 1``) is a local handoff with a direct compute edge.

The :func:`validate` pass rejects malformed DAGs **before anything
runs**: unknown/misplaced/duplicated tasks, missing dataflow
dependencies, dependency-or-program-order cycles, per-rank in-flight
activation overflow against a declared ``activation_limit``, and
per-channel FIFO inconsistencies (each directed (src, dst, plane)
channel must be consumed in exactly the order it is produced — the
property that makes blocking FIFO receives deadlock-free).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

__all__ = ["FWD", "BWD", "W", "SEND_ACT", "RECV_ACT", "SEND_GRAD",
           "RECV_GRAD", "COMPUTE_KINDS", "COMM_KINDS", "KINDS",
           "Task", "Schedule", "ScheduleError", "validate",
           "required_deps"]

FWD = "FWD"
BWD = "BWD"
W = "W"
SEND_ACT = "SEND_ACT"
RECV_ACT = "RECV_ACT"
SEND_GRAD = "SEND_GRAD"
RECV_GRAD = "RECV_GRAD"

COMPUTE_KINDS = (FWD, BWD, W)
COMM_KINDS = (SEND_ACT, RECV_ACT, SEND_GRAD, RECV_GRAD)
KINDS = COMPUTE_KINDS + COMM_KINDS


class ScheduleError(ValueError):
    """A malformed schedule: raised by :func:`validate` before any run."""


@dataclass(frozen=True)
class Task:
    """One typed unit of work: ``kind`` on virtual ``stage`` for ``mb``."""

    kind: str
    stage: int   #: virtual stage index, 0 .. n_virtual - 1
    mb: int      #: microbatch index, 0 .. n_microbatches - 1

    def __repr__(self) -> str:  # compact: FWD(v=2, mb=0) -> FWD[2,0]
        return f"{self.kind}[{self.stage},{self.mb}]"


@dataclass
class Schedule:
    """One pipeline schedule as data.

    ``rank_order[r]`` is physical rank ``r``'s program: the exact task
    sequence its rank program executes.  ``deps`` holds the explicit
    dependency edges (``task -> set of prerequisite tasks``); builders
    materialize at least the dataflow-required edges
    (:func:`required_deps`), and may add more to constrain the search.
    ``activation_limit``, when set, bounds the per-rank number of
    resident forward activations (a FWD holds its activation until the
    matching BWD — or W, when the backward is split).
    """

    name: str
    n_stages: int           #: physical pipeline ranks
    n_virtual: int          #: virtual stages (n_chunks * n_stages)
    n_microbatches: int
    rank_order: Tuple[Tuple[Task, ...], ...]
    deps: Mapping[Task, FrozenSet[Task]]
    activation_limit: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    # -- structure helpers ---------------------------------------------------
    @property
    def n_chunks(self) -> int:
        return self.n_virtual // self.n_stages

    def placement(self, stage: int) -> int:
        """Physical rank owning virtual ``stage``."""
        return stage % self.n_stages

    def virtual_stages_of(self, rank: int) -> List[int]:
        return [v for v in range(self.n_virtual)
                if self.placement(v) == rank]

    def crosses(self, stage: int) -> bool:
        """Does the boundary between ``stage`` and ``stage + 1`` cross
        ranks (i.e. needs a message rather than a local handoff)?"""
        return self.placement(stage) != self.placement(stage + 1)

    def tasks(self) -> Iterable[Task]:
        for order in self.rank_order:
            yield from order

    def task_set(self) -> FrozenSet[Task]:
        return frozenset(self.tasks())

    def has_w(self, stage: int, mb: int) -> bool:
        return Task(W, stage, mb) in self.deps

    def describe(self) -> str:
        return (f"{self.name}[S={self.n_stages} V={self.n_chunks} "
                f"m={self.n_microbatches} tasks={sum(map(len, self.rank_order))}]")


def required_deps(schedule: Schedule, task: Task) -> FrozenSet[Task]:
    """The dataflow-mandated prerequisites of ``task``.

    These edges are forced by what the task *means*; a schedule missing
    any of them would read data that does not exist yet.  Builders may
    add further (ordering-only) edges on top.
    """
    v, mb, last = task.stage, task.mb, schedule.n_virtual - 1
    need: List[Task] = []
    if task.kind == FWD:
        if v > 0:
            need.append(Task(RECV_ACT, v, mb) if schedule.crosses(v - 1)
                        else Task(FWD, v - 1, mb))
    elif task.kind == RECV_ACT:
        need.append(Task(SEND_ACT, v - 1, mb))
    elif task.kind == SEND_ACT:
        need.append(Task(FWD, v, mb))
    elif task.kind == BWD:
        need.append(Task(FWD, v, mb))
        if v < last:
            need.append(Task(RECV_GRAD, v, mb) if schedule.crosses(v)
                        else Task(BWD, v + 1, mb))
    elif task.kind == RECV_GRAD:
        need.append(Task(SEND_GRAD, v + 1, mb))
    elif task.kind == SEND_GRAD:
        need.append(Task(BWD, v, mb))
    elif task.kind == W:
        need.append(Task(BWD, v, mb))
    return frozenset(need)


def _required_tasks(schedule: Schedule) -> FrozenSet[Task]:
    """Every task the dataflow *demands* exist (W stays optional)."""
    req: List[Task] = []
    last = schedule.n_virtual - 1
    for v in range(schedule.n_virtual):
        for mb in range(schedule.n_microbatches):
            req.append(Task(FWD, v, mb))
            req.append(Task(BWD, v, mb))
            if v < last and schedule.crosses(v):
                req.append(Task(SEND_ACT, v, mb))
                req.append(Task(RECV_GRAD, v, mb))
            if v > 0 and schedule.crosses(v - 1):
                req.append(Task(RECV_ACT, v, mb))
                req.append(Task(SEND_GRAD, v, mb))
    return frozenset(req)


def channel_of(schedule: Schedule, task: Task) -> Tuple[int, int, str]:
    """The directed (src_rank, dst_rank, plane) channel of a comm task."""
    v = task.stage
    if task.kind == SEND_ACT:
        return (schedule.placement(v), schedule.placement(v + 1), "F")
    if task.kind == RECV_ACT:
        return (schedule.placement(v - 1), schedule.placement(v), "F")
    if task.kind == SEND_GRAD:
        return (schedule.placement(v), schedule.placement(v - 1), "B")
    if task.kind == RECV_GRAD:
        return (schedule.placement(v + 1), schedule.placement(v), "B")
    raise ValueError(f"{task} is not a communication task")


def validate(schedule: Schedule) -> None:
    """Reject a malformed schedule; raises :class:`ScheduleError`.

    Checks, in order: shape sanity, task well-formedness and placement,
    required-task coverage, missing dataflow dependencies, cycles over
    (deps union per-rank program order), per-channel FIFO consistency,
    and per-rank in-flight activation overflow.
    """
    S, VS, m = schedule.n_stages, schedule.n_virtual, schedule.n_microbatches
    if S < 1 or m < 1:
        raise ScheduleError(
            f"{schedule.name}: need n_stages >= 1 and n_microbatches >= 1 "
            f"(got {S}, {m})")
    if VS < S or VS % S != 0:
        raise ScheduleError(
            f"{schedule.name}: n_virtual ({VS}) must be a positive "
            f"multiple of n_stages ({S})")
    if len(schedule.rank_order) != S:
        raise ScheduleError(
            f"{schedule.name}: rank_order has {len(schedule.rank_order)} "
            f"entries for {S} ranks")

    # -- task well-formedness & placement -----------------------------------
    seen: Dict[Task, int] = {}
    for rank, order in enumerate(schedule.rank_order):
        for task in order:
            if task.kind not in KINDS:
                raise ScheduleError(
                    f"{schedule.name}: unknown task kind {task.kind!r}")
            if not (0 <= task.stage < VS):
                raise ScheduleError(
                    f"{schedule.name}: {task} names virtual stage outside "
                    f"[0, {VS})")
            if not (0 <= task.mb < m):
                raise ScheduleError(
                    f"{schedule.name}: {task} names microbatch outside "
                    f"[0, {m})")
            if schedule.placement(task.stage) != rank:
                raise ScheduleError(
                    f"{schedule.name}: {task} scheduled on rank {rank} but "
                    f"stage {task.stage} lives on rank "
                    f"{schedule.placement(task.stage)}")
            if task in seen:
                raise ScheduleError(
                    f"{schedule.name}: duplicate task {task}")
            seen[task] = rank

    present = frozenset(seen)
    missing = _required_tasks(schedule) - present
    if missing:
        example = sorted(missing, key=lambda t: (t.stage, t.mb, t.kind))[0]
        raise ScheduleError(
            f"{schedule.name}: {len(missing)} required task(s) absent, "
            f"e.g. {example}")

    # -- dependency coverage -------------------------------------------------
    for task in present:
        declared = schedule.deps.get(task, frozenset())
        for dep in declared:
            if dep not in present:
                raise ScheduleError(
                    f"{schedule.name}: {task} depends on absent task {dep}")
        lacking = required_deps(schedule, task) - declared
        if lacking:
            raise ScheduleError(
                f"{schedule.name}: {task} is missing required "
                f"dependency {sorted(lacking, key=repr)[0]}")

    # -- cycle check over deps + program order ------------------------------
    succ: Dict[Task, List[Task]] = {t: [] for t in present}
    indeg: Dict[Task, int] = {t: 0 for t in present}

    def edge(a: Task, b: Task) -> None:
        succ[a].append(b)
        indeg[b] += 1

    for task in present:
        for dep in schedule.deps.get(task, frozenset()):
            edge(dep, task)
    for order in schedule.rank_order:
        for a, b in zip(order, order[1:]):
            edge(a, b)
    frontier = [t for t in present if indeg[t] == 0]
    done = 0
    while frontier:
        t = frontier.pop()
        done += 1
        for s in succ[t]:
            indeg[s] -= 1
            if indeg[s] == 0:
                frontier.append(s)
    if done != len(present):
        stuck = sorted((t for t in present if indeg[t] > 0),
                       key=lambda t: (t.stage, t.mb, t.kind))
        raise ScheduleError(
            f"{schedule.name}: dependency/program-order cycle through "
            f"{stuck[0]} ({len(stuck)} tasks involved)")

    # -- per-channel FIFO consistency ---------------------------------------
    # A blocking plane-FIFO receive is only sound when every channel is
    # consumed in production order; a swap here is a latent deadlock (or a
    # mis-delivery) that must be rejected statically.
    sends: Dict[Tuple[int, int, str], List[Tuple[int, int]]] = {}
    recvs: Dict[Tuple[int, int, str], List[Tuple[int, int]]] = {}
    for order in schedule.rank_order:
        for task in order:
            if task.kind in (SEND_ACT, SEND_GRAD):
                key = (task.stage, task.mb)
                sends.setdefault(channel_of(schedule, task), []).append(key)
            elif task.kind == RECV_ACT:
                recvs.setdefault(channel_of(schedule, task), []).append(
                    (task.stage - 1, task.mb))
            elif task.kind == RECV_GRAD:
                recvs.setdefault(channel_of(schedule, task), []).append(
                    (task.stage + 1, task.mb))
    for chan in set(sends) | set(recvs):
        if sends.get(chan, []) != recvs.get(chan, []):
            src, dst, plane = chan
            raise ScheduleError(
                f"{schedule.name}: FIFO mismatch on channel "
                f"{src}->{dst} plane {plane}: sent "
                f"{sends.get(chan, [])[:4]}... but consumed "
                f"{recvs.get(chan, [])[:4]}...")

    # -- in-flight activation overflow --------------------------------------
    if schedule.activation_limit is not None:
        limit = schedule.activation_limit
        for rank, order in enumerate(schedule.rank_order):
            live = 0
            peak = 0
            for task in order:
                if task.kind == FWD:
                    live += 1
                    peak = max(peak, live)
                elif task.kind == BWD and not schedule.has_w(task.stage,
                                                            task.mb):
                    live -= 1
                elif task.kind == W:
                    live -= 1
            if peak > limit:
                raise ScheduleError(
                    f"{schedule.name}: rank {rank} holds {peak} in-flight "
                    f"activations, over the declared limit {limit}")
