"""repro.sched — pipeline schedules as data.

The subsystem closing ROADMAP's "Schedule-as-data: searched then
verified" loop:

* :mod:`repro.sched.ir` — the typed task IR and its validator;
* :mod:`repro.sched.builders` — AxoNN, 1F1B, GPipe, interleaved and
  ZB-H1 zero-bubble expressed as pure data;
* :mod:`repro.sched.compile` — lowering to the functional runtime
  (cooperative + process backends);
* :mod:`repro.sched.metrics` — IR-derived critical path / bubble /
  peak-activation analytics;
* :mod:`repro.sched.des` — schedule-driven DES emission (imported
  lazily: it pulls in the whole simulator);
* :mod:`repro.sched.search` — DES-scored schedule search with the
  functional substrate as acceptance oracle (lazy for the same reason).
"""

from .builders import SCHEDULE_NAMES, build_schedule, schedule_chunks
from .compile import ScheduledPipelineTrainer, lower_rank
from .ir import (BWD, FWD, RECV_ACT, RECV_GRAD, SEND_ACT, SEND_GRAD, W,
                 Schedule, ScheduleError, Task, channel_of, required_deps,
                 validate)
from .metrics import (CriticalPath, critical_path, ir_bubble_fraction,
                      peak_resident_activations, unit_cost)

__all__ = [
    "SCHEDULE_NAMES", "build_schedule", "schedule_chunks",
    "ScheduledPipelineTrainer", "lower_rank",
    "BWD", "FWD", "RECV_ACT", "RECV_GRAD", "SEND_ACT", "SEND_GRAD", "W",
    "Schedule", "ScheduleError", "Task", "channel_of", "required_deps",
    "validate",
    "CriticalPath", "critical_path", "ir_bubble_fraction",
    "peak_resident_activations", "unit_cost",
]
