"""Schedule metrics derived from the IR, not closed forms.

``critical_path`` runs a zero-communication-latency list schedule over
a validated :class:`~repro.sched.ir.Schedule`: each rank executes its
program order serially, every task starts when both its rank and its
dependencies allow, compute costs follow the unit model (FWD 1, full
BWD 2 — backward-proper is twice forward, the same 2x the DES cost
tables use — a split BWD/W pair 1 each, everything scaled by
``1 / n_chunks`` so virtual chunks carry proportionally less work).
On 1F1B this reproduces the classic closed form
``(S - 1) / (m + S - 1)`` exactly, and it generalizes to any valid
DAG — which is what lets :func:`repro.baselines.schedules.bubble_fraction`
delegate here instead of special-casing one schedule.

``peak_resident_activations`` walks each physical rank's program order
and counts microbatches whose forward ran but whose releasing backward
(``W`` when the backward is split, else ``BWD``) has not: the honest
per-rank memory estimate the searcher scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .ir import BWD, FWD, W, Schedule, Task

__all__ = ["CriticalPath", "critical_path", "unit_cost",
           "peak_resident_activations", "ir_bubble_fraction"]


def unit_cost(schedule: Schedule) -> Callable[[Task], float]:
    """The unit compute-cost model (see module docstring)."""
    scale = 1.0 / schedule.n_chunks

    def cost(task: Task) -> float:
        if task.kind == FWD:
            return scale
        if task.kind == BWD:
            return scale if schedule.has_w(task.stage, task.mb) \
                else 2.0 * scale
        if task.kind == W:
            return scale
        return 0.0  # comm: zero latency in the analytic model

    return cost


@dataclass(frozen=True)
class CriticalPath:
    """List-schedule outcome: makespan, per-rank busy time, bubble."""

    makespan: float
    busy: Tuple[float, ...]          #: per-rank total compute time
    bubble_fraction: float           #: 1 - mean(busy) / makespan


def critical_path(schedule: Schedule,
                  cost: Optional[Callable[[Task], float]] = None
                  ) -> CriticalPath:
    """Execute the schedule's program orders against the cost model.

    Deterministic greedy sweep: repeatedly run, on the lowest-numbered
    rank whose next task has all dependencies finished, that task at
    ``max(rank clock, dependency finishes)``.  Valid schedules always
    complete (the validator's cycle/FIFO checks guarantee a feasible
    linearization); a wedge here is therefore a hard error.
    """
    cost = cost or unit_cost(schedule)
    S = schedule.n_stages
    pos = [0] * S
    clock = [0.0] * S
    busy = [0.0] * S
    finish: Dict[Task, float] = {}
    remaining = sum(len(order) for order in schedule.rank_order)
    while remaining:
        progressed = False
        for rank in range(S):
            order = schedule.rank_order[rank]
            while pos[rank] < len(order):
                task = order[pos[rank]]
                deps = schedule.deps.get(task, frozenset())
                if any(d not in finish for d in deps):
                    break
                start = clock[rank]
                for d in deps:
                    start = max(start, finish[d])
                dur = cost(task)
                finish[task] = start + dur
                clock[rank] = start + dur
                busy[rank] += dur
                pos[rank] += 1
                remaining -= 1
                progressed = True
        if not progressed:  # pragma: no cover - excluded by validation
            stuck = [schedule.rank_order[r][pos[r]] for r in range(S)
                     if pos[r] < len(schedule.rank_order[r])]
            raise RuntimeError(
                f"{schedule.name}: list schedule wedged at {stuck[:4]}")
    makespan = max(clock) if S else 0.0
    mean_busy = sum(busy) / S if S else 0.0
    bubble = 0.0 if makespan <= 0 else 1.0 - mean_busy / makespan
    return CriticalPath(makespan=makespan, busy=tuple(busy),
                        bubble_fraction=bubble)


def peak_resident_activations(schedule: Schedule) -> Tuple[int, ...]:
    """Per physical rank: peak count of forwards awaiting their release.

    Counts in program order — a forward's activation stays resident
    until the matching ``W`` (split backward) or ``BWD`` (full backward)
    executes *on that rank* — so the estimate is per-rank honest rather
    than a global op count.
    """
    peaks: List[int] = []
    for order in schedule.rank_order:
        live = 0
        peak = 0
        for task in order:
            if task.kind == FWD:
                live += 1
                peak = max(peak, live)
            elif task.kind == BWD and not schedule.has_w(task.stage,
                                                        task.mb):
                live -= 1
            elif task.kind == W:
                live -= 1
        peaks.append(peak)
    return tuple(peaks)


def ir_bubble_fraction(n_stages: int, n_microbatches: int,
                       name: str = "1f1b") -> float:
    """Bubble fraction of a *shipped* schedule, derived from its IR.

    The 1F1B default is what :func:`repro.baselines.schedules.
    bubble_fraction` delegates to; it coincides with the closed form
    ``(S - 1) / (m + S - 1)`` on every grid (pinned by tests), but
    unlike the closed form it also prices GPipe, interleaved and
    zero-bubble schedules.
    """
    from .builders import build_schedule  # local: avoids import cycles
    if n_stages < 1 or n_microbatches < 1:
        raise ValueError("need at least one stage and one microbatch")
    return critical_path(
        build_schedule(name, n_stages, n_microbatches)).bubble_fraction
