"""Lower a schedule onto the DES performance twin.

One simulated GPU per *physical* rank walks its program order: compute
tasks run on the GPU's compute stream with the real stage cost tables
(:func:`repro.core.phases.stage_costs`, built for the virtual pipeline
so each chunk carries its true share of layers) perturbed by the same
:func:`~repro.core.phases.jitter_factor` the message-driven/static
ablation uses; comm tasks become :class:`Messenger` sends and stash-
reordered receives (the wire delivers in arrival order, programs
consume in schedule order — exactly the process-backend discipline).

Zero-bubble pricing: when a schedule splits ``W`` out of ``BWD``, the
backward-proper flops are halved between the two tasks, so ``W`` can
fill what would otherwise be drain bubble — this is where ZB-H1's win
over 1F1B is measured (the functional substrate deliberately does not
split; see :mod:`repro.sched.compile`).

Activation residency is tracked per rank in bytes of boundary-sized
activations (+1 per ``FWD``, released at ``W`` when split else ``BWD``)
— the searcher's memory objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cluster import Machine, summit
from ..comm import Message, Messenger
from ..core import AxoNNConfig, WEAK_SCALING_MODELS
from ..core.phases import StageCost, jitter_factor, stage_costs
from .ir import BWD, FWD, RECV_ACT, RECV_GRAD, SEND_ACT, SEND_GRAD, W, \
    Schedule

__all__ = ["SchedSimResult", "simulate_schedule", "virtual_stage_costs"]


@dataclass(frozen=True)
class SchedSimResult:
    """Outcome of one simulated batch of a schedule."""

    schedule: str
    makespan: float                      #: seconds for the whole batch
    busy: Tuple[float, ...]              #: per-rank compute-stream time
    bubble_fraction: float               #: 1 - mean(busy) / makespan
    peak_activation_bytes: Tuple[int, ...]  #: per-rank residency peak

    @property
    def peak_memory(self) -> int:
        return max(self.peak_activation_bytes, default=0)


def virtual_stage_costs(schedule: Schedule, spec=None,
                        microbatch_size: int = 1) -> List[StageCost]:
    """Real cost table for the schedule's *virtual* pipeline.

    Builds the existing :func:`stage_costs` for a ``n_virtual``-deep
    pipeline, so interleaved chunks automatically carry ``1/V`` of the
    layers (and the head lands on the last virtual stage) — no separate
    cost model for virtual stages.
    """
    spec = spec or WEAK_SCALING_MODELS["12B"]
    vs = schedule.n_virtual
    if vs > spec.n_layer:
        raise ValueError(f"{vs} virtual stages exceed spec's "
                         f"{spec.n_layer} layers")
    cfg = AxoNNConfig(
        spec=spec, num_gpus=vs, g_inter=vs, g_data=1,
        microbatch_size=microbatch_size,
        batch_size=microbatch_size * schedule.n_microbatches,
        include_optimizer=False, memopt=False)
    return stage_costs(cfg)


def simulate_schedule(schedule: Schedule, *, spec=None,
                      microbatch_size: int = 1, sigma: float = 0.0,
                      seed: int = 0,
                      costs: Optional[List[StageCost]] = None,
                      machine: Optional[Machine] = None,
                      backend_p2p: str = "mpi") -> SchedSimResult:
    """Simulate one batch of ``schedule`` on the DES; return timings."""
    S = schedule.n_stages
    costs = costs or virtual_stage_costs(schedule, spec, microbatch_size)
    if len(costs) != schedule.n_virtual:
        raise ValueError(f"cost table has {len(costs)} entries for "
                         f"{schedule.n_virtual} virtual stages")
    machine = machine or Machine(spec=summit(max(1, -(-S // 6))))
    env = machine.env
    messenger = Messenger(machine, machine.cal.backend(backend_p2p))
    busy = [0.0] * S
    peak_bytes = [0] * S

    def rank_proc(r: int):
        gpu = machine.gpu(r)
        stash: Dict[Tuple[str, int], Message] = {}
        resident = 0

        def recv(tag: str, mb: int):
            while (tag, mb) not in stash:
                msg = yield messenger.irecv(r)
                stash[(msg.tag, msg.meta["mb"])] = msg
            return stash.pop((tag, mb))

        for task in schedule.rank_order[r]:
            v, mb = task.stage, task.mb
            cost = costs[v]
            if task.kind == RECV_ACT:
                yield from recv(f"act{v}", mb)
            elif task.kind == RECV_GRAD:
                yield from recv(f"grad{v}", mb)
            elif task.kind == FWD:
                resident += cost.activation_bytes
                peak_bytes[r] = max(peak_bytes[r], resident)
                flops = cost.fwd_flops * jitter_factor(
                    sigma, seed, v, mb, 0)
                t0 = env.now
                yield from gpu.compute(flops, label=f"fwd{mb}",
                                       category="compute",
                                       work=cost.work_granularity,
                                       mb=mb, stage=v)
                busy[r] += env.now - t0
            elif task.kind in (BWD, W):
                flops = cost.bwd_flops
                if schedule.has_w(v, mb):
                    flops /= 2.0  # split: input-grad half / weight half
                if task.kind == W or not schedule.has_w(v, mb):
                    resident -= cost.activation_bytes
                kind_label = "wgrad" if task.kind == W else "bwd"
                flops *= jitter_factor(sigma, seed, v, mb, 1)
                t0 = env.now
                yield from gpu.compute(flops, label=f"{kind_label}{mb}",
                                       category="compute",
                                       work=cost.work_granularity,
                                       mb=mb, stage=v)
                busy[r] += env.now - t0
            elif task.kind == SEND_ACT:
                dst = schedule.placement(v + 1)
                messenger.isend(Message(r, dst, cost.activation_bytes,
                                        tag=f"act{v + 1}",
                                        meta={"mb": mb}))
            elif task.kind == SEND_GRAD:
                dst = schedule.placement(v - 1)
                messenger.isend(Message(r, dst, cost.activation_bytes,
                                        tag=f"grad{v - 1}",
                                        meta={"mb": mb}))

    def phase():
        procs = [env.process(rank_proc(r), name=f"sched-rank{r}")
                 for r in range(S)]
        yield env.all_of(procs)
        messenger.check_drained()

    start = env.now
    env.process(phase(), name=f"sched-{schedule.name}")
    machine.run()
    makespan = env.now - start
    mean_busy = sum(busy) / S if S else 0.0
    bubble = 0.0 if makespan <= 0 else 1.0 - mean_busy / makespan
    return SchedSimResult(
        schedule=schedule.name, makespan=makespan, busy=tuple(busy),
        bubble_fraction=bubble, peak_activation_bytes=tuple(peak_bytes))
