"""Compiler: lower a validated schedule to executable rank programs.

Two lowerings share one task-walk semantics:

* **cooperative** (:func:`lower_rank`): a generator over the two-plane
  ``yield "F"`` / ``yield "B"`` protocol of the flushing baselines,
  driven by the exact same pump.  Because the builders attach each
  receive immediately before and each send immediately after its
  compute task, the compiled 1F1B/GPipe programs replay the hardcoded
  ``FlushingPipelineTrainer`` yield-for-yield — losses, weights and the
  recorded trace event order are bit-identical (pinned by tests).

* **process** (:func:`_sched_worker` + :meth:`ScheduledPipelineTrainer`
  with ``backend="process"``): a module-level worker program per rank
  over :class:`~repro.runtime.parallel.ProcessTransport`'s single-FIFO
  ``yield RECV`` protocol.  Real rings deliver in arrival order, which
  is nondeterministic in wall time, so the worker reorders through a
  small stash keyed by (tag, microbatch); numerics are unchanged, so
  losses and weights stay bit-identical to the cooperative run while
  the *receive* timestamps legitimately differ.

``W`` tasks are ordering-only on the functional substrate: the numpy
autograd computes input and weight gradients together inside ``BWD``,
so a split schedule executes the full backward there and ``W`` marks
the point where the weight gradient is *scheduled* to materialize.  The
DES (:mod:`repro.sched.des`) prices the two halves separately — that is
where zero-bubble's benefit is measured.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple, Union

import numpy as np

from ..nn import AdamW, GPTConfig
from ..runtime.grid import RankGrid
from ..runtime.stage import PipelineStage
from ..runtime.transport import RECV, RankTransport
from ..baselines.functional_pipeline import FlushingPipelineTrainer
from .builders import SCHEDULE_NAMES, build_schedule, schedule_chunks
from .ir import (BWD, FWD, RECV_ACT, RECV_GRAD, SEND_ACT, SEND_GRAD,
                 Schedule, validate)

__all__ = ["lower_rank", "plane_tag", "ScheduledPipelineTrainer"]


def plane_tag(schedule: Schedule, plane: str, stage: int) -> str:
    """Wire tag for a message into virtual ``stage`` on ``plane``.

    The cooperative substrate always uses the bare plane ("F"/"B") — the
    plane *is* the inbox, and single-chunk tags must match the flushing
    trainer byte-for-byte.  The process substrate shares one FIFO per
    channel, so multi-chunk schedules qualify the tag with the receiving
    virtual stage to keep stash keys unambiguous.
    """
    if schedule.n_chunks == 1:
        return plane
    return f"{plane}@{stage}"


def lower_rank(schedule: Schedule, grid: RankGrid, rank: int,
               stages: Dict[int, object],
               fwd_net, bwd_net,
               microbatches: List[Tuple[np.ndarray, np.ndarray]],
               total_microbatches: int) -> Generator:
    """One rank's program under the cooperative two-plane protocol.

    ``stages`` maps virtual stage -> stage object for the stages this
    rank owns (symbolic stages work too — the model checker lowers the
    very same way).  ``fwd_net``/``bwd_net`` need only ``send``; yields
    are ``"F"``/``"B"`` plane waits resumed with the matching packet.
    """
    i, j = grid.coord_of(rank)
    order = schedule.rank_order[i]
    last = schedule.n_virtual - 1
    divisor = float(total_microbatches)
    held: Dict[Tuple[str, int, int], object] = {}
    for task in order:
        v, mb = task.stage, task.mb
        if task.kind == RECV_ACT:
            pkt = yield "F"
            held[("act", v, mb)] = pkt.data
        elif task.kind == RECV_GRAD:
            pkt = yield "B"
            held[("grad", v, mb)] = pkt.data
        elif task.kind == FWD:
            if v == 0:
                data = microbatches[mb][0]
            elif schedule.crosses(v - 1):
                data = held.pop(("act", v, mb))
            else:  # same-rank boundary: local handoff
                data = held.pop(("out", v - 1, mb))
            stage = stages[v]
            if v == last:
                stage.forward(mb, data, targets=microbatches[mb][1],
                              loss_divisor=divisor)
            else:
                held[("out", v, mb)] = stage.forward(mb, data)
        elif task.kind == SEND_ACT:
            dst = grid.rank_of(schedule.placement(v + 1), j)
            fwd_net.send(rank, dst, "F", mb, held.pop(("out", v, mb)))
        elif task.kind == BWD:
            if v == last:
                grad = None
            elif schedule.crosses(v):
                grad = held.pop(("grad", v, mb))
            else:
                grad = held.pop(("gin", v + 1, mb))
            grad_in = stages[v].backward(mb, grad)
            if v > 0:
                held[("gin", v, mb)] = grad_in
        elif task.kind == SEND_GRAD:
            dst = grid.rank_of(schedule.placement(v - 1), j)
            bwd_net.send(rank, dst, "B", mb, held.pop(("gin", v, mb)))
        # W: ordering-only here (see module docstring); the weight
        # gradient was materialized by the stage's full backward.


class ScheduledPipelineTrainer:
    """Train any valid IR schedule with the flushing trainer's numerics.

    A drop-in peer of :class:`~repro.baselines.FlushingPipelineTrainer`
    whose schedule is *data*: pass a shipped schedule name ("axonn",
    "1f1b", "gpipe", "interleaved", "zb-h1") or a validated
    :class:`~repro.sched.ir.Schedule` instance (e.g. a search winner).
    Virtual chunks build one :class:`PipelineStage` per virtual stage
    (``n_virtual`` must not exceed the model's layer count).

    ``backend="process"`` runs each rank program in its own OS process
    over shared-memory rings; the parent stays the parameter master and
    applies gradients, so results are bit-identical to the cooperative
    backend (dropout must be 0 there — workers are stateless per batch
    and cannot carry the RNG streams across batches).
    """

    def __init__(self, cfg: GPTConfig, g_inter: int, g_data: int = 1,
                 microbatch_size: int = 1, lr: float = 1e-3,
                 betas: Tuple[float, float] = (0.9, 0.999),
                 weight_decay: float = 0.01,
                 schedule: Union[str, Schedule] = "1f1b",
                 checkpoint_activations: bool = False, recorder=None,
                 backend: str = "cooperative"):
        if microbatch_size < 1:
            raise ValueError("microbatch_size must be >= 1")
        if backend not in ("cooperative", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        self.cfg = cfg
        self.grid = RankGrid(g_inter, g_data)
        self.microbatch_size = microbatch_size
        self.recorder = recorder
        self.backend = backend
        self.checkpoint_activations = checkpoint_activations
        if isinstance(schedule, Schedule):
            validate(schedule)
            if schedule.n_stages != g_inter:
                raise ValueError(
                    f"schedule {schedule.name!r} is built for "
                    f"{schedule.n_stages} stages, trainer has {g_inter}")
            self.schedule_name = schedule.name
            self._fixed_schedule: Optional[Schedule] = schedule
            self.n_virtual = schedule.n_virtual
        else:
            self.schedule_name = schedule
            self._fixed_schedule = None
            if schedule not in SCHEDULE_NAMES:
                raise ValueError(
                    f"unknown schedule {schedule!r}; shipped: "
                    f"{', '.join(SCHEDULE_NAMES)}")
            self.n_virtual = schedule_chunks(schedule) * g_inter
        if self.n_virtual > cfg.n_layer:
            raise ValueError(
                f"{self.n_virtual} virtual stages exceed the model's "
                f"{cfg.n_layer} layers")
        if backend == "process" and cfg.dropout > 0:
            raise ValueError(
                "process backend needs dropout=0.0 (stateless workers "
                "cannot carry dropout RNG streams across batches)")
        self._schedule_cache: Dict[int, Schedule] = {}
        #: stages keyed by (virtual stage, data-parallel column)
        self.stages: Dict[Tuple[int, int], PipelineStage] = {}
        self.optimizers: Dict[int, AdamW] = {}
        for rank in range(self.grid.world_size):
            i, j = self.grid.coord_of(rank)
            params = []
            for v in range(self.n_virtual):
                if v % g_inter != i:
                    continue
                stage = PipelineStage(
                    cfg, v, self.n_virtual,
                    checkpoint_activations=checkpoint_activations)
                self.stages[(v, j)] = stage
                params.extend(stage.parameters())
            self.optimizers[rank] = AdamW(params, lr=lr, betas=betas,
                                          weight_decay=weight_decay)
        self.batches_trained = 0
        self._transport = None

    # ------------------------------------------------------------------
    def _schedule_for(self, m: int) -> Schedule:
        if self._fixed_schedule is not None:
            if self._fixed_schedule.n_microbatches != m:
                raise ValueError(
                    f"schedule {self.schedule_name!r} is built for "
                    f"{self._fixed_schedule.n_microbatches} microbatches "
                    f"per shard, this batch has {m}")
            return self._fixed_schedule
        sched = self._schedule_cache.get(m)
        if sched is None:
            sched = build_schedule(self.schedule_name, self.grid.g_inter, m)
            self._schedule_cache[m] = sched
        return sched

    def _rank_stages(self, rank: int) -> Dict[int, PipelineStage]:
        i, j = self.grid.coord_of(rank)
        return {v: self.stages[(v, j)] for v in range(self.n_virtual)
                if v % self.grid.g_inter == i}

    _split_batch = FlushingPipelineTrainer._split_batch
    _pump = staticmethod(FlushingPipelineTrainer._pump)

    # ------------------------------------------------------------------
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One scheduled pipeline pass + all-reduce + optimizer step."""
        groups, total_mb = self._split_batch(x, y)
        sched = self._schedule_for(len(groups[0]))
        for stage in self.stages.values():
            stage.microbatch_losses.clear()
        for opt in self.optimizers.values():
            opt.zero_grad()

        if self.backend == "process":
            self._run_process(sched, groups, total_mb)
        else:
            self._run_cooperative(sched, groups, total_mb)

        # Data-parallel all-reduce (sum), identical to the flushing
        # baseline: one collective per parameter slot of each pipeline
        # rank's column, recorded before the numeric loop.
        if self.grid.g_data > 1:
            for i in range(self.grid.g_inter):
                column = self.grid.data_parallel_ranks(i)
                param_lists = [self.optimizers[r].params for r in column]
                if self.recorder is not None:
                    for slot in range(len(param_lists[0])):
                        for r in column:
                            self.recorder.record_collective(
                                r, "allreduce_fp32", key=(i, slot))
                for params in zip(*param_lists):
                    grads = [p.grad for p in params if p.grad is not None]
                    if not grads:
                        continue
                    total = np.sum(grads, axis=0)
                    for p in params:
                        p.grad = total.copy()
        for opt in self.optimizers.values():
            opt.step()
        self.batches_trained += 1

        last = self.n_virtual - 1
        losses = [
            loss
            for (v, _j), stage in self.stages.items()
            if v == last
            for loss in stage.microbatch_losses.values()
        ]
        return float(np.mean(losses))

    def _run_cooperative(self, sched: Schedule, groups, total_mb: int):
        world = self.grid.world_size
        fwd_net = RankTransport(world, recorder=self.recorder)
        bwd_net = RankTransport(world, recorder=self.recorder)
        programs = {}
        for rank in range(world):
            _i, j = self.grid.coord_of(rank)
            programs[rank] = lower_rank(
                sched, self.grid, rank, self._rank_stages(rank),
                fwd_net, bwd_net, groups[j], total_mb)
        self._pump(fwd_net, bwd_net, programs)

    # -- process backend ---------------------------------------------------
    def _run_process(self, sched: Schedule, groups, total_mb: int):
        from ..runtime.parallel import ProcessTransport, ProgramSpec
        if self._transport is None:
            self._transport = ProcessTransport(self.grid.world_size,
                                               recorder=self.recorder)
        programs = {}
        for rank in range(self.grid.world_size):
            _i, j = self.grid.coord_of(rank)
            params = {v: [p.data for p in stage.parameters()]
                      for v, stage in self._rank_stages(rank).items()}
            programs[rank] = ProgramSpec(
                _sched_worker, self.cfg, sched, self.grid.g_inter,
                self.grid.g_data, params, groups[j], total_mb,
                self.checkpoint_activations)
        results = self._transport.run(programs)
        for rank, reply in results.items():
            for v, grads in reply["grads"].items():
                for p, g in zip(self.stages[(v,
                                             self.grid.coord_of(rank)[1])]
                                .parameters(), grads):
                    p.grad = None if g is None else g
            for v, losses in reply["losses"].items():
                stage = self.stages[(v, self.grid.coord_of(rank)[1])]
                stage.microbatch_losses.update(losses)

    def close(self) -> None:
        """Shut down process-backend resources; idempotent."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # -- diagnostics -----------------------------------------------------
    def gather_state(self, j: int = 0) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for v in range(self.n_virtual):
            for name, p in self.stages[(v, j)].named_parameters():
                state[name] = p.data.copy()
        return state


def _sched_worker(rank: int, send, cfg: GPTConfig, sched: Schedule,
                  g_inter: int, g_data: int,
                  params: Dict[int, List[np.ndarray]],
                  microbatches, total_mb: int,
                  checkpoint_activations: bool):
    """Module-level process-backend rank program (ProgramSpec target).

    Rebuilds this rank's virtual stages, loads the shipped parameters,
    walks the schedule under the single-FIFO ``yield RECV`` protocol
    (reordering through a (tag, microbatch) stash — ring arrival order
    is wall-time nondeterministic), and returns gradients and losses
    for the parent to apply.  Same task-walk as :func:`lower_rank`, so
    the numerics are bit-identical to the cooperative backend.
    """
    grid = RankGrid(g_inter, g_data)
    i, _j = grid.coord_of(rank)
    stages: Dict[int, PipelineStage] = {}
    for v, arrays in params.items():
        stage = PipelineStage(cfg, v, sched.n_virtual,
                              checkpoint_activations=checkpoint_activations)
        for p, arr in zip(stage.parameters(), arrays):
            np.copyto(p.data, arr)
        stages[v] = stage

    def program():
        order = sched.rank_order[i]
        last = sched.n_virtual - 1
        divisor = float(total_mb)
        held: Dict[Tuple[str, int, int], object] = {}
        stash: Dict[Tuple[str, int], object] = {}

        def recv(tag: str, mb: int):
            while (tag, mb) not in stash:
                pkt = yield RECV
                stash[(pkt.tag, pkt.microbatch)] = pkt.data
            return stash.pop((tag, mb))

        for task in order:
            v, mb = task.stage, task.mb
            if task.kind == RECV_ACT:
                held[("act", v, mb)] = yield from recv(
                    plane_tag(sched, "F", v), mb)
            elif task.kind == RECV_GRAD:
                held[("grad", v, mb)] = yield from recv(
                    plane_tag(sched, "B", v), mb)
            elif task.kind == FWD:
                if v == 0:
                    data = microbatches[mb][0]
                elif sched.crosses(v - 1):
                    data = held.pop(("act", v, mb))
                else:
                    data = held.pop(("out", v - 1, mb))
                if v == last:
                    stages[v].forward(mb, data,
                                      targets=microbatches[mb][1],
                                      loss_divisor=divisor)
                else:
                    held[("out", v, mb)] = stages[v].forward(mb, data)
            elif task.kind == SEND_ACT:
                dst = grid.rank_of(sched.placement(v + 1), _j)
                send(dst, plane_tag(sched, "F", v + 1), mb,
                     held.pop(("out", v, mb)))
            elif task.kind == BWD:
                if v == last:
                    grad = None
                elif sched.crosses(v):
                    grad = held.pop(("grad", v, mb))
                else:
                    grad = held.pop(("gin", v + 1, mb))
                grad_in = stages[v].backward(mb, grad)
                if v > 0:
                    held[("gin", v, mb)] = grad_in
            elif task.kind == SEND_GRAD:
                dst = grid.rank_of(sched.placement(v - 1), _j)
                send(dst, plane_tag(sched, "B", v - 1), mb,
                     held.pop(("gin", v, mb)))
        last_v = sched.n_virtual - 1
        return {
            "grads": {v: [None if p.grad is None else p.grad
                          for p in stage.parameters()]
                      for v, stage in stages.items()},
            "losses": {v: dict(stage.microbatch_losses)
                       for v, stage in stages.items() if v == last_v},
        }

    return program()
