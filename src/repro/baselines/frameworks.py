"""Discrete-event models of Megatron-LM and DeepSpeed (3D parallelism).

Both baselines share the same execution skeleton:

* **intra-layer parallelism** (Shoeybi et al.): every layer's GEMMs shard
  across ``g_intra`` GPUs; each forward pass inserts 2 NCCL all-reduces of
  the activation per layer (4 in backward, +2 during recompute).  Sharded
  GEMMs do less work per kernel and therefore run at lower efficiency;
* **inter-layer parallelism**: a static flushing schedule (1F1B by
  default) with *blocking* NCCL point-to-point sends — every boundary
  message serializes with computation on both endpoints (paper
  Section IV-A);
* **data parallelism**: NCCL gradient all-reduce over ``g_data`` replicas.

They differ in memory strategy: Megatron-LM keeps the full ``20 phi`` state
per (intra-sharded) stage; DeepSpeed adds ZeRO-1, sharding optimizer state
and master weights across the data-parallel group — which is why DeepSpeed
can afford smaller ``G_inter`` than Megatron-LM in Table II, and why AxoNN's
CPU offload lets it go smaller still.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from ..cluster import Machine, summit
from ..comm import Message, Messenger, TAG_BACKWARD, TAG_FORWARD
from ..core.memory_model import MemoryBreakdown, MemoryModel
from ..core.metrics import estimated_training_days, percent_of_peak
from ..core.phases import jitter_factor, optimizer_time_on_gpu
from .config import ThreeDConfig
from .schedules import gpipe_schedule, one_f_one_b_schedule

__all__ = ["BaselineResult", "simulate_baseline_batch",
           "baseline_stage_costs", "check_baseline_memory"]


@dataclass(frozen=True)
class BaselineStageCost:
    stage: int
    n_layers: int
    params_sharded: int          # per GPU after intra-layer sharding
    fwd_compute_flops: float     # per GPU
    bwd_compute_flops: float
    recompute_flops: float
    work_granularity: float      # per-kernel work after sharding
    fwd_collective_s: float      # intra-layer all-reduce time, forward
    bwd_collective_s: float      # backward + recompute collectives
    activation_bytes: int


def baseline_stage_costs(cfg: ThreeDConfig,
                         machine: Machine) -> List[BaselineStageCost]:
    """Per-stage costs including the intra-layer collective tax."""
    spec = cfg.spec
    mbs = cfg.microbatch_size
    nccl = machine.cal.nccl
    layer_fwd = spec.layer_forward_flops(mbs)
    head_fwd = spec.head_forward_flops(mbs)
    act_bytes = spec.activation_message_bytes(mbs)
    # Intra-layer groups are packed on NVLink (standard practice).
    coll = nccl.allreduce_time(act_bytes, cfg.g_intra, intra_node=True)
    base, extra = divmod(spec.n_layer, cfg.g_inter)
    costs = []
    for i in range(cfg.g_inter):
        n_layers = base + (1 if i < extra else 0)
        fwd = n_layers * layer_fwd / cfg.g_intra
        bwd = 2 * fwd
        recompute = fwd
        fwd_coll = 2 * n_layers * coll if cfg.g_intra > 1 else 0.0
        bwd_coll = 4 * n_layers * coll if cfg.g_intra > 1 else 0.0
        if i == cfg.g_inter - 1:
            fwd += head_fwd / cfg.g_intra
            bwd += 2 * head_fwd / cfg.g_intra
            if cfg.g_intra > 1:
                fwd_coll += coll
                bwd_coll += 2 * coll
        phi = n_layers * spec.params_per_layer // cfg.g_intra
        if i == 0 or i == cfg.g_inter - 1:
            phi += spec.embedding_params // 2 // cfg.g_intra
        costs.append(BaselineStageCost(
            stage=i,
            n_layers=n_layers,
            params_sharded=phi,
            fwd_compute_flops=fwd,
            bwd_compute_flops=bwd,
            recompute_flops=recompute,
            work_granularity=layer_fwd / cfg.g_intra,
            fwd_collective_s=fwd_coll,
            bwd_collective_s=bwd_coll,
            activation_bytes=act_bytes,
        ))
    return costs


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of simulating one baseline batch."""

    config: ThreeDConfig
    pipeline_s: float
    allreduce_s: float
    optimizer_s: float
    memory: MemoryBreakdown
    feasible: bool

    @property
    def batch_time_s(self) -> float:
        return self.pipeline_s + self.allreduce_s + self.optimizer_s

    @property
    def training_days(self) -> float:
        return estimated_training_days(self.batch_time_s,
                                       self.config.batch_size,
                                       self.config.spec.seq_len)

    @property
    def pct_of_peak(self) -> float:
        return percent_of_peak(self.config.spec, self.config.batch_size,
                               self.batch_time_s, self.config.num_gpus)

    def as_row(self) -> Dict[str, object]:
        return {
            "framework": self.config.framework,
            "model": self.config.spec.name,
            "gpus": self.config.num_gpus,
            "g_intra": self.config.g_intra,
            "g_inter": self.config.g_inter,
            "g_data": self.config.g_data,
            "mbs": self.config.microbatch_size,
            "pipeline_s": self.pipeline_s,
            "allreduce_s": self.allreduce_s,
            "optimizer_s": self.optimizer_s,
            "batch_time_s": self.batch_time_s,
            "training_days": self.training_days,
            "pct_peak": self.pct_of_peak,
            "memory_gb": self.memory.total / 1024 ** 3,
            "feasible": self.feasible,
        }


def check_baseline_memory(cfg: ThreeDConfig,
                          dram_bytes: int = 16 * 1024 ** 3
                          ) -> tuple[MemoryBreakdown, bool]:
    """Memory breakdown + feasibility for a baseline config."""
    mm = MemoryModel(cfg.spec)
    if cfg.framework == "deepspeed":
        breakdown = mm.deepspeed_bytes(cfg.g_inter, cfg.g_intra, cfg.g_data,
                                       cfg.microbatch_size)
    else:
        breakdown = mm.megatron_bytes(cfg.g_inter, cfg.g_intra,
                                      cfg.microbatch_size)
    if cfg.schedule == "gpipe":
        # GPipe keeps up to m microbatches of boundary activations alive.
        extra = (cfg.microbatches_per_shard - cfg.g_inter) \
            * cfg.spec.activation_message_bytes(cfg.microbatch_size)
        if extra > 0:
            breakdown = MemoryBreakdown(
                breakdown.params_and_grads, breakdown.optimizer_state,
                breakdown.activations + extra)
    return breakdown, mm.fits(breakdown, dram_bytes)


def simulate_baseline_batch(cfg: ThreeDConfig,
                            machine: Optional[Machine] = None
                            ) -> BaselineResult:
    """Simulate one training batch of Megatron-LM or DeepSpeed."""
    if machine is None:
        nodes = max(1, -(-cfg.num_gpus // 6))
        machine = Machine(spec=summit(nodes))
    if cfg.num_gpus > machine.spec.num_gpus:
        raise ValueError("config does not fit the machine")
    breakdown, feasible = check_baseline_memory(
        cfg, machine.spec.node.gpu.dram_bytes)

    env = machine.env
    cal = machine.cal
    nccl = cal.nccl
    costs = baseline_stage_costs(cfg, machine)
    m = cfg.microbatches_per_shard
    sched_fn = one_f_one_b_schedule if cfg.schedule == "1f1b" \
        else gpipe_schedule

    # Representative GPU per pipeline stage: intra-layer group members act
    # in lockstep, so one GPU per stage carries the modeled time; pipeline
    # neighbours sit g_intra apart in the physical numbering.
    gpus = [i * cfg.g_intra for i in range(cfg.g_inter)]
    p2p_model = cal.backend(cfg.backend_p2p)
    fwd_messenger = Messenger(machine, p2p_model)
    bwd_messenger = Messenger(machine, p2p_model)
    handling = cal.p2p_handling_overhead
    sigma, jseed = cfg.compute_jitter, cfg.jitter_seed

    def stage_proc(i: int) -> Generator:
        gpu = machine.gpu(gpus[i])
        cost = costs[i]
        ops = sched_fn(i, cfg.g_inter, m)
        for kind, mb in ops:
            if kind == "F":
                if i > 0:
                    yield fwd_messenger.irecv(gpus[i])
                factor = jitter_factor(sigma, jseed, i, mb, 0)
                yield from gpu.compute(cost.fwd_compute_flops * factor,
                                       label=f"F{mb}", category="compute",
                                       work=cost.work_granularity,
                                       extra_time=(cost.fwd_collective_s
                                                   + handling))
                if i < cfg.g_inter - 1:
                    # Blocking NCCL send: isend() occupies this GPU's
                    # compute stream for the wire time.
                    req = fwd_messenger.isend(
                        Message(gpus[i], gpus[i + 1], cost.activation_bytes,
                                tag=TAG_FORWARD, meta={"mb": mb}))
                    yield req
            else:
                if i < cfg.g_inter - 1:
                    yield bwd_messenger.irecv(gpus[i])
                factor = jitter_factor(sigma, jseed, i, mb, 1)
                yield from gpu.compute((cost.recompute_flops
                                        + cost.bwd_compute_flops) * factor,
                                       label=f"B{mb}", category="compute",
                                       work=cost.work_granularity,
                                       extra_time=(cost.bwd_collective_s
                                                   + handling))
                if i > 0:
                    req = bwd_messenger.isend(
                        Message(gpus[i], gpus[i - 1], cost.activation_bytes,
                                tag=TAG_BACKWARD, meta={"mb": mb}))
                    yield req

    result: Dict[str, float] = {}

    def batch_proc() -> Generator:
        t0 = env.now
        procs = [env.process(stage_proc(i), name=f"bl-stage{i}")
                 for i in range(cfg.g_inter)]
        yield env.all_of(procs)
        result["pipeline_s"] = env.now - t0

        # Data-parallel gradient all-reduce (per column, NIC-shared by the
        # concurrent columns exactly as in the AxoNN model).
        phi = costs[0].params_sharded
        grad_bytes = cfg.spec.gradient_bytes_half(phi)
        nic_sharing = min(cfg.g_inter * cfg.g_intra,
                          machine.spec.node.gpus_per_node)
        ar = (nic_sharing * nccl.allreduce_time(grad_bytes, cfg.g_data,
                                                intra_node=cfg.g_data == 1)
              + cal.coll_launch_overhead) if cfg.g_data > 1 else 0.0
        yield env.timeout(ar)
        result["allreduce_s"] = ar

        # Optimizer: resident; ZeRO-1 shards the state across g_data and
        # all-gathers the updated fp16 parameters afterwards.
        if cfg.framework == "deepspeed" and cfg.g_data > 1:
            opt = optimizer_time_on_gpu(machine, phi // cfg.g_data)
            gather_bytes = 2 * phi
            opt += nic_sharing * nccl.allreduce_time(
                gather_bytes // 2, cfg.g_data, intra_node=False) / 2 \
                + cal.coll_launch_overhead
        else:
            opt = optimizer_time_on_gpu(machine, phi)
        yield env.timeout(opt)
        result["optimizer_s"] = opt

    env.process(batch_proc(), name="baseline-batch")
    machine.run()
    return BaselineResult(
        config=cfg,
        pipeline_s=result["pipeline_s"],
        allreduce_s=result["allreduce_s"],
        optimizer_s=result["optimizer_s"],
        memory=breakdown,
        feasible=feasible,
    )
