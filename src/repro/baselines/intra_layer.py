"""Functional intra-layer (tensor) parallelism — Shoeybi et al.'s scheme.

Megatron-LM shards each transformer layer's matrix multiplications across
``g_intra`` GPUs (paper Section II-B).  This module implements the scheme
with real numerics on the NumPy autograd substrate:

* :class:`ColumnParallelLinear` — the weight's *output* dimension is
  sharded; each rank computes a slice of the output, reassembled with an
  all-gather (here: concatenation);
* :class:`RowParallelLinear` — the *input* dimension is sharded; each rank
  computes a partial product over its input slice, combined with an
  all-reduce (here: a sum);
* :class:`TensorParallelMLP` — Megatron's MLP blocking: column-parallel
  up-projection, local GELU, row-parallel down-projection — exactly **one**
  all-reduce on the forward pass;
* :class:`TensorParallelAttention` — heads partitioned across ranks:
  column-parallel QKV, local attention per head group, row-parallel output
  projection — again one forward all-reduce.

Every sharded module is constructed *from* a dense reference layer and is
numerically identical to it (forward outputs and backward gradients),
which the tests assert — the communication operations are counted so the
per-layer collective budget charged by the performance model
(2 all-reduces per layer forward) is pinned to executable code.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import F, Linear, Module, Tensor
from ..nn.modules import Parameter
from ..nn.transformer import MLP, CausalSelfAttention, GPTConfig
from ..perf.counters import counters as _perf_counters

__all__ = ["CommCounter", "ColumnParallelLinear", "RowParallelLinear",
           "TensorParallelMLP", "TensorParallelAttention", "_split_sizes"]


class CommCounter:
    """Counts the collective operations a tensor-parallel forward/backward
    performs (the quantity the DES cost model prices).

    One namespace: every event is *also* reported to the global
    :data:`repro.perf.counters` tally under ``tp.allreduce`` /
    ``tp.allgather`` (plus ``tp.allreduce_bytes`` / ``tp.allgather_bytes``),
    so a TP layer running inside the trainer and one running as a baseline
    are counted identically — and never double-booked, because the modules
    report exclusively through these two methods."""

    def __init__(self):
        self.allreduces = 0
        self.allgathers = 0
        self.allreduce_bytes = 0
        self.allgather_bytes = 0

    def allreduce(self, nbytes: int = 0) -> None:
        self.allreduces += 1
        self.allreduce_bytes += nbytes
        if _perf_counters.enabled:
            _perf_counters.bump("tp.allreduce")
            _perf_counters.bump("tp.allreduce_bytes", nbytes)

    def allgather(self, nbytes: int = 0) -> None:
        self.allgathers += 1
        self.allgather_bytes += nbytes
        if _perf_counters.enabled:
            _perf_counters.bump("tp.allgather")
            _perf_counters.bump("tp.allgather_bytes", nbytes)

    def reset(self) -> None:
        self.allreduces = 0
        self.allgathers = 0
        self.allreduce_bytes = 0
        self.allgather_bytes = 0


def _split_sizes(n: int, k: int) -> List[int]:
    """Split ``n`` into ``k`` near-equal shard sizes, larger shards first
    (the same convention as :func:`~repro.runtime.stage.partition_layers`).

    Uneven dimensions are legal: ``_split_sizes(10, 4) == [3, 3, 2, 2]``.
    Only ``k > n`` is rejected — a rank with zero rows would send empty
    collectives."""
    if k < 1:
        raise ValueError("world size must be >= 1")
    if k > n:
        raise ValueError(f"cannot split dimension {n} across {k} ranks")
    base, extra = divmod(n, k)
    return [base + 1] * extra + [base] * (k - extra)


class ColumnParallelLinear(Module):
    """Linear with the output dimension sharded across ``world`` ranks."""

    def __init__(self, dense: Linear, world: int,
                 counter: Optional[CommCounter] = None,
                 gather_output: bool = True):
        super().__init__()
        sizes = _split_sizes(dense.out_features, world)
        self.world = world
        self.counter = counter or CommCounter()
        self.gather_output = gather_output
        self.shards: List[Parameter] = []
        self.bias_shards: List[Optional[Parameter]] = []
        offset = 0
        for r, size in enumerate(sizes):
            w = Parameter(dense.weight.data[offset:offset + size].copy())
            setattr(self, f"weight{r}", w)
            self.shards.append(w)
            if dense.bias is not None:
                b = Parameter(dense.bias.data[offset:offset + size].copy())
                setattr(self, f"bias{r}", b)
                self.bias_shards.append(b)
            else:
                self.bias_shards.append(None)
            offset += size

    def forward(self, x: Tensor):
        partials = [
            F.linear(x, w, b) for w, b in zip(self.shards, self.bias_shards)
        ]
        if not self.gather_output:
            return partials
        self.counter.allgather(sum(p.data.nbytes for p in partials))
        return F.concat(partials, axis=-1)


class RowParallelLinear(Module):
    """Linear with the input dimension sharded across ``world`` ranks.

    ``forward`` accepts either a full tensor (sliced internally) or the
    list of per-rank partials produced by an upstream non-gathering
    column-parallel layer (Megatron's fused f/g pattern, which elides the
    intermediate all-gather)."""

    def __init__(self, dense: Linear, world: int,
                 counter: Optional[CommCounter] = None,
                 in_sizes: Optional[List[int]] = None):
        super().__init__()
        sizes = in_sizes if in_sizes is not None \
            else _split_sizes(dense.in_features, world)
        if len(sizes) != world or sum(sizes) != dense.in_features:
            raise ValueError(
                f"in_sizes {sizes} does not partition "
                f"{dense.in_features} across {world} ranks")
        self.world = world
        self.counter = counter or CommCounter()
        self.in_sizes = sizes
        self.shards: List[Parameter] = []
        offset = 0
        for r, size in enumerate(sizes):
            w = Parameter(dense.weight.data[:, offset:offset + size].copy())
            setattr(self, f"weight{r}", w)
            self.shards.append(w)
            offset += size
        self.bias = Parameter(dense.bias.data.copy()) \
            if dense.bias is not None else None

    def forward(self, x):
        if isinstance(x, list):
            slices = x
        else:
            slices = []
            offset = 0
            for size in self.in_sizes:
                slices.append(x[..., offset:offset + size])
                offset += size
        partial = F.linear(slices[0], self.shards[0])
        for piece, w in zip(slices[1:], self.shards[1:]):
            partial = partial + F.linear(piece, w)  # the all-reduce
        self.counter.allreduce(partial.data.nbytes)
        if self.bias is not None:
            partial = partial + self.bias
        return partial


class TensorParallelMLP(Module):
    """Megatron's MLP sharding: one all-reduce per forward pass."""

    def __init__(self, dense: MLP, world: int,
                 counter: Optional[CommCounter] = None):
        super().__init__()
        self.counter = counter or CommCounter()
        self.fc = ColumnParallelLinear(dense.fc, world, self.counter,
                                       gather_output=False)
        self.proj = RowParallelLinear(dense.proj, world, self.counter)
        self.drop = dense.drop

    def forward(self, x: Tensor) -> Tensor:
        partials = self.fc(x)
        activated = [F.gelu(p) for p in partials]  # local per rank
        return self.drop(self.proj(activated))


class TensorParallelAttention(Module):
    """Megatron's attention sharding: heads partitioned across ranks."""

    def __init__(self, dense: CausalSelfAttention, world: int,
                 counter: Optional[CommCounter] = None):
        super().__init__()
        cfg = dense.cfg
        self.cfg = cfg
        self.world = world
        self.counter = counter or CommCounter()
        # Heads partitioned larger-first: n_head need not divide evenly,
        # but every rank must own at least one head.
        self.head_counts = _split_sizes(cfg.n_head, world)
        self._mask = dense._mask
        self.drop = dense.drop
        # QKV sharded by head: rank r owns head_counts[r] consecutive
        # heads.  The dense qkv weight has layout (3h, h) with rows
        # [q; k; v], each of which is itself (n_head, head_dim) blocked.
        h, hd = cfg.hidden, cfg.head_dim
        self.qkv_shards: List[Parameter] = []
        self.qkv_bias_shards: List[Parameter] = []
        wq = dense.qkv.weight.data[0:h]
        wk = dense.qkv.weight.data[h:2 * h]
        wv = dense.qkv.weight.data[2 * h:3 * h]
        bq = dense.qkv.bias.data[0:h]
        bk = dense.qkv.bias.data[h:2 * h]
        bv = dense.qkv.bias.data[2 * h:3 * h]
        head0 = 0
        for r, hpr in enumerate(self.head_counts):
            rows = slice(head0 * hd, (head0 + hpr) * hd)
            w = Parameter(np.concatenate([wq[rows], wk[rows], wv[rows]]))
            b = Parameter(np.concatenate([bq[rows], bk[rows], bv[rows]]))
            setattr(self, f"qkv_w{r}", w)
            setattr(self, f"qkv_b{r}", b)
            self.qkv_shards.append(w)
            self.qkv_bias_shards.append(b)
            head0 += hpr
        self.proj = RowParallelLinear(
            dense.proj, world, self.counter,
            in_sizes=[hpr * hd for hpr in self.head_counts])

    def _rank_attention(self, x: Tensor, r: int) -> Tensor:
        b, t, _h = x.shape
        hpr, hd = self.head_counts[r], self.cfg.head_dim
        qkv = F.linear(x, self.qkv_shards[r], self.qkv_bias_shards[r])
        qkv = qkv.reshape(b, t, 3, hpr, hd).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        att = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(hd))
        att = F.where_mask(att, self._mask[:t, :t], -1e9)
        att = F.softmax(att, axis=-1)
        att = self.drop(att)
        y = att @ v
        return y.transpose(0, 2, 1, 3).reshape(b, t, hpr * hd)

    def forward(self, x: Tensor) -> Tensor:
        partials = [self._rank_attention(x, r) for r in range(self.world)]
        return self.drop(self.proj(partials))
