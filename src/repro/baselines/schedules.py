"""Static pipeline schedules for the flushing baselines.

Megatron-LM and DeepSpeed realize inter-layer parallelism with *pipelining
with flushing* (paper Section VIII): worker GPUs follow a precomputed
operation order and update weights only after all microbatches of a batch
have drained.  Two schedules are provided:

* **1F1B** (PipeDream-Flush, what Megatron-LM ships): stage *i* warms up
  with ``S - 1 - i`` forwards, then alternates one-forward-one-backward,
  then drains — in-flight activations bounded by the pipeline depth;
* **GPipe**: all forwards, then all backwards — simpler, but the in-flight
  activation count grows with the number of microbatches.

Unlike AxoNN's message-driven scheduler, the order is *fixed*: a stage that
could run a ready forward pass while waiting for a gradient simply waits —
one of the two structural disadvantages the paper attributes to the
baselines (the other being blocking NCCL point-to-point sends).
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["one_f_one_b_schedule", "gpipe_schedule", "max_inflight",
           "bubble_fraction"]

Op = Tuple[str, int]  # ("F"|"B", microbatch)


def one_f_one_b_schedule(stage: int, n_stages: int,
                         n_microbatches: int) -> List[Op]:
    """Operation order of ``stage`` under 1F1B."""
    if not 0 <= stage < n_stages:
        raise ValueError(f"stage {stage} outside [0, {n_stages})")
    if n_microbatches < 1:
        raise ValueError("need at least one microbatch")
    warmup = min(n_stages - 1 - stage, n_microbatches)
    ops: List[Op] = [("F", mb) for mb in range(warmup)]
    fwd, bwd = warmup, 0
    while fwd < n_microbatches:
        ops.append(("F", fwd))
        fwd += 1
        ops.append(("B", bwd))
        bwd += 1
    while bwd < n_microbatches:
        ops.append(("B", bwd))
        bwd += 1
    return ops


def gpipe_schedule(stage: int, n_stages: int,
                   n_microbatches: int) -> List[Op]:
    """Operation order of ``stage`` under GPipe (flush after all forwards)."""
    if not 0 <= stage < n_stages:
        raise ValueError(f"stage {stage} outside [0, {n_stages})")
    if n_microbatches < 1:
        raise ValueError("need at least one microbatch")
    return ([("F", mb) for mb in range(n_microbatches)]
            + [("B", mb) for mb in range(n_microbatches)])


def max_inflight(ops: List[Op]) -> int:
    """Peak number of microbatches with a live forward activation."""
    live = 0
    peak = 0
    for kind, _mb in ops:
        if kind == "F":
            live += 1
            peak = max(peak, live)
        else:
            live -= 1
    return peak


def bubble_fraction(n_stages: int, n_microbatches: int) -> float:
    """Idle fraction of a flushing pipeline:
    ``(S - 1) / (m + S - 1)`` (Narayanan et al.)."""
    if n_stages < 1 or n_microbatches < 1:
        raise ValueError("stages and microbatches must be >= 1")
    return (n_stages - 1) / (n_microbatches + n_stages - 1)
