"""Static pipeline schedules for the flushing baselines.

Megatron-LM and DeepSpeed realize inter-layer parallelism with *pipelining
with flushing* (paper Section VIII): worker GPUs follow a precomputed
operation order and update weights only after all microbatches of a batch
have drained.  Two schedules are provided:

* **1F1B** (PipeDream-Flush, what Megatron-LM ships): stage *i* warms up
  with ``S - 1 - i`` forwards, then alternates one-forward-one-backward,
  then drains — in-flight activations bounded by the pipeline depth;
* **GPipe**: all forwards, then all backwards — simpler, but the in-flight
  activation count grows with the number of microbatches.

Unlike AxoNN's message-driven scheduler, the order is *fixed*: a stage that
could run a ready forward pass while waiting for a gradient simply waits —
one of the two structural disadvantages the paper attributes to the
baselines (the other being blocking NCCL point-to-point sends).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["one_f_one_b_schedule", "gpipe_schedule", "max_inflight",
           "bubble_fraction"]

Op = Tuple[str, int]  # ("F"|"B", microbatch)
#: stage-tagged form: ("F"|"B"|"W", stage, microbatch) — a rank that owns
#: several virtual stages interleaves their ops in one sequence
StagedOp = Tuple[str, int, int]


def one_f_one_b_schedule(stage: int, n_stages: int,
                         n_microbatches: int) -> List[Op]:
    """Operation order of ``stage`` under 1F1B."""
    if not 0 <= stage < n_stages:
        raise ValueError(f"stage {stage} outside [0, {n_stages})")
    if n_microbatches < 1:
        raise ValueError("need at least one microbatch")
    warmup = min(n_stages - 1 - stage, n_microbatches)
    ops: List[Op] = [("F", mb) for mb in range(warmup)]
    fwd, bwd = warmup, 0
    while fwd < n_microbatches:
        ops.append(("F", fwd))
        fwd += 1
        ops.append(("B", bwd))
        bwd += 1
    while bwd < n_microbatches:
        ops.append(("B", bwd))
        bwd += 1
    return ops


def gpipe_schedule(stage: int, n_stages: int,
                   n_microbatches: int) -> List[Op]:
    """Operation order of ``stage`` under GPipe (flush after all forwards)."""
    if not 0 <= stage < n_stages:
        raise ValueError(f"stage {stage} outside [0, {n_stages})")
    if n_microbatches < 1:
        raise ValueError("need at least one microbatch")
    return ([("F", mb) for mb in range(n_microbatches)]
            + [("B", mb) for mb in range(n_microbatches)])


def max_inflight(ops: Sequence[Op]) -> int:
    """Peak resident forward activations of one rank, counted per stage.

    Accepts the legacy ``("F"|"B", microbatch)`` form (one stage per
    rank — the counter is that stage's) and the stage-tagged
    ``("F"|"B"|"W", stage, microbatch)`` form, where each virtual stage
    gets its own counter and the rank's estimate is the *maximum over
    its stages*, not the sum over every op in the sequence — a GPipe
    rank holding 8 microbatches of one stage needs 8 activations'
    memory, not ``8 x stages``.  When a stage splits its backward, the
    releasing op is the deferred weight pass ``("W", stage, mb)``; a
    plain ``B`` for a microbatch with a matching ``W`` does not free
    the activation.
    """
    staged = [op if len(op) == 3 else (op[0], 0, op[1]) for op in ops]
    has_w = {(s, mb) for kind, s, mb in staged if kind == "W"}
    live: dict = {}
    peak = 0
    for kind, s, mb in staged:
        if kind == "F":
            live[s] = live.get(s, 0) + 1
            peak = max(peak, live[s])
        elif kind == "W" or (kind == "B" and (s, mb) not in has_w):
            live[s] = live.get(s, 0) - 1
    return peak


def bubble_fraction(n_stages: int, n_microbatches: int,
                    schedule: str = "1f1b") -> float:
    """Idle fraction of a static pipeline, derived from the schedule IR.

    Historically this returned the 1F1B closed form
    ``(S - 1) / (m + S - 1)`` (Narayanan et al.) regardless of which
    schedule the caller ran.  It now builds the named schedule in
    :mod:`repro.sched` and measures the critical path of the actual
    task DAG; for 1F1B the result coincides with the closed form on
    every grid (pinned by tests), and interleaved / zero-bubble
    schedules are priced honestly instead of being mislabeled.
    """
    if n_stages < 1 or n_microbatches < 1:
        raise ValueError("stages and microbatches must be >= 1")
    # Local import: repro.sched.builders imports this module's op lists.
    from ..sched.metrics import ir_bubble_fraction
    return ir_bubble_fraction(n_stages, n_microbatches, schedule)
