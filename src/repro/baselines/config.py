"""Configuration for the 3D-parallel baseline frameworks."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.model_stats import TransformerSpec

__all__ = ["ThreeDConfig"]


@dataclass(frozen=True)
class ThreeDConfig:
    """One Megatron-LM / DeepSpeed run configuration (a Table II row).

    3D parallelism: ``g_intra`` GPUs shard each layer's matrix
    multiplications (Shoeybi et al.), ``g_inter`` pipeline stages with
    flushing (1F1B), ``g_data`` data-parallel replicas.
    """

    spec: TransformerSpec
    num_gpus: int
    g_intra: int
    g_inter: int
    g_data: int
    microbatch_size: int
    batch_size: int
    framework: str = "megatron"  # or "deepspeed"
    #: pipeline schedule: "1f1b" (PipeDream-Flush) or "gpipe"
    schedule: str = "1f1b"
    #: point-to-point backend ("nccl" is what the real baselines use; "mpi"
    #: isolates the static-schedule effect in the scheduling ablation)
    backend_p2p: str = "nccl"
    #: multiplicative compute-time noise (matches AxoNNConfig.compute_jitter)
    compute_jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self):
        if self.g_intra * self.g_inter * self.g_data != self.num_gpus:
            raise ValueError(
                f"G_intra x G_inter x G_data = "
                f"{self.g_intra * self.g_inter * self.g_data} != num_gpus "
                f"({self.num_gpus})"
            )
        if self.framework not in ("megatron", "deepspeed"):
            raise ValueError(f"unknown framework {self.framework!r}")
        if self.schedule not in ("1f1b", "gpipe"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.batch_size % self.g_data != 0:
            raise ValueError("batch size must divide evenly across G_data")
        shard = self.batch_size // self.g_data
        if shard % self.microbatch_size != 0:
            raise ValueError("batch shard must divide into microbatches")
        if self.g_inter > self.spec.n_layer:
            raise ValueError("more pipeline stages than transformer layers")
        if self.g_intra < 1 or self.microbatch_size < 1:
            raise ValueError("g_intra and microbatch size must be >= 1")
        if self.backend_p2p not in ("mpi", "nccl"):
            raise ValueError(f"unknown p2p backend {self.backend_p2p!r}")
        if self.compute_jitter < 0:
            raise ValueError("compute_jitter must be >= 0")
        if self.spec.hidden % self.g_intra != 0:
            raise ValueError("hidden size must divide across G_intra")

    @property
    def microbatches_per_shard(self) -> int:
        return self.batch_size // self.g_data // self.microbatch_size

    def with_(self, **kwargs) -> "ThreeDConfig":
        return replace(self, **kwargs)
