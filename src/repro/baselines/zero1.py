"""Functional ZeRO stage-1 optimizer (Rajbhandari et al.) — DeepSpeed's
memory strategy with real numerics.

ZeRO-1 partitions the *optimizer state* (fp32 master weights + Adam
moments) across the data-parallel group: replica ``r`` of ``world`` owns
an equal slice of the flattened parameter space, updates only that slice
after the gradient all-reduce, and broadcasts (all-gathers) the updated
parameters so every replica resumes with identical weights.

Per-replica state memory is therefore ``16 phi / world`` bytes instead of
``16 phi`` — the accounting :meth:`repro.core.memory_model.MemoryModel.
state_bytes_zero1` charges.  Because Adam is elementwise, the sharded
update equals the monolithic one exactly; the tests assert bit-level
agreement with :class:`~repro.nn.AdamW`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..nn.optim import adam_step
from ..nn.tensor import Tensor

__all__ = ["Zero1AdamW"]


class Zero1AdamW:
    """AdamW with optimizer state sharded across a data-parallel group.

    One instance manages *all* replicas' parameter sets (keyed by replica
    index), mirroring how the functional trainers hold every rank
    in-process.  Each replica owns the slice ``bounds[r]`` of the flat
    space; :meth:`step` assumes gradients are already all-reduced (summed)
    and identical across replicas, as Algorithm 1's data-parallel phase
    guarantees.
    """

    def __init__(self, replica_params: Dict[int, List[Tensor]],
                 lr: float = 1e-3, betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01):
        if not replica_params:
            raise ValueError("need at least one replica")
        self.replicas = dict(sorted(replica_params.items()))
        shapes = [[p.data.shape for p in params]
                  for params in self.replicas.values()]
        if any(s != shapes[0] for s in shapes[1:]):
            raise ValueError("replicas must hold identically-shaped "
                             "parameter lists")
        self.world = len(self.replicas)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

        sizes = [p.size for p in next(iter(self.replicas.values()))]
        self.offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(
            np.int64)
        self.numel = int(self.offsets[-1])
        #: flat-slice [start, end) owned by each replica
        self.bounds: Dict[int, Tuple[int, int]] = {}
        base, extra = divmod(self.numel, self.world)
        start = 0
        for idx, r in enumerate(self.replicas):
            size = base + (1 if idx < extra else 0)
            self.bounds[r] = (start, start + size)
            start += size
        # Owned state shards only: 16 bytes/param over numel/world params.
        first = next(iter(self.replicas.values()))
        flat_init = np.concatenate(
            [p.data.reshape(-1).astype(np.float32) for p in first])
        self.master_shards: Dict[int, np.ndarray] = {}
        self.exp_avg_shards: Dict[int, np.ndarray] = {}
        self.exp_avg_sq_shards: Dict[int, np.ndarray] = {}
        for r, (a, b) in self.bounds.items():
            self.master_shards[r] = flat_init[a:b].copy()
            self.exp_avg_shards[r] = np.zeros(b - a, dtype=np.float32)
            self.exp_avg_sq_shards[r] = np.zeros(b - a, dtype=np.float32)
        self.steps = 0
        #: bytes moved by the post-step parameter all-gather, cumulative
        self.allgather_bytes = 0

    # ------------------------------------------------------------------
    def state_bytes_per_replica(self) -> int:
        """Owned optimizer-state bytes (fp32 master + two moments)."""
        a, b = self.bounds[next(iter(self.bounds))]
        return 12 * (b - a)

    def zero_grad(self) -> None:
        for params in self.replicas.values():
            for p in params:
                p.zero_grad()

    def _flat_grads(self) -> np.ndarray:
        """Gradients from replica 0 (post-all-reduce they are identical;
        a mismatch is a bug upstream)."""
        first = next(iter(self.replicas.values()))
        parts = []
        for p in first:
            g = p.grad if p.grad is not None else np.zeros_like(p.data)
            parts.append(g.reshape(-1).astype(np.float32))
        return np.concatenate(parts)

    def step(self, flat_grads: np.ndarray | None = None) -> None:
        """Sharded update + parameter all-gather."""
        if flat_grads is None:
            flat_grads = self._flat_grads()
        if flat_grads.shape != (self.numel,):
            raise ValueError(
                f"expected flat gradient of {self.numel} elements")
        self.steps += 1
        updated = np.empty(self.numel, dtype=np.float32)
        for r, (a, b) in self.bounds.items():
            if b == a:
                continue
            adam_step(self.master_shards[r], flat_grads[a:b],
                      self.exp_avg_shards[r], self.exp_avg_sq_shards[r],
                      self.steps, self.lr, self.beta1, self.beta2,
                      self.eps, self.weight_decay, decoupled=True)
            updated[a:b] = self.master_shards[r]
        # All-gather: every replica receives every owned slice (each rank
        # contributes numel/world and receives the rest).
        self.allgather_bytes += 4 * self.numel * (self.world - 1)
        for params in self.replicas.values():
            for p, a, b in zip(params, self.offsets, self.offsets[1:]):
                p.data[...] = updated[a:b].reshape(p.data.shape)
