"""Functional 1F1B / GPipe trainer — the baselines' pipeline with real
numerics.

Megatron-LM and DeepSpeed run *pipelining with flushing* on a static
schedule (paper Section VIII).  This trainer executes exactly that on the
cooperative rank transport, reusing the same :class:`PipelineStage` shards
as :class:`~repro.runtime.AxoNNTrainer`.  Because flushing preserves strict
optimizer semantics, its losses must coincide with both AxoNN's and the
serial reference — the schedules differ in *when* work happens, never in
what is computed.  The equivalence tests assert precisely that, isolating
the paper's performance comparison from any correctness concern.

Differences from the message-driven engine:

* each rank follows a fixed operation list
  (:func:`~repro.baselines.schedules.one_f_one_b_schedule` /
  :func:`~repro.baselines.schedules.gpipe_schedule`) instead of dispatching
  on message arrival;
* forward and backward traffic use separate inboxes (two MPI tags), since
  a static schedule must receive the *specific* expected message.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

import numpy as np

from ..nn import AdamW, GPTConfig
from ..runtime.grid import RankGrid
from ..runtime.stage import PipelineStage
from ..runtime.transport import RankTransport
from .schedules import gpipe_schedule, one_f_one_b_schedule

__all__ = ["FlushingPipelineTrainer"]


class FlushingPipelineTrainer:
    """Static-schedule (1F1B or GPipe) hybrid-parallel trainer."""

    def __init__(self, cfg: GPTConfig, g_inter: int, g_data: int,
                 microbatch_size: int, lr: float = 1e-3,
                 betas: Tuple[float, float] = (0.9, 0.999),
                 weight_decay: float = 0.01, schedule: str = "1f1b",
                 checkpoint_activations: bool = False, recorder=None):
        if schedule not in ("1f1b", "gpipe"):
            raise ValueError(f"unknown schedule {schedule!r}")
        if microbatch_size < 1:
            raise ValueError("microbatch_size must be >= 1")
        self.cfg = cfg
        self.grid = RankGrid(g_inter, g_data)
        self.microbatch_size = microbatch_size
        self.schedule = schedule
        #: optional repro.analysis.protocol.TraceRecorder — same contract
        #: as AxoNNTrainer(recorder=): p2p events via the transports, the
        #: tag-plane receives via _pump, collectives per column below.
        self.recorder = recorder
        self.stages: Dict[int, PipelineStage] = {}
        self.optimizers: Dict[int, AdamW] = {}
        for rank in range(self.grid.world_size):
            i, _j = self.grid.coord_of(rank)
            stage = PipelineStage(
                cfg, i, g_inter,
                checkpoint_activations=checkpoint_activations)
            self.stages[rank] = stage
            self.optimizers[rank] = AdamW(stage.parameters(), lr=lr,
                                          betas=betas,
                                          weight_decay=weight_decay)
        self.batches_trained = 0

    # ------------------------------------------------------------------
    def _split_batch(self, x: np.ndarray, y: np.ndarray):
        b = x.shape[0]
        g_data = self.grid.g_data
        if b % g_data != 0:
            raise ValueError(f"batch size {b} not divisible by "
                             f"G_data={g_data}")
        shard = b // g_data
        if shard % self.microbatch_size != 0:
            raise ValueError("batch shard must divide into microbatches")
        per_shard = shard // self.microbatch_size
        groups = []
        for j in range(g_data):
            xs = x[j * shard:(j + 1) * shard]
            ys = y[j * shard:(j + 1) * shard]
            groups.append([
                (xs[k * self.microbatch_size:(k + 1) * self.microbatch_size],
                 ys[k * self.microbatch_size:(k + 1) * self.microbatch_size])
                for k in range(per_shard)
            ])
        return groups, per_shard * g_data

    def _rank_program(self, rank: int, fwd_net: RankTransport,
                      bwd_net: RankTransport,
                      microbatches: List[Tuple[np.ndarray, np.ndarray]],
                      total_microbatches: int) -> Generator:
        grid = self.grid
        stage = self.stages[rank]
        i, _j = grid.coord_of(rank)
        prev_rank = grid.prev_in_pipeline(rank)
        next_rank = grid.next_in_pipeline(rank)
        m = len(microbatches)
        divisor = float(total_microbatches)
        sched = one_f_one_b_schedule if self.schedule == "1f1b" \
            else gpipe_schedule
        ops = sched(i, grid.g_inter, m)
        # A stage with no upstream/downstream never yields; the generator
        # shape is still required by the transport.
        for kind, mb in ops:
            if kind == "F":
                if prev_rank is not None:
                    pkt = yield "F"  # tag-aware receive
                    data = pkt.data
                else:
                    data = microbatches[mb][0]
                if grid.is_last_stage(rank):
                    stage.forward(mb, data, targets=microbatches[mb][1],
                                  loss_divisor=divisor)
                else:
                    out = stage.forward(mb, data)
                    fwd_net.send(rank, next_rank, "F", mb, out)
            else:
                if next_rank is not None:
                    pkt = yield "B"  # tag-aware receive
                    grad = pkt.data
                else:
                    grad = None
                grad_in = stage.backward(mb, grad)
                if prev_rank is not None:
                    bwd_net.send(rank, prev_rank, "B", mb, grad_in)

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One flushed pipeline pass + all-reduce + optimizer step."""
        groups, total_mb = self._split_batch(x, y)
        world = self.grid.world_size
        # Two tag planes so the static schedule receives exactly what it
        # expects; a shared fan-in program per rank merges them.
        fwd_net = RankTransport(world, recorder=self.recorder)
        bwd_net = RankTransport(world, recorder=self.recorder)

        for stage in self.stages.values():
            stage.microbatch_losses.clear()
        for opt in self.optimizers.values():
            opt.zero_grad()

        # Run forward-tag programs and backward-tag programs as one merged
        # generator per rank: the schedule alternates, but each RECV must
        # pull from the right transport.  We interleave by running the
        # schedule on a combined transport keyed by expected tag.
        programs = {}
        for rank in range(world):
            _i, j = self.grid.coord_of(rank)
            programs[rank] = self._rank_program(rank, fwd_net, bwd_net,
                                                groups[j], total_mb)
        self._pump(fwd_net, bwd_net, programs)

        # Data-parallel all-reduce (sum), identical to the AxoNN engine.
        if self.grid.g_data > 1:
            for i in range(self.grid.g_inter):
                column = self.grid.data_parallel_ranks(i)
                param_lists = [self.stages[r].parameters() for r in column]
                if self.recorder is not None:
                    # One collective per parameter slot, recorded per rank
                    # — the same plan AxoNNTrainer records, so the
                    # protocol verifier's column check applies unchanged.
                    for slot in range(len(param_lists[0])):
                        for r in column:
                            self.recorder.record_collective(
                                r, "allreduce_fp32", key=(i, slot))
                for params in zip(*param_lists):
                    grads = [p.grad for p in params if p.grad is not None]
                    if not grads:
                        continue
                    total = np.sum(grads, axis=0)
                    for p in params:
                        p.grad = total.copy()
        for opt in self.optimizers.values():
            opt.step()
        self.batches_trained += 1

        losses = [
            loss
            for rank, stage in self.stages.items()
            if self.grid.is_last_stage(rank)
            for loss in stage.microbatch_losses.values()
        ]
        return float(np.mean(losses))

    @staticmethod
    def _pump(fwd_net: RankTransport, bwd_net: RankTransport,
              programs: Dict[int, Generator]) -> None:
        """Drive the rank programs with *tag-aware* receives.

        A rank program yields ``"F"`` or ``"B"`` to wait for the next
        message of that tag; the pump pops from the matching transport
        plane only.  (A message-driven scheduler would take whichever
        arrives first — the structural difference between AxoNN and the
        flushing baselines, here in executable form.)
        """
        live = dict(programs)
        started = {r: False for r in live}
        waiting: Dict[int, str] = {}

        def try_pop(rank, tag):
            net = fwd_net if tag == "F" else bwd_net
            if net.inboxes[rank]:
                pkt = net.inboxes[rank].popleft()
                if net.recorder is not None:
                    net.recorder.record_recv(rank, pkt.src, pkt.tag,
                                             pkt.microbatch)
                return pkt
            return None

        while live:
            progressed = False
            for rank in sorted(live):
                gen = live.get(rank)
                if gen is None:
                    continue
                while True:
                    if not started[rank]:
                        try:
                            request = next(gen)
                            started[rank] = True
                        except StopIteration:
                            del live[rank]
                            progressed = True
                            break
                    elif rank in waiting:
                        pkt = try_pop(rank, waiting[rank])
                        if pkt is None:
                            break
                        del waiting[rank]
                        try:
                            request = gen.send(pkt)
                        except StopIteration:
                            del live[rank]
                            progressed = True
                            break
                    else:
                        break
                    if request not in ("F", "B"):
                        raise RuntimeError(
                            "rank programs may only yield 'F' or 'B'")
                    waiting[rank] = request
                    progressed = True
            if live and not progressed:
                raise RuntimeError(
                    f"flushing pipeline deadlocked; stuck ranks: "
                    f"{sorted(live)}"
                )

    # -- diagnostics -----------------------------------------------------
    def gather_state(self, j: int = 0) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for i in range(self.grid.g_inter):
            stage = self.stages[self.grid.rank_of(i, j)]
            for name, p in stage.named_parameters():
                state[name] = p.data.copy()
        return state
