"""Baseline frameworks: Megatron-LM and DeepSpeed as performance models.

Public surface:

* :class:`ThreeDConfig` — a 3D-parallel configuration (Table II row);
* :func:`simulate_baseline_batch` / :class:`BaselineResult`;
* :func:`one_f_one_b_schedule`, :func:`gpipe_schedule`,
  :func:`bubble_fraction` — static flushing pipeline schedules.
"""

from .config import ThreeDConfig
from .functional_pipeline import FlushingPipelineTrainer
from .intra_layer import (
    ColumnParallelLinear,
    CommCounter,
    RowParallelLinear,
    TensorParallelAttention,
    TensorParallelMLP,
)
from .frameworks import (
    BaselineResult,
    baseline_stage_costs,
    check_baseline_memory,
    simulate_baseline_batch,
)
from .zero1 import Zero1AdamW
from .schedules import (
    bubble_fraction,
    gpipe_schedule,
    max_inflight,
    one_f_one_b_schedule,
)

__all__ = [
    "ThreeDConfig",
    "FlushingPipelineTrainer",
    "ColumnParallelLinear",
    "CommCounter",
    "RowParallelLinear",
    "TensorParallelAttention",
    "TensorParallelMLP",
    "BaselineResult",
    "baseline_stage_costs",
    "check_baseline_memory",
    "simulate_baseline_batch",
    "bubble_fraction",
    "gpipe_schedule",
    "max_inflight",
    "one_f_one_b_schedule",
    "Zero1AdamW",
]
