"""Mapping of the virtual 2D GPU grid onto physical cluster GPUs.

AxoNN arranges GPUs in a ``G_inter x G_data`` virtual grid (paper Fig. 2):
row *j* is one pipeline (inter-layer parallelism), column *i* is one
data-parallel gradient-reduction group.

Two placement policies are provided:

* ``"pipeline-contiguous"`` (default, what AxoNN does): consecutive pipeline
  stages of the same pipeline are packed onto the same node first, so the
  frequent per-microbatch activation/gradient point-to-point messages use
  the fast intra-node NVLink whenever possible.
* ``"data-contiguous"``: members of a data-parallel group are packed
  together instead, favoring the per-batch gradient all-reduce.

The placement ablation benchmark quantifies the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .specs import ClusterSpec

__all__ = ["GridPlacement", "Coord"]

Coord = Tuple[int, int]  # (i = pipeline stage, j = data-parallel group)


@dataclass(frozen=True)
class GridPlacement:
    """Bijection between grid coordinates and physical GPU ids."""

    spec: ClusterSpec
    g_inter: int
    g_data: int
    policy: str = "pipeline-contiguous"

    def __post_init__(self):
        if self.g_inter < 1 or self.g_data < 1:
            raise ValueError("grid dimensions must be >= 1")
        if self.g_inter * self.g_data > self.spec.num_gpus:
            raise ValueError(
                f"grid {self.g_inter}x{self.g_data} needs "
                f"{self.g_inter * self.g_data} GPUs, cluster has "
                f"{self.spec.num_gpus}"
            )
        if self.policy not in ("pipeline-contiguous", "data-contiguous"):
            raise ValueError(f"unknown placement policy {self.policy!r}")

    # -- mapping ---------------------------------------------------------------
    def gpu_of(self, i: int, j: int) -> int:
        """Physical GPU id of grid coordinate (stage ``i``, group ``j``)."""
        if not (0 <= i < self.g_inter and 0 <= j < self.g_data):
            raise ValueError(f"coordinate ({i}, {j}) outside "
                             f"{self.g_inter}x{self.g_data} grid")
        if self.policy == "pipeline-contiguous":
            return j * self.g_inter + i
        return i * self.g_data + j

    def coord_of(self, gpu_id: int) -> Coord:
        """Inverse of :meth:`gpu_of`."""
        n = self.g_inter * self.g_data
        if not 0 <= gpu_id < n:
            raise ValueError(f"gpu {gpu_id} outside the {n}-GPU grid")
        if self.policy == "pipeline-contiguous":
            return gpu_id % self.g_inter, gpu_id // self.g_inter
        return gpu_id // self.g_data, gpu_id % self.g_data

    # -- groups ---------------------------------------------------------------
    def pipeline(self, j: int) -> List[int]:
        """GPU ids of pipeline (row) ``j``, stage order."""
        return [self.gpu_of(i, j) for i in range(self.g_inter)]

    def data_group(self, i: int) -> List[int]:
        """GPU ids of data-parallel group (column) ``i``."""
        return [self.gpu_of(i, j) for j in range(self.g_data)]

    # -- locality statistics ----------------------------------------------------
    def pipeline_edge_locality(self, j: int = 0) -> Dict[str, int]:
        """Count intra- vs inter-node hops along pipeline ``j``."""
        gpus = self.pipeline(j)
        intra = sum(
            1 for a, b in zip(gpus, gpus[1:]) if self.spec.same_node(a, b)
        )
        return {"intra": intra, "inter": len(gpus) - 1 - intra}

    def data_group_nodes(self, i: int = 0) -> int:
        """Number of distinct nodes spanned by data-parallel group ``i``."""
        return len({self.spec.node_of(g) for g in self.data_group(i)})
