"""Byte-accurate memory accounting for device and host memories.

A :class:`MemoryPool` tracks named allocations against a fixed capacity and
raises :class:`OutOfMemoryError` on oversubscription.  This is what makes
configurations in the tuning study *infeasible* exactly the way they were on
Summit's 16 GB V100s — the mechanism behind the paper's observation that 48
GPUs is the least count on which all three frameworks can train the 12 B
model, and behind the 520 GB -> 130 GB saving of Section V-B.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["MemoryPool", "OutOfMemoryError"]


class OutOfMemoryError(MemoryError):
    """An allocation exceeded pool capacity."""

    def __init__(self, pool: "MemoryPool", label: str, nbytes: int):
        self.pool_name = pool.name
        self.label = label
        self.requested = nbytes
        self.in_use = pool.used
        self.capacity = pool.capacity
        super().__init__(
            f"{pool.name}: cannot allocate {nbytes} B for {label!r}: "
            f"{pool.used} B of {pool.capacity} B already in use"
        )


class MemoryPool:
    """Named-allocation arena with peak tracking."""

    def __init__(self, capacity: int, name: str = "mem"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.name = name
        self._allocs: Dict[str, int] = {}
        self._used = 0
        self._peak = 0

    # -- state ----------------------------------------------------------------
    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def peak(self) -> int:
        """High-water mark of :attr:`used`."""
        return self._peak

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def allocations(self) -> Dict[str, int]:
        """Copy of the live allocation table."""
        return dict(self._allocs)

    def held(self, label: str) -> int:
        """Bytes held under ``label`` (0 if absent)."""
        return self._allocs.get(label, 0)

    # -- mutation ---------------------------------------------------------------
    def allocate(self, label: str, nbytes: int) -> None:
        """Allocate ``nbytes`` under ``label`` (labels may be grown)."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self._used + nbytes > self.capacity:
            raise OutOfMemoryError(self, label, nbytes)
        self._allocs[label] = self._allocs.get(label, 0) + nbytes
        self._used += nbytes
        self._peak = max(self._peak, self._used)

    def free_label(self, label: str) -> int:
        """Release everything held under ``label``; returns bytes freed."""
        nbytes = self._allocs.pop(label, 0)
        self._used -= nbytes
        return nbytes

    def release(self, label: str, nbytes: int) -> None:
        """Shrink ``label`` by ``nbytes``."""
        held = self._allocs.get(label, 0)
        if nbytes > held:
            raise ValueError(
                f"{self.name}: releasing {nbytes} B from {label!r} "
                f"which holds only {held} B"
            )
        if nbytes == held:
            self._allocs.pop(label)
        else:
            self._allocs[label] = held - nbytes
        self._used -= nbytes

    def would_fit(self, nbytes: int) -> bool:
        """True if an allocation of ``nbytes`` would currently succeed."""
        return self._used + nbytes <= self.capacity

    def reset(self) -> None:
        """Drop all allocations (keeps the peak statistic)."""
        self._allocs.clear()
        self._used = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<MemoryPool {self.name}: {self._used}/{self.capacity} B, "
                f"peak {self._peak}>")
