"""Hardware specifications for the simulated cluster.

All numbers for the default cluster come from the paper's Section VI
description of ORNL Summit:

* 6 NVIDIA V100 GPUs per node (two Power9 sockets x 3 GPUs),
* 16 GB DRAM per GPU,
* 125 Tflop/s peak half-precision throughput per GPU,
* 50 GB/s peak intra-node GPU-GPU bandwidth (NVLink),
* 12.5 GB/s peak inter-node bandwidth.

Specs are immutable dataclasses so a cluster configuration can be hashed,
compared and embedded in experiment records.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUSpec", "NodeSpec", "ClusterSpec", "summit", "GB", "MB", "KB"]

KB = 1024
MB = 1024 ** 2
GB = 1024 ** 3


@dataclass(frozen=True)
class GPUSpec:
    """One accelerator."""

    #: peak half-precision throughput, flop/s
    peak_half_flops: float
    #: device DRAM capacity, bytes
    dram_bytes: int
    #: host <-> device DMA bandwidth, bytes/s (NVLink CPU link on Summit)
    h2d_bandwidth: float
    #: DMA engine latency per transfer, seconds
    dma_latency: float = 5e-6

    def __post_init__(self):
        if self.peak_half_flops <= 0 or self.dram_bytes <= 0:
            raise ValueError("GPU peak flops and DRAM must be positive")


@dataclass(frozen=True)
class NodeSpec:
    """One multi-GPU node."""

    gpu: GPUSpec
    gpus_per_node: int
    #: GPU-GPU bandwidth within the node (NVLink), bytes/s
    intra_node_bandwidth: float
    #: node injection bandwidth to the interconnect, bytes/s
    inter_node_bandwidth: float
    #: host DRAM capacity available as offload scratch, bytes
    host_dram_bytes: int
    #: aggregate host memory bandwidth shared by the node's GPUs, bytes/s
    host_mem_bandwidth: float

    def __post_init__(self):
        if self.gpus_per_node < 1:
            raise ValueError("need at least one GPU per node")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of identical nodes."""

    name: str
    node: NodeSpec
    num_nodes: int

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError("need at least one node")

    @property
    def num_gpus(self) -> int:
        return self.num_nodes * self.node.gpus_per_node

    @property
    def peak_half_flops(self) -> float:
        """Aggregate peak half-precision flop/s of the whole cluster."""
        return self.num_gpus * self.node.gpu.peak_half_flops

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        """Same hardware, different node count."""
        return replace(self, num_nodes=num_nodes)

    def node_of(self, gpu_id: int) -> int:
        """Node index hosting global GPU ``gpu_id``."""
        self._check_gpu(gpu_id)
        return gpu_id // self.node.gpus_per_node

    def local_index(self, gpu_id: int) -> int:
        """Index of ``gpu_id`` within its node."""
        self._check_gpu(gpu_id)
        return gpu_id % self.node.gpus_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def _check_gpu(self, gpu_id: int) -> None:
        if not 0 <= gpu_id < self.num_gpus:
            raise ValueError(f"gpu id {gpu_id} outside [0, {self.num_gpus})")


def summit(num_nodes: int = 8) -> ClusterSpec:
    """The paper's testbed: ORNL Summit (Section VI numbers)."""
    v100 = GPUSpec(
        peak_half_flops=125e12,
        dram_bytes=16 * GB,
        h2d_bandwidth=50e9,
    )
    node = NodeSpec(
        gpu=v100,
        gpus_per_node=6,
        intra_node_bandwidth=50e9,
        inter_node_bandwidth=12.5e9,
        host_dram_bytes=512 * GB,
        host_mem_bandwidth=270e9,
    )
    return ClusterSpec(name="summit", node=node, num_nodes=num_nodes)
