"""Network fabric of the simulated cluster.

Topology model (matching Summit's relevant structure):

* every GPU has a full-duplex NVLink *port* — an intra-node transfer holds
  the sender's egress port and the receiver's ingress port for its duration
  (NVLink carries a send and a receive concurrently);
* every node has a full-duplex NIC — inter-node transfers hold the source
  node's egress NIC and the destination node's ingress NIC.

Transfers therefore contend exactly where the real machine contends: two
concurrent messages *into* the same GPU serialize on its ingress port, two
*out of* it on its egress port — but a send and a receive can overlap; all
traffic leaving a node serializes on its egress NIC.  Transfer duration comes from the
backend's alpha-beta model (:class:`repro.cluster.calibration.CommCostModel`);
the fabric only supplies *where* the time is spent and who waits.

Deadlock note: a transfer needs two resources.  Both are acquired in global
canonical order (port/NIC with the smaller id first), which makes hold-and-
wait cycles impossible.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..sim import Environment, Resource, Tracer
from .calibration import CommCostModel
from .specs import ClusterSpec

__all__ = ["Fabric"]


class Fabric:
    """Ports, NICs and the transfer process."""

    def __init__(self, env: Environment, spec: ClusterSpec,
                 tracer: Optional[Tracer] = None):
        self.env = env
        self.spec = spec
        self.tracer = tracer
        self.ports_out: List[Resource] = [
            Resource(env, capacity=1, name=f"gpu{g}.port.out")
            for g in range(spec.num_gpus)
        ]
        self.ports_in: List[Resource] = [
            Resource(env, capacity=1, name=f"gpu{g}.port.in")
            for g in range(spec.num_gpus)
        ]
        self.nics_out: List[Resource] = [
            Resource(env, capacity=1, name=f"node{n}.nic.out")
            for n in range(spec.num_nodes)
        ]
        self.nics_in: List[Resource] = [
            Resource(env, capacity=1, name=f"node{n}.nic.in")
            for n in range(spec.num_nodes)
        ]

    # -- helpers -----------------------------------------------------------
    def _resources_for(self, src: int, dst: int) -> Tuple[List[Resource], bool]:
        """Resources a src->dst transfer must hold, in canonical order, and
        whether the route stays inside one node."""
        if src == dst:
            raise ValueError(f"transfer to self (gpu {src})")
        if self.spec.same_node(src, dst):
            # Egress of the source, ingress of the destination.  Acquisition
            # order is deadlock-free because every transfer takes exactly
            # one egress then one ingress resource (two-phase, no cycles of
            # mixed order are possible).
            return [self.ports_out[src], self.ports_in[dst]], True
        n_src, n_dst = self.spec.node_of(src), self.spec.node_of(dst)
        return [self.nics_out[n_src], self.nics_in[n_dst]], False

    def transfer_time(self, src: int, dst: int, nbytes: int,
                      model: CommCostModel) -> float:
        """Uncontended wire time for the message."""
        _, intra = self._resources_for(src, dst)
        return model.p2p_time(nbytes, intra)

    # -- processes -----------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: int,
                 model: CommCostModel, label: str = "msg",
                 meta: Optional[Dict[str, object]] = None) -> Generator:
        """Simulation process moving ``nbytes`` from GPU ``src`` to ``dst``.

        Yields until the transfer completes; returns the wire time (excluding
        queueing) so callers can account overheads.  ``meta`` is attached to
        the recorded span (the messenger passes microbatch identity through).

        The whole acquire-hold sequence runs under one ``try/finally``: if
        the process is cancelled or errors while still waiting on a *later*
        ``request()``, every already-granted resource is released and the
        still-pending request is cancelled (:meth:`Resource.release` handles
        never-granted requests), so a killed transfer leaks nothing.
        """
        resources, intra = self._resources_for(src, dst)
        duration = model.p2p_time(nbytes, intra)
        grants = []
        try:
            for res in resources:
                req = res.request()
                grants.append((res, req))
                yield req
            start = self.env.now
            yield self.env.timeout(duration)
        finally:
            for res, req in reversed(grants):
                res.release(req)
        if self.tracer is not None:
            self.tracer.record(
                f"gpu{src}.net", label, start, self.env.now,
                category="p2p", src=src, dst=dst, bytes=nbytes,
                backend=model.name, **(meta or {}),
            )
        return duration

    def allreduce(self, ranks: List[int], nbytes: int,
                  model: CommCostModel, label: str = "allreduce",
                  meta: Optional[Dict[str, object]] = None) -> Generator:
        """Simulation process performing an all-reduce over GPU ids ``ranks``
        with ``nbytes`` contributed per rank.

        The ring cost model gives the duration; the process holds the NICs of
        every involved node (or the ports, for a single-node group) so that
        concurrent collectives and point-to-point traffic contend.  Like
        :meth:`transfer`, the acquire-hold sequence is fully guarded so a
        cancelled collective releases every granted resource.
        """
        if len(ranks) <= 1:
            return 0.0
        nodes = sorted({self.spec.node_of(r) for r in ranks})
        intra = len(nodes) == 1
        duration = model.allreduce_time(nbytes, len(ranks), intra)
        if intra:
            resources = [self.ports_out[r] for r in sorted(ranks)]
        else:
            resources = [self.nics_out[n] for n in nodes]
        grants = []
        try:
            for res in resources:
                req = res.request()
                grants.append((res, req))
                yield req
            start = self.env.now
            yield self.env.timeout(duration)
        finally:
            for res, req in reversed(grants):
                res.release(req)
        if self.tracer is not None:
            self.tracer.record(
                f"gpu{ranks[0]}.net", label, start, self.env.now,
                category="allreduce", ranks=len(ranks), bytes=nbytes,
                backend=model.name, **(meta or {}),
            )
        return duration
