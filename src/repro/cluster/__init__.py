"""Simulated GPU cluster substrate (Summit-calibrated).

Public surface:

* :func:`summit`, :class:`ClusterSpec`, :class:`NodeSpec`, :class:`GPUSpec` —
  hardware description;
* :class:`Machine` — an assembled simulated cluster;
* :class:`GridPlacement` — 2D virtual grid -> physical GPU mapping;
* :class:`MemoryPool` / :class:`OutOfMemoryError` — byte accounting;
* :class:`Calibration` & friends — the tunable cost models.
"""

from .calibration import (
    Calibration,
    CommCostModel,
    ComputeModel,
    default_calibration,
    validate_calibration,
)
from .gpu import SimGPU
from .machine import Machine
from .memory import MemoryPool, OutOfMemoryError
from .network import Fabric
from .placement import GridPlacement
from .specs import GB, KB, MB, ClusterSpec, GPUSpec, NodeSpec, summit

__all__ = [
    "Calibration",
    "CommCostModel",
    "ComputeModel",
    "default_calibration",
    "validate_calibration",
    "SimGPU",
    "Machine",
    "MemoryPool",
    "OutOfMemoryError",
    "Fabric",
    "GridPlacement",
    "ClusterSpec",
    "GPUSpec",
    "NodeSpec",
    "summit",
    "GB",
    "MB",
    "KB",
]
