"""Calibration constants for the performance models.

Everything tunable about the simulated Summit lives here: the alpha-beta
parameters of the MPI and NCCL communication backends (calibrated to
reproduce the *shape* of the paper's Figs. 3-4 OSU microbenchmarks) and the
GEMM kernel-efficiency model (calibrated so AxoNN's end-to-end percentage of
peak lands in the paper's 49-55% band).

The qualitative asymmetries encoded here are the paper's measurements:

* MPI point-to-point is markedly faster than NCCL *within* a node (Fig. 3)
  and near-identical *across* nodes;
* NCCL point-to-point blocks the GPUs until a rendezvous handshake completes,
  MPI sends/receives progress asynchronously (Section IV-A);
* NCCL collectives are far faster than MPI collectives (Fig. 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CommCostModel", "ComputeModel", "Calibration",
           "default_calibration", "validate_calibration"]


@dataclass(frozen=True)
class CommCostModel:
    """Alpha-beta parameters of one communication backend.

    Latencies in seconds, bandwidths in bytes/s.  ``blocking_p2p`` marks the
    NCCL-style rendezvous semantics: the transfer occupies the *compute*
    stream of both endpoints (Section IV-A), whereas non-blocking backends
    only occupy the network ports.
    """

    name: str
    # point-to-point
    p2p_alpha_intra: float
    p2p_bw_intra: float
    p2p_alpha_inter: float
    p2p_bw_inter: float
    blocking_p2p: bool
    # all-reduce (ring for NCCL, host-staged tree for MPI)
    coll_alpha: float
    coll_bw_intra: float
    coll_bw_inter: float

    def p2p_time(self, nbytes: int, intra_node: bool) -> float:
        """Modeled ping time for a single point-to-point message."""
        if intra_node:
            return self.p2p_alpha_intra + nbytes / self.p2p_bw_intra
        return self.p2p_alpha_inter + nbytes / self.p2p_bw_inter

    def allreduce_time(self, nbytes: int, ranks: int, intra_node: bool) -> float:
        """Modeled all-reduce completion time for ``nbytes`` per rank.

        Ring cost: ``2 (p-1)/p * nbytes / bw`` plus a per-step latency term.
        For a single rank the operation is a no-op.
        """
        if ranks <= 1:
            return 0.0
        bw = self.coll_bw_intra if intra_node else self.coll_bw_inter
        steps = 2 * (ranks - 1)
        latency = steps * self.coll_alpha
        return latency + (steps / ranks) * nbytes / bw

    def allgather_time(self, nbytes: int, ranks: int,
                       intra_node: bool) -> float:
        """Modeled ring all-gather for ``nbytes`` of *result* per rank:
        ``(p-1)`` steps each moving ``nbytes / p``."""
        if ranks <= 1:
            return 0.0
        bw = self.coll_bw_intra if intra_node else self.coll_bw_inter
        steps = ranks - 1
        return steps * self.coll_alpha + (steps / ranks) * nbytes / bw

    def reduce_scatter_time(self, nbytes: int, ranks: int,
                            intra_node: bool) -> float:
        """Modeled ring reduce-scatter: the all-gather's mirror — same
        step count and volume, reductions instead of copies."""
        return self.allgather_time(nbytes, ranks, intra_node)


@dataclass(frozen=True)
class ComputeModel:
    """Saturating kernel-efficiency model.

    Achieved fraction of peak for a layer invocation doing ``work`` flops:
    ``eff = eff_max * work / (work + work_half)``.  Small microbatches and
    tensor-parallel shards do less work per kernel and therefore run less
    efficiently — the effect that penalizes Megatron-LM-style intra-layer
    parallelism in the paper's evaluation.
    """

    eff_max: float = 0.61
    work_half: float = 2.1e10

    def efficiency(self, work: float) -> float:
        if work <= 0:
            return self.eff_max
        return self.eff_max * work / (work + self.work_half)

    def time(self, flops: float, peak_flops: float, work: float = 0.0) -> float:
        """Seconds to execute ``flops`` given per-kernel ``work`` granularity
        (defaults to ``flops`` itself)."""
        eff = self.efficiency(work if work > 0 else flops)
        return flops / (peak_flops * eff)


@dataclass(frozen=True)
class Calibration:
    """Bundle of every tunable constant."""

    mpi: CommCostModel
    nccl: CommCostModel
    compute: ComputeModel
    #: fixed per-kernel launch overhead, seconds
    kernel_launch_overhead: float = 4e-6
    #: per-bucket fixed cost of the CPU-side optimizer step, seconds
    optimizer_bucket_overhead: float = 30e-6
    #: flops of the Adam update per parameter (fused multiply-adds etc.)
    adam_flops_per_param: float = 12.0
    #: effective throughput of the CPU optimizer math, flop/s
    cpu_flops: float = 3.2e10
    #: device HBM bandwidth (bounds the on-GPU elementwise optimizer), bytes/s
    hbm_bandwidth: float = 800e9
    #: fixed launch+synchronization overhead per collective call, seconds
    #: (the "too many all-reduce calls" cost that makes k=1 slow in Fig. 8)
    coll_launch_overhead: float = 18e-3
    #: per-pass software overhead in the pipeline: receive dispatch, stream
    #: synchronization before the send, Python-side scheduling.  Charged on
    #: the critical path once per forward/backward pass, it is the
    #: m-proportional cost behind Theorem 5.3's empirical signature (Fig. 5)
    #: and calibrated against the Fig. 6 pipeline-phase anchors.
    p2p_handling_overhead: float = 7e-3

    def backend(self, name: str) -> CommCostModel:
        if name == "mpi":
            return self.mpi
        if name == "nccl":
            return self.nccl
        raise ValueError(f"unknown backend {name!r} (expected 'mpi' or 'nccl')")


def default_calibration() -> Calibration:
    """Summit-shaped defaults reproducing Figs. 3-4 qualitatively."""
    mpi = CommCostModel(
        name="mpi",
        # Fig. 3: MPI intra-node p2p runs near NVLink peak with low latency.
        p2p_alpha_intra=6e-6,
        p2p_bw_intra=45e9,
        p2p_alpha_inter=8e-6,
        p2p_bw_inter=12e9,
        blocking_p2p=False,
        # Fig. 4: MPI all-reduce is host-staged and slow.
        coll_alpha=15e-6,
        coll_bw_intra=7e9,
        coll_bw_inter=3e9,
    )
    nccl = CommCostModel(
        name="nccl",
        # Fig. 3: NCCL intra-node p2p has a rendezvous handshake and lower
        # effective bandwidth in the 1-50 MB region of interest.
        p2p_alpha_intra=10e-6,
        p2p_bw_intra=20e9,
        # ... but is nearly identical to MPI across nodes.
        p2p_alpha_inter=12e-6,
        p2p_bw_inter=12e9,
        blocking_p2p=True,
        # Fig. 4: NCCL ring collectives run near link speed.
        coll_alpha=10e-6,
        coll_bw_intra=40e9,
        coll_bw_inter=11e9,
    )
    return Calibration(mpi=mpi, nccl=nccl, compute=ComputeModel())


def validate_calibration(cal: Calibration) -> None:
    """Sanity-check the paper's qualitative orderings; raises on violation.

    Used by tests and at Machine construction time so an edited calibration
    cannot silently invert the phenomena the experiments rely on.
    """
    interesting = [2 ** e for e in range(20, 26)]  # 1 MB .. 32 MB
    for nbytes in interesting:
        if not cal.mpi.p2p_time(nbytes, True) < cal.nccl.p2p_time(nbytes, True):
            raise ValueError(
                f"calibration violates Fig. 3: MPI intra-node p2p must beat "
                f"NCCL at {nbytes} B"
            )
    for nbytes in interesting:
        t_mpi = cal.mpi.p2p_time(nbytes, False)
        t_nccl = cal.nccl.p2p_time(nbytes, False)
        if not (0.5 < t_mpi / t_nccl < 2.0):
            raise ValueError(
                "calibration violates Fig. 3: inter-node MPI and NCCL p2p "
                "must be nearly identical"
            )
    for nbytes in [2 ** e for e in range(22, 31)]:  # 4 MB .. 1 GB
        for ranks, intra in ((6, True), (12, False)):
            t_mpi = cal.mpi.allreduce_time(nbytes, ranks, intra)
            t_nccl = cal.nccl.allreduce_time(nbytes, ranks, intra)
            if not t_nccl < t_mpi:
                raise ValueError(
                    f"calibration violates Fig. 4: NCCL all-reduce must beat "
                    f"MPI at {nbytes} B on {ranks} ranks"
                )
    if not 0 < cal.compute.eff_max <= 1:
        raise ValueError("eff_max must be in (0, 1]")
    if math.isnan(cal.compute.work_half) or cal.compute.work_half < 0:
        raise ValueError("work_half must be non-negative")
