"""Simulated GPU: compute streams, DMA engines, device memory.

Each :class:`SimGPU` owns

* a *compute stream* — the default CUDA stream where forward/backward
  kernels run, and where NCCL-style blocking communication parks itself;
* an *auxiliary stream* — the second CUDA stream AxoNN uses for the
  optimizer so it can overlap with the all-reduce (paper Fig. 7);
* a *DMA engine* — host<->device copies (the CPU-offload path of the
  memory optimization, Section V-B);
* a byte-accurate :class:`~repro.cluster.memory.MemoryPool` of device DRAM.

Kernel durations come from the calibration's compute model; the GPU only
provides serialization and tracing.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim import Environment, Resource, Tracer
from .calibration import Calibration
from .memory import MemoryPool
from .specs import ClusterSpec

__all__ = ["SimGPU"]


class SimGPU:
    """One accelerator of the simulated cluster."""

    def __init__(self, env: Environment, spec: ClusterSpec, gpu_id: int,
                 cal: Calibration, host_dma_slots: Resource,
                 tracer: Optional[Tracer] = None):
        self.env = env
        self.spec = spec
        self.id = gpu_id
        self.node = spec.node_of(gpu_id)
        self.cal = cal
        self.tracer = tracer
        self.compute_stream = Resource(env, 1, name=f"gpu{gpu_id}.compute")
        self.aux_stream = Resource(env, 1, name=f"gpu{gpu_id}.aux")
        self.dma_engine = Resource(env, 1, name=f"gpu{gpu_id}.dma")
        #: node-level limiter on concurrent host-memory DMA streams
        self.host_dma_slots = host_dma_slots
        self.memory = MemoryPool(spec.node.gpu.dram_bytes, name=f"gpu{gpu_id}.dram")

    # -- compute ---------------------------------------------------------------
    def compute(self, flops: float, label: str = "kernel",
                category: str = "compute", work: float = 0.0,
                stream: Optional[Resource] = None,
                extra_time: float = 0.0, **meta: object) -> Generator:
        """Process: run ``flops`` worth of kernels on a stream.

        ``work`` is the per-kernel work granularity fed to the efficiency
        model (defaults to ``flops``); ``extra_time`` adds fixed software
        overhead (e.g. the per-pass handling cost of the pipeline); extra
        keyword arguments become span metadata (microbatch ids, ...).
        Returns the kernel time.
        """
        stream = stream or self.compute_stream
        duration = self.cal.compute.time(
            flops, self.spec.node.gpu.peak_half_flops, work
        ) + self.cal.kernel_launch_overhead + extra_time
        req = stream.request()
        try:
            yield req
            start = self.env.now
            yield self.env.timeout(duration)
        finally:
            stream.release(req)
        if self.tracer is not None:
            self.tracer.record(f"gpu{self.id}.{stream.name.split('.')[-1]}",
                               label, start, self.env.now,
                               category=category, flops=flops, **meta)
        return duration

    def busy(self, duration: float, label: str = "busy",
             category: str = "compute",
             stream: Optional[Resource] = None, **meta: object) -> Generator:
        """Process: occupy a stream for a fixed duration (non-flop work such
        as an NCCL rendezvous or a fixed overhead)."""
        if duration < 0:
            raise ValueError(f"negative busy duration: {duration}")
        stream = stream or self.compute_stream
        req = stream.request()
        try:
            yield req
            start = self.env.now
            yield self.env.timeout(duration)
        finally:
            stream.release(req)
        if self.tracer is not None:
            self.tracer.record(f"gpu{self.id}.{stream.name.split('.')[-1]}",
                               label, start, self.env.now, category=category,
                               **meta)
        return duration

    # -- host <-> device -------------------------------------------------------
    def dma_time(self, nbytes: int) -> float:
        g = self.spec.node.gpu
        return g.dma_latency + nbytes / g.h2d_bandwidth

    def dma(self, nbytes: int, direction: str = "h2d",
            label: str = "") -> Generator:
        """Process: move ``nbytes`` between host and device memory.

        Holds this GPU's DMA engine and one of the node's shared host-memory
        DMA slots (so simultaneous offload traffic from all six GPUs of a
        node saturates the host memory system rather than scaling freely).
        """
        if direction not in ("h2d", "d2h"):
            raise ValueError(f"direction must be 'h2d' or 'd2h', got {direction!r}")
        duration = self.dma_time(nbytes)
        slot = self.host_dma_slots.request()
        req = None
        try:
            yield slot
            req = self.dma_engine.request()
            yield req
            start = self.env.now
            yield self.env.timeout(duration)
        finally:
            if req is not None:
                self.dma_engine.release(req)
            self.host_dma_slots.release(slot)
        if self.tracer is not None:
            self.tracer.record(f"gpu{self.id}.dma", label or direction,
                               start, self.env.now, category=direction,
                               bytes=nbytes)
        return duration
