"""The assembled simulated machine: environment + GPUs + fabric + host memory.

A :class:`Machine` is what the framework models in :mod:`repro.core` and
:mod:`repro.baselines` execute on.  Construction wires together:

* one :class:`~repro.sim.Environment` (the clock),
* one :class:`~repro.cluster.gpu.SimGPU` per physical GPU,
* the network :class:`~repro.cluster.network.Fabric`,
* per-node host memory pools (the CPU scratch space of Section V-B),
* a shared :class:`~repro.sim.Tracer`.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Environment, Resource, Tracer
from .calibration import Calibration, default_calibration, validate_calibration
from .gpu import SimGPU
from .memory import MemoryPool
from .network import Fabric
from .specs import ClusterSpec, summit

__all__ = ["Machine"]


class Machine:
    """A ready-to-run simulated cluster."""

    def __init__(self, spec: Optional[ClusterSpec] = None,
                 cal: Optional[Calibration] = None,
                 trace: bool = False):
        self.spec = spec or summit()
        self.cal = cal or default_calibration()
        validate_calibration(self.cal)
        self.env = Environment()
        self.tracer = Tracer(enabled=trace)
        node_spec = self.spec.node
        # Node-level limiter approximating the aggregate host-memory
        # bandwidth: at most floor(host_bw / per-GPU DMA bw) transfers can
        # run at full speed concurrently; further ones queue.
        slots = max(1, int(node_spec.host_mem_bandwidth
                           // node_spec.gpu.h2d_bandwidth))
        self._host_dma_slots: List[Resource] = [
            Resource(self.env, capacity=slots, name=f"node{n}.hostdma")
            for n in range(self.spec.num_nodes)
        ]
        self.host_memory: List[MemoryPool] = [
            MemoryPool(node_spec.host_dram_bytes, name=f"node{n}.hostmem")
            for n in range(self.spec.num_nodes)
        ]
        self.gpus: List[SimGPU] = [
            SimGPU(self.env, self.spec, g, self.cal,
                   self._host_dma_slots[self.spec.node_of(g)],
                   tracer=self.tracer)
            for g in range(self.spec.num_gpus)
        ]
        self.fabric = Fabric(self.env, self.spec, tracer=self.tracer)

    @property
    def now(self) -> float:
        return self.env.now

    def gpu(self, gpu_id: int) -> SimGPU:
        return self.gpus[gpu_id]

    def host_mem_of(self, gpu_id: int) -> MemoryPool:
        """Host memory pool of the node hosting ``gpu_id``."""
        return self.host_memory[self.spec.node_of(gpu_id)]

    def run(self, until: Optional[float] = None) -> None:
        self.env.run(until=until)

    def reset_memory(self) -> None:
        """Drop all device/host allocations (between simulated batches)."""
        for g in self.gpus:
            g.memory.reset()
        for h in self.host_memory:
            h.reset()
