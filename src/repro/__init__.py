"""repro — a reproduction of *AxoNN: An asynchronous, message-driven
parallel framework for extreme-scale deep learning* (Singh & Bhatele,
IPDPS 2022).

The package has two complementary halves:

* a **functional runtime** (:mod:`repro.nn` + :mod:`repro.runtime`) that
  executes AxoNN's hybrid message-driven training algorithm with real
  numerics on an in-process rank transport — used to validate that the
  parallelization preserves optimizer semantics (paper Fig. 10);

* a **performance model** (:mod:`repro.sim`, :mod:`repro.cluster`,
  :mod:`repro.comm`, :mod:`repro.core`, :mod:`repro.baselines`) that runs
  the same algorithms as discrete-event programs on a Summit-calibrated
  simulated cluster — used to reproduce the paper's scaling and
  optimization studies (Figs. 3-9, 11, Tables I-II).

Quick start (functional)::

    from repro.nn import GPTConfig, SyntheticCorpus, LMBatches
    from repro.runtime import AxoNNTrainer

    cfg = GPTConfig(vocab_size=64, seq_len=16, n_layer=4, n_head=4,
                    hidden=32)
    trainer = AxoNNTrainer(cfg, g_inter=2, g_data=2, microbatch_size=2)
    corpus = SyntheticCorpus(cfg.vocab_size, 10_000, seed=0)
    batches = LMBatches(corpus, batch_size=8, seq_len=cfg.seq_len)
    for i in range(10):
        x, y = batches.batch(i)
        print(trainer.train_batch(x, y).loss)

Quick start (performance)::

    from repro.core import AxoNNConfig, WEAK_SCALING_MODELS, simulate_batch

    cfg = AxoNNConfig(spec=WEAK_SCALING_MODELS["12B"], num_gpus=48,
                      g_inter=6, g_data=8, microbatch_size=8,
                      batch_size=16384, memopt=True)
    print(simulate_batch(cfg).as_row())
"""

from . import analysis, baselines, cluster, comm, core, experiments, nn, \
    obs, runtime, sim, tuning

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "cluster",
    "comm",
    "core",
    "experiments",
    "nn",
    "obs",
    "runtime",
    "sim",
    "tuning",
    "__version__",
]
