"""Single-producer single-consumer shared-memory ring buffers.

The process backend (:mod:`repro.runtime.parallel`) moves NumPy payloads
between rank worker processes through these rings — one ring per directed
channel ``(src, dst)`` — so a send is one pickle + one ``memcpy`` into a
:class:`multiprocessing.shared_memory.SharedMemory` segment, with no pipe
syscall or broker process on the hot path.

Layout of a ring segment::

    [ tail : u64 ][ head : u64 ][ tail_frames : u64 ][ head_frames : u64 ]
    [ payload : capacity bytes ]

``tail`` counts bytes ever produced, ``head`` bytes ever consumed; both
increase monotonically (positions are taken modulo ``capacity``), so
``tail - head`` is the exact number of unread bytes and the full/empty
states never alias.  ``tail_frames``/``head_frames`` count whole frames
the same way, so an outside observer (the parent's ``pending()``) can
report *message* counts without consuming anything.  Exactly one process writes ``tail`` (the producer)
and one writes ``head`` (the consumer); 8-byte aligned stores are atomic
on every platform CPython runs on, which is all the synchronization an
SPSC ring needs.

A frame is an 8-byte little-endian length prefix followed by that many
bytes of pickled message.  Frames wrap around the end of the payload
region byte-wise (two ``memcpy`` s).  Messages are ``(src, tag,
microbatch, send_ts, data)`` tuples on the trainer path, but the ring is
payload-agnostic: anything picklable goes — the REP008 lint exists
precisely to keep closures and generators *out* of what callers pass in.

Blocking behaviour: :meth:`ShmRing.push` blocks while the ring lacks
space and :meth:`ShmRing.pop` returns ``None`` when the ring is empty
(the caller owns the poll loop so it can interleave channels, heartbeats
and abort checks).  Both take an optional ``abort`` callable consulted
while spinning, so a worker blocked on a ring whose peer died can bail
out instead of spinning forever.
"""

from __future__ import annotations

import pickle
import struct
import time
from multiprocessing import shared_memory
from typing import Any, Callable, Optional

__all__ = ["RingAborted", "RingFull", "ShmRing", "attach_shared_memory"]


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment *without* resource-tracker tracking.

    Only the creating process may unlink a segment.  Attaching normally
    registers it with the resource tracker anyway (fixed only in 3.13's
    ``track=False``), and under the fork start method parent and children
    share one tracker process — so a child's unregister-after-attach
    (the usual bpo-39959 dance) would erase the *parent's* registration
    and spray ``KeyError`` noise at exit.  Suppressing registration for
    the duration of the attach sidesteps both failure modes.
    """
    try:
        from multiprocessing import resource_tracker
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
    except Exception:  # pragma: no cover - interpreter internals moved
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original

_HEADER = 32  # tail:u64 + head:u64 + tail_frames:u64 + head_frames:u64
_LEN = struct.Struct("<Q")

#: seconds to sleep between polls once the short spin phase is exhausted
_POLL_SLEEP = 100e-6
#: pure-spin iterations before backing off to timed sleeps
_SPIN = 64


class RingAborted(RuntimeError):
    """A blocking ring operation was interrupted by the abort signal."""


class RingFull(RuntimeError):
    """A frame can never fit: it is larger than the whole ring."""


class ShmRing:
    """One directed SPSC channel over a shared-memory segment.

    Create the segment in the parent with :meth:`create`, then
    :meth:`attach` from the two endpoint processes by name.  The creator
    is responsible for :meth:`unlink`; every attacher must :meth:`close`.
    """

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int,
                 owner: bool) -> None:
        self._shm = shm
        self.capacity = capacity
        self._owner = owner
        self._buf = shm.buf
        #: optional callable ``(op, pos, size, seen)`` invoked after every
        #: completed push/pop — ``op`` is ``"push"``/``"pop"``, ``pos`` the
        #: absolute byte position of the frame, ``size`` its extent, and
        #: ``seen`` the peer counter observed by the synchronizing load
        #: (head for a push, tail for a pop).  The race detector
        #: (:mod:`repro.analysis.races`) builds its acquire/release edges
        #: from exactly these four values; ``None`` costs nothing.
        self.observer: Optional[Callable[[str, int, int, int], None]] = None

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    def create(cls, capacity: int) -> "ShmRing":
        if capacity < 1024:
            raise ValueError("ring capacity must be >= 1024 bytes")
        shm = shared_memory.SharedMemory(create=True,
                                         size=_HEADER + capacity)
        shm.buf[:_HEADER] = b"\x00" * _HEADER
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShmRing":
        return cls(attach_shared_memory(name), capacity, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        self._buf = None
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:
                pass

    # -- counters ----------------------------------------------------------
    @property
    def _tail(self) -> int:
        return _LEN.unpack_from(self._buf, 0)[0]

    @_tail.setter
    def _tail(self, value: int) -> None:
        _LEN.pack_into(self._buf, 0, value)

    @property
    def _head(self) -> int:
        return _LEN.unpack_from(self._buf, 8)[0]

    @_head.setter
    def _head(self, value: int) -> None:
        _LEN.pack_into(self._buf, 8, value)

    def unread(self) -> int:
        """Bytes currently sitting unconsumed in the ring."""
        return self._tail - self._head

    def frames(self) -> int:
        """Whole messages currently sitting unconsumed in the ring."""
        return (_LEN.unpack_from(self._buf, 16)[0]
                - _LEN.unpack_from(self._buf, 24)[0])

    # -- byte-wise wrap-around copies --------------------------------------
    def _write_at(self, pos: int, data: bytes) -> None:
        start = _HEADER + (pos % self.capacity)
        first = min(len(data), _HEADER + self.capacity - start)
        self._buf[start:start + first] = data[:first]
        if first < len(data):
            self._buf[_HEADER:_HEADER + len(data) - first] = data[first:]

    def _read_at(self, pos: int, n: int) -> bytes:
        start = _HEADER + (pos % self.capacity)
        first = min(n, _HEADER + self.capacity - start)
        out = bytes(self._buf[start:start + first])
        if first < n:
            out += bytes(self._buf[_HEADER:_HEADER + n - first])
        return out

    # -- producer ----------------------------------------------------------
    def push(self, message: Any,
             abort: Optional[Callable[[], bool]] = None) -> int:
        """Pickle ``message`` and append it, blocking while the ring is
        full.  Returns the frame size in bytes.  Raises :class:`RingFull`
        if the frame exceeds the ring capacity (it could never fit) and
        :class:`RingAborted` if ``abort()`` turns true while waiting."""
        frame = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        need = _LEN.size + len(frame)
        if need > self.capacity:
            raise RingFull(
                f"frame of {need} bytes exceeds ring capacity "
                f"{self.capacity}; size the ring for the largest payload")
        spins = 0
        while self.capacity - (self._tail - self._head) < need:
            if abort is not None and abort():
                raise RingAborted("ring push aborted")
            spins += 1
            time.sleep(0 if spins < _SPIN else _POLL_SLEEP)
        # The head value that proved there is room: the acquiring load
        # that orders this write after the consumer's reads of the bytes
        # being overwritten.
        head_seen = self._head
        tail = self._tail
        self._write_at(tail, _LEN.pack(len(frame)))
        self._write_at(tail + _LEN.size, frame)
        # Publish after the payload is fully written (single atomic store).
        self._tail = tail + need
        _LEN.pack_into(self._buf, 16,
                       _LEN.unpack_from(self._buf, 16)[0] + 1)
        if self.observer is not None:
            self.observer("push", tail, need, head_seen)
        return need

    # -- consumer ----------------------------------------------------------
    def pop(self) -> Optional[Any]:
        """Consume and return the next message, or ``None`` when empty."""
        head = self._head
        # The tail value this pop synchronized on: everything the producer
        # published up to it happens-before our reads below.
        tail_seen = self._tail
        if tail_seen - head < _LEN.size:
            return None
        size = _LEN.unpack(self._read_at(head, _LEN.size))[0]
        # The producer publishes tail only after the full frame is in
        # place, so once the length is visible the payload is too.
        frame = self._read_at(head + _LEN.size, size)
        message = pickle.loads(frame)
        self._head = head + _LEN.size + size
        _LEN.pack_into(self._buf, 24,
                       _LEN.unpack_from(self._buf, 24)[0] + 1)
        if self.observer is not None:
            self.observer("pop", head, _LEN.size + size, tail_seen)
        return message

    def drain(self) -> list:
        """Consume every buffered message (end-of-run orphan sweep)."""
        out = []
        while True:
            msg = self.pop()
            if msg is None:
                return out
            out.append(msg)
